"""Make the benchmarks directory importable (for the _util helpers)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Under ``-v``, close the run with the host-side diagnostics block
    (crossing-cache hit rate, per-phase wall-clock across all benches)."""
    # Note: pyproject's ``addopts = "-q"`` offsets pytest's verbosity
    # counter, so detect the flag itself (shared with _util.verbose()).
    import _util

    if _util.verbose():
        terminalreporter.ensure_newline()
        _util.diagnostics("benchmarks")
