"""Figure 6 — antipodal vertices, lines of support, and sectors.

Rotating calipers = sector-overlap brute force; pair counts linear;
the diameter is always antipodal (Shamos).  Generation in
:mod:`repro.report.figures`.
"""

import pytest

from repro import power_fit
from repro.geometry import antipodal_pairs
from repro.report import figures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("fig6")


def test_fig6_report(benchmark):
    rows = benchmark.pedantic(figures.figure6_rows, rounds=1, iterations=1)
    report(
        "fig6",
        "Figure 6 / Lemma 5.5: antipodal pairs by rotating calipers",
        ["hull size m", "calipers pairs", "sector-brute pairs",
         "sets equal", "diameter correct"],
        rows,
    )
    assert all(r[3] == "yes" and r[4] == "yes" for r in rows)
    sizes = [r[0] for r in rows]
    counts = [r[1] for r in rows]
    fit = power_fit(sizes, counts)
    assert 0.8 < fit.exponent < 1.2
    for m, c in zip(sizes, counts):
        assert c <= 2 * m


def test_fig6_calipers_speed(benchmark):
    poly = figures.convex_polygon(128, seed=1)
    pairs = benchmark(lambda: antipodal_pairs(poly))
    assert len(pairs) >= len(poly) // 2
