"""Cross-level validation: the abstract cost model vs the micro machines.

Mesh: broadcast/semigroup round counts must track the model within a
constant factor; shearsort must pay a widening log-factor over the
Thompson-Kung bitonic totals.  Hypercube: round counts must be exactly
equal.  Generation in :mod:`repro.report.validation`.
"""

import pytest

from repro import power_fit
from repro.machines.micro import shearsort
from repro.report import validation

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("micro")


def test_mesh_validation_report(benchmark):
    rows = benchmark.pedantic(validation.mesh_rows, rounds=1, iterations=1)
    report(
        "micro",
        "Cross-level validation (mesh): micro machine vs abstract model",
        ["n", "bcast micro", "bcast model", "ratio",
         "semigroup micro", "semigroup model", "ratio",
         "shearsort micro", "bitonic model", "ratio (log-factor gap)"],
        rows,
    )
    bc_ratios = [float(r[3]) for r in rows]
    sg_ratios = [float(r[6]) for r in rows]
    ss_ratios = [float(r[9]) for r in rows]
    assert max(bc_ratios) / min(bc_ratios) < 2.0
    assert max(sg_ratios) / min(sg_ratios) < 2.0
    assert ss_ratios[-1] > ss_ratios[0]  # the log-factor gap widens


def test_cube_validation_report(benchmark):
    rows = benchmark.pedantic(validation.cube_rows, rounds=1, iterations=1)
    report(
        "micro",
        "Cross-level validation (hypercube): exact round agreement",
        ["n", "sort micro", "sort model", "sort",
         "reduce micro", "reduce model", "reduce"],
        rows,
    )
    assert all(r[3] == "exact" and r[6] == "exact" for r in rows)


def test_micro_shearsort_fit(benchmark):
    def run():
        times = [
            validation.micro_mesh_cost(lambda m: shearsort(m, "x"), n)
            for n in validation.SIZES
        ]
        return power_fit(validation.SIZES, times)
    fit = benchmark.pedantic(run, rounds=1, iterations=1)
    # sqrt(n) log n over this range fits ~ n^0.6-0.8.
    assert 0.5 < fit.exponent < 0.9


def test_micro_broadcast_speed(benchmark):
    from repro.machines.micro import broadcast_micro
    benchmark(lambda: validation.micro_mesh_cost(
        lambda m: broadcast_micro(m, "x", 0, 0), 256))
