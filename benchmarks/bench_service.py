"""Service load harness — zipf-skewed replay against the query service.

Every other bench in this directory drives the simulators directly; this
one drives the serving layer (``repro.service``): a synthetic client
population replays a zipf-skewed query stream (repeat-heavy traffic over
a family universe drawn from the ``repro.verify.generators`` kinds)
through a live :class:`~repro.service.QueryService`, and the harness
records the serving numbers — p50/p90/p99 request latency, sustained
throughput, cache hit rate, batching/dedupe counters — plus a
correctness spot-check: a sample of unique requests is recomputed
per-query through the campaign engine
(:func:`repro.parallel.parallel_map` over
:func:`repro.service.workers.direct_item`) and must match the served
payloads byte-for-byte.

Latency percentiles come from the service's own
``request_latency_s`` :class:`~repro.obs.hist.Log2Histogram` — the same
buckets the live ``stats()`` endpoint serves — not from a private sorted
array.  Every run asserts parity between the histogram-derived quantiles
and the sorted-sample percentiles (within one bucket's resolution), and
both the bucket array and the full ``repro.obs/1`` stats snapshot ride
along in the artifacts.

CLI runs write ``BENCH_service.json`` at the repo root and append one
JSON line (provenance included) to ``benchmarks/history/service.jsonl``;
pytest entry points write to a temp dir and never append — the committed
artifacts record deliberate benchmark invocations only.  The committed
full-tier run replays 10^5 queries (the PR acceptance floor).

Run directly (``python benchmarks/bench_service.py [--tier smoke]``) or
via pytest (``test_service_report`` runs the smoke tier).
"""

from __future__ import annotations

import asyncio
import json
import math
import pathlib
import time

import numpy as np

from repro.parallel import parallel_map
from repro.service import QueryService, request
from repro.service.workers import direct_item
from repro.trace import provenance_manifest
from repro.verify.generators import CURVE_KINDS, SYSTEM_KINDS

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"
HISTORY_PATH = (pathlib.Path(__file__).resolve().parent
                / "history" / "service.jsonl")

#: Replay parameters per tier.  ``queries`` is the stream length (the
#: full tier carries the 1e5 acceptance floor), ``families`` the universe
#: size the zipf law ranks, ``wave`` the number of concurrently
#: outstanding clients, ``skew`` the zipf exponent (1.1 ~ web-like
#: repeat-heavy traffic).
PARAMS = {
    "smoke": {"queries": 400, "families": 12, "wave": 64, "skew": 1.1},
    "full": {"queries": 100_000, "families": 64, "wave": 512, "skew": 1.1},
}

#: Service configuration under test (one shard per worker thread; the
#: bounded cache sized well below the universe so eviction is exercised
#: by the tail families).
SERVICE = {
    "smoke": {"shards": 2, "cache_capacity": 64, "max_batch": 64},
    "full": {"shards": 4, "cache_capacity": 128, "max_batch": 64},
}

#: Unique requests recomputed per-query through the campaign engine and
#: compared byte-for-byte against served payloads.
CORRECTNESS_SAMPLE = 24


def build_universe(n_families: int, seed: int) -> list:
    """A deterministic request universe over the generator kinds.

    Cycles the three algorithms across the verification layer's curve and
    system kinds, mixing backends, run parameters (envelope op, hull
    query index) and derived queries (``value_at``/``member_at``/
    ``is_extreme``) — the shapes production traffic would mix.
    """
    curve_kinds = sorted(CURVE_KINDS)
    system_kinds = sorted(SYSTEM_KINDS)
    backends = ("mesh", "hypercube", "serial")
    universe = []
    for i in range(n_families):
        backend = backends[i % len(backends)]
        if i % 3 == 0:
            req = request("envelope", kind=curve_kinds[i % len(curve_kinds)],
                          seed=1000 + i, n=4 + i % 5, backend=backend,
                          op="min" if i % 2 == 0 else "max")
            if i % 6 == 0:
                req = request("envelope",
                              kind=curve_kinds[i % len(curve_kinds)],
                              seed=1000 + i, n=4 + i % 5, backend=backend,
                              op="min" if i % 2 == 0 else "max",
                              q="value_at", t=0.5 * (i % 4))
        elif i % 3 == 1:
            kind = system_kinds[i % len(system_kinds)]
            if i % 4 == 1:
                req = request("hull_membership", kind=kind, seed=2000 + i,
                              n=5 + i % 4, backend=backend,
                              q="member_at", t=1.0)
            else:
                req = request("hull_membership", kind=kind, seed=2000 + i,
                              n=5 + i % 4, backend=backend, query=i % 3)
        else:
            kind = system_kinds[(i + 3) % len(system_kinds)]
            if i % 4 == 2:
                req = request("steady_hull", kind=kind, seed=3000 + i,
                              n=5 + i % 4, backend=backend,
                              q="is_extreme", i=i % 5)
            else:
                req = request("steady_hull", kind=kind, seed=3000 + i,
                              n=5 + i % 4, backend=backend)
        universe.append(req)
    return universe


def zipf_stream(universe: list, n_queries: int, seed: int,
                skew: float) -> list:
    """``n_queries`` requests drawn zipf(``skew``) over the universe."""
    rng = np.random.default_rng(seed)
    weights = np.arange(1, len(universe) + 1, dtype=float) ** (-skew)
    weights /= weights.sum()
    picks = rng.choice(len(universe), size=n_queries, p=weights)
    return [universe[int(i)] for i in picks]


async def _replay(stream: list, wave: int, service_kwargs: dict,
                  sample_keys: set) -> dict:
    """Replay ``stream`` in waves; aggregate latency without keeping
    every response alive (10^5 responses would be pure ballast)."""
    latencies = np.empty(len(stream), dtype=float)
    sampled: dict = {}
    pos = 0
    async with QueryService(**service_kwargs) as svc:
        t0 = time.perf_counter()
        for start in range(0, len(stream), wave):
            chunk = stream[start:start + wave]
            resps = await svc.submit_many(chunk)
            for req, resp in zip(chunk, resps):
                latencies[pos] = resp.meta["latency_s"]
                pos += 1
                key = req.key()
                if key in sample_keys and key not in sampled:
                    sampled[key] = resp.payload
        wall = time.perf_counter() - t0
    return {"latencies": latencies[:pos], "wall": wall,
            "sampled": sampled, "service": svc}


def hist_latency(hist, lat: np.ndarray) -> dict:
    """Histogram-derived latency percentiles + the one-run parity check.

    p50/p90/p99 are read from the service's shared
    :class:`repro.obs.hist.Log2Histogram` (upper bucket edges).  For each
    quantile the run asserts the histogram's answer is exactly the upper
    edge of the bucket holding the same-rank sorted sample — i.e. within
    one bucket's resolution (a factor of two) of the exact sorted-sample
    percentile.  A drifted histogram (missed observation, wrong bucket
    arithmetic) fails the benchmark rather than misreporting latency.
    """
    assert hist.count == len(lat), (
        f"histogram saw {hist.count} samples, harness saw {len(lat)}")
    ordered = np.sort(lat)
    out = {}
    for q in (0.50, 0.90, 0.99):
        bound = hist.quantile(q)
        rank = max(1, math.ceil(q * len(ordered)))
        sample = float(ordered[rank - 1])
        assert bound == hist.upper_bound(hist.bucket_of(sample)), (
            f"p{q * 100:g}: histogram bound {bound} disagrees with the "
            f"bucket of the rank-{rank} sample {sample}")
        assert sample <= bound <= max(2.0 * sample, hist.lo), (
            f"p{q * 100:g}: bound {bound} not within one bucket "
            f"of the sorted-sample percentile {sample}")
        out[f"p{q * 100:g}"] = round(bound, 9)
    out["max"] = round(float(hist.vmax), 6)
    return out


def check_correctness(sampled: dict, universe: list,
                      machine_size: int) -> int:
    """Recompute sampled requests per-query via the campaign engine.

    Served payloads must equal the ``parallel_map`` baselines exactly
    (the same contract ``tests/service/test_equivalence.py`` pins, here
    asserted on the real replay's own traffic).  Returns the number of
    requests checked.
    """
    reqs = [r for r in universe if r.key() in sampled]
    baselines = parallel_map(direct_item,
                             [(r, machine_size, None) for r in reqs],
                             jobs=2)
    for req, baseline in zip(reqs, baselines):
        served = sampled[req.key()]
        if json.dumps(served, sort_keys=True) != \
                json.dumps(baseline, sort_keys=True):
            raise AssertionError(
                f"served payload diverged from the per-query driver run "
                f"for {req.to_dict()!r}")
    return len(reqs)


def run_service_bench(mode: str = "full",
                      queries: int | None = None,
                      json_path: pathlib.Path | None = JSON_PATH,
                      history_path: pathlib.Path | None = None) -> dict:
    """Replay one tier; return (and write) the serving numbers."""
    params = dict(PARAMS[mode])
    if queries is not None:
        params["queries"] = int(queries)
    service_kwargs = dict(SERVICE[mode])
    provenance = provenance_manifest(config={
        "harness": "bench_service", "mode": mode, **params,
        **service_kwargs,
    })
    universe = build_universe(params["families"], seed=0)
    stream = zipf_stream(universe, params["queries"], seed=1,
                         skew=params["skew"])
    sample_keys = {r.key() for r in universe[:CORRECTNESS_SAMPLE]}
    replay = asyncio.run(_replay(stream, params["wave"], service_kwargs,
                                 sample_keys))
    svc = replay["service"]
    lat = replay["latencies"]
    assert len(lat) == params["queries"], "stream not fully served"
    counters = svc.counters
    cache = svc.cache.stats()
    hist = svc.obs.hists["request_latency_s"]
    checked = check_correctness(replay["sampled"], universe,
                                svc.machine_size)
    results = {
        "mode": mode,
        "params": params,
        "service": service_kwargs,
        "provenance": provenance,
        "queries": params["queries"],
        "wall_seconds": round(replay["wall"], 4),
        "throughput_qps": round(params["queries"] / replay["wall"], 1),
        "latency_s": hist_latency(hist, lat),
        "latency_hist": hist.to_dict(),
        "cache": {
            "hit_rate": round(cache["hit_rate"], 4),
            "hits": cache["hits"],
            "misses": cache["misses"],
            "evictions": cache["evictions"],
            "request_hit_rate":
                round(counters.cache_hit_requests / counters.responses, 4),
        },
        "batching": {
            "batches": counters.batches,
            "batch_max": counters.batch_max,
            "mean_batch_size":
                round(counters.batched_requests / counters.batches, 2),
            "dedup_hits": counters.dedup_hits,
            "coalesced_requests": counters.coalesced_requests,
        },
        "counters": {
            "requests": counters.requests,
            "responses": counters.responses,
            "errors": counters.errors,
            "pool_restarts": svc.stats_dict()["pool_restarts"],
            "spans_recorded": len(svc.span_forest()),
            "spans_dropped": counters.spans_dropped,
        },
        "correctness_checked": checked,
        # The live-endpoint view of the same run: the versioned
        # ``repro.obs/1`` snapshot (histograms, event/recorder
        # accounting) as ``QueryService.stats()`` would serve it.
        "stats": svc.stats(),
    }
    if json_path is not None:
        json_path.write_text(json.dumps(results, indent=2) + "\n")
    if history_path is not None:
        append_history(results, history_path)
    return results


def append_history(results: dict,
                   path: pathlib.Path = HISTORY_PATH) -> pathlib.Path:
    """Append one compact JSON line for this run to the history log.

    ``latency_hist`` carries the full bucket array so later runs can be
    merged or re-quantiled offline; the trend analyser skips histogram
    subtrees when diffing scalar metrics and ``--slo`` reads them for
    percentile gating.
    """
    line = {k: results[k] for k in
            ("mode", "queries", "wall_seconds", "throughput_qps",
             "latency_s", "latency_hist", "cache", "batching",
             "provenance")}
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def _print_results(results: dict) -> None:
    lat = results["latency_s"]
    print(f"\nservice replay ({results['mode']} tier, "
          f"{results['queries']} queries):")
    print(f"  wall {results['wall_seconds']:.2f}s   "
          f"throughput {results['throughput_qps']:.0f} q/s")
    print(f"  latency p50 {lat['p50'] * 1e3:.2f}ms   "
          f"p90 {lat['p90'] * 1e3:.2f}ms   p99 {lat['p99'] * 1e3:.2f}ms")
    print(f"  cache hit rate {results['cache']['hit_rate']:.2%} "
          f"(request-level {results['cache']['request_hit_rate']:.2%}, "
          f"{results['cache']['evictions']} evictions)")
    print(f"  batches {results['batching']['batches']} "
          f"(mean {results['batching']['mean_batch_size']:.2f}, "
          f"max {results['batching']['batch_max']}, "
          f"dedup {results['batching']['dedup_hits']})")
    print(f"  correctness: {results['correctness_checked']} unique "
          f"requests matched per-query driver runs byte-for-byte")


def test_service_report(tmp_path):
    # Report to a pytest temp dir: the repo-root BENCH_service.json is
    # reserved for explicit CLI runs (it holds the committed 1e5-query
    # acceptance numbers, which a pytest side effect must never clobber).
    results = run_service_bench("smoke",
                                json_path=tmp_path / "BENCH_service.json")
    _print_results(results)
    assert results["counters"]["responses"] == results["queries"]
    assert results["counters"]["errors"] == 0
    # zipf repeat traffic must actually hit the cache, and the harness
    # must have byte-checked a real sample against the driver oracle.
    assert results["cache"]["request_hit_rate"] > 0.3
    assert results["correctness_checked"] >= 5
    assert results["latency_s"]["p50"] <= results["latency_s"]["p99"]
    # Every served request must be in the histogram the percentiles came
    # from, and the embedded live-endpoint snapshot must be versioned.
    assert results["latency_hist"]["count"] == results["queries"]
    assert results["stats"]["schema"] == "repro.obs/1"
    assert (tmp_path / "BENCH_service.json").exists()


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tier", choices=sorted(PARAMS), default="full")
    ap.add_argument("--queries", type=int, default=None,
                    help="override the tier's stream length")
    ap.add_argument("--no-json", action="store_true",
                    help="measure and print without rewriting the JSON")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append this run to benchmarks/history/")
    args = ap.parse_args()
    _print_results(run_service_bench(
        args.tier, queries=args.queries,
        json_path=None if args.no_json else JSON_PATH,
        history_path=None if args.no_history else HISTORY_PATH,
    ))
