"""Table 3 — steady-state problems (Section 5).

Paper: nearest neighbour is ``Theta(sqrt n)`` mesh / ``Theta(log n)``
hypercube; the other five are ``Theta(sqrt n)`` / ``Theta(log^2 n)``,
expected ``Theta(log n)`` with randomized sorting.  Generation in
:mod:`repro.report.table3`.
"""

import pytest

from repro.kinetics.motion import divergent_system
from repro.machines import mesh_machine
from repro.report import table3

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("table3")


def test_table3_report(benchmark):
    rows = benchmark.pedantic(table3.rows, rounds=1, iterations=1)
    report(
        "table3",
        f"Table 3 reproduction (steady-state problems, n = {table3.SIZES})",
        ["problem", "mesh t", "mesh fit", "cube t", "cube fit",
         "cube expected t (randomized)"],
        rows,
    )
    for row in rows:
        expo = float(row[2].split("^")[1].split(" ")[0])
        assert 0.3 < expo < 0.8, f"{row[0]}: mesh exponent {expo}"
    # NN uses a single semigroup: the cheapest row on both hosts.
    nn = rows[0]
    for other in rows[1:]:
        assert float(nn[1]) <= float(other[1])
        assert float(nn[3]) <= float(other[3])
    # Table 3's expected column: at n = 256 the randomized substrate is
    # within a whisker of bitonic (its crossover is near n ~ 1024)...
    for row in rows[1:]:
        assert float(row[5]) <= 1.3 * float(row[3])
    # ...and past the crossover it wins outright (log n vs log^2 n).
    import numpy as np
    from repro.machines import hypercube_machine
    from repro.ops import bitonic_sort
    data = np.random.default_rng(0).uniform(size=4096)
    det, rnd = hypercube_machine(4096), hypercube_machine(4096,
                                                          randomized=True)
    bitonic_sort(det, data)
    bitonic_sort(rnd, data)
    assert rnd.metrics.comm_time < det.metrics.comm_time


@pytest.mark.parametrize("name", list(table3.PROBLEMS))
def test_table3_problem_mesh(benchmark, name):
    system = divergent_system(64, d=2, seed=0)
    fn = table3.PROBLEMS[name]
    benchmark(lambda: fn(mesh_machine(64), system))
