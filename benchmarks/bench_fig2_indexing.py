"""Figure 2 — the four mesh indexing schemes.

Locality metrics per scheme, plus the hop cost of the full bitonic sorting
network under each — why shuffled-row-major buys the ``Theta(sqrt n)``
Thompson–Kung sort while proximity order's strengths are string adjacency
and recursive decomposability.  Generation in :mod:`repro.report.figures`.
"""

import pytest

from repro.analysis import power_fit
from repro.machines.indexing import SCHEMES
from repro.report import figures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("fig2")


def test_fig2_report(benchmark):
    rows = benchmark.pedantic(figures.locality_rows, rounds=1, iterations=1)
    report(
        "fig2",
        "Figure 2: indexing schemes of a 32x32 mesh",
        ["scheme", "adjacent fraction", "max consecutive dist",
         "recursively decomposable", "bitonic network hops"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # The two properties the paper states for proximity order.
    assert by["proximity"][1] == "1.000" and by["proximity"][3] == "yes"
    # Snake is adjacent but not decomposable; row-major is neither.
    assert by["snake-like"][2] == 1 and by["snake-like"][3] == "no"
    assert by["row-major"][3] == "no"
    # Bitonic-partner locality is shuffled-row-major's specialty — the
    # reason the Thompson–Kung sort uses it.
    assert by["shuffled-row-major"][4] < by["row-major"][4]
    assert by["shuffled-row-major"][4] < by["snake-like"][4]
    assert by["shuffled-row-major"][4] < by["proximity"][4]

    scaling_rows = []
    for name in SCHEMES:
        sizes, costs = figures.scheme_sort_scaling(name)
        scaling_rows.append([name, costs[-1],
                             power_fit(sizes, costs).describe()])
    report(
        "fig2",
        "Bitonic-network hop scaling by scheme",
        ["scheme", "hops (n=4096)", "fit"],
        scaling_rows,
    )
    fits = {r[0]: float(r[2].split("^")[1].split(" ")[0]) for r in scaling_rows}
    assert fits["shuffled-row-major"] < 0.7   # ~sqrt(n)
    assert fits["row-major"] > fits["shuffled-row-major"]


@pytest.mark.parametrize("name", list(SCHEMES))
def test_fig2_scheme_construction(benchmark, name):
    benchmark(lambda: SCHEMES[name](4096).all_coords())
