"""Figure 4 — pieces of the minimum function, and the lambda(n, s) bounds.

Random families never exceed ``lambda(n, s)`` pieces; the tangent-lines
construction attains ``lambda(n, 1) = n`` exactly (Lemma 2.2's "best
possible").  Generation in :mod:`repro.report.figures`.
"""

import numpy as np
import pytest

from repro import Polynomial, PolynomialFamily, envelope_serial
from repro.report import figures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("fig4")


def test_fig4_report(benchmark):
    rows = benchmark.pedantic(figures.figure4_rows, rounds=1, iterations=1)
    report(
        "fig4",
        "Figure 4 / Lemma 2.2: envelope piece counts vs lambda(n, s)",
        ["n", "s", "max observed pieces", "lambda(n, s)", "check"],
        rows,
    )
    assert all(r[4] == "ok" for r in rows)

    tight = figures.tightness_rows()
    report(
        "fig4",
        "Worst case attained: tangent lines to a parabola (s = 1)",
        ["n", "envelope pieces", "lambda(n,1)", "status"],
        tight,
    )
    assert all(r[3] == "tight" for r in tight)

    lam = figures.lambda_rows()
    report(
        "fig4",
        "Theorem 2.3: lambda(n, s) and the inverse Ackermann function",
        ["n", "lambda(n,1)=n", "lambda(n,2)=2n-1",
         "lambda bound (s=3)", "alpha(n)"],
        lam,
    )
    assert all(r[4] <= 4 for r in lam)  # alpha(n) <= 4 for any real n


def test_fig4_envelope_construction(benchmark):
    rng = np.random.default_rng(0)
    fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(128)]
    fam = PolynomialFamily(1)
    env = benchmark(lambda: envelope_serial(fns, fam))
    assert len(env) <= 128
