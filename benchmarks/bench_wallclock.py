"""Wall-clock benchmark — real seconds, not simulated charges.

Every other bench in this directory reports *simulated parallel time*, which
is pure accounting and must stay bit-identical across host-side
optimisations.  This bench measures the other axis: how long the simulator
itself takes to run, in seconds, for three representative workloads
(envelope construction, hull membership, steady-state hull).  Results go to
``BENCH_wallclock.json`` at the repo root, with speedups against the seed
revision's numbers (``SEED_SECONDS``, measured with this same harness on
the pre-optimisation tree, min of 3 runs).

Each workload is timed twice — compiled movement plans on (the default)
and off (the interpreted per-round executors) — and the simulated time
charged by the two modes is asserted bit-identical, the PR 3 contract.
A campaign-scaling section times ``repro.verify`` campaigns at
``--jobs`` 1/2/4 and records ``host_cores`` alongside, since jobs beyond
the physical core count cannot speed anything up.

Run directly (``python benchmarks/bench_wallclock.py [--smoke]``) or via
pytest, where ``test_wallclock_report`` runs the full mode.  Smoke mode
shrinks every workload so the whole sweep finishes in a few seconds; the
tier-1 suite uses it through ``tests/test_wallclock_smoke.py``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.core.envelope import envelope
from repro.core.family import PolynomialFamily
from repro.core.hull_membership import hull_membership_intervals
from repro.core.steady import steady_hull
from repro.kinetics.motion import divergent_system, random_system
from repro.kinetics.polynomial import Polynomial
from repro.machines.machine import mesh_machine
from repro.ops import set_compiled_plans
from repro.trace import Tracer, provenance_manifest, write_chrome_trace
from repro.trace.registry import registry_snapshot
from repro.verify.oracle import campaign

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_wallclock.json"

#: Seconds for the seed revision (commit d9f28b7), same harness, same
#: parameters, min of 3 — the "before" of every speedup in the JSON.
SEED_SECONDS = {
    "full": {"envelope": 0.1507, "hull_membership": 0.0906,
             "steady_hull": 1.1540},
    "smoke": {"envelope": 0.0480, "hull_membership": 0.0287,
              "steady_hull": 0.1608},
}

#: Workload parameters per mode.  ``envelope`` is the acceptance workload
#: (n >= 256, k = 2): the recursive-halving hot path the batched root
#: isolation and crossing cache were built for.
PARAMS = {
    "full": {
        "envelope": {"n": 256, "k": 2, "n_pe": 1024},
        "hull_membership": {"n": 32, "n_pe": 1024},
        "steady_hull": {"n": 256, "n_pe": 256},
    },
    "smoke": {
        "envelope": {"n": 64, "k": 2, "n_pe": 256},
        "hull_membership": {"n": 12, "n_pe": 256},
        "steady_hull": {"n": 48, "n_pe": 64},
    },
}

#: Campaign-scaling parameters: a small oracle campaign timed at each jobs
#: value.  Results are identical for every jobs value (the engine merges
#: by item index); only wall-clock moves, and only when the host has the
#: cores to back it — hence ``host_cores`` in the recorded section.
CAMPAIGN_PARAMS = {
    "full": {"algorithms": ["closest_pair", "envelope"], "instances": 12},
    "smoke": {"algorithms": ["closest_pair"], "instances": 4},
}

CAMPAIGN_JOBS = (1, 2, 4)


# ----------------------------------------------------------------------
# Workloads: each builder returns a zero-argument callable that runs one
# full pass on a fresh machine and returns that machine.  Inputs are built
# once per workload (outside the timed region); machines and families are
# fresh per repeat so the crossing cache never carries over between runs.
# ----------------------------------------------------------------------
def _envelope_workload(n: int, k: int, n_pe: int):
    rng = np.random.default_rng(0)
    polys = [Polynomial(rng.normal(size=k + 1)) for _ in range(n)]

    def run():
        machine = mesh_machine(n_pe)
        envelope(machine, polys, PolynomialFamily(k))
        return machine

    return run


def _hull_workload(n: int, n_pe: int):
    system = random_system(n, 2, 1, seed=3)

    def run():
        machine = mesh_machine(n_pe)
        hull_membership_intervals(machine, system)
        return machine

    return run


def _steady_hull_workload(n: int, n_pe: int):
    system = divergent_system(n, 2, 1, seed=1)

    def run():
        machine = mesh_machine(n_pe)
        steady_hull(machine, system)
        return machine

    return run


_BUILDERS = {
    "envelope": _envelope_workload,
    "hull_membership": _hull_workload,
    "steady_hull": _steady_hull_workload,
}


def _measure(run, repeats: int):
    """Min/mean wall seconds over ``repeats`` runs, plus the last machine."""
    seconds = []
    machine = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        machine = run()
        seconds.append(time.perf_counter() - t0)
    return min(seconds), sum(seconds) / len(seconds), machine


def _measure_plan_modes(run, repeats: int):
    """Time ``run`` with compiled plans on and off; check sim-time parity."""
    out = {}
    for label, enabled in (("plan_on", True), ("plan_off", False)):
        prev = set_compiled_plans(enabled)
        try:
            out[label] = _measure(run, repeats)
        finally:
            set_compiled_plans(prev)
    on_sim = out["plan_on"][2].metrics.time
    off_sim = out["plan_off"][2].metrics.time
    assert on_sim == off_sim, (
        f"simulated time moved with plan mode: on={on_sim!r} off={off_sim!r}"
    )
    return out


def run_campaign_scaling(mode: str = "full") -> dict:
    """Time the oracle campaign at each jobs value; results are identical."""
    params = CAMPAIGN_PARAMS[mode]
    section: dict = {
        "params": params,
        "host_cores": os.cpu_count(),
        "jobs": {},
    }
    base = None
    for jobs in CAMPAIGN_JOBS:
        t0 = time.perf_counter()
        result = campaign(jobs=jobs, **params)
        dt = time.perf_counter() - t0
        if base is None:
            base = dt
        section["jobs"][str(jobs)] = {
            "seconds": round(dt, 4),
            "speedup_vs_serial": round(base / dt, 2) if dt > 0 else math.inf,
            "ok": result.ok,
        }
    return section


def run_traced_pass(mode: str, expected_sim: dict) -> list[dict]:
    """One extra traced run per workload, after all timing is done.

    Returns the span forest (one ``workload`` span per workload).  The
    traced run's simulated time is asserted equal to the timed runs' —
    tracing reads the accumulators, it never charges them.
    """
    forests: list[dict] = []
    for name, params in PARAMS[mode].items():
        run = _BUILDERS[name](**params)
        tracer = Tracer(name)
        with tracer:
            with tracer.span(name, category="workload", **params):
                machine = run()
        assert machine.metrics.time == expected_sim[name], (
            f"{name}: traced sim time {machine.metrics.time!r} differs "
            f"from untraced {expected_sim[name]!r}"
        )
        forests.extend(tracer.to_dicts())
    return forests


def run_wallclock(mode: str = "full", repeats: int = 3,
                  json_path: pathlib.Path | None = JSON_PATH,
                  campaign_scaling: bool = True,
                  trace_path=None) -> dict:
    """Measure every workload; return (and optionally write) the results.

    Each workload entry records measured seconds (min and mean of
    ``repeats``) for the compiled-plan and interpreted executors, the seed
    baseline, the speedups, the *simulated* time the run charged (asserted
    identical between the two executors — the number that must never
    move), per-phase wall-clock, and the run's provenance manifest
    (git revision, seed inputs, host info, package versions).

    ``trace_path`` additionally runs one traced pass per workload (after
    the timed runs, so tracing overhead never contaminates the numbers)
    and writes a Chrome ``trace_event`` JSON.
    """
    provenance = provenance_manifest(config={
        "harness": "bench_wallclock", "mode": mode, "repeats": repeats,
    })
    results: dict = {"mode": mode, "repeats": repeats,
                     "provenance": provenance, "workloads": {}}
    for name, params in PARAMS[mode].items():
        modes = _measure_plan_modes(_BUILDERS[name](**params), repeats)
        best, mean, machine = modes["plan_on"]
        off_best, off_mean, _ = modes["plan_off"]
        seed = SEED_SECONDS[mode][name]
        entry = {
            "params": params,
            "seconds": round(best, 4),
            "mean_seconds": round(mean, 4),
            "plan_off_seconds": round(off_best, 4),
            "plan_off_mean_seconds": round(off_mean, 4),
            "plan_speedup": round(off_best / best, 2) if best > 0 else math.inf,
            "seed_seconds": seed,
            "speedup": round(seed / best, 2) if best > 0 else math.inf,
            "sim_time": machine.metrics.time,
            "provenance": provenance,
        }
        wall_phases = getattr(machine.metrics, "wall_phases", None)
        if wall_phases:
            entry["wall_phases"] = {
                k: round(v, 4) for k, v in sorted(wall_phases.items())
            }
        results["workloads"][name] = entry
    if campaign_scaling:
        results["campaign_scaling"] = run_campaign_scaling(mode)
    if trace_path is not None:
        spans = run_traced_pass(mode, {
            name: entry["sim_time"]
            for name, entry in results["workloads"].items()
        })
        totals = {
            s["name"]: (s.get("sim") or {}).get("time") for s in spans
        }
        write_chrome_trace(trace_path, spans, provenance=provenance,
                           totals=totals, counters=registry_snapshot())
        results["trace_path"] = str(trace_path)
    if json_path is not None:
        json_path.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _print_results(results: dict) -> None:
    print(f"\nwall-clock sweep ({results['mode']} mode, "
          f"min of {results['repeats']}):")
    for name, entry in results["workloads"].items():
        print(f"  {name:16s} {entry['seconds']:8.4f}s   "
              f"interpreted {entry['plan_off_seconds']:.4f}s "
              f"({entry['plan_speedup']:.2f}x)   "
              f"seed {entry['seed_seconds']:.4f}s "
              f"({entry['speedup']:.2f}x)   "
              f"sim_time {entry['sim_time']:g}")
    scaling = results.get("campaign_scaling")
    if scaling:
        print(f"  campaign scaling (host cores: {scaling['host_cores']}):")
        for jobs, entry in scaling["jobs"].items():
            print(f"    jobs={jobs:3s} {entry['seconds']:8.4f}s   "
                  f"{entry['speedup_vs_serial']:.2f}x vs serial")


def test_wallclock_report():
    results = run_wallclock("full")
    _print_results(results)
    for name, entry in results["workloads"].items():
        assert entry["seconds"] < 10.0, f"{name} runaway: {entry}"
        # Compiled plans must never be a pessimisation (noise margin).
        assert entry["seconds"] <= 1.25 * entry["plan_off_seconds"], (
            f"{name}: compiled {entry['seconds']:.4f}s slower than "
            f"interpreted {entry['plan_off_seconds']:.4f}s"
        )
    # The acceptance workload: host-side batching + caching must keep the
    # envelope sweep well clear of the seed's wall-clock (3x required;
    # assert with a margin for machine noise).
    assert results["workloads"]["envelope"]["speedup"] >= 2.5


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="reduced sizes, finishes in a few seconds")
    def _positive(value):
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("--repeats must be >= 1")
        return n

    ap.add_argument("--repeats", type=_positive, default=3)
    ap.add_argument("--no-json", action="store_true",
                    help="measure and print without rewriting the JSON")
    ap.add_argument("--no-campaign", action="store_true",
                    help="skip the campaign jobs-scaling section")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="also run one traced pass per workload (after the "
                         "timed runs) and write a Chrome trace_event JSON")
    args = ap.parse_args()
    _print_results(run_wallclock(
        "smoke" if args.smoke else "full", repeats=args.repeats,
        json_path=None if args.no_json else JSON_PATH,
        campaign_scaling=not args.no_campaign,
        trace_path=args.trace,
    ))
