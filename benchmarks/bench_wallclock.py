"""Wall-clock benchmark — real seconds, not simulated charges.

Every other bench in this directory reports *simulated parallel time*, which
is pure accounting and must stay bit-identical across host-side
optimisations.  This bench measures the other axis: how long the simulator
itself takes to run, in seconds, per tier:

* ``smoke`` / ``full`` — the three end-to-end workloads (envelope
  construction, hull membership, steady-state hull), timed under all three
  data-movement executors (``vectorized``/``compiled``/``reference``).
* ``large`` — ops-level sort/merge workloads at Table-1 scale
  (n up to 2^20 PEs) where the vectorized column executor is the headline:
  object/tuple keys are exactly what the per-pair compiled loop is slow
  at.  The interpreted reference executor is skipped at this tier (hours),
  so the "before" is the compiled executor.

CLI runs write ``BENCH_wallclock.json`` at the repo root (pytest entry
points write to a temp dir instead — the committed artifact records
deliberate benchmark invocations only), with speedups
against the seed revision's numbers where a seed baseline exists
(``SEED_SECONDS``, measured with this same harness on the pre-optimisation
tree, min of 3 runs).  The simulated time charged by every measured
executor is asserted bit-identical — the PR 3 / PR 6 contract.

CLI runs additionally append one JSON line per run (provenance included)
to ``benchmarks/history/wallclock.jsonl`` so regressions are visible
across revisions, not just against the static seed constants.  Pytest
runs never append: the tier-1 suite must not grow a committed file on
every invocation.

A campaign-scaling section times ``repro.verify`` campaigns at ``--jobs``
1/2/4 and records ``host_cores`` alongside, since jobs beyond the
physical core count cannot speed anything up.

Run directly (``python benchmarks/bench_wallclock.py [--tier large]``) or
via pytest, where ``test_wallclock_report`` runs the full tier.  Smoke
mode shrinks every workload so the whole sweep finishes in a few seconds;
the tier-1 suite uses it through ``tests/test_wallclock_smoke.py``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.core.envelope import envelope
from repro.core.family import PolynomialFamily
from repro.core.hull_membership import hull_membership_intervals
from repro.core.steady import steady_hull
from repro.kinetics.motion import divergent_system, random_system
from repro.kinetics.polynomial import Polynomial
from repro.machines.machine import mesh_machine
from repro.ops import bitonic_merge, bitonic_sort, set_compiled_plans
from repro.trace import Tracer, provenance_manifest, write_chrome_trace
from repro.trace.registry import registry_snapshot
from repro.verify.oracle import campaign

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_wallclock.json"
HISTORY_PATH = pathlib.Path(__file__).resolve().parent / "history" / "wallclock.jsonl"

#: Seconds for the seed revision (commit d9f28b7), same harness, same
#: parameters, min of 3 — the "before" of every ``speedup`` in the JSON.
#: The large tier has no entry: its workloads postdate the seed, so its
#: "before" is the compiled executor (``vectorized_speedup``).
SEED_SECONDS = {
    "full": {"envelope": 0.1507, "hull_membership": 0.0906,
             "steady_hull": 1.1540},
    "smoke": {"envelope": 0.0480, "hull_membership": 0.0287,
              "steady_hull": 0.1608},
}

#: Workload parameters per tier.  ``envelope`` is the PR 4 acceptance
#: workload (n >= 256, k = 2).  The large tier drives the data-movement
#: ops directly: an object-float sort on the full 2^20-PE mesh, tuple
#: keys at n = 2^16, and a 2^20-slot record merge — the regime the
#: vectorized executor exists for.
PARAMS = {
    "full": {
        "envelope": {"n": 256, "k": 2, "n_pe": 1024},
        "hull_membership": {"n": 32, "n_pe": 1024},
        "steady_hull": {"n": 256, "n_pe": 256},
    },
    "smoke": {
        "envelope": {"n": 64, "k": 2, "n_pe": 256},
        "hull_membership": {"n": 12, "n_pe": 256},
        "steady_hull": {"n": 48, "n_pe": 64},
    },
    "large": {
        "sort_object_keys": {"n": 1 << 20, "n_pe": 1 << 20},
        "sort_tuple_keys": {"n": 1 << 16, "n_pe": 1 << 16},
        "merge_record_keys": {"n": 1 << 20, "n_pe": 1 << 20},
    },
}

#: Executors measured per tier, fastest first (the first entry is the
#: headline ``seconds`` and the sim-parity anchor).  The interpreted
#: reference executor is only affordable at smoke/full sizes.
EXECUTOR_TIERS = {
    "smoke": ("vectorized", "compiled", "reference"),
    "full": ("vectorized", "compiled", "reference"),
    "large": ("vectorized", "compiled"),
}

#: Per-tier default repeats: the large tier's compiled runs are tens of
#: seconds each, so one timed pass (after an untimed plan-cache warm-up)
#: is the budget.
DEFAULT_REPEATS = {"smoke": 3, "full": 3, "large": 1}

#: Campaign-scaling parameters: a small oracle campaign timed at each jobs
#: value.  Results are identical for every jobs value (the engine merges
#: by item index); only wall-clock moves, and only when the host has the
#: cores to back it — hence ``host_cores`` in the recorded section.
CAMPAIGN_PARAMS = {
    "full": {"algorithms": ["closest_pair", "envelope"], "instances": 12},
    "smoke": {"algorithms": ["closest_pair"], "instances": 4},
    "large": {"algorithms": ["closest_pair", "envelope"], "instances": 12},
}

CAMPAIGN_JOBS = (1, 2, 4)


def within_noise(fast: float, slow: float) -> bool:
    """True when ``fast`` is no worse than ``slow`` modulo timing noise.

    The relative margin absorbs scheduler jitter on real workloads; the
    absolute 10 ms floor keeps millisecond-scale smoke workloads from
    flagging a "regression" that is pure measurement grain (the old
    plain-ratio guard read 0.98x at n_pe = 256 as a signal).
    """
    return fast <= 1.25 * slow + 0.010


# ----------------------------------------------------------------------
# Workloads: each builder returns a zero-argument callable that runs one
# full pass on a fresh machine and returns that machine.  Inputs are built
# once per workload (outside the timed region); machines and families are
# fresh per repeat so the crossing cache never carries over between runs.
# ----------------------------------------------------------------------
def _envelope_workload(n: int, k: int, n_pe: int):
    rng = np.random.default_rng(0)
    polys = [Polynomial(rng.normal(size=k + 1)) for _ in range(n)]

    def run():
        machine = mesh_machine(n_pe)
        envelope(machine, polys, PolynomialFamily(k))
        return machine

    return run


def _hull_workload(n: int, n_pe: int):
    system = random_system(n, 2, 1, seed=3)

    def run():
        machine = mesh_machine(n_pe)
        hull_membership_intervals(machine, system)
        return machine

    return run


def _steady_hull_workload(n: int, n_pe: int):
    system = divergent_system(n, 2, 1, seed=1)

    def run():
        machine = mesh_machine(n_pe)
        steady_hull(machine, system)
        return machine

    return run


def _sort_object_workload(n: int, n_pe: int):
    rng = np.random.default_rng(5)
    keys = np.empty(n, dtype=object)
    keys[:] = rng.uniform(-1.0, 1.0, n).tolist()
    payload = np.arange(n, dtype=np.int64)

    def run():
        machine = mesh_machine(n_pe)
        bitonic_sort(machine, keys, [payload])
        return machine

    return run


def _sort_tuple_workload(n: int, n_pe: int):
    rng = np.random.default_rng(7)
    keys = np.empty(n, dtype=object)
    keys[:] = list(zip(rng.integers(0, 64, n).tolist(),
                       rng.uniform(size=n).tolist()))
    payload = np.arange(n, dtype=np.int64)

    def run():
        machine = mesh_machine(n_pe)
        bitonic_sort(machine, keys, [payload])
        return machine

    return run


def _merge_record_workload(n: int, n_pe: int):
    rng = np.random.default_rng(9)

    def sorted_records(m: int) -> list:
        ranks = rng.integers(0, 1 << 20, size=m)
        coords = rng.uniform(size=m)
        return sorted(zip(ranks.tolist(), coords.tolist()))

    keys = np.empty(n, dtype=object)
    keys[:n // 2] = sorted_records(n // 2)
    keys[n // 2:] = sorted_records(n // 2)
    # Object payload column: the geometry layers merge python objects
    # (curves, event records) alongside their keys, so the payload cost
    # is part of what the executors differ on.
    payload = np.empty(n, dtype=object)
    payload[:] = rng.uniform(size=n).tolist()

    def run():
        machine = mesh_machine(n_pe)
        bitonic_merge(machine, keys, [payload])
        return machine

    return run


_BUILDERS = {
    "envelope": _envelope_workload,
    "hull_membership": _hull_workload,
    "steady_hull": _steady_hull_workload,
    "sort_object_keys": _sort_object_workload,
    "sort_tuple_keys": _sort_tuple_workload,
    "merge_record_keys": _merge_record_workload,
}


def _measure(run, repeats: int):
    """Min/mean wall seconds over ``repeats`` runs, plus the last machine."""
    seconds = []
    machine = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        machine = run()
        seconds.append(time.perf_counter() - t0)
    return min(seconds), sum(seconds) / len(seconds), machine


def _measure_executors(run, repeats: int, executors):
    """Time ``run`` under each executor; assert simulated-time parity."""
    out = {}
    for name in executors:
        prev = set_compiled_plans(name)
        try:
            out[name] = _measure(run, repeats)
        finally:
            set_compiled_plans(prev)
    sims = {name: measured[2].metrics.time for name, measured in out.items()}
    anchor = sims[executors[0]]
    assert all(sim == anchor for sim in sims.values()), (
        f"simulated time moved with the executor: {sims!r}"
    )
    return out


def run_campaign_scaling(mode: str = "full") -> dict:
    """Time the oracle campaign at each jobs value; results are identical."""
    params = CAMPAIGN_PARAMS[mode]
    section: dict = {
        "params": params,
        "host_cores": os.cpu_count(),
        "jobs": {},
    }
    base = None
    for jobs in CAMPAIGN_JOBS:
        t0 = time.perf_counter()
        result = campaign(jobs=jobs, **params)
        dt = time.perf_counter() - t0
        if base is None:
            base = dt
        section["jobs"][str(jobs)] = {
            "seconds": round(dt, 4),
            "speedup_vs_serial": round(base / dt, 2) if dt > 0 else math.inf,
            "ok": result.ok,
        }
    return section


def run_traced_pass(mode: str, expected_sim: dict) -> list[dict]:
    """One extra traced run per workload, after all timing is done.

    Returns the span forest (one ``workload`` span per workload).  The
    traced run's simulated time is asserted equal to the timed runs' —
    tracing reads the accumulators, it never charges them.
    """
    forests: list[dict] = []
    for name, params in PARAMS[mode].items():
        run = _BUILDERS[name](**params)
        tracer = Tracer(name)
        with tracer:
            with tracer.span(name, category="workload", **params):
                machine = run()
        assert machine.metrics.time == expected_sim[name], (
            f"{name}: traced sim time {machine.metrics.time!r} differs "
            f"from untraced {expected_sim[name]!r}"
        )
        forests.extend(tracer.to_dicts())
    return forests


def append_history(results: dict,
                   path: pathlib.Path = HISTORY_PATH) -> pathlib.Path:
    """Append one compact JSON line for this run to the history log.

    The line keeps the run-level provenance manifest (git revision, host,
    package versions) and per-workload numbers, and drops the per-entry
    provenance duplicates and wall-phase breakdowns — history answers
    "when did this number move", the full JSON answers "why".
    """
    line = {
        "mode": results["mode"],
        "repeats": results["repeats"],
        "provenance": results["provenance"],
        "workloads": {
            name: {k: v for k, v in entry.items()
                   if k not in ("provenance", "wall_phases")}
            for name, entry in results["workloads"].items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def run_wallclock(mode: str = "full", repeats: int | None = None,
                  json_path: pathlib.Path | None = JSON_PATH,
                  campaign_scaling: bool = True,
                  trace_path=None,
                  history_path: pathlib.Path | None = None) -> dict:
    """Measure every workload of ``mode``; return (and write) the results.

    Each workload entry records measured seconds (min and mean of
    ``repeats``) under the tier's executors (``EXECUTOR_TIERS``), the seed
    baseline and speedup where one exists, the executor-vs-executor
    speedups, the *simulated* time the run charged (asserted identical
    across all measured executors — the number that must never move),
    per-phase wall-clock, and the run's provenance manifest (git revision,
    seed inputs, host info, package versions).

    ``trace_path`` additionally runs one traced pass per workload (after
    the timed runs, so tracing overhead never contaminates the numbers)
    and writes a Chrome ``trace_event`` JSON.  ``history_path`` appends
    one line per run (see :func:`append_history`); the CLI passes it, the
    pytest entry points never do.
    """
    executors = EXECUTOR_TIERS[mode]
    if repeats is None:
        repeats = DEFAULT_REPEATS[mode]
    provenance = provenance_manifest(config={
        "harness": "bench_wallclock", "mode": mode, "repeats": repeats,
        "executors": list(executors),
    })
    results: dict = {"mode": mode, "repeats": repeats,
                     "executors": list(executors),
                     "provenance": provenance, "workloads": {}}
    for name, params in PARAMS[mode].items():
        run = _BUILDERS[name](**params)
        if mode == "large":
            run()  # untimed warm-up: compiles the shared movement plan
        measured = _measure_executors(run, repeats, executors)
        best, mean, machine = measured["vectorized"]
        comp_best, comp_mean, _ = measured["compiled"]
        entry = {
            "params": params,
            "seconds": round(best, 4),
            "mean_seconds": round(mean, 4),
            "compiled_seconds": round(comp_best, 4),
            "compiled_mean_seconds": round(comp_mean, 4),
            "vectorized_speedup":
                round(comp_best / best, 2) if best > 0 else math.inf,
            "sim_time": machine.metrics.time,
            "provenance": provenance,
        }
        if "reference" in measured:
            off_best, off_mean, _ = measured["reference"]
            entry["plan_off_seconds"] = round(off_best, 4)
            entry["plan_off_mean_seconds"] = round(off_mean, 4)
            entry["plan_speedup"] = (
                round(off_best / comp_best, 2) if comp_best > 0 else math.inf)
        seed = SEED_SECONDS.get(mode, {}).get(name)
        if seed is not None:
            entry["seed_seconds"] = seed
            entry["speedup"] = round(seed / best, 2) if best > 0 else math.inf
        wall_phases = getattr(machine.metrics, "wall_phases", None)
        if wall_phases:
            entry["wall_phases"] = {
                k: round(v, 4) for k, v in sorted(wall_phases.items())
            }
        results["workloads"][name] = entry
    if campaign_scaling:
        results["campaign_scaling"] = run_campaign_scaling(mode)
    if trace_path is not None:
        spans = run_traced_pass(mode, {
            name: entry["sim_time"]
            for name, entry in results["workloads"].items()
        })
        totals = {
            s["name"]: (s.get("sim") or {}).get("time") for s in spans
        }
        write_chrome_trace(trace_path, spans, provenance=provenance,
                           totals=totals, counters=registry_snapshot())
        results["trace_path"] = str(trace_path)
    if json_path is not None:
        json_path.write_text(json.dumps(results, indent=2) + "\n")
    if history_path is not None:
        append_history(results, history_path)
    return results


def _print_results(results: dict) -> None:
    print(f"\nwall-clock sweep ({results['mode']} tier, "
          f"min of {results['repeats']}):")
    for name, entry in results["workloads"].items():
        line = (f"  {name:18s} {entry['seconds']:8.4f}s   "
                f"compiled {entry['compiled_seconds']:.4f}s "
                f"({entry['vectorized_speedup']:.2f}x)")
        if "plan_off_seconds" in entry:
            line += (f"   interpreted {entry['plan_off_seconds']:.4f}s "
                     f"({entry['plan_speedup']:.2f}x)")
        if "seed_seconds" in entry:
            line += (f"   seed {entry['seed_seconds']:.4f}s "
                     f"({entry['speedup']:.2f}x)")
        print(line + f"   sim_time {entry['sim_time']:g}")
    scaling = results.get("campaign_scaling")
    if scaling:
        print(f"  campaign scaling (host cores: {scaling['host_cores']}):")
        for jobs, entry in scaling["jobs"].items():
            print(f"    jobs={jobs:3s} {entry['seconds']:8.4f}s   "
                  f"{entry['speedup_vs_serial']:.2f}x vs serial")


def test_wallclock_report(tmp_path):
    # Report to a pytest temp dir: the repo-root BENCH_wallclock.json is
    # reserved for explicit CLI runs (it holds the committed large-tier
    # acceptance numbers, which a pytest side effect must never clobber).
    results = run_wallclock("full", json_path=tmp_path / "BENCH_wallclock.json")
    _print_results(results)
    for name, entry in results["workloads"].items():
        assert entry["seconds"] < 10.0, f"{name} runaway: {entry}"
        # Neither fast executor may be a pessimisation vs the interpreted
        # reference (noise-aware: see within_noise).
        assert within_noise(entry["compiled_seconds"],
                            entry["plan_off_seconds"]), (
            f"{name}: compiled {entry['compiled_seconds']:.4f}s slower than "
            f"interpreted {entry['plan_off_seconds']:.4f}s"
        )
        assert within_noise(entry["seconds"], entry["plan_off_seconds"]), (
            f"{name}: vectorized {entry['seconds']:.4f}s slower than "
            f"interpreted {entry['plan_off_seconds']:.4f}s"
        )
    # The acceptance workload: host-side batching + caching must keep the
    # envelope sweep well clear of the seed's wall-clock (3x required;
    # assert with a margin for machine noise).
    assert results["workloads"]["envelope"]["speedup"] >= 2.5


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tier", choices=sorted(PARAMS), default=None,
                    help="workload tier (default: full; large = ops-level "
                         "sort/merge up to 2^20 PEs, no interpreted runs)")
    ap.add_argument("--smoke", action="store_true",
                    help="alias for --tier smoke")

    def _positive(value):
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("--repeats must be >= 1")
        return n

    ap.add_argument("--repeats", type=_positive, default=None,
                    help="timed runs per executor (default: 3, large: 1)")
    ap.add_argument("--no-json", action="store_true",
                    help="measure and print without rewriting the JSON")
    ap.add_argument("--no-campaign", action="store_true",
                    help="skip the campaign jobs-scaling section")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append this run to benchmarks/history/")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="also run one traced pass per workload (after the "
                         "timed runs) and write a Chrome trace_event JSON")
    args = ap.parse_args()
    if args.tier and args.smoke and args.tier != "smoke":
        ap.error("--smoke contradicts --tier " + args.tier)
    tier = args.tier or ("smoke" if args.smoke else "full")
    _print_results(run_wallclock(
        tier, repeats=args.repeats,
        json_path=None if args.no_json else JSON_PATH,
        campaign_scaling=not args.no_campaign,
        trace_path=args.trace,
        history_path=None if args.no_history else HISTORY_PATH,
    ))
