"""Ablation benches — why the paper's design choices matter.

* Indexing ablation: the Table 1 mesh sort, re-costed under each Figure 2
  indexing scheme — shuffled-row-major must be cheapest, with the lowest
  growth exponent (the Thompson–Kung argument).
* Recursion ablation: Theorem 3.2's recursive halving vs folding functions
  in one at a time — the insertion variant's mesh time must grow about
  linearly faster, and the penalty must widen with n.

Generation in :mod:`repro.report.ablations`.
"""

import pytest

from repro.report import ablations

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("ablations")


def test_indexing_ablation(benchmark):
    rows = benchmark.pedantic(ablations.sort_cost_by_scheme,
                              rounds=1, iterations=1)
    report(
        "ablations",
        "Ablation: mesh bitonic sort cost by indexing scheme",
        ["scheme", "time (n=4096)", "fit"],
        rows,
    )
    by = {r[0]: float(r[1]) for r in rows}
    assert by["shuffled-row-major"] == min(by.values())
    fits = {r[0]: float(r[2].split("^")[1].split(" ")[0]) for r in rows}
    assert fits["shuffled-row-major"] <= min(fits.values()) + 1e-9


def test_recursion_ablation(benchmark):
    rows = benchmark.pedantic(ablations.recursion_rows,
                              rounds=1, iterations=1)
    report(
        "ablations",
        "Ablation: recursive halving vs sequential insertion (mesh)",
        ["n", "recursive (Thm 3.2)", "insertion", "penalty"],
        rows,
    )
    penalties = [float(r[3][:-1]) for r in rows if r[0] != "fit"]
    assert all(p > 1.0 for p in penalties)
    assert penalties[-1] > 2 * penalties[0], "the gap must widen"
    fit_row = rows[-1]
    rec_expo = float(fit_row[1].split("^")[1].split(" ")[0])
    ins_expo = float(fit_row[2].split("^")[1].split(" ")[0])
    assert ins_expo > rec_expo + 0.5
