"""Figures 1 and 3 — the machine models themselves.

Quantitative content: diameters (``2(sqrt n - 1)`` mesh, ``log2 n``
hypercube), link counts, and the per-rank-bit exchange distances the whole
cost model rests on.  Generation in :mod:`repro.report.figures`.
"""

import numpy as np
import pytest

from repro.machines.indexing import gray_code
from repro.report import figures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("fig1_fig3")


def test_fig1_fig3_report(benchmark):
    rows = benchmark.pedantic(figures.topology_rows, rounds=1, iterations=1)
    report(
        "fig1_fig3",
        "Figures 1 & 3: machine structure",
        ["n", "mesh diameter", "2(sqrt n - 1)", "mesh links",
         "cube diameter", "log2 n", "cube links"],
        rows,
    )
    for row in rows:
        assert row[1] == row[2]          # mesh diameter formula
        assert int(row[4]) == row[5]     # hypercube diameter formula
    profile = figures.exchange_profile_rows()
    report(
        "fig1_fig3",
        "Per-rank-bit exchange distances (n = 1024)",
        ["rank bit", "mesh hops (2^(b//2))", "hypercube hops"],
        profile,
    )
    assert [r[1] for r in profile] == \
        ["1", "1", "2", "2", "4", "4", "8", "8", "16", "16"]
    assert all(r[2] == "1" for r in profile)


def test_gray_code_neighbours(benchmark):
    def check():
        g = gray_code(np.arange(4096))
        diffs = g[:-1] ^ g[1:]
        return bool(np.all(diffs & (diffs - 1) == 0))
    assert benchmark(check)
