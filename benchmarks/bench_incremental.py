"""Incremental-update engine vs full recompute — the amortized story.

The incremental engine (``repro.incremental``) exists for one reason: a
mutation against a live family should cost amortized per-update work,
not a full envelope recompute.  This harness measures that claim.  Per
family size ``n`` it builds a seeded base family, replays a seeded
script of insert/delete/retarget updates against the maintained
envelope, and records:

* **amortized update cost** — wall-clock for the whole script divided
  by the number of updates;
* **full recompute cost** — a cold ``envelope_serial`` run (fresh
  family, cold crossing cache) over the surviving curves, the price a
  recompute-per-mutation design would pay every time;
* **speedup** — recompute cost over amortized update cost, and the
  **crossover** family size where the incremental engine starts
  winning;
* **parity** — the maintained envelope must be *byte-identical* to the
  cold recompute at the end of the script, asserted in the same run
  (``repro.incremental.envelope_bytes``); a speedup with broken parity
  is not a result;
* **per-update latency distribution** — every update is observed into a
  per-size :class:`repro.obs.hist.Log2Histogram`; p50/p99 per size come
  from the shared histogram implementation (parity-checked each run
  against the sorted samples, within one bucket's resolution), and the
  per-size histograms are bucket-wise merged into one run-level
  histogram — the merge is exact and grouping-invariant, asserted by
  merging in both orders.

CLI runs write ``BENCH_incremental.json`` at the repo root and append
one JSON line (provenance included) to
``benchmarks/history/incremental.jsonl``; the pytest entry point runs
the smoke tier against a temp dir and never appends.  The committed
full-tier run carries the acceptance floor: >=10x amortized speedup at
the largest benched size, parity true at every size.

Run directly (``python benchmarks/bench_incremental.py [--tier smoke]``)
or via pytest (``test_incremental_report``).
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np

from repro.core.envelope import envelope_serial
from repro.core.family import PolynomialFamily
from repro.incremental import IncrementalEnvelope, envelope_bytes
from repro.obs.hist import Log2Histogram
from repro.trace import provenance_manifest
from repro.verify.generators import make_curves

JSON_PATH = (pathlib.Path(__file__).resolve().parents[1]
             / "BENCH_incremental.json")
HISTORY_PATH = (pathlib.Path(__file__).resolve().parent
                / "history" / "incremental.jsonl")

#: Family sizes per tier.  Small sizes bracket the crossover (full
#: recompute wins only while the whole family is a handful of curves);
#: the top size carries the >=10x acceptance floor.
PARAMS = {
    "smoke": {"sizes": (8, 32, 128), "updates": 12, "recompute_reps": 3},
    "full": {"sizes": (8, 16, 32, 64, 256, 1024, 4096), "updates": 32,
             "recompute_reps": 3},
}

_ACTIONS = ("insert", "delete", "retarget")

#: Shared bucket range for every per-update latency histogram: base
#: resolution ~60ns (one bucket per power of two) saturating at 2s.
#: Identical declared ranges are what make the per-size histograms
#: exactly mergeable into the run-level one.
UPDATE_HIST_LO = 2.0 ** -24
UPDATE_HIST_HI = 2.0


def hist_percentiles(hist: Log2Histogram, samples: list[float]) -> dict:
    """p50/p99 from the shared histogram + the one-run parity check.

    Each quantile must be exactly the upper edge of the bucket holding
    the same-rank sorted sample — within one bucket's resolution (a
    factor of two) of the exact sorted-sample percentile.
    """
    assert hist.count == len(samples)
    ordered = sorted(samples)
    out = {}
    for q in (0.50, 0.99):
        bound = hist.quantile(q)
        rank = max(1, math.ceil(q * len(ordered)))
        sample = ordered[rank - 1]
        assert bound == hist.upper_bound(hist.bucket_of(sample)), (
            f"p{q * 100:g}: histogram bound {bound} disagrees with the "
            f"bucket of the rank-{rank} sample {sample}")
        out[f"p{q * 100:g}"] = bound
    return out


def make_updates(seed: int, n0: int, count: int, s: int = 2) -> list[dict]:
    """A seeded script of ``count`` updates for a family starting at
    ``n0`` curves: a deterministic mix of insert/delete/retarget with
    position-addressed targets (replayable against any engine)."""
    rng = np.random.default_rng(seed)
    updates = []
    live = n0
    fresh = 0
    for _ in range(count):
        action = _ACTIONS[int(rng.integers(0, 3))] if live > 1 else "insert"
        if action == "insert":
            fresh += 1
            curve = make_curves("random", seed * 10_000 + fresh, n=1, s=s)[0]
            updates.append({"action": "insert",
                            "coeffs": [float(c) for c in curve._cl]})
            live += 1
        elif action == "delete":
            updates.append({"action": "delete",
                            "pos": int(rng.integers(0, live))})
            live -= 1
        else:
            fresh += 1
            curve = make_curves("random", seed * 10_000 + fresh, n=1, s=s)[0]
            updates.append({"action": "retarget",
                            "pos": int(rng.integers(0, live)),
                            "coeffs": [float(c) for c in curve._cl]})
    return updates


def _apply(engine: IncrementalEnvelope, update: dict) -> None:
    if update["action"] == "insert":
        engine.insert(update["coeffs"])
        return
    ids = engine.ids()
    if update["action"] == "delete":
        engine.delete(ids[update["pos"]])
    else:
        engine.retarget(ids[update["pos"]], update["coeffs"])


def bench_size(n: int, updates: int, recompute_reps: int,
               seed: int = 0, s: int = 2) -> dict:
    """One family size: replay the update script, then price the
    alternative (a cold full recompute) and check byte parity."""
    base = make_curves("random", seed + n, n=n, s=s)
    degree = max([s] + [c.degree for c in base])
    engine = IncrementalEnvelope(s=degree, op="min")
    engine.reset(base)
    script = make_updates(seed + n, n, updates, s=s)

    hist = Log2Histogram(f"update_latency_s[n={n}]", lo=UPDATE_HIST_LO,
                         hi=UPDATE_HIST_HI, unit="s")
    samples: list[float] = []
    t0 = time.perf_counter()
    for update in script:
        u0 = time.perf_counter()
        _apply(engine, update)
        dt = time.perf_counter() - u0
        hist.observe(dt)
        samples.append(dt)
    update_wall = time.perf_counter() - t0
    amortized = update_wall / len(script)
    pcts = hist_percentiles(hist, samples)

    # The alternative: a recompute-per-mutation design pays this on
    # every update.  Fresh family each rep = genuinely cold crossing
    # cache, exactly what that design would see.
    survivors = engine.reference_curves()
    recompute_wall = []
    reference = None
    for _ in range(recompute_reps):
        family = PolynomialFamily(degree)
        t0 = time.perf_counter()
        reference = envelope_serial(survivors, family, op=engine.op)
        recompute_wall.append(time.perf_counter() - t0)
    recompute = min(recompute_wall)

    parity = engine.canonical_bytes() == envelope_bytes(reference)
    return {
        "n": n,
        "updates": len(script),
        "final_n": len(engine),
        "pieces": len(engine.envelope.pieces),
        "amortized_update_s": round(amortized, 8),
        "update_p50_s": pcts["p50"],
        "update_p99_s": pcts["p99"],
        "update_hist": hist.to_dict(),
        "full_recompute_s": round(recompute, 8),
        "speedup": round(recompute / amortized, 2),
        "parity": parity,
        "engine_stats": dict(engine.stats),
    }


def _merged_update_hist(rows: list[dict]) -> dict:
    """Merge the per-size histograms into one run-level distribution.

    The merge is exact bucket-wise integer addition over identical
    declared ranges; grouping-invariance is asserted by merging the same
    snapshots in both orders and demanding identical bucket state.
    """
    hists = [Log2Histogram.from_dict(r["update_hist"]) for r in rows]
    merged = Log2Histogram("update_latency_s", lo=UPDATE_HIST_LO,
                           hi=UPDATE_HIST_HI, unit="s")
    for h in hists:
        merged.merge(h)
    backwards = Log2Histogram("update_latency_s", lo=UPDATE_HIST_LO,
                              hi=UPDATE_HIST_HI, unit="s")
    for h in reversed(hists):
        backwards.merge(h)
    assert (merged.buckets, merged.count, merged.vmin, merged.vmax) == \
        (backwards.buckets, backwards.count, backwards.vmin,
         backwards.vmax), "histogram merge is not grouping-invariant"
    assert merged.count == sum(r["updates"] for r in rows)
    return merged.to_dict()


def run_incremental_bench(mode: str = "full",
                          json_path: pathlib.Path | None = JSON_PATH,
                          history_path: pathlib.Path | None = None) -> dict:
    params = PARAMS[mode]
    provenance = provenance_manifest(config={
        "harness": "bench_incremental", "mode": mode,
        "sizes": list(params["sizes"]), "updates": params["updates"],
    })
    rows = [bench_size(n, params["updates"], params["recompute_reps"])
            for n in params["sizes"]]
    crossover = next((r["n"] for r in rows if r["speedup"] >= 1.0), None)
    results = {
        "mode": mode,
        "provenance": provenance,
        "rows": rows,
        "crossover_n": crossover,
        "max_speedup": max(r["speedup"] for r in rows),
        "top_size_speedup": rows[-1]["speedup"],
        "all_parity": all(r["parity"] for r in rows),
        "update_hist": _merged_update_hist(rows),
    }
    if json_path is not None:
        json_path.write_text(json.dumps(results, indent=2) + "\n")
    if history_path is not None:
        append_history(results, history_path)
    return results


def append_history(results: dict,
                   path: pathlib.Path = HISTORY_PATH) -> pathlib.Path:
    """Append one compact JSON line for this run to the history log.

    Per-size amortized/recompute seconds and histogram-derived p50/p99
    ride along (keyed by ``n``) so ``python -m repro.report trend`` can
    flag wall-clock regressions between commits at every benched size;
    the run-level merged bucket array rides along for offline re-merge
    and ``--slo`` gating (the trend analyser skips histogram subtrees
    when diffing scalars).
    """
    line = {
        "mode": results["mode"],
        "crossover_n": results["crossover_n"],
        "top_size_speedup": results["top_size_speedup"],
        "all_parity": results["all_parity"],
        "update_hist": results["update_hist"],
        "sizes": {
            str(r["n"]): {
                "amortized_update_seconds": r["amortized_update_s"],
                "update_p50_seconds": r["update_p50_s"],
                "update_p99_seconds": r["update_p99_s"],
                "full_recompute_seconds": r["full_recompute_s"],
                "speedup": r["speedup"],
            }
            for r in results["rows"]
        },
        "provenance": results["provenance"],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def _print_results(results: dict) -> None:
    print(f"\nincremental engine vs full recompute "
          f"({results['mode']} tier):")
    print(f"  {'n':>6} {'updates':>8} {'amortized':>12} {'p50':>10} "
          f"{'p99':>10} {'recompute':>12} {'speedup':>9} {'parity':>7}")
    for r in results["rows"]:
        print(f"  {r['n']:>6} {r['updates']:>8} "
              f"{r['amortized_update_s'] * 1e6:>10.1f}us "
              f"{r['update_p50_s'] * 1e6:>8.1f}us "
              f"{r['update_p99_s'] * 1e6:>8.1f}us "
              f"{r['full_recompute_s'] * 1e3:>10.2f}ms "
              f"{r['speedup']:>8.1f}x {str(r['parity']):>7}")
    cx = results["crossover_n"]
    print(f"  crossover: incremental wins from n={cx} "
          f"(speedup at top size: {results['top_size_speedup']:.0f}x, "
          f"parity everywhere: {results['all_parity']})")


def test_incremental_report(tmp_path):
    # Report to a pytest temp dir: the repo-root BENCH_incremental.json
    # holds the committed full-tier acceptance numbers, which a pytest
    # side effect must never clobber.
    results = run_incremental_bench(
        "smoke", json_path=tmp_path / "BENCH_incremental.json")
    _print_results(results)
    assert results["all_parity"], "maintained envelope diverged from recompute"
    assert results["top_size_speedup"] >= 2.0
    # The run-level histogram must cover every update of every size, and
    # the per-size percentiles must be ordered.
    total = sum(r["updates"] for r in results["rows"])
    assert results["update_hist"]["count"] == total
    for r in results["rows"]:
        assert r["update_p50_s"] <= r["update_p99_s"]
    assert (tmp_path / "BENCH_incremental.json").exists()


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tier", choices=sorted(PARAMS), default="full")
    ap.add_argument("--no-json", action="store_true",
                    help="measure and print without rewriting the JSON")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append this run to benchmarks/history/")
    args = ap.parse_args()
    _print_results(run_incremental_bench(
        args.tier,
        json_path=None if args.no_json else JSON_PATH,
        history_path=None if args.no_history else HISTORY_PATH,
    ))
