"""Table 4 — the static algorithms the steady-state solutions adapt.

Generation in :mod:`repro.report.table4`.
"""

import pytest

from repro.geometry import (
    closest_pair_parallel,
    convex_hull_parallel,
    enclosing_rectangle_parallel,
)
from repro.machines import hypercube_machine
from repro.report import table4

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("table4")


def test_table4_report(benchmark):
    rows = benchmark.pedantic(table4.rows, rounds=1, iterations=1)
    report(
        "table4",
        f"Table 4 reproduction (static algorithms, n = {table4.SIZES})",
        ["algorithm", "model", f"t(n={table4.SIZES[-1]})", "fit"],
        rows,
    )
    by = {(r[0], r[1]): r[3] for r in rows}
    for key in (("closest pair", "mesh"), ("convex hull", "mesh")):
        expo = float(by[key].split("^")[1].split(" ")[0])
        assert 0.3 < expo < 0.8, f"{key}: {expo}"
    serial = float(
        by[("antipodal vertices", "serial")].split("^")[1].split(" ")[0]
    )
    assert 1.0 < serial < 1.5  # n log n sits just above linear


@pytest.mark.parametrize("algo,fn,pts", [
    ("closest-pair", closest_pair_parallel, table4.rand_points),
    ("convex-hull", convex_hull_parallel, table4.rand_points),
    ("rectangle", enclosing_rectangle_parallel, table4.circle),
], ids=["closest-pair", "convex-hull", "rectangle"])
def test_table4_algorithms(benchmark, algo, fn, pts):
    points = pts(128)
    benchmark(lambda: fn(hypercube_machine(128), points))
