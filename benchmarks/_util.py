"""Shared reporting helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures as an ASCII table:
printed to stdout and appended to ``benchmarks/results/<bench>.txt`` so the
numbers survive pytest's output capturing and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys

from repro.analysis import render_table
from repro.core.family import global_cache_stats
from repro.machines.metrics import global_wall_phases

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def verbose() -> bool:
    """True when the run asked for verbose output (pytest/CLI ``-v``)."""
    return any(a in ("-v", "-vv", "--verbose") for a in sys.argv)


def report(bench_name: str, title: str, headers, rows) -> None:
    """Print a table and append it to the bench's results file.

    Under ``--verbose`` a host-side diagnostics block (crossing-cache hit
    rate, per-phase wall-clock) follows each table on stdout.  Diagnostics
    never enter the results files: those record only simulated time and
    must stay bit-identical across host-side optimisations.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    lines: list[str] = []
    render_table(title, headers, rows, out=lines.append)
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_DIR / f"{bench_name}.txt", "a") as fh:
        fh.write(text + "\n")
    if verbose():
        diagnostics(bench_name)


def diagnostics(label: str = "") -> None:
    """Print process-wide host-side counters: cache hit rate, wall phases."""
    stats = global_cache_stats()
    prefix = f"[{label}] " if label else ""
    print(f"{prefix}crossing cache: {stats['hits']} hits / "
          f"{stats['misses']} misses (hit rate {stats['hit_rate']:.1%})")
    phases = global_wall_phases()
    if phases:
        ranked = sorted(phases.items(), key=lambda kv: -kv[1])
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in ranked)
        print(f"{prefix}wall-clock by phase: {parts}")


def fresh(bench_name: str) -> None:
    """Truncate the bench's results file at the start of a module run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{bench_name}.txt").write_text("")
