"""Shared reporting helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures as an ASCII table:
printed to stdout and appended to ``benchmarks/results/<bench>.txt`` so the
numbers survive pytest's output capturing and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
import sys

from repro.analysis import render_table
from repro.core.family import global_cache_stats
from repro.machines.metrics import global_wall_phases
from repro.ops.plans import plan_cache_stats
from repro.parallel import parallel_map

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def verbose() -> bool:
    """True when the run asked for verbose output (pytest/CLI ``-v``)."""
    return any(a in ("-v", "-vv", "--verbose") for a in sys.argv)


def bench_jobs() -> int:
    """Worker processes for row sweeps: the ``REPRO_JOBS`` env var.

    Defaults to serial (1).  ``REPRO_JOBS=0`` means one worker per host
    core.  Parallel sweeps produce byte-identical tables — rows are merged
    in submission order (``repro.parallel``) and record only simulated
    time — so this is purely a wall-clock lever for big sweeps.
    """
    return int(os.environ.get("REPRO_JOBS", "1"))


def parallel_rows(fn, items):
    """Map a module-level row builder over ``items``, honouring REPRO_JOBS.

    Row order follows item order regardless of jobs, so results files stay
    byte-identical.  Note: with jobs > 1 the per-process cache/wall-clock
    diagnostics of the workers are not folded back into this process —
    simulated-time rows are unaffected.
    """
    return parallel_map(fn, items, jobs=bench_jobs())


def report(bench_name: str, title: str, headers, rows) -> None:
    """Print a table and append it to the bench's results file.

    Under ``--verbose`` a host-side diagnostics block (crossing-cache hit
    rate, per-phase wall-clock) follows each table on stdout.  Diagnostics
    never enter the results files: those record only simulated time and
    must stay bit-identical across host-side optimisations.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    lines: list[str] = []
    render_table(title, headers, rows, out=lines.append)
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_DIR / f"{bench_name}.txt", "a") as fh:
        fh.write(text + "\n")
    if verbose():
        diagnostics(bench_name)


def diagnostics(label: str = "") -> None:
    """Print process-wide host-side counters: cache hit rates, wall phases."""
    stats = global_cache_stats()
    prefix = f"[{label}] " if label else ""
    print(f"{prefix}crossing cache: {stats['hits']} hits / "
          f"{stats['misses']} misses (hit rate {stats['hit_rate']:.1%})")
    plans = plan_cache_stats()
    print(f"{prefix}movement plans: {plans['hits']} hits / "
          f"{plans['misses']} misses (hit rate {plans['hit_rate']:.1%}, "
          f"compile {plans['compile_seconds']:.3f}s)")
    phases = global_wall_phases()
    if phases:
        ranked = sorted(phases.items(), key=lambda kv: -kv[1])
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in ranked)
        print(f"{prefix}wall-clock by phase: {parts}")


def fresh(bench_name: str) -> None:
    """Truncate the bench's results file at the start of a module run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{bench_name}.txt").write_text("")
