"""Shared reporting helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures as an ASCII table:
printed to stdout and appended to ``benchmarks/results/<bench>.txt`` so the
numbers survive pytest's output capturing and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

from repro.analysis import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(bench_name: str, title: str, headers, rows) -> None:
    """Print a table and append it to the bench's results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines: list[str] = []
    render_table(title, headers, rows, out=lines.append)
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_DIR / f"{bench_name}.txt", "a") as fh:
        fh.write(text + "\n")


def fresh(bench_name: str) -> None:
    """Truncate the bench's results file at the start of a module run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{bench_name}.txt").write_text("")
