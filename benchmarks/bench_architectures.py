"""Section 1 closing remark — CCC and shuffle-exchange implementations.

The paper conjectures its algorithms transfer to cube-connected cycles and
shuffle-exchange networks.  Everything in :mod:`repro.ops` is a normal
algorithm, so both networks emulate the hypercube with constant slowdown;
this bench measures envelope construction on all four distributed networks
and asserts the log-class trio stays within constant factors while the
mesh remains the sqrt-class outlier.  Generation in
:mod:`repro.report.architectures`.
"""

import pytest

from repro.report import architectures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("architectures")


def test_architectures_report(benchmark):
    rows = benchmark.pedantic(architectures.rows, rounds=1, iterations=1)
    report(
        "architectures",
        f"Envelope construction across networks (n = {architectures.SIZES})",
        ["network", f"time (n={architectures.SIZES[-1]})", "fit", "slowdown"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # The log-class machines agree in shape...
    for name in ("hypercube", "cube-connected cycles", "shuffle-exchange"):
        p = float(by[name][2].split("^")[1])
        assert p < 1.8, f"{name}: log exponent {p}"
    # ...and the emulations stay within their constant factors of the cube.
    ccc = float(by["cube-connected cycles"][3].split("x")[0])
    se = float(by["shuffle-exchange"][3].split("x")[0])
    assert 1.0 < ccc < 3.5
    assert 1.0 < se < 2.5
    assert se < ccc  # factor 2 vs factor 3 emulation
    # The mesh at the largest size costs more than any log-class network...
    # for large enough n; at n=4096 it already exceeds the bare hypercube.
    assert float(by["mesh"][1]) > float(by["hypercube"][1])
