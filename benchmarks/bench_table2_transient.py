"""Table 2 — transient behaviour problems (Section 4).

Paper: all six problems run in ``Theta(lambda^{1/2})`` mesh time (for
bounded k, essentially ``sqrt(n)``) and ``Theta(log^2 n)`` hypercube time
on lambda-bound many PEs.  Generation in :mod:`repro.report.table2`.
"""

import pytest

from repro.machines import hypercube_machine, mesh_machine
from repro.report import table2

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("table2")


def test_table2_report(benchmark):
    rows = benchmark.pedantic(table2.rows, rounds=1, iterations=1)
    report(
        "table2",
        "Table 2 reproduction (transient problems; per-problem n sweeps)",
        ["problem", "PEs (lambda bound, max n)", "mesh t", "mesh fit",
         "cube t", "cube fit"],
        rows,
    )
    for row in rows:
        expo = float(row[3].split("^")[1].split(" ")[0])
        assert 0.3 < expo < 0.85, f"{row[0]}: mesh exponent {expo}"
        plog = float(row[5].split("^")[1])
        assert plog < 3.2, f"{row[0]}: hypercube growth log^{plog}"
    # Mesh strictly slower than the hypercube at the largest size, per row.
    for problem in table2.PROBLEMS:
        assert table2.measure(problem, mesh_machine)[-1] > \
            table2.measure(problem, hypercube_machine)[-1]


@pytest.mark.parametrize("problem", list(table2.PROBLEMS))
def test_table2_problem_mesh(benchmark, problem):
    make_system, run, _ = table2.PROBLEMS[problem]
    system = make_system(table2.SIZES[problem][0])
    benchmark(lambda: run(mesh_machine(1024), system))
