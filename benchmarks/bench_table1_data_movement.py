"""Table 1 — running times of the fundamental data movement operations.

Paper's claims (n-PE machines): semigroup / broadcast / prefix / merge are
``Theta(sqrt n)`` mesh and ``Theta(log n)`` hypercube; sorting and grouping
are ``Theta(sqrt n)`` mesh and ``Theta(log^2 n)`` hypercube, expected
``Theta(log n)`` with randomized sorting.  Generation lives in
:mod:`repro.report.table1`; this bench records the table and asserts the
fitted growth classes.
"""

import numpy as np
import pytest

from repro.machines import hypercube_machine, mesh_machine
from repro.report import table1

from _util import bench_jobs, fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("table1")


def test_table1_report(benchmark):
    # REPRO_JOBS>1 fans the per-operation sweeps out over processes; rows
    # are merged in operation order, so the table is byte-identical.
    rows = benchmark.pedantic(
        lambda: table1.rows(jobs=bench_jobs()), rounds=1, iterations=1
    )
    report(
        "table1",
        f"Table 1 reproduction (sizes {table1.SIZES[0]}..{table1.SIZES[-1]})",
        ["operation", f"mesh t(n={table1.SIZES[-1]})", "mesh fit",
         f"cube t(n={table1.SIZES[-1]})", "cube fit",
         "cube expected (randomized)"],
        rows,
    )
    fits = {r[0]: r for r in rows}
    # Mesh: every operation Theta(sqrt n) -> exponent ~0.5.
    for op in table1.OPS:
        expo = float(fits[op][2].split("^")[1].split(" ")[0])
        assert 0.35 < expo < 0.75, f"{op}: mesh exponent {expo}"
    # Hypercube: sort/grouping ~ log^2; others ~ log.
    for op in ("sort", "grouping"):
        p = float(fits[op][4].split("^")[1])
        assert p > 1.5, f"{op}: expected ~log^2 growth, got log^{p}"
    for op in ("semigroup", "broadcast", "prefix", "merge"):
        p = float(fits[op][4].split("^")[1])
        assert p < 1.7, f"{op}: expected ~log growth, got log^{p}"


@pytest.mark.parametrize("op", table1.OPS)
def test_table1_mesh_op(benchmark, op):
    rng = np.random.default_rng(0)
    benchmark(lambda: table1.run_op(mesh_machine(1024), op, 1024, rng))


@pytest.mark.parametrize("op", table1.OPS)
def test_table1_hypercube_op(benchmark, op):
    rng = np.random.default_rng(0)
    benchmark(lambda: table1.run_op(hypercube_machine(1024), op, 1024, rng))
