"""Sections 1 and 6 — native algorithms vs direct PRAM simulation.

Native envelope construction must beat direct Chandran–Mount simulation on
both machines, with a widening gap.  Generation in
:mod:`repro.report.section6`.
"""

import pytest

from repro import envelope, mesh_machine
from repro.baselines.pram import pram_envelope, simulation_cost
from repro.report import section6
from repro.machines import hypercube_machine

from _util import fresh, report

HEADERS = ["n", "native time", "PRAM steps (c log n)", "CR+CW cost",
           "simulation time", "simulation penalty"]


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("sec6")


def _check(rows):
    penalties = [float(r[5][:-1]) for r in rows]
    assert all(p > 1.0 for p in penalties), "native must win everywhere"
    assert penalties[-1] > penalties[0], "the gap must widen with n"


def test_sec6_mesh_report(benchmark):
    rows = benchmark.pedantic(lambda: section6.rows(mesh_machine),
                              rounds=1, iterations=1)
    report("sec6", "Section 6: native mesh envelope vs PRAM simulation",
           HEADERS, rows)
    _check(rows)


def test_sec6_hypercube_report(benchmark):
    rows = benchmark.pedantic(lambda: section6.rows(hypercube_machine),
                              rounds=1, iterations=1)
    report("sec6", "Section 6: native hypercube envelope vs PRAM simulation",
           HEADERS, rows)
    _check(rows)


def test_sec6_measured_pram_steps(benchmark):
    """Conservative variant: even charging our engine's own measured PRAM
    step count (Theta(log^2 n), larger than Chandran–Mount's Theta(log n)),
    the native mesh algorithm still wins at scale."""
    def run():
        n = 1024
        fns = section6.curves(n)
        env, steps = pram_envelope(fns, section6.FAMILY)
        native = mesh_machine(n)
        envelope(native, fns, section6.FAMILY)
        sim = simulation_cost(mesh_machine(n), n, pram_steps=steps)
        return native.metrics.time, sim
    native_t, sim_t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert native_t < sim_t
