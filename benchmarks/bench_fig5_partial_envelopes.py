"""Figure 5 — partial functions: jump discontinuities and transitions.

Lemma 3.3 bounds the envelope of partial functions by
``lambda(n, s + 2k)``; Theorem 3.4 constructs it at no extra Theta cost.
Generation in :mod:`repro.report.figures`.
"""

import numpy as np
import pytest

from repro import Polynomial, PolynomialFamily, envelope, mesh_machine
from repro.report import figures

from _util import fresh, report


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    fresh("fig5")


def test_fig5_report(benchmark):
    rows = benchmark.pedantic(figures.figure5_rows, rounds=1, iterations=1)
    report(
        "fig5",
        "Figure 5 / Lemma 3.3: partial-function envelopes vs lambda(n, s+2k)",
        ["n", "transitions k", "max observed pieces", "lambda bound", "check"],
        rows,
    )
    assert all(r[4] == "ok" for r in rows)
    # More transitions -> more pieces (the phenomenon Figure 5 depicts).
    by_nk = {(r[0], r[1]): r[2] for r in rows}
    assert by_nk[(32, 3)] > by_nk[(32, 1)]


def test_fig5_machine_cost_parity(benchmark):
    """Theorem 3.4: partial functions cost no more than total ones."""
    fam = PolynomialFamily(1)

    def run():
        fns = figures.partial_family(32, 2, seed=5)
        m_part = mesh_machine(1024)
        envelope(m_part, fns, fam)
        rng = np.random.default_rng(5)
        total_fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(32)]
        m_tot = mesh_machine(1024)
        envelope(m_tot, total_fns, fam)
        return m_part.metrics.time, m_tot.metrics.time

    t_part, t_tot = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_part < 6 * t_tot  # same Theta class, bounded constant
