"""Benchmark history trend analysis: regression flags between commits."""

import json

import pytest

from repro.obs.hist import Log2Histogram
from repro.report.trend import (
    check_slos,
    flatten_metrics,
    load_history,
    main,
    parse_slo,
    trend,
)


def record(mode, sha, **metrics):
    return {"mode": mode, "provenance": {"git_sha": sha}, **metrics}


def hist_doc(samples, lo=2.0 ** -20, hi=2.0 ** 6):
    h = Log2Histogram("latency_hist", lo=lo, hi=hi, unit="s")
    for v in samples:
        h.observe(v)
    return h.to_dict()


def write_history(path, name, records):
    path.mkdir(parents=True, exist_ok=True)
    with open(path / f"{name}.jsonl", "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


class TestFlatten:
    def test_keeps_wallclock_drops_everything_else(self):
        rec = {
            "wall_seconds": 1.5,
            "throughput_qps": 900.0,
            "latency_s": {"p50": 0.01, "p99": 0.2},
            "queries": 1000,              # not a trend metric
            "sim_time": 42.0,             # simulated: golden-pinned, not trended
            "provenance": {"git_sha": "abc", "seconds": 99.0},  # skipped
            "params": {"warmup_seconds": 3.0},                  # skipped
        }
        flat = flatten_metrics(rec)
        assert flat == {"wall_seconds": 1.5, "throughput_qps": 900.0,
                        "latency_s.p50": 0.01, "latency_s.p99": 0.2}

    def test_histogram_subtrees_are_skipped_whole(self):
        # latency_hist.count is not a latency; bucket arrays are not
        # directional metrics.  The histogram snapshot must vanish from
        # the flattened view instead of polluting it.
        rec = {
            "wall_seconds": 1.5,
            "latency_hist": hist_doc([0.01, 0.02]),
        }
        assert flatten_metrics(rec) == {"wall_seconds": 1.5}


class TestMixedSchema:
    def test_records_predating_histogram_fields_still_trend(self, tmp_path):
        """The bugfix contract: a history file mixing pre-histogram and
        post-histogram records compares their shared scalars without a
        KeyError or a spurious delta from the new subtree."""
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0,
                   latency_s={"p50": 0.01}),                  # old schema
            record("full", "bbb", wall_seconds=10.5,
                   latency_s={"p50": 0.011},
                   latency_hist=hist_doc([0.01] * 100)),      # new schema
        ])
        report = trend(tmp_path, threshold=0.25)
        assert report.ok
        assert {d.metric for d in report.deltas} == \
            {"wall_seconds", "latency_s.p50"}

    def test_new_scalar_fields_trend_only_once_paired(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0),
            record("full", "bbb", wall_seconds=10.1,
                   latency_s={"p50": 0.01}),
            record("full", "ccc", wall_seconds=20.0,
                   latency_s={"p50": 0.03}),
        ])
        report = trend(tmp_path, threshold=0.25)
        # Both the old metric and the newly introduced one flag on the
        # ccc run; the aaa->bbb pair only compares the shared scalar.
        assert {d.metric for d in report.regressions} == \
            {"wall_seconds", "latency_s.p50"}


class TestSlo:
    def test_parse_slo_forms(self):
        assert parse_slo("p99_ms<50") == ("latency_hist", 0.99, "<", 50.0)
        assert parse_slo("update_hist:p50_ms<=1.5") == \
            ("update_hist", 0.50, "<=", 1.5)
        assert parse_slo("p99_9_ms<250")[1] == pytest.approx(0.999)
        for bad in ("p99<50", "p0_ms<50", "hist:q99_ms<50", "p99_ms<"):
            with pytest.raises(ValueError):
                parse_slo(bad)

    def test_slo_gates_latest_histogram_record(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", latency_hist=hist_doc([4.0] * 10)),
            record("full", "bbb", latency_hist=hist_doc([0.004] * 10)),
        ])
        (ok,) = check_slos(["p99_ms<50"], tmp_path)
        # Gates bbb (the newest), not the slow aaa run.
        assert ok.ok and ok.sha == "bbb"
        assert ok.value_ms < 50
        (viol,) = check_slos(["p99_ms<1"], tmp_path)
        assert not viol.ok

    def test_slo_skips_records_without_the_field(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=1.0),      # pre-histogram
            record("full", "bbb", latency_hist=hist_doc([0.004] * 5)),
            record("full", "ccc", wall_seconds=1.1),      # pre-histogram
        ])
        (check,) = check_slos(["p99_ms<50"], tmp_path)
        assert check.ok and check.sha == "bbb"

    def test_slo_not_evaluated_when_no_record_has_the_field(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=1.0),
        ])
        (check,) = check_slos(["p99_ms<50"], tmp_path)
        assert check.ok and check.value_ms is None
        assert "not evaluated" in check.render()


class TestTrend:
    def test_slowdown_past_threshold_is_flagged(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0),
            record("full", "bbb", wall_seconds=14.0),
        ])
        report = trend(tmp_path, threshold=0.25)
        assert not report.ok
        (d,) = report.regressions
        assert (d.bench, d.metric, d.sha_before, d.sha_after) == \
            ("svc", "wall_seconds", "aaa", "bbb")
        assert d.change == pytest.approx(0.4)

    def test_improvement_and_noise_not_flagged(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0, throughput_qps=100.0),
            record("full", "bbb", wall_seconds=8.0, throughput_qps=110.0),
            record("full", "ccc", wall_seconds=8.4, throughput_qps=108.0),
        ])
        report = trend(tmp_path, threshold=0.25)
        assert report.ok and len(report.deltas) == 4

    def test_throughput_drop_is_a_regression(self, tmp_path):
        write_history(tmp_path, "svc", [
            record("full", "aaa", throughput_qps=1000.0),
            record("full", "bbb", throughput_qps=500.0),
        ])
        report = trend(tmp_path, threshold=0.25)
        assert [d.metric for d in report.regressions] == ["throughput_qps"]

    def test_tiers_never_compare(self, tmp_path):
        # A smoke run after a full run is not a regression baseline.
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=100.0),
            record("smoke", "bbb", wall_seconds=1.0),
            record("smoke", "ccc", wall_seconds=1.1),
        ])
        report = trend(tmp_path, threshold=0.25)
        assert report.ok
        assert {(d.mode,) for d in report.deltas} == {("smoke",)}

    def test_corrupt_lines_skipped(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "svc.jsonl").write_text(
            json.dumps(record("full", "aaa", wall_seconds=1.0)) + "\n"
            + "{truncated...\n"
            + json.dumps(record("full", "bbb", wall_seconds=1.1)) + "\n")
        assert len(load_history(tmp_path)["svc"]) == 2
        assert trend(tmp_path, threshold=0.25).ok

    def test_single_run_reports_unpaired(self, tmp_path):
        write_history(tmp_path, "svc", [record("full", "aaa",
                                               wall_seconds=1.0)])
        report = trend(tmp_path, threshold=0.25)
        assert report.ok and report.unpaired == ["svc"]
        assert "no trend yet" in report.render()


class TestCli:
    def test_strict_gates_on_regressions(self, tmp_path, capsys):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0),
            record("full", "bbb", wall_seconds=20.0),
        ])
        rc = main(["--history", str(tmp_path), "--strict"])
        out = capsys.readouterr().out
        assert rc == 1 and "regression(s) flagged" in out
        # without --strict the same analysis reports but never gates
        assert main(["--history", str(tmp_path)]) == 0

    def test_threshold_flag_is_percent(self, tmp_path, capsys):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=10.0),
            record("full", "bbb", wall_seconds=11.0),
        ])
        assert main(["--history", str(tmp_path), "--strict",
                     "--threshold", "50"]) == 0
        assert main(["--history", str(tmp_path), "--strict",
                     "--threshold", "5"]) == 1

    def test_slo_violation_gates_without_strict(self, tmp_path, capsys):
        write_history(tmp_path, "svc", [
            record("full", "aaa", latency_hist=hist_doc([0.1] * 10)),
        ])
        rc = main(["--history", str(tmp_path), "--slo", "p99_ms<1"])
        out = capsys.readouterr().out
        assert rc == 1 and "VIOLATED" in out
        assert main(["--history", str(tmp_path),
                     "--slo", "p99_ms<1000"]) == 0

    def test_bad_slo_spec_is_usage_error(self, tmp_path, capsys):
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=1.0),
        ])
        rc = main(["--history", str(tmp_path), "--slo", "p99<50"])
        assert rc == 2
        assert "bad --slo" in capsys.readouterr().out

    def test_report_cli_dispatches_trend(self, tmp_path, capsys):
        from repro.report.__main__ import main as report_main
        write_history(tmp_path, "svc", [
            record("full", "aaa", wall_seconds=1.0),
        ])
        rc = report_main(["trend", "--history", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0 and "no wall-clock regressions" in out
