"""Property suite: arbitrary update interleavings stay byte-identical.

Hypothesis drives the incremental engine through arbitrary
insert/delete/retarget interleavings (curves drawn from the robust
seeded generator families) and asserts the maintained envelope equals a
cold serial recompute *byte-for-byte* after every step.  Two more
invariances ride along: certificate pop order is a pure function of the
pushed set (any push permutation pops identically), and the parity
campaign returns identical reports for every ``jobs`` value.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.incremental import (
    Certificate,
    CertificateQueue,
    IncrementalEnvelope,
    envelope_bytes,
)
from repro.verify.generators import make_curves
from repro.verify.incremental import update_campaign

pytestmark = pytest.mark.incremental


def fresh_curve(sub_seed):
    return make_curves("random", 50_000 + sub_seed, n=1, s=2)[0]


#: One abstract update: (action, target position draw, curve sub-seed).
#: Positions are drawn as raw integers and reduced modulo the live
#: population at apply time, so every generated script is applicable.
updates = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "retarget"]),
              st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=1, max_size=12,
)


def apply_script(engine, script):
    for action, pos_draw, sub_seed in script:
        ids = engine.ids()
        if not ids or action == "insert":
            engine.insert(fresh_curve(sub_seed))
        elif action == "delete":
            engine.delete(ids[pos_draw % len(ids)])
        else:
            engine.retarget(ids[pos_draw % len(ids)], fresh_curve(sub_seed))


class TestInterleavings:
    @given(st.integers(0, 50), st.integers(2, 7), updates)
    @settings(max_examples=25, deadline=None)
    def test_any_interleaving_matches_cold_recompute(self, seed, n, script):
        base = make_curves("random", seed, n=n, s=2)
        engine = IncrementalEnvelope(
            s=max([2] + [c.degree for c in base]), op="min")
        engine.reset(base)
        apply_script(engine, script)
        assert engine.canonical_bytes() == \
            envelope_bytes(engine.recompute_reference())

    @given(st.integers(0, 50), updates)
    @settings(max_examples=15, deadline=None)
    def test_replay_is_deterministic(self, seed, script):
        # Two fresh engines fed the same script agree byte-for-byte:
        # nothing in the update path depends on runtime state.
        runs = []
        for _ in range(2):
            base = make_curves("random", seed, n=4, s=2)
            engine = IncrementalEnvelope(
                s=max([2] + [c.degree for c in base]), op="min")
            engine.reset(base)
            apply_script(engine, script)
            runs.append(engine.canonical_bytes())
        assert runs[0] == runs[1]


class TestQueuePermutationInvariance:
    @given(st.permutations(list(range(8))), st.permutations(list(range(8))))
    @settings(max_examples=25, deadline=None)
    def test_pop_order_pure_function_of_pushed_set(self, perm_a, perm_b):
        # Certificates with tied failure times, distinct canonical keys:
        # any two push permutations must pop identically.
        def certs(perm):
            return [Certificate(failure_time=float(i % 3), key=(i % 3, i),
                                payload=i) for i in perm]

        pops = []
        for perm in (perm_a, perm_b):
            q = CertificateQueue()
            q.push_all(certs(perm))
            pops.append([q.pop().key for _ in range(len(perm))])
        assert pops[0] == pops[1]


class TestJobsInvariance:
    def test_campaign_identical_across_jobs(self):
        a = update_campaign(instances=6, seed0=0, jobs=1)
        b = update_campaign(instances=6, seed0=0, jobs=3)
        assert a.ok and b.ok
        assert [(r.kind, r.seed, r.ok, r.steps) for r in a.reports] == \
            [(r.kind, r.seed, r.ok, r.steps) for r in b.reports]
