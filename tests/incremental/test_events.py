"""Certificate event queue: canonical ordering, never insertion order."""

import pytest

from repro.incremental import Certificate, CertificateQueue

pytestmark = pytest.mark.incremental


def cert(t, key, payload=None):
    return Certificate(failure_time=t, key=key, payload=payload)


class TestOrdering:
    def test_pops_by_failure_time(self):
        q = CertificateQueue()
        q.push(cert(3.0, (0, 1)))
        q.push(cert(1.0, (0, 2)))
        q.push(cert(2.0, (0, 3)))
        assert [q.pop().failure_time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_pop_order_is_time_then_key(self):
        q = CertificateQueue()
        q.push(cert(2.0, (1, 0)))
        q.push(cert(1.0, (9, 9)))
        q.push(cert(2.0, (0, 5)))
        popped = [q.pop() for _ in range(3)]
        assert [(c.failure_time, c.key) for c in popped] == [
            (1.0, (9, 9)), (2.0, (0, 5)), (2.0, (1, 0)),
        ]

    def test_tie_resolution_invariant_under_push_permutation(self):
        certs = [cert(1.0, (i, j)) for i in range(3) for j in range(3)]
        import itertools
        orders = list(itertools.permutations(certs, len(certs)))[:24]
        expected = None
        for perm in orders:
            q = CertificateQueue()
            q.push_all(perm)
            got = [q.pop().key for _ in range(len(certs))]
            if expected is None:
                expected = got
            assert got == expected

    def test_peek_time_matches_next_pop(self):
        q = CertificateQueue()
        q.push(cert(5.0, (0,)))
        q.push(cert(2.0, (1,)))
        assert q.peek_time() == 2.0
        assert q.pop().failure_time == 2.0


class TestDeterminismContract:
    def test_duplicate_order_key_rejected(self):
        # Two certificates with the same (failure_time, key) prefix would
        # pop in heap-insertion order — the exact nondeterminism RPR008
        # exists to prevent — so the queue refuses outright.
        q = CertificateQueue()
        q.push(cert(1.0, (0, 1), payload="a"))
        with pytest.raises(ValueError, match="insertion order"):
            q.push(cert(1.0, (0, 1), payload="b"))

    def test_same_key_different_time_fine(self):
        q = CertificateQueue()
        q.push(cert(1.0, (0, 1)))
        q.push(cert(2.0, (0, 1)))
        assert len(q) == 2

    def test_key_must_be_tuple(self):
        with pytest.raises(TypeError):
            Certificate(failure_time=1.0, key=[0, 1], payload=None)

    def test_counters_and_clear(self):
        q = CertificateQueue()
        q.push_all([cert(1.0, (0,)), cert(2.0, (1,))])
        q.pop()
        assert (q.pushes, q.pops) == (2, 1)
        q.clear()
        assert len(q) == 0 and not q
        assert q.peek_time() == float("inf")
