"""Incremental engine vs cold serial recompute: byte-identical, always.

The contract under test is stronger than value equality: after any
update the maintained envelope's canonical JSON bytes
(:func:`repro.incremental.envelope_bytes` over the rank-relabelled
pieces) must equal those of a cold ``envelope_serial`` run over the
surviving curves — same breakpoint floats to the last bit, same
coefficients, same labels.  Kinds here are the robust generator
families (see ``repro.verify.incremental`` for the tie/near_degenerate
boundary).
"""

import pytest

from repro.incremental import IncrementalEnvelope, envelope_bytes
from repro.verify.generators import make_curves
from repro.verify.incremental import make_update_script, run_update_instance

pytestmark = pytest.mark.incremental


def assert_parity(engine):
    got = engine.canonical_bytes()
    want = envelope_bytes(engine.recompute_reference())
    assert got == want


def build(kind="random", seed=0, n=6, op="min"):
    base = make_curves(kind, seed, n=n, s=2)
    s = max([2] + [c.degree for c in base])
    engine = IncrementalEnvelope(s=s, op=op)
    engine.reset(base)
    return engine


class TestInsert:
    @pytest.mark.parametrize("kind", ["random", "duplicate", "tangent",
                                      "degree_boundary"])
    @pytest.mark.parametrize("op", ["min", "max"])
    def test_insert_parity_across_kinds_and_ops(self, kind, op):
        engine = build(kind=kind, seed=7, n=5, op=op)
        for i in range(4):
            extra = make_curves(kind, 900 + i, n=1, s=2)[0]
            engine.insert(extra)
            assert_parity(engine)

    def test_insert_into_empty(self):
        engine = IncrementalEnvelope(s=2, op="min")
        engine.insert([1.0, 2.0])
        assert len(engine) == 1
        assert_parity(engine)

    def test_insert_rejects_degree_overflow(self):
        engine = IncrementalEnvelope(s=1, op="min")
        with pytest.raises(ValueError, match="degree"):
            engine.insert([0.0, 0.0, 3.0])

    def test_insert_duplicate_id_rejected(self):
        engine = build()
        with pytest.raises(ValueError, match="already live"):
            engine.insert([1.0], cid=engine.ids()[0])


class TestDelete:
    def test_delete_every_curve_down_to_empty(self):
        engine = build(seed=3, n=6)
        while len(engine):
            engine.delete(engine.ids()[0])
            assert_parity(engine)
        assert len(engine.envelope.pieces) == 0

    def test_delete_unknown_id(self):
        engine = build()
        with pytest.raises(KeyError):
            engine.delete(999)

    def test_hidden_delete_skips_sweep(self):
        # A curve that never reached the envelope must excise without
        # re-sweeping any window.
        engine = IncrementalEnvelope(s=2, op="min")
        low = engine.insert([-100.0])
        hidden = engine.insert([0.0, 0.0, 1.0])  # t^2 >= -100 everywhere
        assert all(p.label == low for p in engine.envelope.pieces)
        engine.delete(hidden)
        assert engine.last_update["windows"] == 0
        assert engine.stats["hidden_deletes"] == 1
        assert_parity(engine)


class TestRetarget:
    def test_retarget_parity(self):
        engine = build(seed=11, n=6)
        for i, cid in enumerate(list(engine.ids())[:3]):
            curve = make_curves("random", 500 + i, n=1, s=2)[0]
            engine.retarget(cid, curve)
            assert_parity(engine)

    def test_retarget_keeps_rank(self):
        # The reference order is insertion-rank order; a retarget is the
        # same object with a new motion, so its rank must not move.
        engine = build(seed=2, n=4)
        ids_before = engine.ids()
        engine.retarget(ids_before[1], [5.0, -1.0])
        assert engine.ids() == ids_before
        assert_parity(engine)

    def test_retarget_failure_is_atomic(self):
        engine = build(seed=2, n=4)
        before = engine.canonical_bytes()
        with pytest.raises(ValueError):
            engine.retarget(engine.ids()[0], [0.0] * 8 + [1.0])
        assert engine.canonical_bytes() == before


class TestScripts:
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_scripts_byte_identical(self, seed):
        report = run_update_instance(seed)
        assert report.ok, report.mismatch

    def test_script_replay_without_rng(self):
        script = make_update_script(5)
        a = run_update_instance(5, script=script)
        b = run_update_instance(5, script=script)
        assert a.ok and b.ok and a.steps == b.steps


class TestSmokeTier1:
    def test_incremental_parity_smoke(self):
        # The tier-1 floor: one small mixed-update run, byte-identical
        # to a cold recompute at every step.
        engine = build(seed=1, n=5)
        engine.insert(make_curves("random", 901, n=1, s=2)[0])
        assert_parity(engine)
        engine.delete(engine.ids()[2])
        assert_parity(engine)
        engine.retarget(engine.ids()[0],
                        make_curves("random", 902, n=1, s=2)[0])
        assert_parity(engine)
        assert engine.version == 4  # reset + 3 updates
        stats = engine.stats
        assert stats["inserts"] == 1 and stats["deletes"] == 1
        assert stats["retargets"] == 1
