"""Smoke tests: every shipped example runs clean end-to-end."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
    assert "Traceback" not in out


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"
