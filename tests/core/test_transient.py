"""Tests for Theorems 4.1, 4.2, 4.6–4.8 (neighbors, collision, containment)."""

import math

import numpy as np
import pytest

from repro.core.collision import collides, collision_times, collision_times_with
from repro.core.containment import (
    containment_intervals,
    coordinate_extent_functions,
    enclosing_cube_edge_function,
    smallest_enclosing_cube_ever,
)
from repro.core.neighbors import closest_point_sequence, farthest_point_sequence
from repro.errors import DegenerateSystemError, OperationContractError
from repro.kinetics.motion import (
    Motion,
    PointSystem,
    converging_swarm,
    crossing_traffic,
    random_system,
)
from repro.machines import hypercube_machine, mesh_machine


def brute_nearest(system, query, t):
    pos = system.positions(t)
    d = np.linalg.norm(pos - pos[query], axis=1)
    d[query] = np.inf
    return float(d.min() ** 2)


def brute_farthest(system, query, t):
    pos = system.positions(t)
    d = np.linalg.norm(pos - pos[query], axis=1)
    d[query] = -np.inf
    return float(d.max() ** 2)


class TestClosestPointSequence:
    @pytest.mark.parametrize("n,k", [(4, 1), (8, 1), (6, 2)])
    def test_serial_matches_brute_force(self, n, k):
        system = random_system(n, d=2, k=k, seed=n * 7 + k)
        env = closest_point_sequence(None, system)
        for t in np.linspace(0.01, 30.0, 60):
            assert env(t) == pytest.approx(brute_nearest(system, 0, t),
                                           rel=1e-6, abs=1e-6)

    def test_machine_matches_serial(self):
        system = random_system(8, d=2, k=1, seed=5)
        serial = closest_point_sequence(None, system)
        for mk in (mesh_machine, hypercube_machine):
            m = mk(64)
            got = closest_point_sequence(m, system)
            assert got.labels() == serial.labels()
            assert m.metrics.time > 0

    def test_sequence_is_chronological(self):
        system = random_system(10, d=2, k=1, seed=1)
        env = closest_point_sequence(None, system)
        for a, b in zip(env.pieces, env.pieces[1:]):
            assert a.hi == pytest.approx(b.lo, abs=1e-6)

    def test_first_and_last_members(self):
        """First member of R: nearest at t=0; last: nearest as t -> inf."""
        system = random_system(6, d=2, k=1, seed=9)
        env = closest_point_sequence(None, system)
        pos0 = system.positions(0.0)
        d0 = np.linalg.norm(pos0 - pos0[0], axis=1)
        d0[0] = np.inf
        assert env[0].label == int(np.argmin(d0))
        t_far = system.horizon() * 3
        posF = system.positions(t_far)
        dF = np.linalg.norm(posF - posF[0], axis=1)
        dF[0] = np.inf
        assert env[-1].label == int(np.argmin(dF))

    def test_farthest_sequence(self):
        system = random_system(7, d=2, k=1, seed=3)
        env = farthest_point_sequence(None, system)
        for t in np.linspace(0.01, 20.0, 40):
            assert env(t) == pytest.approx(brute_farthest(system, 0, t),
                                           rel=1e-6, abs=1e-6)

    def test_nonzero_query_index(self):
        system = random_system(5, d=2, k=1, seed=4)
        env = closest_point_sequence(None, system, query=3)
        for t in (0.5, 5.0, 15.0):
            assert env(t) == pytest.approx(brute_nearest(system, 3, t),
                                           rel=1e-6)
        assert 3 not in env.labels()

    def test_three_dimensional(self):
        system = random_system(6, d=3, k=1, seed=8)
        env = closest_point_sequence(None, system)
        for t in (1.0, 10.0):
            assert env(t) == pytest.approx(brute_nearest(system, 0, t),
                                           rel=1e-6)

    def test_single_point_rejected(self):
        system = PointSystem([Motion.stationary([0.0, 0.0])])
        with pytest.raises(DegenerateSystemError):
            closest_point_sequence(None, system)

    def test_bad_query_rejected(self):
        system = random_system(3, seed=0)
        with pytest.raises(DegenerateSystemError):
            closest_point_sequence(None, system, query=7)


class TestCollision:
    def test_crossing_traffic_known_answer(self):
        system = crossing_traffic(8, seed=0)
        times = collision_times(None, system)
        # Odd indices 1,3,5,7 collide with point 0 at t = 1,3,5,7.
        np.testing.assert_allclose(times, [1.0, 3.0, 5.0, 7.0], atol=1e-6)

    def test_machine_matches_serial(self):
        system = crossing_traffic(10, seed=1)
        want = collision_times(None, system)
        for mk in (mesh_machine, hypercube_machine):
            m = mk(16)
            got = collision_times(m, system)
            np.testing.assert_allclose(got, want, atol=1e-6)
            assert m.metrics.time > 0

    def test_no_collisions(self):
        system = PointSystem([
            Motion.linear([0.0, 0.0], [1.0, 0.0]),
            Motion.linear([0.0, 5.0], [1.0, 0.0]),
        ])
        assert collision_times(None, system).size == 0
        assert not collides(system, 0, 1)

    def test_collides_predicate(self):
        system = crossing_traffic(4, seed=0)
        assert collides(system, 0, 1)
        assert not collides(system, 0, 2)

    def test_events_identify_partners(self):
        system = crossing_traffic(6, seed=0)
        events = collision_times_with(system)
        assert [j for _, j in events] == [1, 3, 5]

    def test_head_on_collision_degree_two(self):
        """Quadratic motion: thrown balls meeting at a computed instant."""
        a = Motion.from_arrays([[0.0, 1.0], [0.0, 4.0, -1.0]])
        b = Motion.from_arrays([[4.0, -1.0], [0.0, 4.0, -1.0]])
        system = PointSystem([a, b])
        times = collision_times(None, system)
        np.testing.assert_allclose(times, [2.0], atol=1e-6)


class TestContainment:
    def brute_spread(self, system, t):
        pos = system.positions(t)
        return pos.max(axis=0) - pos.min(axis=0)

    def test_spread_functions_match_brute(self):
        system = random_system(8, d=2, k=1, seed=2)
        spreads = coordinate_extent_functions(None, system)
        for t in np.linspace(0.01, 20.0, 30):
            want = self.brute_spread(system, t)
            for axis in range(2):
                assert spreads[axis](t) == pytest.approx(want[axis], rel=1e-6,
                                                         abs=1e-6)

    def test_containment_intervals_converging(self):
        system = converging_swarm(8, seed=3)
        box = [30.0, 30.0]
        intervals = containment_intervals(None, system, box)
        assert intervals, "converging swarm must fit eventually"
        spreads = coordinate_extent_functions(None, system)

        def fits(t):
            return all(s(t) <= b + 1e-6 for s, b in zip(spreads, box))

        for lo, hi in intervals:
            mid = lo + 1.0 if math.isinf(hi) else 0.5 * (lo + hi)
            assert fits(mid)
        # Sample outside the intervals: must not fit.
        for t in np.linspace(0.01, 30.0, 70):
            inside = any(lo - 1e-6 <= t <= hi + 1e-6 for lo, hi in intervals)
            if not inside:
                assert not fits(t)

    def test_machine_agrees(self):
        system = converging_swarm(6, seed=1)
        want = containment_intervals(None, system, [25.0, 25.0])
        m = mesh_machine(64)
        got = containment_intervals(m, system, [25.0, 25.0])
        assert len(got) == len(want)
        for (a, b), (c, d) in zip(got, want):
            assert a == pytest.approx(c, abs=1e-6)
        assert m.metrics.time > 0

    def test_box_dimension_mismatch(self):
        system = random_system(4, d=2, seed=0)
        with pytest.raises(DegenerateSystemError):
            containment_intervals(None, system, [1.0, 2.0, 3.0])

    def test_negative_box_rejected(self):
        system = random_system(4, d=2, seed=0)
        with pytest.raises(OperationContractError):
            containment_intervals(None, system, [1.0, -2.0])

    def test_huge_box_always_fits(self):
        system = random_system(5, d=2, k=0, seed=6)  # static points
        intervals = containment_intervals(None, system, [1e9, 1e9])
        assert len(intervals) == 1
        assert intervals[0][0] == pytest.approx(0.0)
        assert math.isinf(intervals[0][1])


class TestEnclosingCube:
    def test_edge_function_matches_brute(self):
        system = random_system(7, d=2, k=1, seed=4)
        D = enclosing_cube_edge_function(None, system)
        for t in np.linspace(0.01, 25.0, 40):
            pos = system.positions(t)
            want = float((pos.max(0) - pos.min(0)).max())
            assert D(t) == pytest.approx(want, rel=1e-6, abs=1e-6)

    def test_smallest_ever_converging(self):
        system = converging_swarm(8, seed=5)
        d_min, t_min = smallest_enclosing_cube_ever(None, system)
        D = enclosing_cube_edge_function(None, system)
        assert d_min == pytest.approx(D(t_min), rel=1e-6, abs=1e-8)
        # Minimum is a global lower bound along a dense sample.
        for t in np.linspace(0.0, 40.0, 120):
            assert d_min <= D(t) + 1e-6

    def test_smallest_ever_interior_minimum(self):
        """The converging swarm's minimum happens strictly after t=0."""
        system = converging_swarm(10, seed=8)
        _, t_min = smallest_enclosing_cube_ever(None, system)
        assert t_min > 0.1

    def test_machine_agrees_and_charges(self):
        system = converging_swarm(6, seed=2)
        want = smallest_enclosing_cube_ever(None, system)
        m = hypercube_machine(64)
        got = smallest_enclosing_cube_ever(m, system)
        assert got[0] == pytest.approx(want[0], rel=1e-9)
        assert got[1] == pytest.approx(want[1], rel=1e-9)
        assert m.metrics.time > 0

    def test_three_dimensions(self):
        system = random_system(5, d=3, k=1, seed=11)
        D = enclosing_cube_edge_function(None, system)
        for t in (0.5, 5.0, 12.0):
            pos = system.positions(t)
            want = float((pos.max(0) - pos.min(0)).max())
            assert D(t) == pytest.approx(want, rel=1e-6)
