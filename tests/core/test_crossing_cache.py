"""The crossing cache and the host-side fast combine path are execution
strategies, not algorithms: enabling or disabling them must change neither
any output nor any charged simulated-time number.  These tests pin that
contract down exactly (== on floats, not approx)."""

import sys

import numpy as np
import pytest

import repro.core.envelope  # noqa: F401  (register the submodule)
from repro.core.envelope import envelope
from repro.core.family import CurveFamily, PolynomialFamily
from repro.core.hull_membership import (
    AngleFamily,
    hull_membership_intervals,
)
from repro.kinetics.motion import random_system
from repro.kinetics.polynomial import Polynomial
from repro.machines.machine import (
    hypercube_machine,
    mesh_machine,
    serial_machine,
)

# repro.core re-exports the `envelope` function under the same name as the
# submodule, so fetch the module object explicitly for the fast-path toggle.
envelope_module = sys.modules["repro.core.envelope"]


def _pieces_key(F):
    return [(p.lo, p.hi, p.fn, p.label) for p in F.pieces]


def _sim_snapshot(metrics):
    snap = metrics.snapshot()
    snap.pop("wall_time")
    snap.pop("wall_phases")
    snap.pop("plan_cache")  # host-side, like wall-clock
    return snap


@pytest.fixture
def cache_disabled():
    prev = CurveFamily.cache_enabled
    CurveFamily.cache_enabled = False
    try:
        yield
    finally:
        CurveFamily.cache_enabled = prev


@pytest.mark.usefixtures("fast_combine_mode")
class TestCacheOnOffIdentity:
    """Cache identity must hold under both envelope execution strategies."""

    def _envelope_run(self, polys, k, machine):
        fam = PolynomialFamily(k)
        E = envelope(machine, polys, fam)
        return E, fam

    @pytest.mark.parametrize("n,k", [(16, 1), (32, 2), (48, 3)])
    def test_envelope_identical(self, n, k):
        rng = np.random.default_rng(n + k)
        polys = [Polynomial(rng.normal(size=k + 1)) for _ in range(n)]
        m_on = mesh_machine(256)
        E_on, fam_on = self._envelope_run(polys, k, m_on)
        prev = CurveFamily.cache_enabled
        CurveFamily.cache_enabled = False
        try:
            m_off = mesh_machine(256)
            E_off, fam_off = self._envelope_run(polys, k, m_off)
        finally:
            CurveFamily.cache_enabled = prev
        assert _pieces_key(E_on) == _pieces_key(E_off)
        assert m_on.metrics.time == m_off.metrics.time
        assert _sim_snapshot(m_on.metrics) == _sim_snapshot(m_off.metrics)
        # The cached run actually exercised the cache.
        assert fam_on.cache_hits > 0
        assert fam_off.cache_hits == 0

    def test_hull_membership_identical(self, cache_disabled):
        system = random_system(10, 2, 1, seed=9)
        m_off = mesh_machine(256)
        off = hull_membership_intervals(m_off, system)
        CurveFamily.cache_enabled = True
        m_on = mesh_machine(256)
        on = hull_membership_intervals(m_on, system)
        assert on == off
        assert m_on.metrics.time == m_off.metrics.time
        assert _sim_snapshot(m_on.metrics) == _sim_snapshot(m_off.metrics)

    def test_crossings_identical_per_pair(self, cache_disabled):
        rng = np.random.default_rng(0)
        fam_off = PolynomialFamily(3)
        uncached = []
        polys = [Polynomial(rng.normal(size=4)) for _ in range(12)]
        for f in polys:
            for g in polys:
                if f is not g:
                    uncached.append(fam_off.crossings(f, g, 0.0, 10.0))
        CurveFamily.cache_enabled = True
        fam_on = PolynomialFamily(3)
        cached = []
        for _ in range(2):  # second sweep hits the cache
            cached = []
            for f in polys:
                for g in polys:
                    if f is not g:
                        cached.append(fam_on.crossings(f, g, 0.0, 10.0))
        assert cached == uncached
        stats = fam_on.cache_stats()
        assert stats["hits"] >= stats["misses"] > 0
        assert 0.0 < stats["hit_rate"] <= 1.0

    def test_angle_family_counters_and_clear(self):
        system = random_system(8, 2, 1, seed=4)
        fam = AngleFamily(1)
        hull_membership_intervals(None, system)  # serial oracle path
        # Use the family directly on a few angle curves.
        from repro.core.hull_membership import angle_restrictions

        gs, _ = angle_restrictions(system)
        curves = [f.pieces[0].fn for f in gs if f.pieces]
        out1 = fam.crossings(curves[0], curves[1], 0.0, 5.0)
        out2 = fam.crossings(curves[0], curves[1], 0.0, 5.0)
        assert out1 == out2
        assert fam.cache_stats()["hits"] >= 1
        fam.cache_clear()
        assert fam.cache_stats() == {
            "hits": 0, "misses": 0, "hit_rate": 0.0, "size": 0,
        }


class TestFastCombineIdentity:
    """The host-side fast combine path vs the array machinery."""

    @pytest.mark.parametrize("machine_factory", [
        lambda: mesh_machine(64),
        lambda: hypercube_machine(64),
        lambda: serial_machine(),
    ])
    @pytest.mark.parametrize("op", ["min", "max"])
    def test_envelope_output_and_charges(self, machine_factory, op):
        rng = np.random.default_rng(21)
        for _ in range(5):
            n = int(rng.integers(2, 25))
            k = int(rng.integers(1, 4))
            polys = [Polynomial(rng.normal(size=k + 1)) for _ in range(n)]
            m_fast = machine_factory()
            m_ref = machine_factory()
            prev = envelope_module.set_fast_combine(True)
            try:
                E_fast = envelope(m_fast, polys, PolynomialFamily(k), op=op)
                envelope_module.set_fast_combine(False)
                E_ref = envelope(m_ref, polys, PolynomialFamily(k), op=op)
            finally:
                envelope_module.set_fast_combine(prev)
            assert _pieces_key(E_fast) == _pieces_key(E_ref)
            assert _sim_snapshot(m_fast.metrics) == _sim_snapshot(
                m_ref.metrics
            )

    def test_hull_membership_paths_match(self):
        system = random_system(8, 2, 1, seed=13)
        m_fast, m_ref = mesh_machine(256), mesh_machine(256)
        prev = envelope_module.set_fast_combine(True)
        try:
            fast = hull_membership_intervals(m_fast, system)
            envelope_module.set_fast_combine(False)
            ref = hull_membership_intervals(m_ref, system)
        finally:
            envelope_module.set_fast_combine(prev)
        assert fast == ref
        assert _sim_snapshot(m_fast.metrics) == _sim_snapshot(m_ref.metrics)
