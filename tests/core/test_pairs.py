"""Tests for repro.core.pairs — the Section 6 pair-sequence extension."""

import numpy as np
import pytest

from repro.baselines.brute import closest_pair_at, farthest_pair_at
from repro.core.pairs import closest_pair_sequence, farthest_pair_sequence
from repro.errors import DegenerateSystemError
from repro.kinetics.motion import Motion, PointSystem, random_system
from repro.machines import hypercube_machine, mesh_machine


class TestClosestPairSequence:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_over_time(self, seed):
        system = random_system(6, d=2, k=1, seed=seed)
        env = closest_pair_sequence(None, system)
        for t in np.linspace(0.01, 25.0, 50):
            _, _, want = closest_pair_at(system, t)
            assert env(t) == pytest.approx(want, rel=1e-6, abs=1e-6)

    def test_labels_are_pairs(self):
        system = random_system(5, d=2, k=1, seed=9)
        env = closest_pair_sequence(None, system)
        for i, j in env.labels():
            assert 0 <= i < j < 5

    def test_two_body_system(self):
        system = PointSystem([
            Motion.linear([0.0, 0.0], [1.0, 0.0]),
            Motion.linear([5.0, 0.0], [0.0, 1.0]),
        ])
        env = closest_pair_sequence(None, system)
        assert env.labels() == [(0, 1)]

    def test_machine_agrees(self):
        system = random_system(5, d=2, k=1, seed=2)
        want = closest_pair_sequence(None, system)
        for mk in (mesh_machine, hypercube_machine):
            m = mk(64)
            got = closest_pair_sequence(m, system)
            assert got.labels() == want.labels()
            assert m.metrics.time > 0

    def test_single_point_rejected(self):
        with pytest.raises(DegenerateSystemError):
            closest_pair_sequence(None,
                                  PointSystem([Motion.stationary([0.0, 0.0])]))


class TestFarthestPairSequence:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        system = random_system(6, d=2, k=1, seed=seed + 10)
        env = farthest_pair_sequence(None, system)
        for t in np.linspace(0.01, 25.0, 50):
            _, _, want = farthest_pair_at(system, t)
            assert env(t) == pytest.approx(want, rel=1e-6, abs=1e-6)

    def test_diameter_pair_sequence_is_chronological(self):
        system = random_system(7, d=2, k=1, seed=4)
        env = farthest_pair_sequence(None, system)
        for a, b in zip(env.pieces, env.pieces[1:]):
            assert a.hi == pytest.approx(b.lo, abs=1e-6)

    def test_steady_agreement_with_section5(self):
        """The last label of the farthest-pair sequence must equal the
        steady-state farthest pair of Corollary 5.7."""
        from repro.core.steady import steady_farthest_pair
        from repro.kinetics.motion import divergent_system
        system = divergent_system(6, d=2, seed=8)
        env = farthest_pair_sequence(None, system)
        sp = tuple(sorted(steady_farthest_pair(None, system)))
        assert tuple(sorted(env.labels()[-1])) == sp
