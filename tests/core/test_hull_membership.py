"""Tests for Theorem 4.5 (hull membership) and the angle-curve family."""

import math

import numpy as np
import pytest

from repro.core.hull_membership import (
    AngleCurve,
    AngleFamily,
    angle_restrictions,
    hull_membership_intervals,
    is_extreme_at,
)
from repro.errors import DegenerateSystemError
from repro.kinetics.motion import Motion, PointSystem, random_system
from repro.kinetics.polynomial import Polynomial
from repro.machines import hypercube_machine, mesh_machine


def check_against_oracle(system, intervals, query=0, t_max=30.0, samples=240):
    """Compare interval membership with the brute-force oracle, skipping
    samples within a small guard band of interval endpoints."""
    ends = [e for iv in intervals for e in iv if math.isfinite(e)]
    for t in np.linspace(0.013, t_max, samples):
        if any(abs(t - e) < 0.05 for e in ends):
            continue
        inside = any(lo - 1e-9 <= t <= hi + 1e-9 for lo, hi in intervals)
        want = is_extreme_at(system, query, t)
        assert inside == want, f"t={t}: algorithm={inside}, oracle={want}"


class TestAngleCurve:
    def test_value_matches_atan2(self):
        c = AngleCurve(Polynomial([1.0, -1.0]), Polynomial([0.5]), 1)
        for t in (0.0, 0.5, 2.0, 10.0):
            assert c(t) == pytest.approx(math.atan2(0.5, 1.0 - t))

    def test_equality_and_hash(self):
        a = AngleCurve(Polynomial([1.0]), Polynomial([2.0]), 1)
        b = AngleCurve(Polynomial([1.0]), Polynomial([2.0]), 1)
        assert a == b and hash(a) == hash(b)


class TestAngleFamily:
    def test_crossings_require_same_orientation(self):
        fam = AngleFamily(1)
        # Vectors (1, t-1) and (-1, 1-t): always antiparallel.
        f = AngleCurve(Polynomial([1.0]), Polynomial([-1.0, 1.0]), 1)
        g = AngleCurve(Polynomial([-1.0]), Polynomial([1.0, -1.0]), 2)
        assert fam.crossings(f, g, 0.0, math.inf) == []
        assert len(fam.opposite_times(f, g, 0.0, math.inf)) == 0  # cross==0

    def test_crossing_detected(self):
        fam = AngleFamily(1)
        # (1, t) and (1, 2t-1): parallel when t = 2t-1 -> t=1, same sense.
        f = AngleCurve(Polynomial([1.0]), Polynomial([0.0, 1.0]), 1)
        g = AngleCurve(Polynomial([1.0]), Polynomial([-1.0, 2.0]), 2)
        roots = fam.crossings(f, g, 0.0, math.inf)
        assert roots == [pytest.approx(1.0)]
        assert f(1.0) == pytest.approx(g(1.0))

    def test_opposite_times(self):
        fam = AngleFamily(1)
        # (1, 0) fixed and (1-t, 0)... use (1,0) vs (2-t, 0): parallel
        # always; opposite when 2-t < 0.  cross==0 -> no isolated times.
        f = AngleCurve(Polynomial([1.0]), Polynomial([0.0]), 1)
        h = AngleCurve(Polynomial([1.0, -1.0]), Polynomial([0.0, 1.0]), 2)
        # f=(1,0), h=(1-t, t): cross = t; dot = 1-t.  Parallel at t=0 only.
        assert fam.opposite_times(f, h, 0.0, math.inf) == []
        h2 = AngleCurve(Polynomial([-1.0, 1.0]), Polynomial([0.0, 0.0, 1.0]), 3)
        # f=(1,0), h2=(t-1, t^2): cross = t^2, dot = t-1: parallel at t=0
        # (boundary, excluded).  Construct a genuine opposite crossing:
        h3 = AngleCurve(Polynomial([1.0, -1.0]), Polynomial([0.0]), 4)
        # f=(1,0), h3=(1-t,0): cross=0 identically -> [].
        assert fam.opposite_times(f, h3, 0.0, math.inf) == []

    def test_same_for_parallel_same_sense(self):
        fam = AngleFamily(1)
        f = AngleCurve(Polynomial([1.0]), Polynomial([2.0]), 1)
        g = AngleCurve(Polynomial([2.0]), Polynomial([4.0]), 2)
        h = AngleCurve(Polynomial([-1.0]), Polynomial([-2.0]), 3)
        assert fam.same(f, g)
        assert not fam.same(f, h)


class TestAngleRestrictions:
    def test_partition_of_time(self):
        system = random_system(5, d=2, k=1, seed=3)
        gs, bs = angle_restrictions(system)
        assert len(gs) == len(bs) == 4
        # For each j, G and B partition [0, inf) up to boundary points.
        for g, b in zip(gs, bs):
            for t in np.linspace(0.1, 20.0, 50):
                assert g.defined_at(t) != b.defined_at(t) or (
                    g.defined_at(t) and not b.defined_at(t)
                )

    def test_g_nonnegative_b_negative(self):
        system = random_system(5, d=2, k=1, seed=4)
        gs, bs = angle_restrictions(system)
        for g in gs:
            for p in g.pieces:
                assert p.fn(p.midpoint()) >= -1e-9
        for b in bs:
            for p in b.pieces:
                assert p.fn(p.midpoint()) < 1e-9

    def test_transition_count_bounded_by_k(self):
        """Lemma 3.3 hypothesis: O(k) jumps + transitions per restriction."""
        for seed in range(5):
            system = random_system(6, d=2, k=2, seed=seed)
            gs, bs = angle_restrictions(system)
            for f in gs + bs:
                # <= k roots of dy and <= k of dx -> at most 2k+1 pieces.
                assert len(f.pieces) <= 5

    def test_requires_planar(self):
        with pytest.raises(DegenerateSystemError):
            angle_restrictions(random_system(4, d=3, seed=0))

    def test_requires_two_points(self):
        with pytest.raises(DegenerateSystemError):
            angle_restrictions(PointSystem([Motion.stationary([0.0, 0.0])]))


class TestHullMembershipStatic:
    """k=0 sanity: membership should be constant over time."""

    def test_square_corner_is_extreme(self):
        pts = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]
        system = PointSystem([Motion.stationary(p) for p in pts])
        intervals = hull_membership_intervals(None, system, query=0)
        assert intervals == [(0.0, math.inf)]

    def test_interior_point_never_extreme(self):
        pts = [[0.5, 0.5], [0.0, 0.0], [2.0, 0.0], [1.0, 3.0]]
        system = PointSystem([Motion.stationary(p) for p in pts])
        intervals = hull_membership_intervals(None, system, query=0)
        assert intervals == []

    def test_two_points_always_extreme(self):
        system = PointSystem([
            Motion.linear([0.0, 0.0], [1.0, 2.0]),
            Motion.linear([5.0, 1.0], [-1.0, 0.0]),
        ])
        intervals = hull_membership_intervals(None, system)
        assert intervals == [(0.0, math.inf)]


class TestHullMembershipDynamic:
    def test_point_overtaken_by_swarm(self):
        """A slow point starts outside the hull of a moving cluster, gets
        enclosed as the cluster spreads past it."""
        motions = [Motion.linear([0.0, 0.0], [0.0, 0.0])]  # the query: still
        # A triangle that starts to the right and moves left around it.
        motions += [
            Motion.linear([5.0, 0.0], [-1.0, 0.0]),
            Motion.linear([6.0, 3.0], [-1.0, 0.0]),
            Motion.linear([6.0, -3.0], [-1.0, 0.0]),
        ]
        system = PointSystem(motions)
        intervals = hull_membership_intervals(None, system, query=0)
        check_against_oracle(system, intervals, t_max=20.0)
        # The query starts extreme (left of the triangle), is swallowed when
        # the triangle passes over it, and becomes extreme again after.
        assert len(intervals) == 2
        assert intervals[0][0] == pytest.approx(0.0)
        assert math.isinf(intervals[-1][1])

    @pytest.mark.parametrize("seed", range(6))
    def test_random_linear_motion_against_oracle(self, seed):
        system = random_system(6, d=2, k=1, seed=seed, scale=5.0)
        intervals = hull_membership_intervals(None, system, query=0)
        check_against_oracle(system, intervals)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_quadratic_motion_against_oracle(self, seed):
        system = random_system(5, d=2, k=2, seed=seed, scale=3.0)
        intervals = hull_membership_intervals(None, system, query=0)
        check_against_oracle(system, intervals, t_max=15.0)

    def test_nonzero_query(self):
        system = random_system(5, d=2, k=1, seed=10, scale=5.0)
        intervals = hull_membership_intervals(None, system, query=2)
        check_against_oracle(system, intervals, query=2)

    def test_machine_agrees_with_serial(self):
        system = random_system(6, d=2, k=1, seed=12, scale=5.0)
        want = hull_membership_intervals(None, system)
        for mk in (mesh_machine, hypercube_machine):
            m = mk(256)
            got = hull_membership_intervals(m, system)
            assert len(got) == len(want)
            for (a, b), (c, d) in zip(got, want):
                assert a == pytest.approx(c, abs=1e-6)
                if math.isfinite(b) or math.isfinite(d):
                    assert b == pytest.approx(d, abs=1e-6)
            assert m.metrics.time > 0
