"""Tests for repro.core.envelope — Lemma 3.1, Theorems 3.2 and 3.4."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import (
    combine_map_serial,
    combine_pairwise,
    combine_pairwise_serial,
    envelope,
    envelope_serial,
    threshold_indicator,
)
from repro.core.family import PolynomialFamily
from repro.errors import OperationContractError
from repro.kinetics.davenport_schinzel import lambda_exact
from repro.kinetics.piecewise import INF, Piece, PiecewiseFunction
from repro.kinetics.polynomial import Polynomial
from repro.machines import (
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
)

FAM1 = PolynomialFamily(1)
FAM2 = PolynomialFamily(2)
FAM3 = PolynomialFamily(3)


def lines(*pairs):
    """Helper: linear curves a + b t."""
    return [Polynomial([a, b]) for a, b in pairs]


def assert_is_envelope(env, fns, op="min"):
    pyop = min if op == "min" else max
    assert env.check_envelope_of(fns, op=pyop), f"not the {op} envelope: {env}"


class TestSerialPairwise:
    def test_two_crossing_lines(self):
        f, g = lines((0.0, 1.0), (4.0, -1.0))  # cross at t=2
        env = combine_pairwise_serial(
            PiecewiseFunction.total(f, 0), PiecewiseFunction.total(g, 1), FAM1
        )
        assert len(env) == 2
        assert env.labels() == [0, 1]
        assert env[0].hi == pytest.approx(2.0)
        assert_is_envelope(env, [f, g])

    def test_max_envelope(self):
        f, g = lines((0.0, 1.0), (4.0, -1.0))
        env = combine_pairwise_serial(
            PiecewiseFunction.total(f, 0), PiecewiseFunction.total(g, 1),
            FAM1, op="max",
        )
        assert env.labels() == [1, 0]
        assert_is_envelope(env, [f, g], op="max")

    def test_non_crossing(self):
        f, g = lines((0.0, 1.0), (5.0, 1.0))
        env = combine_pairwise_serial(
            PiecewiseFunction.total(f, 0), PiecewiseFunction.total(g, 1), FAM1
        )
        assert len(env) == 1 and env[0].label == 0

    def test_identical_functions(self):
        f = Polynomial([1.0, 2.0])
        env = combine_pairwise_serial(
            PiecewiseFunction.total(f, 0), PiecewiseFunction.total(f, 1), FAM1
        )
        assert len(env) == 1

    def test_parabola_vs_line_two_pieces_bound(self):
        # s=2: min of two curves has at most lambda(2,2)=3 pieces.
        f = Polynomial([4.0, -4.0, 1.0])  # (t-2)^2
        g = Polynomial([1.0])
        env = combine_pairwise_serial(
            PiecewiseFunction.total(f, 0), PiecewiseFunction.total(g, 1), FAM2
        )
        assert len(env) == 3
        # The parabola starts at 4 > 1, dips below on [1,3], rises again.
        assert env.labels() == [1, 0, 1]
        assert_is_envelope(env, [f, g])

    def test_empty_operands(self):
        f = PiecewiseFunction.total(Polynomial([1.0]), 0)
        e = PiecewiseFunction.empty()
        assert combine_pairwise_serial(f, e, FAM1).labels() == [0]
        assert combine_pairwise_serial(e, f, FAM1).labels() == [0]

    def test_partial_functions_with_gap(self):
        # f on [0,2] and [5,inf); g on [1,6]. Min must track who is defined.
        f = PiecewiseFunction([
            Piece(0.0, 2.0, Polynomial([10.0]), "f"),
            Piece(5.0, INF, Polynomial([0.0]), "f"),
        ])
        g = PiecewiseFunction([Piece(1.0, 6.0, Polynomial([5.0]), "g")])
        env = combine_pairwise_serial(f, g, FAM1)
        assert env(0.5) == 10.0   # only f defined
        assert env(1.5) == 5.0    # both defined, g smaller
        assert env(3.0) == 5.0    # only g defined (f gap)
        assert env(5.5) == 0.0    # both, f smaller
        assert env(100.0) == 0.0

    def test_rejects_unknown_op(self):
        f = PiecewiseFunction.total(Polynomial([1.0]), 0)
        with pytest.raises(OperationContractError):
            combine_pairwise_serial(f, f, FAM1, op="median")


class TestSerialEnvelope:
    def test_three_curve_figure4(self):
        """Figure 4: three curves, envelope pieces (g, [0,a]); (h, [a,b]); (f, [b,inf))."""
        g = Polynomial([1.0, 0.5])
        h = Polynomial([2.0, 0.0, 0.1])
        f = Polynomial([12.0, -1.0, 0.05])
        fam = PolynomialFamily(2)
        env = envelope_serial([g, h, f], fam, labels=["g", "h", "f"])
        assert_is_envelope(env, [g, h, f])

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16])
    @pytest.mark.parametrize("k", [1, 2])
    def test_random_polynomials(self, n, k):
        rng = np.random.default_rng(n * 10 + k)
        fns = [Polynomial(rng.uniform(-10, 10, k + 1)) for _ in range(n)]
        fam = PolynomialFamily(k)
        env = envelope_serial(fns, fam)
        assert_is_envelope(env, fns)

    def test_piece_count_respects_lambda_bound_s1(self):
        """Lemma 2.2: lines (s=1) -> at most lambda(n,1) = n pieces."""
        rng = np.random.default_rng(7)
        for trial in range(5):
            fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(10)]
            env = envelope_serial(fns, FAM1)
            assert len(env) <= lambda_exact(10, 1)

    def test_piece_count_respects_lambda_bound_s2(self):
        rng = np.random.default_rng(11)
        for trial in range(5):
            fns = [Polynomial(rng.uniform(-5, 5, 3)) for _ in range(8)]
            env = envelope_serial(fns, FAM2)
            assert len(env) <= lambda_exact(8, 2)  # 2n-1 = 15

    def test_envelope_covers_domain(self):
        """Total functions -> the envelope is defined everywhere on [0,inf)."""
        fns = lines((1, 1), (2, -1), (0, 0.5))
        env = envelope_serial(fns, FAM1)
        assert env[0].lo == 0.0
        assert math.isinf(env[-1].hi)
        for a, b in zip(env.pieces, env.pieces[1:]):
            assert a.hi == pytest.approx(b.lo)

    def test_single_function(self):
        env = envelope_serial([Polynomial([3.0])], FAM1)
        assert len(env) == 1

    def test_empty_input(self):
        assert len(envelope_serial([], FAM1)) == 0

    @given(st.lists(
        st.tuples(st.floats(-20, 20), st.floats(-5, 5)),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_envelope_of_lines(self, coeffs):
        fns = [Polynomial([a, b]) for a, b in coeffs]
        env = envelope_serial(fns, FAM1)
        assert len(env) <= len(fns)  # lambda(n,1) = n
        assert env.check_envelope_of(fns, samples_per_piece=5, rtol=1e-5,
                                     atol=1e-5)


@pytest.mark.usefixtures("fast_combine_mode")
class TestMachinePairwise:
    """Runs under both envelope execution strategies (fast/array)."""

    @pytest.mark.parametrize("mk", [mesh_machine, hypercube_machine,
                                    pram_machine],
                             ids=["mesh", "hypercube", "pram"])
    def test_agrees_with_serial(self, mk):
        rng = np.random.default_rng(3)
        f_fns = [Polynomial(rng.uniform(-8, 8, 3)) for _ in range(4)]
        g_fns = [Polynomial(rng.uniform(-8, 8, 3)) for _ in range(4)]
        F = envelope_serial(f_fns, FAM2, labels=[f"f{i}" for i in range(4)])
        G = envelope_serial(g_fns, FAM2, labels=[f"g{i}" for i in range(4)])
        machine = mk(16)
        got = combine_pairwise(machine, F, G, FAM2)
        want = combine_pairwise_serial(F, G, FAM2)
        assert got.labels() == want.labels()
        for a, b in zip(got.pieces, want.pieces):
            assert a.lo == pytest.approx(b.lo, abs=1e-6)
            assert machine.metrics.time > 0

    def test_partial_functions_on_machine(self):
        f = PiecewiseFunction([
            Piece(0.0, 2.0, Polynomial([10.0]), "f"),
            Piece(5.0, INF, Polynomial([0.0]), "f"),
        ])
        g = PiecewiseFunction([Piece(1.0, 6.0, Polynomial([5.0]), "g")])
        got = combine_pairwise(mesh_machine(16), f, g, FAM1)
        want = combine_pairwise_serial(f, g, FAM1)
        assert got.labels() == want.labels()
        for t in (0.5, 1.5, 3.0, 5.5, 50.0):
            assert got(t) == pytest.approx(want(t))


@pytest.mark.usefixtures("fast_combine_mode")
class TestMachineEnvelope:
    """Runs under both envelope execution strategies (fast/array)."""

    @pytest.mark.parametrize("mk", [mesh_machine, hypercube_machine,
                                    serial_machine],
                             ids=["mesh", "hypercube", "serial"])
    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_agrees_with_serial_oracle(self, mk, n):
        rng = np.random.default_rng(n)
        fns = [Polynomial(rng.uniform(-10, 10, 3)) for _ in range(n)]
        machine = mk(64) if mk is not serial_machine else mk()
        got = envelope(machine, fns, FAM2)
        want = envelope_serial(fns, FAM2)
        assert got.labels() == want.labels()
        assert_is_envelope(got, fns)

    def test_max_envelope_on_machine(self):
        fns = lines((0, 1), (10, -1), (3, 0))
        got = envelope(mesh_machine(16), fns, FAM1, op="max")
        assert_is_envelope(got, fns, op="max")

    def test_mesh_time_scales_like_sqrt_lambda(self):
        """Theorem 3.2: mesh envelope time ~ sqrt(lambda(n,s)) ~ sqrt(n)."""
        def cost(n):
            rng = np.random.default_rng(42)
            fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]
            m = mesh_machine(4096)
            envelope(m, fns, FAM1)
            return m.metrics.time
        ratio = cost(1024) / cost(64)
        # sqrt(1024/64) = 4; allow slack for constants and log terms.
        assert 2.0 < ratio < 10.0

    def test_hypercube_time_scales_like_log_squared(self):
        def cost(n):
            rng = np.random.default_rng(42)
            fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]
            m = hypercube_machine(4096)
            envelope(m, fns, FAM1)
            return m.metrics.time
        # log^2(1024)/log^2(64) = 100/36 ~ 2.8
        ratio = cost(1024) / cost(64)
        assert 1.5 < ratio < 5.0

    def test_hypercube_faster_than_mesh(self):
        rng = np.random.default_rng(0)
        fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(256)]
        mm, hm = mesh_machine(1024), hypercube_machine(1024)
        envelope(mm, fns, FAM1)
        envelope(hm, fns, FAM1)
        assert hm.metrics.time < mm.metrics.time


class TestCombineMap:
    def test_difference_of_piecewise(self):
        """a(t) - d(t) pieces generated by differences (Theorem 4.5 step 2)."""
        f = PiecewiseFunction([
            Piece(0.0, 2.0, Polynomial([1.0, 1.0]), "p"),
            Piece(2.0, INF, Polynomial([3.0]), "q"),
        ])
        g = PiecewiseFunction([
            Piece(0.0, 4.0, Polynomial([0.0, 0.5]), "r"),
            Piece(4.0, INF, Polynomial([2.0]), "s"),
        ])
        diff = combine_map_serial(f, g, FAM1, "diff")
        # Lemma 2.5: at most m + n = 4 nondegenerate intersections.
        assert len(diff) <= 4
        for t in (1.0, 3.0, 5.0):
            assert diff(t) == pytest.approx(f(t) - g(t))

    def test_sum_on_machine_matches(self):
        f = PiecewiseFunction.total(Polynomial([1.0, 2.0]), "f")
        g = PiecewiseFunction.total(Polynomial([5.0, -1.0]), "g")
        out = combine_pairwise(mesh_machine(16), f, g, FAM1, op="sum")
        assert out(3.0) == pytest.approx(f(3.0) + g(3.0))

    def test_disjoint_domains_empty(self):
        f = PiecewiseFunction([Piece(0.0, 1.0, Polynomial([1.0]), "f")])
        g = PiecewiseFunction([Piece(2.0, 3.0, Polynomial([1.0]), "g")])
        assert len(combine_map_serial(f, g, FAM1, "diff")) == 0


class TestThresholdIndicator:
    def test_line_threshold(self):
        F = PiecewiseFunction.total(Polynomial([0.0, 1.0]), "f")  # t
        ind = threshold_indicator(F, FAM1, 5.0, relation="le")
        assert ind(2.0) == 1.0
        assert ind(7.0) == 0.0
        assert len(ind) == 2

    def test_ge_relation(self):
        F = PiecewiseFunction.total(Polynomial([0.0, 1.0]), "f")
        ind = threshold_indicator(F, FAM1, 5.0, relation="ge")
        assert ind(2.0) == 0.0 and ind(7.0) == 1.0

    def test_parabola_dips_below(self):
        F = PiecewiseFunction.total(Polynomial([4.0, -4.0, 1.0]), "f")
        ind = threshold_indicator(F, FAM2, 1.0)
        # (t-2)^2 <= 1 on [1, 3].
        assert ind(0.5) == 0.0
        assert ind(2.0) == 1.0
        assert ind(3.5) == 0.0
        assert len(ind) == 3

    def test_machine_charges(self):
        F = PiecewiseFunction.total(Polynomial([0.0, 1.0]), "f")
        m = mesh_machine(16)
        threshold_indicator(F, FAM1, 5.0, machine=m)
        assert m.metrics.time > 0

    def test_rejects_bad_relation(self):
        F = PiecewiseFunction.total(Polynomial([0.0, 1.0]), "f")
        with pytest.raises(OperationContractError):
            threshold_indicator(F, FAM1, 5.0, relation="lt")
