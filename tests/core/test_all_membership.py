"""Tests for the all-points kinetic hull history."""

import math

import numpy as np
import pytest

from repro.baselines.brute import hull_vertices_at
from repro.core.hull_membership import all_hull_membership_intervals
from repro.core.steady import steady_hull
from repro.kinetics.motion import random_system
from repro.machines import hypercube_machine, mesh_machine


def members_at(intervals_per_query, t):
    return sorted(
        q for q, ivs in enumerate(intervals_per_query)
        if any(lo - 1e-9 <= t <= hi + 1e-9 for lo, hi in ivs)
    )


class TestAllMembership:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_instantaneous_hulls(self, seed):
        system = random_system(6, d=2, k=1, seed=seed + 11, scale=5.0)
        history = all_hull_membership_intervals(None, system)
        ends = [e for ivs in history for iv in ivs for e in iv
                if math.isfinite(e)]
        for t in np.linspace(0.07, 25.0, 60):
            if any(abs(t - e) < 0.05 for e in ends):
                continue
            assert members_at(history, t) == hull_vertices_at(system, t), \
                f"t={t}"

    def test_tail_matches_steady_hull(self):
        from repro.kinetics.motion import divergent_system
        system = divergent_system(7, d=2, seed=3)
        history = all_hull_membership_intervals(None, system)
        eventually = sorted(
            q for q, ivs in enumerate(history)
            if ivs and math.isinf(ivs[-1][1])
        )
        assert eventually == sorted(steady_hull(None, system))

    def test_machine_charges_max_not_sum(self):
        system = random_system(5, d=2, k=1, seed=9, scale=5.0)
        whole = mesh_machine(1024)
        all_hull_membership_intervals(whole, system)
        single = mesh_machine(1024)
        from repro.core.hull_membership import hull_membership_intervals
        worst = 0.0
        for q in range(len(system)):
            m = mesh_machine(1024)
            hull_membership_intervals(m, system, query=q)
            worst = max(worst, m.metrics.time)
        # Simultaneous instances: the whole history costs one (worst)
        # instance, not n of them.
        assert whole.metrics.time == pytest.approx(worst)

    def test_hypercube_agrees_with_serial(self):
        system = random_system(5, d=2, k=1, seed=21, scale=5.0)
        serial = all_hull_membership_intervals(None, system)
        machine = all_hull_membership_intervals(hypercube_machine(256),
                                                system)
        for a, b in zip(serial, machine):
            assert len(a) == len(b)
            for (l1, h1), (l2, h2) in zip(a, b):
                assert l1 == pytest.approx(l2, abs=1e-6)
