"""Property tests driven by the adversarial families in repro.verify.

These extend the existing property coverage (test_core_properties.py) with
the *degenerate* instance families the verification layer generates —
tangencies, duplicates, common-point ties, vanishing leading coefficients —
checking the paper's structural invariants survive them:

* Lemma 2.2 / Theorem 3.2: envelope piece count is at most
  ``lambda_bound(n, s)``;
* envelopes of total inputs are continuous across breakpoints;
* the envelope is pointwise minimal (resp. maximal) on sampled times;
* Theorem 4.5 hull membership agrees with the brute-force angular-gap
  oracle on non-degenerate systems.
"""

import math

import pytest
from hypothesis import given, settings

from repro.core.envelope import envelope_serial
from repro.core.family import PolynomialFamily
from repro.core.hull_membership import hull_membership_intervals, is_extreme_at
from repro.kinetics.davenport_schinzel import lambda_bound
from repro.verify.generators import curve_lists, planar_systems

FAM2 = PolynomialFamily(2)

# Sample grid for pointwise checks: away from 0 and spread past the
# typical breakpoint range of the quantised families.
_SAMPLES = [0.13, 0.71, 1.37, 2.53, 4.19, 7.91, 13.7, 29.3]


class TestEnvelopeInvariantsOnAdversarialFamilies:
    @given(curve_lists(s=2, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_piece_count_within_lambda_bound(self, fns):
        env = envelope_serial(fns, FAM2)
        assert len(env) <= lambda_bound(len(fns), 2)

    @given(curve_lists(s=2, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_continuity_at_breakpoints(self, fns):
        """Total inputs: pieces abut and values agree across breakpoints."""
        env = envelope_serial(fns, FAM2)
        assert env[0].lo == 0.0
        assert math.isinf(env[-1].hi)
        for a, b in zip(env.pieces, env.pieces[1:]):
            assert b.lo == pytest.approx(a.hi, abs=1e-7)
            va, vb = a.fn(a.hi), b.fn(b.lo)
            assert va == pytest.approx(vb, rel=1e-5, abs=1e-5)

    @given(curve_lists(s=2, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_pointwise_minimality(self, fns):
        env = envelope_serial(fns, FAM2)
        for t in _SAMPLES:
            want = min(f(t) for f in fns)
            assert env(t) == pytest.approx(want, rel=1e-6, abs=1e-6)

    @given(curve_lists(s=2, min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_pointwise_maximality(self, fns):
        env = envelope_serial(fns, FAM2, op="max")
        for t in _SAMPLES:
            want = max(f(t) for f in fns)
            assert env(t) == pytest.approx(want, rel=1e-6, abs=1e-6)


class TestHullMembershipConsistency:
    """Theorem 4.5 vs the brute angular-gap oracle.

    Restricted to the generic-position family: on exactly collinear
    configurations Lemma 4.4's boundary semantics and the strict-gap brute
    force legitimately disagree, which is a *semantics* difference, not a
    bug (the differential oracle covers the degenerate families
    backend-vs-backend instead).
    """

    @given(planar_systems(min_size=4, max_size=7, kinds=("random",)))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_oracle(self, system):
        intervals = hull_membership_intervals(None, system)
        ends = [e for iv in intervals for e in iv if math.isfinite(e)]
        for t in _SAMPLES:
            if any(abs(t - e) < 0.05 for e in ends):
                continue
            inside = any(lo - 1e-9 <= t <= hi + 1e-9 for lo, hi in intervals)
            assert inside == is_extreme_at(system, 0, t), (
                f"t={t}: algorithm={inside}, brute oracle={not inside}"
            )
