"""Deeper property-based coverage of the core algorithms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PolynomialFamily,
    Polynomial,
    certify_envelope,
    closest_point_sequence,
    envelope,
    envelope_serial,
    lambda_bound,
    mesh_machine,
    random_system,
)
from repro.kinetics.davenport_schinzel import lambda_exact

# Quantised coefficients keep root finding well-conditioned.
coeff = st.integers(-40, 40).map(lambda v: v / 4.0)
cubic = st.lists(coeff, min_size=4, max_size=4)
quadratic = st.lists(coeff, min_size=3, max_size=3)


class TestEnvelopeDegreeThree:
    """Theorem 3.2 beyond the bench workloads: s = 3 (cubics)."""

    @given(st.lists(cubic, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_serial_cubic_envelopes_certify(self, rows):
        fns = [Polynomial(r) for r in rows]
        fam = PolynomialFamily(3)
        env = envelope_serial(fns, fam)
        assert certify_envelope(env, fns, tol=1e-4)

    @given(st.lists(cubic, min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_machine_matches_serial_on_cubics(self, rows):
        fns = [Polynomial(r) for r in rows]
        fam = PolynomialFamily(3)
        serial = envelope_serial(fns, fam)
        machine = envelope(mesh_machine(64), fns, fam)
        assert machine.labels() == serial.labels()

    @given(st.lists(cubic, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_piece_count_within_lambda_bound(self, rows):
        fns = [Polynomial(r) for r in rows]
        env = envelope_serial(fns, PolynomialFamily(3))
        assert len(env) <= lambda_bound(len(fns), 3)


class TestTheorem41Bounds:
    """The closest-point sequence respects its lambda(n-1, 2k) sizing."""

    @pytest.mark.parametrize("seed", range(10))
    def test_linear_motion_piece_bound(self, seed):
        n, k = 9, 1
        system = random_system(n, d=2, k=k, seed=seed)
        env = closest_point_sequence(None, system)
        # d^2 curves have degree 2k = 2: lambda(n-1, 2) = 2(n-1) - 1.
        assert len(env) <= lambda_exact(n - 1, 2 * k)

    @pytest.mark.parametrize("seed", range(5))
    def test_quadratic_motion_piece_bound(self, seed):
        n, k = 7, 2
        system = random_system(n, d=2, k=k, seed=seed + 30)
        env = closest_point_sequence(None, system)
        assert len(env) <= lambda_bound(n - 1, 2 * k)

    @pytest.mark.parametrize("seed", range(5))
    def test_sequence_certifies(self, seed):
        system = random_system(6, d=2, k=1, seed=seed + 50)
        env = closest_point_sequence(None, system)
        fns = [system.distance_squared(0, j) for j in range(1, 6)]
        assert certify_envelope(env, fns, tol=1e-4)


class TestEnvelopeStructuralInvariants:
    @given(st.lists(quadratic, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_total_inputs_give_total_envelope(self, rows):
        fns = [Polynomial(r) for r in rows]
        env = envelope_serial(fns, PolynomialFamily(2))
        assert env[0].lo == 0.0
        assert math.isinf(env[-1].hi)
        for a, b in zip(env.pieces, env.pieces[1:]):
            assert b.lo == pytest.approx(a.hi, abs=1e-7)

    @given(st.lists(quadratic, min_size=2, max_size=8),
           st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_envelope_invariant_under_input_rotation(self, rows, shift):
        """The envelope is a set operation: input order is irrelevant."""
        fns = [Polynomial(r) for r in rows]
        fam = PolynomialFamily(2)
        labels = list(range(len(fns)))
        k = shift % len(fns)
        rotated = fns[k:] + fns[:k]
        rlabels = labels[k:] + labels[:k]
        a = envelope_serial(fns, fam, labels=labels)
        b = envelope_serial(rotated, fam, labels=rlabels)
        for t in np.linspace(0.1, 20, 17):
            assert a(t) == pytest.approx(b(t), abs=1e-7)
