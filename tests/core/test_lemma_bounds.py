"""Direct tests of the paper's counting lemmas and piece-bound claims."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PolynomialFamily,
    Polynomial,
    combine_pairwise_serial,
    envelope,
    envelope_serial,
    lambda_bound,
    mesh_machine,
    random_system,
    threshold_indicator,
)
from repro.core.containment import enclosing_cube_edge_function
from repro.kinetics.piecewise import INF, Piece, PiecewiseFunction

coeff = st.integers(-30, 30).map(lambda v: v / 3.0)


def random_piecewise(rng, n_pieces, degree, label):
    cuts = np.sort(rng.uniform(0, 30, n_pieces - 1)) if n_pieces > 1 else []
    bounds = [0.0, *cuts, INF]
    pieces = []
    for i, (a, b) in enumerate(zip(bounds, bounds[1:])):
        pieces.append(Piece(a, b, Polynomial(rng.uniform(-9, 9, degree + 1)),
                            (label, i)))
    return PiecewiseFunction(pieces, validate=False)


class TestLemma25:
    """Pieces of f have at most m + n nondegenerate intersections with
    pieces of g."""

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_intersection_count(self, m, n, seed):
        rng = np.random.default_rng(seed)
        f = random_piecewise(rng, m, 1, "f")
        g = random_piecewise(rng, n, 1, "g")
        count = sum(
            1 for p in f.pieces for q in g.pieces if p.overlaps(q)
        )
        assert count <= m + n


class TestLemma26:
    """min{f, g} has at most p (s + 1) pieces, with p the number of
    nondegenerate piece intersections."""

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 2),
           st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_combined_piece_count(self, m, n, s, seed):
        rng = np.random.default_rng(seed)
        f = random_piecewise(rng, m, s, "f")
        g = random_piecewise(rng, n, s, "g")
        p = sum(1 for a in f.pieces for b in g.pieces if a.overlaps(b))
        combined = combine_pairwise_serial(f, g, PolynomialFamily(s))
        assert len(combined) <= p * (s + 1)

    @given(st.integers(1, 4), st.integers(1, 2), st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_threshold_indicator_bound(self, m, s, seed):
        """Each input piece yields at most s + 1 indicator pieces."""
        rng = np.random.default_rng(seed)
        f = random_piecewise(rng, m, s, "f")
        ind = threshold_indicator(f, PolynomialFamily(s), 0.0)
        assert len(ind) <= m * (s + 1)


class TestTheorem47PieceBound:
    """D(t) has Theta(lambda(n, k)) pieces."""

    @pytest.mark.parametrize("seed", range(6))
    def test_edge_function_piece_count(self, seed):
        n, k = 10, 1
        system = random_system(n, d=2, k=k, seed=seed)
        D = enclosing_cube_edge_function(None, system)
        # Constant x lambda bound, with the constant from the Theta(1)
        # combine stages (d = 2 here; Lemma 2.6 gives (k+1) per stage).
        assert len(D) <= 4 * (k + 1) * lambda_bound(n, k)


class TestBestCaseRemark:
    """The remark after Theorem 3.4: when the envelope has far fewer than
    lambda(n, k) pieces, the mesh construction runs faster — our adaptive
    substring sizing realises this best case."""

    def test_dominated_family_is_cheaper_than_lambda_attaining(self):
        n = 256
        rng = np.random.default_rng(0)
        # Worst case: tangent lines attain lambda(n, 1) = n pieces at every
        # level of the recursion.
        from repro.report.figures import tangent_lines
        worst = tangent_lines(n)
        # Best case: one globally dominant (lowest) line, everything else
        # far above it: the envelope has exactly 1 piece.
        dominated = [Polynomial([-1e9, -1.0])] + [
            Polynomial(rng.uniform(10, 20, 2)) for _ in range(n - 1)
        ]
        fam = PolynomialFamily(1)
        m1, m2 = mesh_machine(1024), mesh_machine(1024)
        env_w = envelope(m1, worst, fam)
        env_d = envelope(m2, dominated, fam)
        assert len(env_w) == n and len(env_d) == 1
        # The adaptive substring sizing turns small envelopes into small
        # machines: a >2x measured separation at n = 256.
        assert m2.metrics.time < 0.5 * m1.metrics.time

    def test_machine_and_serial_agree_in_best_case(self):
        n = 64
        rng = np.random.default_rng(1)
        dominated = [Polynomial([-1e5, -2.0])] + [
            Polynomial(rng.uniform(5, 15, 2)) for _ in range(n - 1)
        ]
        fam = PolynomialFamily(1)
        a = envelope(mesh_machine(256), dominated, fam)
        b = envelope_serial(dominated, fam)
        assert a.labels() == b.labels() == [0]
