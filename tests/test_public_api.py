"""The public API surface: importability, __all__ hygiene, docstrings."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.kinetics", "repro.machines", "repro.ops", "repro.geometry",
    "repro.core", "repro.core.steady", "repro.baselines.pram",
    "repro.baselines.serial", "repro.baselines.brute", "repro.analysis",
    "repro.machines.routing", "repro.core.pairs", "repro.errors",
]


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize("mod", SUBPACKAGES)
    def test_subpackages_import(self, mod):
        importlib.import_module(mod)

    def test_every_public_callable_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"missing docstrings: {missing}"

    def test_every_public_class_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing

    def test_subpackage_alls_resolve(self):
        for mod_name in SUBPACKAGES:
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name}.{name}"


class TestEndToEndSmoke:
    """The README quickstart, verbatim semantics."""

    def test_quickstart(self):
        system = repro.random_system(16, d=2, k=1, seed=7)
        machine = repro.mesh_machine(64)
        seq = repro.closest_point_sequence(machine, system)
        assert len(seq.labels()) >= 1
        assert machine.metrics.time > 0

    def test_error_hierarchy(self):
        assert issubclass(repro.DegenerateSystemError, repro.ReproError)
        assert issubclass(repro.MachineConfigurationError, repro.ReproError)
        assert issubclass(repro.OperationContractError, repro.ReproError)
