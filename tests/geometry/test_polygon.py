"""Tests for the convex-polygon utilities."""

import math

import numpy as np
import pytest

from repro.core.steady.reduction import SteadyValue
from repro.errors import DegenerateSystemError
from repro.geometry.polygon import (
    is_ccw_convex,
    signed_area2,
    support_vertex,
    width_squared_along,
)
from repro.kinetics.polynomial import Polynomial

SQUARE = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]


class TestSignedArea:
    def test_square(self):
        assert signed_area2(SQUARE) == pytest.approx(8.0)  # 2 * area

    def test_cw_is_negative(self):
        assert signed_area2(SQUARE[::-1]) == pytest.approx(-8.0)

    def test_triangle(self):
        tri = [(0.0, 0.0), (4.0, 0.0), (0.0, 3.0)]
        assert signed_area2(tri) == pytest.approx(12.0)

    def test_needs_three(self):
        with pytest.raises(DegenerateSystemError):
            signed_area2([(0, 0), (1, 1)])

    def test_steady_value_coordinates(self):
        def sv(*c):
            return SteadyValue(Polynomial(list(c)))
        poly = [(sv(0.0), sv(0.0)), (sv(0.0, 1.0), sv(0.0)),
                (sv(0.0), sv(0.0, 1.0))]
        area = signed_area2(poly)
        # Area grows like t^2 / 2 * 2 = t^2 -> positive at infinity.
        assert area.sign() > 0


class TestConvexity:
    def test_square_ccw(self):
        assert is_ccw_convex(SQUARE)
        assert not is_ccw_convex(SQUARE[::-1])

    def test_reflex_rejected(self):
        poly = [(0, 0), (4, 0), (2, 1), (2, 4)]  # dent at (2, 1)
        assert not is_ccw_convex(poly)

    def test_collinear_strictness(self):
        poly = [(0, 0), (1, 0), (2, 0), (2, 2), (0, 2)]
        assert not is_ccw_convex(poly, strict=True)
        assert is_ccw_convex(poly, strict=False)

    def test_hull_output_is_convex(self):
        from repro.geometry import convex_hull
        pts = [tuple(p) for p in
               np.random.default_rng(0).uniform(-10, 10, (30, 2))]
        hull = convex_hull(pts)
        assert is_ccw_convex([pts[i] for i in hull])


class TestSupport:
    def test_square_directions(self):
        assert support_vertex(SQUARE, (1.0, 0.0)) in (1, 2)   # right side
        assert support_vertex(SQUARE, (0.0, 1.0)) in (2, 3)   # top
        assert support_vertex(SQUARE, (-1.0, -1.0)) == 0      # bottom-left

    def test_empty_rejected(self):
        with pytest.raises(DegenerateSystemError):
            support_vertex([], (1.0, 0.0))

    def test_matches_numpy_argmax(self):
        rng = np.random.default_rng(4)
        pts = [tuple(p) for p in rng.uniform(-5, 5, (12, 2))]
        for _ in range(10):
            d = rng.normal(size=2)
            i = support_vertex(pts, tuple(d))
            projs = np.array(pts) @ d
            assert projs[i] == pytest.approx(projs.max())


class TestWidth:
    def test_square_axis_widths(self):
        # direction (1,0): span 2, squared 4 (unnormalised |d|=1).
        assert width_squared_along(SQUARE, (1.0, 0.0)) == pytest.approx(4.0)
        # direction (1,1): projections 0..4 -> 16; |d|^2 = 2 -> width^2 = 8.
        assert width_squared_along(SQUARE, (1.0, 1.0)) == pytest.approx(16.0)

    def test_degenerate_direction(self):
        assert width_squared_along(SQUARE, (0.0, 0.0)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(DegenerateSystemError):
            width_squared_along([], (1.0, 0.0))
