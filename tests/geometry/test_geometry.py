"""Tests for the static geometry substrate (convex hull, closest pair,
antipodal pairs, enclosing rectangle) against brute-force oracles."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DegenerateSystemError
from repro.geometry import (
    antipodal_pairs,
    antipodal_pairs_brute,
    antipodal_pairs_parallel,
    closest_pair,
    closest_pair_brute,
    closest_pair_parallel,
    convex_hull,
    convex_hull_parallel,
    diameter_pair,
    dist2,
    enclosing_rectangle,
    enclosing_rectangle_parallel,
    hull_contains,
    orientation,
    rectangle_corners,
)
from repro.machines import hypercube_machine, mesh_machine

# Grid-quantised coordinates: avoids denormal-scale inputs whose cross
# products underflow double precision (a float artifact, not an algorithm
# property worth testing).
finite = st.integers(min_value=-10000, max_value=10000).map(lambda v: v / 100.0)
point = st.tuples(finite, finite)


def rand_points(n, seed):
    rng = np.random.default_rng(seed)
    return [tuple(p) for p in rng.uniform(-50, 50, (n, 2))]


def circle_points(n, r=10.0, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        th = 2 * math.pi * i / n
        rr = r + (rng.uniform(-jitter, jitter) if jitter else 0.0)
        out.append((rr * math.cos(th), rr * math.sin(th)))
    return out


class TestOrientation:
    def test_ccw(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1
        assert orientation((0, 0), (0, 1), (1, 0)) == -1
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_dist2(self):
        assert dist2((0, 0), (3, 4)) == 25


class TestConvexHull:
    def test_square_with_interior(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2), (1, 3)]
        hull = convex_hull(pts)
        assert sorted(hull) == [0, 1, 2, 3]

    def test_ccw_orientation(self):
        pts = rand_points(30, 1)
        hull = convex_hull(pts)
        h = [pts[i] for i in hull]
        for a, b, c in zip(h, h[1:] + h[:1], h[2:] + h[:2]):
            assert orientation(a, b, c) == 1

    def test_collinear_points_excluded(self):
        pts = [(0, 0), (1, 0), (2, 0), (2, 2), (0, 2), (1, 2)]
        hull = convex_hull(pts)
        assert sorted(hull) == [0, 2, 3, 4]

    def test_all_collinear(self):
        pts = [(0, 0), (1, 1), (2, 2), (3, 3)]
        hull = convex_hull(pts)
        assert sorted(hull) == [0, 3]

    def test_duplicates_tolerated(self):
        pts = [(0, 0), (0, 0), (1, 0), (0, 1)]
        hull = convex_hull(pts)
        assert len(hull) == 3

    def test_single_point(self):
        assert convex_hull([(5, 5)]) == [0]

    def test_empty_raises(self):
        with pytest.raises(DegenerateSystemError):
            convex_hull([])

    def test_hull_contains_all_points(self):
        pts = rand_points(40, 3)
        hull = convex_hull(pts)
        for p in pts:
            assert hull_contains(pts, hull, p)

    @given(st.lists(point, min_size=3, max_size=25, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_property_hull_invariants(self, pts):
        hull = convex_hull(pts)
        # Every input point inside; every hull vertex is an input point;
        # hull is convex (strict turns).
        h = [pts[i] for i in hull]
        if len(hull) >= 3:
            for a, b, c in zip(h, h[1:] + h[:1], h[2:] + h[:2]):
                assert orientation(a, b, c) == 1
        for p in pts:
            assert hull_contains(pts, hull, p)

    def test_parallel_matches_serial(self):
        for seed in range(4):
            pts = rand_points(33, seed)
            want = sorted(convex_hull(pts))
            for mk in (mesh_machine, hypercube_machine):
                m = mk(64)
                got = sorted(convex_hull_parallel(m, pts))
                assert got == want
                assert m.metrics.time > 0

    def test_parallel_cost_scaling_mesh(self):
        def cost(n):
            m = mesh_machine(4096)
            convex_hull_parallel(m, circle_points(n, seed=2))
            return m.metrics.time
        ratio = cost(1024) / cost(64)
        assert 2.0 < ratio < 10.0  # ~sqrt(16)=4 with slack


class TestClosestPair:
    @pytest.mark.parametrize("n", [2, 3, 5, 10, 40, 100])
    def test_matches_brute(self, n):
        pts = rand_points(n, n)
        i, j = closest_pair(pts)
        bi, bj = closest_pair_brute(pts)
        assert dist2(pts[i], pts[j]) == pytest.approx(dist2(pts[bi], pts[bj]))

    def test_requires_two(self):
        with pytest.raises(DegenerateSystemError):
            closest_pair([(0, 0)])

    def test_duplicate_points_distance_zero(self):
        pts = [(0, 0), (5, 5), (5, 5), (9, 1)]
        i, j = closest_pair(pts)
        assert dist2(pts[i], pts[j]) == 0

    @given(st.lists(point, min_size=2, max_size=30, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_brute(self, pts):
        i, j = closest_pair(pts)
        bi, bj = closest_pair_brute(pts)
        assert dist2(pts[i], pts[j]) == pytest.approx(
            dist2(pts[bi], pts[bj]), rel=1e-9
        )

    def test_parallel_matches_and_charges(self):
        pts = rand_points(50, 7)
        m = mesh_machine(64)
        i, j = closest_pair_parallel(m, pts)
        bi, bj = closest_pair_brute(pts)
        assert dist2(pts[i], pts[j]) == pytest.approx(dist2(pts[bi], pts[bj]))
        assert m.metrics.time > 0


class TestAntipodal:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 13])
    def test_matches_brute_on_circles(self, n):
        poly = circle_points(n, jitter=1.0, seed=n)
        hull = convex_hull(poly)
        poly = [poly[i] for i in hull]
        got = antipodal_pairs(poly)
        want = antipodal_pairs_brute(poly)
        assert set(got) == set(want)

    def test_square_antipodal(self):
        poly = [(0, 0), (1, 0), (1, 1), (0, 1)]
        pairs = set(antipodal_pairs(poly))
        # Both diagonals must be present (opposite corners).
        assert (0, 2) in pairs and (1, 3) in pairs

    def test_two_vertices(self):
        assert antipodal_pairs([(0, 0), (1, 1)]) == [(0, 1)]

    def test_needs_two(self):
        with pytest.raises(DegenerateSystemError):
            antipodal_pairs([(0, 0)])

    def test_diameter_matches_brute_max(self):
        for seed in range(5):
            pts = rand_points(25, seed + 100)
            hull = convex_hull(pts)
            poly = [pts[i] for i in hull]
            i, j = diameter_pair(poly)
            want = max(
                dist2(a, b) for x, a in enumerate(poly) for b in poly[x + 1:]
            )
            assert dist2(poly[i], poly[j]) == pytest.approx(want)

    def test_diameter_is_antipodal_shamos(self):
        """Shamos: a farthest pair must be an antipodal pair."""
        pts = circle_points(11, jitter=2.0, seed=3)
        poly = [pts[i] for i in convex_hull(pts)]
        i, j = diameter_pair(poly)
        assert (min(i, j), max(i, j)) in set(antipodal_pairs(poly))

    def test_parallel_charges_and_matches(self):
        poly = circle_points(16, seed=5)
        m = hypercube_machine(16)
        got = antipodal_pairs_parallel(m, poly)
        assert set(got) == set(antipodal_pairs(poly))
        assert m.metrics.time > 0

    def test_pairs_per_vertex_bounded(self):
        """Lemma 5.5: no PE (edge) holds more than four pairs."""
        for n in (6, 9, 16):
            poly = circle_points(n, jitter=0.5, seed=n)
            poly = [poly[i] for i in convex_hull(poly)]
            pairs = antipodal_pairs(poly)
            # Total pairs is O(m): at most 3m/2 for a convex polygon.
            assert len(pairs) <= 2 * len(poly)


class TestEnclosingRectangle:
    def brute_min_area(self, poly):
        """Try every edge direction exhaustively with numpy."""
        pts = np.array(poly, dtype=float)
        best = math.inf
        m = len(poly)
        for e in range(m):
            a, b = pts[e], pts[(e + 1) % m]
            d = b - a
            d = d / np.linalg.norm(d)
            nrm = np.array([-d[1], d[0]])
            proj = (pts - a) @ d
            h = (pts - a) @ nrm
            area = (proj.max() - proj.min()) * (h.max() - h.min())
            best = min(best, area)
        return best

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute(self, seed):
        pts = rand_points(20, seed + 50)
        poly = [pts[i] for i in convex_hull(pts)]
        sup = enclosing_rectangle(poly)
        assert sup.area() == pytest.approx(self.brute_min_area(poly), rel=1e-9)

    def test_square_optimal(self):
        poly = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]
        sup = enclosing_rectangle(poly)
        assert sup.area() == pytest.approx(4.0)

    def test_corners_contain_polygon(self):
        pts = rand_points(15, 9)
        poly = [pts[i] for i in convex_hull(pts)]
        sup = enclosing_rectangle(poly)
        corners = rectangle_corners(poly, sup)
        # All polygon points inside the rectangle (within float tolerance:
        # support vertices sit exactly on the boundary).
        for p in poly:
            q = np.array(p, dtype=float)
            for a, b in zip(corners, np.roll(corners, -1, axis=0)):
                e = b - a
                crossv = e[0] * (q[1] - a[1]) - e[1] * (q[0] - a[0])
                assert crossv >= -1e-6 * max(1.0, np.abs(corners).max())

    def test_needs_three(self):
        with pytest.raises(DegenerateSystemError):
            enclosing_rectangle([(0, 0), (1, 1)])

    def test_parallel_charges(self):
        poly = circle_points(12, seed=2)
        m = mesh_machine(16)
        sup = enclosing_rectangle_parallel(m, poly)
        assert sup.area() == pytest.approx(enclosing_rectangle(poly).area())
        assert m.metrics.time > 0
