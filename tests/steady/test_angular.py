"""Tests for the angular steady-membership route (remark after Prop 5.4)."""

import pytest

from repro.core.steady import steady_hull, steady_is_extreme_angular
from repro.core.steady.hull import _SteadyDirection
from repro.core.steady.reduction import SteadyValue
from repro.kinetics.motion import Motion, PointSystem, divergent_system
from repro.kinetics.polynomial import Polynomial
from repro.machines import hypercube_machine, mesh_machine


def sv(*coeffs):
    return SteadyValue(Polynomial(list(coeffs)))


class TestSteadyDirection:
    def test_half_plane_split(self):
        up = _SteadyDirection(sv(1.0), sv(0.0, 1.0), 0)     # angle -> 90 deg
        down = _SteadyDirection(sv(1.0), sv(0.0, -1.0), 1)  # -> -90 deg
        assert up < down  # upper half sorts before lower half

    def test_within_half_cross_order(self):
        a = _SteadyDirection(sv(0.0, 2.0), sv(0.0, 1.0), 0)  # ~26 deg
        b = _SteadyDirection(sv(0.0, 1.0), sv(0.0, 2.0), 1)  # ~63 deg
        assert a < b and b > a and a != b

    def test_equal_directions(self):
        a = _SteadyDirection(sv(0.0, 1.0), sv(0.0, 1.0), 0)
        b = _SteadyDirection(sv(0.0, 2.0), sv(0.0, 2.0), 1)  # same angle
        assert a == b

    def test_negative_x_axis_is_upper_half(self):
        # Angle exactly pi: counted in [0, pi) half? Our convention: the
        # T=pi boundary belongs to half 0 via dx sign; ordering only needs
        # consistency, checked by sorting round trips in the system tests.
        left = _SteadyDirection(sv(-1.0), sv(0.0), 0)
        right = _SteadyDirection(sv(1.0), sv(0.0), 1)
        assert right < left


class TestAngularMembership:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_hull_construction(self, seed):
        system = divergent_system(7, d=2, seed=seed + 70)
        hull = set(steady_hull(None, system))
        for q in range(len(system)):
            assert steady_is_extreme_angular(None, system, q) == (q in hull)

    def test_two_points(self):
        system = PointSystem([
            Motion.linear([0.0, 0.0], [1.0, 0.0]),
            Motion.linear([1.0, 1.0], [2.0, 1.0]),
        ])
        assert steady_is_extreme_angular(None, system, 0)
        assert steady_is_extreme_angular(None, system, 1)

    def test_collinear_interior_point_not_extreme(self):
        """Midpoint of a steady segment: gap exactly pi -> on an edge."""
        system = PointSystem([
            Motion.linear([0.0, 0.1], [0.0, 0.0]),   # query, stationary
            Motion.linear([-1.0, 0.1], [-1.0, 0.0]),  # drifts left
            Motion.linear([1.0, 0.1], [1.0, 0.0]),   # drifts right
        ])
        assert not steady_is_extreme_angular(None, system, 0)
        assert steady_is_extreme_angular(None, system, 1)
        assert steady_is_extreme_angular(None, system, 2)

    def test_machine_charges_sort_class(self):
        system = divergent_system(8, d=2, seed=5)
        mesh = mesh_machine(16)
        cube = hypercube_machine(16)
        a = steady_is_extreme_angular(mesh, system, 0)
        b = steady_is_extreme_angular(cube, system, 0)
        assert a == b
        assert mesh.metrics.time > cube.metrics.time > 0

    def test_planar_only(self):
        with pytest.raises(ValueError):
            steady_is_extreme_angular(
                None, divergent_system(4, d=3, seed=0), 0
            )
