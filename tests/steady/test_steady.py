"""Tests for Section 5: steady-state algorithms and the Lemma 5.1 reduction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.steady import (
    SteadyValue,
    steady_antipodal_pairs,
    steady_closest_pair,
    steady_compare,
    steady_diameter_squared,
    steady_enclosing_rectangle,
    steady_farthest_neighbor,
    steady_farthest_pair,
    steady_hull,
    steady_is_extreme,
    steady_nearest_neighbor,
    steady_points,
    steady_rectangle_snapshot,
)
from repro.errors import DegenerateSystemError
from repro.geometry import convex_hull, dist2, enclosing_rectangle
from repro.kinetics.motion import PointSystem, divergent_system, random_system
from repro.kinetics.polynomial import Polynomial
from repro.machines import hypercube_machine, mesh_machine


def settle_time(system):
    """A time large enough that comparison outcomes have stabilised.

    Checked, not assumed: callers verify agreement at t and 4t.
    """
    return system.horizon() * 50.0


def float_points(system, t):
    return [tuple(p) for p in system.positions(t)]


def assert_stable(fn):
    """Run ``fn(t)`` at two well-separated large times; must agree."""
    __tracebackhide__ = True


class TestSteadyValue:
    def test_total_order_matches_large_t(self):
        a = SteadyValue(Polynomial([100.0, 1.0]))
        b = SteadyValue(Polynomial([0.0, 2.0]))
        assert a < b and b > a and a != b
        assert not a == b

    def test_arithmetic(self):
        a = SteadyValue(Polynomial([1.0, 1.0]))
        b = SteadyValue(Polynomial([2.0]))
        assert (a + b)(3.0) == pytest.approx(6.0)
        assert (a - b)(3.0) == pytest.approx(2.0)
        assert (a * b)(3.0) == pytest.approx(8.0)
        assert (-a)(3.0) == pytest.approx(-4.0)
        assert abs(SteadyValue(Polynomial([0.0, -1.0]))).sign() > 0

    def test_scalar_coercion(self):
        a = SteadyValue(Polynomial([0.0, 1.0]))
        assert a > 1000.0  # t beats any constant eventually
        assert (2 - a).sign() < 0
        assert (3 * a).sign() > 0

    def test_equal_polynomials(self):
        a = SteadyValue(Polynomial([1.0, 2.0]))
        b = SteadyValue(Polynomial([1.0, 2.0]))
        assert a == b and a <= b and a >= b

    def test_steady_compare_function(self):
        assert steady_compare(Polynomial([0.0, 1.0]), Polynomial([99.0])) == 1

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=3),
           st.lists(st.floats(-10, 10), min_size=1, max_size=3))
    @settings(max_examples=80)
    def test_property_order_consistent_with_eval(self, ca, cb):
        a, b = SteadyValue(Polynomial(ca)), SteadyValue(Polynomial(cb))
        t = (a.poly - b.poly).horizon() * 8 + 1
        if a < b:
            assert a(t) <= b(t) + 1e-9 * max(1, abs(b(t)))
        elif a > b:
            assert a(t) >= b(t) - 1e-9 * max(1, abs(b(t)))


class TestSteadyNeighbors:
    @pytest.mark.parametrize("seed", range(5))
    def test_nearest_matches_large_t(self, seed):
        system = divergent_system(8, seed=seed)
        got = steady_nearest_neighbor(None, system)
        t = settle_time(system)
        for tt in (t, 4 * t):
            pos = system.positions(tt)
            d = np.linalg.norm(pos - pos[0], axis=1)
            d[0] = np.inf
            assert got == int(np.argmin(d)), f"at t={tt}"

    @pytest.mark.parametrize("seed", range(3))
    def test_farthest_matches_large_t(self, seed):
        system = divergent_system(7, seed=seed + 20)
        got = steady_farthest_neighbor(None, system)
        t = settle_time(system)
        pos = system.positions(t)
        d = np.linalg.norm(pos - pos[0], axis=1)
        d[0] = -np.inf
        assert got == int(np.argmax(d))

    def test_machine_agrees_and_charges(self):
        system = divergent_system(8, seed=2)
        want = steady_nearest_neighbor(None, system)
        for mk in (mesh_machine, hypercube_machine):
            m = mk(16)
            assert steady_nearest_neighbor(m, system) == want
            assert m.metrics.time > 0

    def test_nn_cheaper_than_transient_solution(self):
        """Section 5 motivation: steady NN avoids the envelope machinery."""
        from repro.core.neighbors import closest_point_sequence
        system = random_system(16, d=2, k=1, seed=3)
        m1, m2 = mesh_machine(64), mesh_machine(64)
        steady_nearest_neighbor(m1, system)
        closest_point_sequence(m2, system)
        assert m1.metrics.time < m2.metrics.time

    def test_rejects_single_point(self):
        from repro.kinetics.motion import Motion
        with pytest.raises(DegenerateSystemError):
            steady_nearest_neighbor(None, PointSystem(
                [Motion.stationary([0.0, 0.0]),
                 Motion.stationary([1.0, 0.0])]), query=5)


class TestSteadyClosestPair:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_large_t(self, seed):
        system = divergent_system(9, d=2, seed=seed + 5)
        i, j = steady_closest_pair(None, system)
        t = settle_time(system)
        pts = float_points(system, t)
        want_d = min(
            dist2(a, b) for x, a in enumerate(pts) for b in pts[x + 1:]
        )
        assert dist2(pts[i], pts[j]) == pytest.approx(want_d, rel=1e-9)

    def test_machine_charges(self):
        system = divergent_system(8, seed=1)
        m = hypercube_machine(16)
        got = steady_closest_pair(m, system)
        assert got == steady_closest_pair(None, system)
        assert m.metrics.time > 0


class TestSteadyHull:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_float_hull_at_large_t(self, seed):
        system = divergent_system(10, d=2, seed=seed + 30)
        got = sorted(steady_hull(None, system))
        t = settle_time(system)
        for tt in (t, 4 * t):
            want = sorted(convex_hull(float_points(system, tt)))
            assert got == want, f"at t={tt}"

    def test_is_extreme(self):
        system = divergent_system(8, d=2, seed=4)
        hull = steady_hull(None, system)
        for q in range(len(system)):
            assert steady_is_extreme(None, system, q) == (q in hull)

    def test_machine_agrees(self):
        system = divergent_system(9, d=2, seed=7)
        want = sorted(steady_hull(None, system))
        m = mesh_machine(16)
        assert sorted(steady_hull(m, system)) == want
        assert m.metrics.time > 0


class TestSteadyDiameter:
    @pytest.mark.parametrize("seed", range(4))
    def test_farthest_pair_matches_large_t(self, seed):
        system = divergent_system(9, d=2, seed=seed + 40)
        i, j = steady_farthest_pair(None, system)
        t = settle_time(system)
        pts = float_points(system, t)
        want = max(
            dist2(a, b) for x, a in enumerate(pts) for b in pts[x + 1:]
        )
        assert dist2(pts[i], pts[j]) == pytest.approx(want, rel=1e-9)

    def test_diameter_squared_polynomial(self):
        system = divergent_system(7, d=2, seed=3)
        d2 = steady_diameter_squared(None, system)
        i, j = steady_farthest_pair(None, system)
        t = settle_time(system)
        pos = system.positions(t)
        assert d2(t) == pytest.approx(float(np.sum((pos[i] - pos[j]) ** 2)))

    def test_antipodal_pairs_are_hull_indices(self):
        system = divergent_system(8, d=2, seed=9)
        hull = set(steady_hull(None, system))
        for i, j in steady_antipodal_pairs(None, system):
            assert i in hull and j in hull

    def test_machine_agrees(self):
        system = divergent_system(8, d=2, seed=11)
        want = set(steady_farthest_pair(None, system))
        m = hypercube_machine(16)
        assert set(steady_farthest_pair(m, system)) == want
        assert m.metrics.time > 0


class TestSteadyRectangle:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_float_rectangle_at_large_t(self, seed):
        system = divergent_system(10, d=2, seed=seed + 60)
        hull, sup = steady_enclosing_rectangle(None, system)
        t = settle_time(system)
        # Compare achieved area against the float algorithm at large t.
        pts = float_points(system, t)
        poly = [pts[i] for i in hull]
        float_sup = enclosing_rectangle(poly)
        # The steady choice, evaluated at t, attains the float optimum.
        steady_area = (float(sup.area_num.poly(t))
                       / float(sup.len2_den.poly(t)))
        assert steady_area == pytest.approx(float_sup.area(), rel=1e-6)

    def test_snapshot_contains_points(self):
        system = divergent_system(8, d=2, seed=13)
        hull, sup = steady_enclosing_rectangle(None, system)
        t = settle_time(system)
        corners = steady_rectangle_snapshot(system, hull, sup, t)
        pos = system.positions(t)
        scale = np.abs(corners).max()
        for q in pos:
            for a, b in zip(corners, np.roll(corners, -1, axis=0)):
                e = b - a
                crossv = e[0] * (q[1] - a[1]) - e[1] * (q[0] - a[0])
                assert crossv >= -1e-6 * max(1.0, scale)

    def test_machine_charges(self):
        system = divergent_system(8, d=2, seed=17)
        m = mesh_machine(16)
        hull, sup = steady_enclosing_rectangle(m, system)
        assert m.metrics.time > 0

    def test_degenerate_hull_rejected(self):
        from repro.kinetics.motion import Motion
        collinear = PointSystem([
            Motion.linear([float(i), 0.0], [1.0, 0.0]) for i in range(4)
        ])
        with pytest.raises(DegenerateSystemError):
            steady_enclosing_rectangle(None, collinear)
