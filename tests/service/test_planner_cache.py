"""Unit tests for the batching planner and the sharded result cache.

The planner half pins the deterministic grouping contract (first-arrival
unit order, in-unit arrival order, dedupe accounting, max-batch splits,
the unbatched degenerate mode).  The cache half extends the bounded-cache
discipline of ``tests/machines/test_cache_bounds.py`` to the serving
layer: per-shard caps under adversarial streams, exact hit/miss/eviction
reconciliation, and the recompute-bit-identity guarantee for evicted
entries.
"""

import json
from types import SimpleNamespace

import pytest

from repro.service import ShardedResultCache, plan_batches, request, run_key
from repro.service.model import run_driver, shard_of
from repro.trace.registry import get_counter

pytestmark = pytest.mark.service


def pend(req):
    return SimpleNamespace(request=req)


def req_seeded(seed, **kw):
    return request("steady_hull", kind="random", seed=seed, n=5, **kw)


def plan(reqs, **kw):
    kw.setdefault("machine_size", 64)
    kw.setdefault("executor", None)
    kw.setdefault("n_shards", 4)
    return plan_batches([pend(r) for r in reqs], **kw)


class TestPlanner:
    def test_same_run_key_collapses_into_one_unit(self):
        full = request("envelope", kind="random", seed=0, n=4, op="min")
        at = request("envelope", kind="random", seed=0, n=4, op="min",
                     q="value_at", t=0.5)
        units = plan([full, at, full])
        assert len(units) == 1
        assert units[0].size == 3
        # only the exact duplicate of `full` is a dedupe hit
        assert units[0].dedup_hits == 1

    def test_run_parameters_split_units(self):
        a = request("envelope", kind="random", seed=0, n=4, op="min")
        b = request("envelope", kind="random", seed=0, n=4, op="max")
        units = plan([a, b, a, b])
        assert [u.size for u in units] == [2, 2]
        assert units[0].key != units[1].key

    def test_units_emitted_in_first_arrival_order(self):
        reqs = [req_seeded(2), req_seeded(0), req_seeded(1), req_seeded(0)]
        units = plan(reqs)
        seeds = [u.waiters[0].request.family.seed for u in units]
        assert seeds == [2, 0, 1]

    def test_waiters_keep_arrival_order(self):
        at = [request("steady_hull", kind="random", seed=0, n=5,
                      q="is_extreme", i=i) for i in range(4)]
        units = plan([at[2], at[0], at[3], at[1]])
        assert len(units) == 1
        order = [dict(p.request.params)["i"] for p in units[0].waiters]
        assert order == [2, 0, 3, 1]

    def test_max_batch_splits_oversized_units(self):
        reqs = [req_seeded(0)] * 7
        units = plan(reqs, max_batch=3)
        assert [u.size for u in units] == [3, 3, 1]
        assert len({u.key for u in units}) == 1

    def test_unbatched_mode_is_one_unit_per_request(self):
        reqs = [req_seeded(0), req_seeded(0), req_seeded(1)]
        units = plan(reqs, batching=False)
        assert [u.size for u in units] == [1, 1, 1]
        assert all(u.dedup_hits == 0 for u in units)

    def test_unit_shard_matches_shard_of(self):
        units = plan([req_seeded(s) for s in range(10)], n_shards=3)
        for unit in units:
            assert unit.shard == shard_of(unit.key, 3)

    def test_planning_is_deterministic(self):
        reqs = [req_seeded(s % 4) for s in range(12)]
        a = plan(reqs, max_batch=2)
        b = plan(reqs, max_batch=2)
        assert [(u.key, u.shard, u.size, u.dedup_hits) for u in a] == \
            [(u.key, u.shard, u.size, u.dedup_hits) for u in b]


def key_of(seed, machine_size=64, executor=None):
    return run_key(req_seeded(seed), machine_size, executor)


class TestShardedResultCache:
    def test_roundtrip_and_counters(self):
        cache = ShardedResultCache(8, shards=2)
        k = key_of(0)
        assert cache.get(k) is None
        cache.put(k, {"result": 1})
        assert cache.get(k) == {"result": 1}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_get_refreshes_recency(self):
        cache = ShardedResultCache(2, shards=1)
        k0, k1, k2 = key_of(0), key_of(1), key_of(2)
        cache.put(k0, {"v": 0})
        cache.put(k1, {"v": 1})
        assert cache.get(k0) == {"v": 0}   # k0 becomes most-recent
        cache.put(k2, {"v": 2})            # evicts LRU = k1
        assert cache.get(k1) is None
        assert cache.get(k0) == {"v": 0}
        assert cache.evictions == 1

    def test_per_shard_bound_under_adversarial_stream(self):
        cache = ShardedResultCache(8, shards=4)
        for seed in range(100):
            cache.put(key_of(seed), {"seed": seed})
        assert all(n <= cache.per_shard for n in cache.shard_sizes())
        assert cache.size() <= cache.per_shard * cache.n_shards

    def test_eviction_counters_reconcile(self):
        cache = ShardedResultCache(6, shards=3)
        inserted = 0
        for seed in range(50):
            cache.put(key_of(seed), {"seed": seed})
            inserted += 1
        assert cache.size() == inserted - cache.evictions
        for seed in range(50):
            cache.get(key_of(seed))
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["hits"] == cache.size()
        assert stats["misses"] == 50 - cache.size()

    def test_zero_capacity_disables_the_cache(self):
        cache = ShardedResultCache(0, shards=4)
        k = key_of(0)
        cache.put(k, {"v": 1})
        assert cache.get(k) is None
        assert cache.size() == 0 and cache.per_shard == 0
        assert cache.stats()["hit_rate"] == 0.0

    def test_clear_empties_every_shard(self):
        cache = ShardedResultCache(16, shards=4)
        for seed in range(12):
            cache.put(key_of(seed), {"seed": seed})
        cache.clear()
        assert cache.size() == 0
        assert cache.shard_sizes() == [0, 0, 0, 0]

    def test_reput_same_key_does_not_evict_others(self):
        cache = ShardedResultCache(2, shards=1)
        k0, k1 = key_of(0), key_of(1)
        cache.put(k0, {"v": 0})
        cache.put(k1, {"v": 1})
        cache.put(k0, {"v": 0})   # refresh, not a growth
        assert cache.evictions == 0
        assert cache.size() == 2

    def test_evicted_entries_recompute_bit_identically(self):
        # The cache is an optimisation: losing an entry to eviction must
        # be invisible — the recomputed run is byte-equal to the evicted
        # one (pure driver + JSON-plain encoding).
        cache = ShardedResultCache(1, shards=1)
        req = req_seeded(3)
        entry = run_driver(req.algorithm, req.family, req.run_params(),
                           req.backend, 64)
        k = run_key(req, 64, None)
        cache.put(k, entry)
        cache.put(key_of(99), {"v": "displacer"})   # evicts the entry
        assert cache.get(k) is None
        recomputed = run_driver(req.algorithm, req.family,
                                req.run_params(), req.backend, 64)
        assert json.dumps(recomputed, sort_keys=True) == \
            json.dumps(entry, sort_keys=True)

    def test_registry_mirrors_instance_counters(self):
        hits0 = get_counter("service.cache.hits").value
        ev0 = get_counter("service.cache.evictions").value
        cache = ShardedResultCache(1, shards=1)
        cache.put(key_of(0), {"v": 0})
        cache.get(key_of(0))
        cache.put(key_of(1), {"v": 1})
        assert get_counter("service.cache.hits").value == hits0 + 1
        assert get_counter("service.cache.evictions").value == ev0 + 1

    def test_capacity_smaller_than_shards_still_holds_one_each(self):
        cache = ShardedResultCache(2, shards=4)
        assert cache.per_shard == 1
        for seed in range(20):
            cache.put(key_of(seed), {"seed": seed})
        assert all(n <= 1 for n in cache.shard_sizes())
