"""Hypothesis properties: serving machinery is semantically invisible.

Randomised request pools, duplicate-heavy streams, arrival permutations
and configuration draws — under all of them the served payload bytes
must equal the unbatched/uncached/single-shard reference, and the
serving counters must reconcile exactly.  Examples are kept small (each
one spins real asyncio services over real driver runs).
"""

import asyncio

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.service import QueryService, request
from repro.verify.compare import outputs_match

pytestmark = pytest.mark.service


def _envelope(kind, seed, n, op, backend):
    return request("envelope", kind=kind, seed=seed, n=n, op=op,
                   backend=backend)


def _envelope_at(kind, seed, n, op, t):
    return request("envelope", kind=kind, seed=seed, n=n, op=op,
                   q="value_at", t=t)


def _membership(kind, seed, n, query):
    return request("hull_membership", kind=kind, seed=seed, n=n,
                   query=query)


def _hull(kind, seed, n, backend):
    return request("steady_hull", kind=kind, seed=seed, n=n,
                   backend=backend)


def any_request():
    seeds = st.integers(0, 2)
    sizes = st.integers(3, 5)
    backends = st.sampled_from(["mesh", "serial"])
    return st.one_of(
        st.builds(_envelope, st.sampled_from(["random", "tangent"]),
                  seeds, sizes, st.sampled_from(["min", "max"]), backends),
        st.builds(_envelope_at, st.just("random"), seeds, sizes,
                  st.sampled_from(["min", "max"]),
                  st.sampled_from([0.0, 0.5, 2.0])),
        st.builds(_membership, st.sampled_from(["random", "crossing"]),
                  seeds, sizes, st.integers(0, 2)),
        st.builds(_hull, st.sampled_from(["random", "converging"]),
                  seeds, sizes, backends),
    )


@st.composite
def streams(draw):
    """A duplicate-heavy stream drawn from a small request pool."""
    pool = draw(st.lists(any_request(), min_size=1, max_size=3))
    return draw(st.lists(st.sampled_from(pool), min_size=1, max_size=7))


def serve_stream(reqs, **kwargs):
    async def go():
        async with QueryService(**kwargs) as svc:
            resps = await svc.submit_many(reqs)
        return resps, svc

    return asyncio.run(go())


def served_bytes(reqs, **kwargs):
    resps, _ = serve_stream(reqs, **kwargs)
    return [r.payload_bytes() for r in resps]


class TestServingInvisibility:
    @given(streams())
    @settings(max_examples=10, deadline=None)
    def test_batched_equals_unbatched_bytes(self, reqs):
        batched = served_bytes(reqs, shards=2, batching=True)
        unbatched = served_bytes(reqs, shards=2, batching=False,
                                 cache_capacity=0)
        assert batched == unbatched

    @given(streams(), st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_arrival_permutation_cannot_change_bytes(self, reqs, rng):
        reference = {}
        for req, blob in zip(reqs, served_bytes(reqs, shards=2)):
            reference[req.key()] = blob
        shuffled = list(reqs)
        rng.shuffle(shuffled)
        for req, blob in zip(shuffled, served_bytes(shuffled, shards=2)):
            assert blob == reference[req.key()]

    @given(streams(), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_shard_count_cannot_change_bytes(self, reqs, a, b):
        assert served_bytes(reqs, shards=a) == served_bytes(reqs, shards=b)

    @given(streams(), st.sampled_from([0, 1, 64]))
    @settings(max_examples=10, deadline=None)
    def test_cache_capacity_cannot_change_bytes(self, reqs, capacity):
        assert served_bytes(reqs, cache_capacity=capacity) == \
            served_bytes(reqs, cache_capacity=256)

    @given(streams())
    @settings(max_examples=10, deadline=None)
    def test_batched_answers_match_unbatched_under_verify_compare(
            self, reqs):
        # Satellite: the oracle's comparator itself certifies batching as
        # semantically invisible, not just byte-stable encodings.
        batched, _ = serve_stream(reqs, shards=2, batching=True)
        direct, _ = serve_stream(reqs, batching=False, cache_capacity=0)
        for a, b in zip(batched, direct):
            assert outputs_match(a.answer, b.answer) == []


class TestCountersReconcile:
    @given(streams())
    @settings(max_examples=10, deadline=None)
    def test_every_request_is_accounted_exactly_once(self, reqs):
        resps, svc = serve_stream(reqs, shards=2)
        s = svc.counters
        assert len(resps) == len(reqs)
        assert s.requests == len(reqs)
        assert s.responses + s.errors + s.cancelled == s.requests
        assert s.cache_hit_requests + s.cold_requests + \
            s.coalesced_requests == s.responses
        assert s.batched_requests == s.requests
        assert s.batch_max <= max(1, s.batched_requests)

    @given(streams())
    @settings(max_examples=10, deadline=None)
    def test_cache_lookups_equal_batches(self, reqs):
        # Every planned unit consults the cache exactly once.
        _, svc = serve_stream(reqs, shards=2)
        stats = svc.cache.stats()
        assert stats["lookups"] == svc.counters.batches
        assert stats["hits"] + stats["misses"] == stats["lookups"]
