"""Fault behaviour: structured degradation, never hangs or poisoning.

Worker faults (raised exceptions, killed worker processes) must surface
as structured :class:`ServiceError`\\ s after bounded retries while the
service keeps serving; cancelled clients must not poison the batches
they rode; bad requests must fail at submit time; shutdown must fail
leftover waiters instead of hanging them.
"""

import asyncio

import pytest

from repro.service import QueryService, ServiceError, request

from .conftest import run_async

pytestmark = pytest.mark.service


def req_a():
    return request("steady_hull", kind="random", seed=1, n=5)


def req_b():
    return request("hull_membership", kind="random", seed=2, n=5)


class TestSubmitValidation:
    def test_bad_request_fails_at_submit_with_context(self):
        bad = request("envelope", kind="random", seed=0, n=4, op="median")

        async def go():
            async with QueryService() as svc:
                with pytest.raises(ServiceError) as ei:
                    await svc.submit(bad)
                return ei.value, svc.counters

        err, stats = run_async(go())
        assert err.code == "bad_request"
        assert "op" in err.detail
        assert err.context["request"]["algorithm"] == "envelope"
        assert stats.requests == 0  # rejected before entering the pipeline

    def test_submit_before_start_is_structured(self):
        svc = QueryService()

        async def go():
            with pytest.raises(ServiceError) as ei:
                await svc.submit(req_a())
            return ei.value

        assert run_async(go()).code == "not_started"

    def test_constructor_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            QueryService(executor="quantum")

    def test_constructor_rejects_executor_pinning_on_threads(self):
        with pytest.raises(ValueError, match="process workers"):
            QueryService(executor="compiled", workers="thread")

    def test_inject_fault_validates_mode_and_worker_kind(self):
        svc = QueryService()
        with pytest.raises(ValueError, match="fault mode"):
            svc.inject_fault("segfault")
        with pytest.raises(ValueError, match="process workers"):
            svc.inject_fault("die")


class TestWorkerFaults:
    def test_raised_fault_is_retried_transparently(self):
        async def go():
            async with QueryService(retries=1) as svc:
                svc.inject_fault("raise")
                resp = await svc.submit(req_a())
                return resp, svc.counters

        resp, stats = run_async(go())
        assert resp.meta["attempts"] == 2
        assert stats.retries == 1 and stats.errors == 0
        assert resp.payload["answer"]  # a real answer, not a placeholder

    def test_fault_past_retry_budget_is_a_structured_error(self):
        async def go():
            async with QueryService(retries=1) as svc:
                svc.inject_fault("raise", count=2)
                with pytest.raises(ServiceError) as ei:
                    await svc.submit(req_a())
                # the service keeps serving after the failed batch
                ok = await svc.submit(req_b())
                return ei.value, ok, svc.counters

        err, ok, stats = run_async(go())
        assert err.code == "worker_failed"
        assert err.context["attempts"] == 2
        assert err.context["batch_size"] == 1
        assert "shard" in err.context
        assert ok.payload["algorithm"] == "hull_membership"
        assert stats.errors == 1 and stats.responses == 1

    def test_zero_retries_fails_on_first_fault(self):
        async def go():
            async with QueryService(retries=0) as svc:
                svc.inject_fault("raise")
                with pytest.raises(ServiceError) as ei:
                    await svc.submit(req_a())
                return ei.value

        err = run_async(go())
        assert err.code == "worker_failed"
        assert err.context["attempts"] == 1

    def test_failed_batch_fails_all_its_waiters(self):
        async def go():
            async with QueryService(retries=0, batch_window=0.02) as svc:
                svc.inject_fault("raise")
                results = await asyncio.gather(
                    svc.submit(req_a()), svc.submit(req_a()),
                    return_exceptions=True)
                return results, svc.counters

        results, stats = run_async(go())
        assert all(isinstance(r, ServiceError) for r in results)
        assert all(r.code == "worker_failed" for r in results)
        assert results[0].context["batch_size"] == 2
        assert stats.errors == 1  # one failed *run*, not one per waiter

    def test_fault_does_not_linger_after_consumption(self):
        async def go():
            async with QueryService(retries=1) as svc:
                svc.inject_fault("raise")
                first = await svc.submit(req_a())
                second = await svc.submit(req_b())
                return first, second

        first, second = run_async(go())
        assert first.meta["attempts"] == 2
        assert second.meta["attempts"] == 1


class TestCancelledClients:
    def test_cancelled_client_does_not_poison_its_batch(self):
        async def go():
            async with QueryService(batch_window=0.05) as svc:
                keep = asyncio.create_task(svc.submit(req_a()))
                drop = asyncio.create_task(svc.submit(req_a()))
                await asyncio.sleep(0.01)   # enqueue both, then cancel one
                drop.cancel()
                resp = await keep
                with pytest.raises(asyncio.CancelledError):
                    await drop
                return resp, svc.counters

        resp, stats = run_async(go())
        assert resp.payload["algorithm"] == "steady_hull"
        assert stats.cancelled == 1
        assert stats.responses == 1
        assert stats.responses + stats.cancelled == stats.requests

    def test_cancelled_client_does_not_abort_the_shared_run(self):
        # The survivor still gets a cold (non-error) response even when
        # the cancel lands while the shared run is already in flight.
        async def go():
            async with QueryService(batch_window=0.02) as svc:
                keep = asyncio.create_task(svc.submit(req_b()))
                drop = asyncio.create_task(svc.submit(req_b()))
                await asyncio.sleep(0.03)   # batch dispatched by now
                drop.cancel()
                resp = await keep
                return resp, svc.counters

        resp, stats = run_async(go())
        assert resp.payload["algorithm"] == "hull_membership"
        assert stats.cancelled + stats.responses == stats.requests


class TestShutdown:
    def test_stop_fails_pending_requests_instead_of_hanging(self):
        async def go():
            svc = await QueryService(batch_window=5.0).start()
            task = asyncio.create_task(svc.submit(req_a()))
            await asyncio.sleep(0.01)   # parked in the batch window
            await svc.stop()
            with pytest.raises(ServiceError) as ei:
                await task
            return ei.value

        assert run_async(go()).code == "shutdown"

    def test_stop_is_idempotent_and_restartable(self):
        async def go():
            svc = QueryService()
            await svc.start()
            await svc.stop()
            await svc.stop()   # second stop is a no-op
            await svc.start()  # a stopped service can start again
            resp = await svc.submit(req_a())
            await svc.stop()
            return resp

        assert run_async(go()).payload["algorithm"] == "steady_hull"


class TestProcessWorkerDeath:
    """Worker-process death (the fault thread pools cannot survive)."""

    def test_dead_worker_is_retried_on_a_fresh_pool(self):
        async def go():
            async with QueryService(shards=1, workers="process",
                                    retries=1) as svc:
                svc.inject_fault("die")
                resp = await svc.submit(req_a())
                return resp, svc.stats_dict()

        resp, stats = run_async(go())
        assert resp.meta["attempts"] == 2
        assert stats["pool_restarts"] >= 1
        assert stats["service"]["retries"] == 1

    def test_repeated_death_degrades_to_structured_error_not_hang(self):
        async def go():
            async with QueryService(shards=1, workers="process",
                                    retries=1) as svc:
                svc.inject_fault("die", count=2)
                with pytest.raises(ServiceError) as ei:
                    await asyncio.wait_for(svc.submit(req_a()), timeout=60)
                # the restarted pool keeps serving afterwards
                ok = await svc.submit(req_b())
                return ei.value, ok

        err, ok = run_async(go())
        assert err.code == "worker_failed"
        assert ok.payload["algorithm"] == "hull_membership"
