"""Mutation traffic: dynamic families, targeted invalidation, parity.

The write half of the serving story (``docs/incremental.md``): a
mutation updates a named family's envelope in place through the
incremental engine and evicts *exactly* the run keys that family's
queries cache under — pinned here with exact counters (mutating family
A must leave family B's entry and every static entry untouched).  Read
traffic after any mutation sequence answers byte-identically to a cold
serial driver run over the surviving curves.
"""

import json

import pytest

from repro.core.envelope import envelope_serial
from repro.core.family import PolynomialFamily
from repro.service import (
    QueryService,
    ServiceError,
    mutation,
    request,
    validate_mutation,
)
from repro.service.dynamic import DynamicFamilyStore
from repro.service.model import _encode_envelope

from .conftest import run_async

pytestmark = [pytest.mark.service, pytest.mark.incremental]


def canon(obj):
    return json.dumps(obj, sort_keys=True)


def cold_reference(engine):
    family = PolynomialFamily(engine.family.s)
    return _encode_envelope(
        envelope_serial(engine.reference_curves(), family, op=engine.op))


class TestValidation:
    def test_unknown_action_rejected_at_build(self):
        with pytest.raises(KeyError):
            mutation("fam", "upsert")

    def test_required_params(self):
        assert validate_mutation(mutation("fam", "insert")) != []
        assert validate_mutation(mutation("fam", "delete")) != []
        assert validate_mutation(
            mutation("fam", "retarget", curve_id=1)) != []

    def test_unknown_params_flagged(self):
        problems = validate_mutation(
            mutation("fam", "delete", curve_id=1, extra=2))
        assert any("extra" in p for p in problems)

    def test_nonfinite_coeffs_flagged(self):
        problems = validate_mutation(
            mutation("fam", "insert", coeffs=(1.0, float("nan"))))
        assert problems

    def test_valid_mutations_pass(self):
        assert validate_mutation(
            mutation("fam", "insert", coeffs=(1.0, -2.0))) == []
        assert validate_mutation(mutation("fam", "create", op="max",
                                          kind="random", seed=1, n=4)) == []
        assert validate_mutation(mutation("fam", "drop")) == []


class TestStore:
    def test_store_is_bounded(self):
        store = DynamicFamilyStore(max_families=1)
        store.apply("a", "create", {})
        with pytest.raises(ServiceError) as err:
            store.apply("b", "create", {})
        assert err.value.code == "store_full"

    def test_duplicate_create_and_unknown_family(self):
        store = DynamicFamilyStore()
        store.apply("a", "create", {})
        with pytest.raises(ServiceError) as err:
            store.apply("a", "create", {})
        assert err.value.code == "family_exists"
        with pytest.raises(ServiceError) as err:
            store.apply("nope", "insert", {"coeffs": (1.0,)})
        assert err.value.code == "no_such_family"

    def test_clear_empties(self):
        store = DynamicFamilyStore()
        store.apply("a", "create", {})
        store.clear()
        assert len(store) == 0 and store.stats()["families"] == 0


class TestMutationsEndToEnd:
    @pytest.fixture(scope="class")
    def served(self):
        """One mutation session: two dynamic families plus one static
        request, mutations against family A only."""

        async def go():
            log = {}
            async with QueryService(shards=2, cache_capacity=64) as svc:
                static = request("envelope", kind="random", seed=1, n=4,
                                 backend="serial")
                await svc.submit(static)           # static entry cached
                await svc.mutate(mutation("a", "create", op="min",
                                          kind="random", seed=3, n=6))
                await svc.mutate(mutation("b", "create", op="max",
                                          kind="random", seed=4, n=5))
                log["qa_cold"] = await svc.submit_dynamic("a")
                log["qa_warm"] = await svc.submit_dynamic("a")
                log["qb_cold"] = await svc.submit_dynamic("b")
                log["ins"] = await svc.mutate(
                    mutation("a", "insert", coeffs=(0.5, -1.0, 0.25)))
                log["qb_after"] = await svc.submit_dynamic("b")
                log["qa_after"] = await svc.submit_dynamic("a")
                cid = log["ins"].payload["result"]["curve_id"]
                log["del"] = await svc.mutate(
                    mutation("a", "delete", curve_id=cid))
                log["ret"] = await svc.mutate(
                    mutation("a", "retarget", curve_id=0,
                             coeffs=(2.0, 0.5)))
                log["static_warm"] = await svc.submit(static)
                log["qa_final"] = await svc.submit_dynamic("a")
                log["reference"] = cold_reference(svc.dynamic.engine("a"))
                log["entry"] = svc.dynamic.entry("a")
            return log, svc

        return run_async(go())

    def test_mutation_receipts(self, served):
        log, _ = served
        res = log["ins"].payload["result"]
        assert res["size"] == 7 and res["version"] == 2
        assert res["update"]["op"] == "insert"
        assert log["ins"].payload["schema"] == "repro.service/1"
        assert log["ret"].payload["result"]["update"]["op"] == "retarget"

    def test_reads_cache_until_the_next_mutation(self, served):
        log, _ = served
        assert not log["qa_cold"].meta["cache_hit"]
        assert log["qa_warm"].meta["cache_hit"]
        # the insert evicted a's entry, so the next read recomputes
        assert not log["qa_after"].meta["cache_hit"]

    def test_targeted_invalidation_is_exact(self, served):
        log, svc = served
        # a's entry was the only cached key for a: exactly one eviction.
        assert log["ins"].payload["invalidated"] == 1
        assert log["ins"].meta["invalidated"] == 1
        # b's entry and the static entry survived the mutations of a.
        assert log["qb_after"].meta["cache_hit"]
        assert log["static_warm"].cache_hit
        # delete + retarget each evicted the re-cached entry of a.
        assert log["del"].payload["invalidated"] == 1
        assert log["ret"].payload["invalidated"] == 0  # not re-read between
        assert svc.cache.stats()["invalidations"] == 2
        assert svc.counters.invalidated_keys == 2

    def test_answers_byte_identical_to_cold_serial_run(self, served):
        log, _ = served
        assert canon(log["entry"]["result"]) == canon(log["reference"])
        answer = log["qa_final"].payload["answer"]
        assert canon(answer) == canon(log["reference"]["pieces"])

    def test_stats_surface(self, served):
        log, svc = served
        assert svc.counters.mutations == 5
        assert svc.counters.dynamic_queries == 6
        assert svc.counters.dynamic_cache_hits == 2
        dyn = svc.stats_dict()["dynamic"]
        assert dyn["mutations"] == 5
        # stop() cleared the store (RPR004: bounded, clearable, accounted)
        assert dyn["families"] == 0

    def test_dynamic_payload_coordinates(self, served):
        log, _ = served
        fam = log["qa_final"].payload["family"]
        assert fam == {"domain": "dynamic", "name": "a",
                       "version": 4, "size": 6}
        assert log["qa_final"].payload["backend"] == "incremental"


class TestErrorPaths:
    def test_state_errors_are_structured(self):
        async def go():
            errs = {}
            async with QueryService(shards=1, cache_capacity=8) as svc:
                await svc.mutate(mutation("a", "create"))
                for label, m in [
                    ("missing", mutation("nope", "insert", coeffs=(1.0,))),
                    ("curve", mutation("a", "delete", curve_id=77)),
                    ("dup", mutation("a", "create")),
                    ("shape", mutation("a", "insert")),
                ]:
                    try:
                        await svc.mutate(m)
                    except ServiceError as exc:
                        errs[label] = exc.code
            return errs

        errs = run_async(go())
        assert errs == {"missing": "no_such_family",
                        "curve": "no_such_curve",
                        "dup": "family_exists",
                        "shape": "bad_mutation"}

    def test_drop_invalidates_remaining_entries(self):
        async def go():
            async with QueryService(shards=1, cache_capacity=8) as svc:
                await svc.mutate(mutation("a", "create", op="min",
                                          kind="random", seed=9, n=4))
                await svc.submit_dynamic("a")
                resp = await svc.mutate(mutation("a", "drop"))
                dropped = resp.payload["invalidated"]
                try:
                    await svc.submit_dynamic("a")
                    missing = None
                except ServiceError as exc:
                    missing = exc.code
            return dropped, missing

        dropped, missing = run_async(go())
        assert dropped == 1
        assert missing == "no_such_family"

    def test_bad_query_shape_rejected(self):
        async def go():
            async with QueryService(shards=1, cache_capacity=8) as svc:
                await svc.mutate(mutation("a", "create", op="min",
                                          kind="random", seed=9, n=4))
                try:
                    await svc.submit_dynamic("a", q="no_such_query")
                except ServiceError as exc:
                    return exc.code

        assert run_async(go()) == "bad_request"
