"""Shared helpers for the service test layer.

No pytest-asyncio in the baked environment, so the suite drives the
asyncio server through :func:`asyncio.run` directly: ``serve`` spins a
service up, submits a stream concurrently, tears the service down, and
hands back the responses *and* the stopped service (stats, spans, and
cache survive ``stop()`` for post-mortem assertions).
"""

import asyncio

import pytest

from repro.service import QueryService, request


def run_async(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


@pytest.fixture
def serve():
    """``serve(requests, **service_kwargs) -> (responses, service)``.

    Responses come back in request order (``submit_many``); the returned
    service is stopped but fully inspectable.
    """

    def _serve(reqs, **kwargs):
        async def go():
            async with QueryService(**kwargs) as svc:
                resps = await svc.submit_many(reqs)
            return resps, svc

        return asyncio.run(go())

    return _serve


def mixed_stream():
    """A small mixed-algorithm request stream with repeats and dedupes.

    Covers all three algorithms, both run-parameter axes (envelope op,
    hull query index), derived queries sharing a run with their full
    query, and exact duplicates — the shapes the planner/cache must
    handle — while staying small enough for tier-1.
    """
    return [
        request("envelope", kind="random", seed=3, n=5, op="min"),
        request("envelope", kind="random", seed=3, n=5, op="min",
                q="value_at", t=0.5),
        request("envelope", kind="random", seed=3, n=5, op="min"),
        request("envelope", kind="tangent", seed=1, n=4, op="max"),
        request("hull_membership", kind="random", seed=2, n=6),
        request("hull_membership", kind="random", seed=2, n=6,
                q="member_at", t=1.0),
        request("hull_membership", kind="random", seed=2, n=6, query=1),
        request("steady_hull", kind="random", seed=5, n=6),
        request("steady_hull", kind="random", seed=5, n=6,
                q="is_extreme", i=0),
        request("steady_hull", kind="converging", seed=7, n=5,
                backend="hypercube"),
        request("envelope", kind="random", seed=3, n=5, op="min"),
    ]
