"""Operational telemetry end to end: cids, events, stats, postmortems.

The tentpole contract of the observability layer, asserted on a live
service: correlation ids mint at submit and thread through batches,
worker payloads, spans, and every lifecycle event; the ``repro.obs/1``
stats snapshot reconciles exactly with the serving counters; telemetry
never perturbs a payload byte; and a degradation writes a postmortem
whose event rings reconstruct the failing request's full chain.
"""

import json

import pytest

from repro.obs import STATS_SCHEMA
from repro.report.postmortem import load_postmortem, render_postmortem
from repro.service import QueryService, ServiceError, mutation, request
from repro.service.__main__ import main as service_main
from repro.trace.export import load_trace_spans, write_chrome_trace

from .conftest import mixed_stream, run_async

pytestmark = [pytest.mark.service, pytest.mark.obs]


@pytest.fixture(scope="module")
def served():
    """One mixed stream served cold+warm, with full telemetry retained."""
    reqs = mixed_stream()

    async def go():
        async with QueryService(shards=2, cache_capacity=64) as svc:
            cold = await svc.submit_many(reqs)
            warm = await svc.submit_many(reqs)
        return reqs + reqs, cold + warm, svc

    return run_async(go())


class TestCorrelationIds:
    def test_cids_are_minted_in_arrival_order(self, served):
        reqs, resps, _ = served
        cids = [r.meta["cid"] for r in resps]
        assert cids == [f"q-{i:06d}" for i in range(len(reqs))]

    def test_every_request_has_a_complete_lifecycle_chain(self, served):
        _, resps, svc = served
        for resp in resps:
            chain = svc.obs.events.for_cid(resp.meta["cid"])
            names = [rec["event"] for rec in chain]
            assert names[0] == "request_received"
            assert "batched" in names and "completed" in names
            # dispatched is batch-scoped: present iff the batch crossed
            # into a worker (cache-hit batches never dispatch).
            if not resp.meta["cache_hit"]:
                assert "dispatched" in names
            # The chain is seq-ordered by construction.
            seqs = [rec["seq"] for rec in chain]
            assert seqs == sorted(seqs)

    def test_batched_event_names_the_batch_of_the_dispatch(self, served):
        _, resps, svc = served
        events = svc.obs.events.events()
        for resp in resps:
            if resp.meta["cache_hit"]:
                continue
            cid = resp.meta["cid"]
            batched = [r for r in events
                       if r["event"] == "batched"
                       and cid in r.get("cids", ())]
            assert len(batched) == 1
            bid = batched[0]["cid"]
            assert bid.startswith("b-")
            dispatched = [r for r in events
                          if r["event"] == "dispatched" and r["cid"] == bid]
            assert dispatched and all(cid in r["cids"] for r in dispatched)

    def test_request_spans_carry_the_cid(self, served):
        _, resps, svc = served
        span_cids = {c["attrs"]["cid"]
                     for span in svc.span_forest()
                     for c in span["children"]}
        assert {r.meta["cid"] for r in resps} <= span_cids


class TestStatsSnapshot:
    def test_schema_and_sections(self, served):
        _, _, svc = served
        snap = svc.stats()
        assert snap["schema"] == STATS_SCHEMA
        assert set(snap) == {"schema", "uptime", "counters", "cache",
                             "dynamic", "pools", "histograms", "events",
                             "recorder"}

    def test_histograms_reconcile_with_counters(self, served):
        _, resps, svc = served
        snap = svc.stats()
        hists = snap["histograms"]
        assert hists["request_latency_s"]["count"] == len(resps)
        assert hists["batch_size"]["count"] == snap["counters"]["batches"]
        assert hists["batch_size"]["sum"] == \
            snap["counters"]["batched_requests"]
        assert hists["queue_depth"]["count"] > 0
        assert hists["worker_turnaround_s"]["count"] > 0

    def test_uptime_freezes_at_stop_and_sim_time_accumulates(self, served):
        _, _, svc = served
        snap = svc.stats()
        assert snap["uptime"]["wall_s"] > 0
        assert snap["uptime"]["wall_s"] == svc.uptime_s()  # frozen
        # Cold runs executed simulated work; the simulated clock total
        # rides the snapshot without ever feeding a payload.
        assert snap["uptime"]["sim_time_served"] > 0

    def test_event_accounting_reconciles(self, served):
        _, resps, svc = served
        stats = svc.obs.events.stats()
        assert stats["dropped"] == 0
        completed = [r for r in svc.obs.events.events()
                     if r["event"] == "completed"]
        assert len(completed) == len(resps)

    def test_json_serialisable(self, served):
        _, _, svc = served
        doc = json.loads(json.dumps(svc.stats()))
        assert doc["schema"] == STATS_SCHEMA


class TestTelemetryNeutrality:
    def test_payloads_identical_across_telemetry_configs(self):
        """Same stream, wildly different telemetry settings → same bytes.

        The payload is a pure function of (run key, query); cids live in
        ``meta`` and events/histograms are host-side only, so shrinking
        every ring to nearly nothing must not move a payload byte.
        """
        reqs = mixed_stream()

        def serve_with(**kwargs):
            async def go():
                async with QueryService(shards=2, cache_capacity=64,
                                        **kwargs) as svc:
                    return await svc.submit_many(reqs)
            return run_async(go())

        plain = serve_with()
        tiny = serve_with(event_capacity=2, recorder_events=1,
                          recorder_spans=1)
        assert [json.dumps(r.payload, sort_keys=True) for r in plain] == \
            [json.dumps(r.payload, sort_keys=True) for r in tiny]

    def test_payload_sim_charges_unchanged_by_telemetry(self, served):
        _, resps, _ = served
        parallel = [r for r in resps if r.payload["backend"] != "serial"]
        assert parallel
        assert all(r.payload["sim_time"] > 0 for r in parallel)

    def test_events_jsonl_sink_through_the_service(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reqs = mixed_stream()[:4]

        async def go():
            async with QueryService(shards=1, cache_capacity=16,
                                    events_path=path) as svc:
                await svc.submit_many(reqs)
        run_async(go())
        lines = [json.loads(s) for s in path.read_text().splitlines()]
        assert len(lines) >= 2 * len(reqs)
        assert all("seq" in rec and "event" in rec for rec in lines)


class TestMutationDynamicTelemetry:
    @pytest.fixture(scope="class")
    def mutated(self):
        async def go():
            async with QueryService(shards=1, cache_capacity=32) as svc:
                await svc.mutate(mutation("a", "create", op="min",
                                          kind="random", seed=3, n=5))
                r1 = await svc.submit_dynamic("a")
                r2 = await svc.submit_dynamic("a")          # cache hit
                ins = await svc.mutate(
                    mutation("a", "insert", coeffs=(0.5, -1.0)))
                r3 = await svc.submit_dynamic("a")
            return svc, (r1, r2, r3), ins

        return run_async(go())

    def test_mutation_and_dynamic_cids_have_own_domains(self, mutated):
        svc, reads, ins = mutated
        assert ins.meta["cid"].startswith("m-")
        assert [r.meta["cid"] for r in reads] == \
            ["d-000000", "d-000001", "d-000002"]

    def test_mutation_events_and_invalidation(self, mutated):
        svc, _, ins = mutated
        events = svc.obs.events.events()
        applied = [r for r in events if r["event"] == "mutation_applied"]
        assert [r["action"] for r in applied] == ["create", "insert"]
        assert applied[-1]["cid"] == ins.meta["cid"]
        # The insert evicted family a's cached key → one invalidation
        # event naming the family and the count.
        invalidated = [r for r in events
                       if r["event"] == "cache_invalidated"]
        assert len(invalidated) == 1
        assert invalidated[0]["name"] == "a"
        assert invalidated[0]["cid"] == ins.meta["cid"]

    def test_mutation_dynamic_spans_export_with_cids(self, mutated,
                                                     tmp_path):
        """Satellite contract: mutation/dynamic spans survive the Chrome
        trace round-trip with cids matching the event log."""
        svc, reads, ins = mutated
        spans = svc.span_forest()
        by_cat = {}
        for s in spans:
            by_cat.setdefault(s["cat"], []).append(s)
        assert {"mutation", "dynamic"} <= set(by_cat)
        path = write_chrome_trace(
            tmp_path / "trace.json", spans,
            histograms=svc.obs.histogram_dicts())
        loaded, doc = load_trace_spans(path)
        assert loaded == spans                    # lossless embedding
        assert doc["reproHistograms"]["request_latency_s"]["kind"] == \
            "log2"
        event_cids = {r["cid"] for r in svc.obs.events.events()}
        for span in by_cat["mutation"] + by_cat["dynamic"]:
            cid = span["attrs"]["cid"]
            assert cid in event_cids
        dynamic_cids = {s["attrs"]["cid"] for s in by_cat["dynamic"]}
        assert {r.meta["cid"] for r in reads} == dynamic_cids


class TestPostmortem:
    def test_degradation_writes_a_renderable_postmortem(self, tmp_path):
        async def go():
            async with QueryService(shards=1, retries=0,
                                    postmortem_dir=tmp_path) as svc:
                svc.inject_fault("raise")
                with pytest.raises(ServiceError):
                    await svc.submit(request("envelope", kind="random",
                                             seed=2, n=4))
            return svc

        svc = run_async(go())
        assert svc.counters.postmortems == 1
        assert svc.last_postmortem is not None
        doc = load_postmortem(svc.last_postmortem)
        assert doc["reason"] == "service_error"
        assert doc["context"]["code"] == "worker_failed"
        cid = doc["context"]["cids"][0]
        chain = [r["event"] for r in doc["events"]
                 if r.get("cid") == cid or cid in (r.get("cids") or ())]
        # The full correlated story of the failing request is in the dump.
        assert chain[0] == "request_received"
        assert "batched" in chain and "dispatched" in chain
        assert chain[-1] == "failed"
        text = render_postmortem(doc)
        assert f"event chain [{cid}]" in text
        assert "reason=service_error" in text

    def test_no_postmortem_dir_means_no_file_drops(self):
        async def go():
            async with QueryService(shards=1, retries=0) as svc:
                svc.inject_fault("raise")
                with pytest.raises(ServiceError):
                    await svc.submit(request("envelope", kind="random",
                                             seed=2, n=4))
            return svc

        svc = run_async(go())
        assert svc.counters.postmortems == 0
        assert svc.last_postmortem is None
        # The rings are still live for the manual escape hatch.
        assert any(r["event"] == "failed"
                   for r in svc.obs.recorder.events)

    def test_manual_dump_escape_hatch(self, tmp_path, serve):
        resps, svc = serve(mixed_stream()[:3])
        path = svc.dump_postmortem(tmp_path / "manual.json")
        doc = load_postmortem(path)
        assert doc["reason"] == "manual"
        assert doc["stats"]["service"]["responses"] == len(resps)


class TestCli:
    def test_smoke_stats_embeds_snapshot(self, capsys):
        rc = service_main(["smoke", "--queries", "24", "--families", "6",
                           "--wave", "8", "--stats"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["stats"]["schema"] == STATS_SCHEMA
        assert out["stats"]["histograms"]["request_latency_s"]["count"] \
            == 24

    def test_smoke_fault_writes_postmortem(self, tmp_path, capsys):
        rc = service_main(["smoke", "--queries", "16", "--families", "4",
                           "--wave", "8", "--fault", "raise",
                           "--postmortem-dir", str(tmp_path)])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["errors"] > 0
        assert out["postmortem"] is not None
        doc = load_postmortem(out["postmortem"])
        assert doc["reason"] == "service_error"
        assert render_postmortem(doc)  # renders without raising

    def test_stats_subcommand_prom_exposition(self, capsys):
        rc = service_main(["stats", "--queries", "12", "--families", "4",
                           "--wave", "6", "--prom"])
        text = capsys.readouterr().out
        assert rc == 0
        assert text.startswith("# repro stats snapshot schema=repro.obs/1")
        assert "repro_service_counters_responses 12" in text
        assert 'repro_service_request_latency_s_bucket{le="+Inf"} 12' \
            in text
