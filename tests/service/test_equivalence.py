"""Bit-identity of served responses against per-query driver runs.

The service's central contract: batching, dedupe, caching, shard count,
arrival order, and worker plumbing may change only response *metadata*
(latency, cache flags) — never a payload byte.  Every test here compares
``QueryResponse.payload`` / ``payload_bytes()`` against
:func:`repro.service.model.direct_response`, the per-query driver oracle,
or against the same stream served under a different configuration.
"""

import asyncio

import pytest

from repro.parallel import parallel_map
from repro.service import QueryService, direct_item, direct_response, request
from repro.verify.compare import outputs_match

from .conftest import mixed_stream, run_async

pytestmark = pytest.mark.service


def payload_bytes(resps):
    return [r.payload_bytes() for r in resps]


class TestDirectEquivalence:
    @pytest.mark.usefixtures("plan_mode")
    def test_batched_responses_match_per_query_driver_runs(self, serve):
        # Satellite: under every data-movement executor (plan_mode), the
        # batched service answers exactly what a fresh per-query driver
        # run answers.  Thread workers inherit the ambient executor, so
        # the direct baseline runs under the same one.
        reqs = mixed_stream()
        resps, _ = serve(reqs, shards=2)
        for req, resp in zip(reqs, resps):
            assert resp.payload == direct_response(req)

    def test_batching_is_semantically_invisible_under_verify_compare(
            self, serve):
        # The oracle's own comparator agrees: served answers are
        # value-equivalent to direct driver answers, not just repr-equal.
        reqs = mixed_stream()
        resps, _ = serve(reqs, shards=3)
        for req, resp in zip(reqs, resps):
            direct = direct_response(req)
            assert outputs_match(resp.answer, direct["answer"]) == []

    def test_parallel_map_baseline_matches_the_service(self, serve):
        # The campaign engine computes the same baselines at scale with
        # its deterministic merge-by-index; the service must agree with
        # that path too (it is what bench_service replays against).
        reqs = mixed_stream()
        resps, _ = serve(reqs, shards=2)
        baselines = parallel_map(direct_item,
                                 [(r, 64, None) for r in reqs], jobs=2)
        assert [r.payload for r in resps] == baselines


class TestConfigurationInvariance:
    def test_shard_count_cannot_change_a_payload_byte(self, serve):
        reqs = mixed_stream()
        reference = payload_bytes(serve(reqs, shards=1)[0])
        for shards in (2, 3, 5):
            assert payload_bytes(serve(reqs, shards=shards)[0]) == reference

    def test_arrival_order_cannot_change_a_payload_byte(self, serve):
        reqs = mixed_stream()
        by_request = {}
        resps, _ = serve(reqs, shards=2)
        for req, resp in zip(reqs, resps):
            by_request[req.key()] = resp.payload_bytes()
        reordered = list(reversed(reqs))
        for req, resp in zip(reordered, serve(reordered, shards=2)[0]):
            assert resp.payload_bytes() == by_request[req.key()]

    def test_batching_off_matches_batching_on(self, serve):
        reqs = mixed_stream()
        on = payload_bytes(serve(reqs, shards=2, batching=True)[0])
        off = payload_bytes(serve(reqs, shards=2, batching=False,
                                  cache_capacity=0)[0])
        assert on == off

    def test_cache_off_matches_cache_on(self, serve):
        reqs = mixed_stream() * 2
        cached = payload_bytes(serve(reqs, cache_capacity=256)[0])
        uncached = payload_bytes(serve(reqs, cache_capacity=0)[0])
        assert cached == uncached

    def test_max_batch_split_cannot_change_a_payload_byte(self, serve):
        reqs = mixed_stream()
        wide = payload_bytes(serve(reqs, max_batch=64)[0])
        narrow = payload_bytes(serve(reqs, max_batch=1)[0])
        assert wide == narrow

    def test_executor_pinning_under_process_workers_matches_direct(self):
        # Process workers may pin a data-movement executor per run; the
        # pinned service must agree with a direct run under that executor.
        req = request("steady_hull", kind="random", seed=2, n=5)

        async def go():
            async with QueryService(shards=1, workers="process",
                                    executor="reference") as svc:
                return await svc.submit(req)

        resp = run_async(go())
        assert resp.payload == direct_response(req, executor="reference")


class TestCacheByteEquality:
    def test_warm_payload_is_byte_equal_to_cold(self):
        reqs = mixed_stream()

        async def go():
            async with QueryService(shards=2) as svc:
                cold = await svc.submit_many(reqs)
                warm = await svc.submit_many(reqs)
                return cold, warm

        cold, warm = run_async(go())
        assert all(not r.cache_hit for r in cold)
        assert all(r.cache_hit for r in warm)
        assert payload_bytes(warm) == payload_bytes(cold)

    def test_cache_hit_flag_lives_in_meta_not_payload(self):
        req = request("envelope", kind="random", seed=6, n=4, op="min")

        async def go():
            async with QueryService() as svc:
                a = await svc.submit(req)
                b = await svc.submit(req)
                return a, b

        a, b = run_async(go())
        assert (a.meta["cache_hit"], b.meta["cache_hit"]) == (False, True)
        assert "cache_hit" not in a.payload
        assert a.payload == b.payload

    def test_submit_many_preserves_request_order(self, serve):
        reqs = mixed_stream()
        resps, _ = serve(reqs, shards=3)
        for req, resp in zip(reqs, resps):
            assert resp.payload["algorithm"] == req.algorithm
            assert resp.payload["family"] == req.family.to_dict()
            assert resp.payload["query"] == req.query()


class TestConcurrentArrivals:
    def test_staggered_arrivals_match_one_shot_submission(self, serve):
        # Same stream, trickled in over several event-loop turns with a
        # batch window open: different batch shapes, identical bytes.
        reqs = mixed_stream()

        async def staggered():
            async with QueryService(shards=2, batch_window=0.005) as svc:
                tasks = []
                for req in reqs:
                    tasks.append(asyncio.create_task(svc.submit(req)))
                    await asyncio.sleep(0.001)
                return [await t for t in tasks]

        trickled = payload_bytes(run_async(staggered()))
        assert trickled == payload_bytes(serve(reqs, shards=2)[0])
