"""Unit tests for the service query model.

Families, requests, run/query parameter splits, validation, run keys,
sharding, driver execution with JSON result encoding, and the pure
query-answer evaluation the event loop performs.
"""

import json

import numpy as np
import pytest

from repro.core.envelope import envelope_serial
from repro.core.family import PolynomialFamily
from repro.core.hull_membership import hull_membership_intervals
from repro.core.steady import steady_hull
from repro.ops.plans import set_compiled_plans
from repro.service import (
    FamilySpec,
    QueryRequest,
    ServiceError,
    direct_response,
    request,
    run_key,
    shard_of,
    validate_request,
)
from repro.service.model import answer_query, response_payload, run_driver
from repro.verify.generators import SYSTEM_SIZE_FLOORS

pytestmark = pytest.mark.service


class TestFamilySpec:
    def test_rejects_unknown_domain(self):
        with pytest.raises(ValueError, match="domain"):
            FamilySpec("graphs", "random", 0, 4)

    def test_rejects_unknown_kind(self):
        with pytest.raises(KeyError, match="kind"):
            FamilySpec("curves", "no_such_kind", 0, 4)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size"):
            FamilySpec("curves", "random", 0, 0)

    def test_build_is_deterministic_in_coordinates(self):
        spec = FamilySpec("curves", "random", seed=9, n=5, degree=2)
        assert np.array_equal(np.asarray(spec.build()),
                              np.asarray(FamilySpec("curves", "random",
                                                    9, 5, 2).build()))

    def test_size_matches_build_with_system_floor(self):
        for kind, floor in SYSTEM_SIZE_FLOORS.items():
            spec = FamilySpec("system", kind, seed=0, n=1, degree=1)
            assert spec.size() == max(1, floor) == len(spec.build())

    def test_dict_roundtrip(self):
        spec = FamilySpec("system", "crossing", 4, 7, 1)
        assert FamilySpec.from_dict(spec.to_dict()) == spec


class TestQueryRequest:
    def test_builder_sorts_params_canonically(self):
        req = request("envelope", kind="random", seed=0, n=4,
                      t=0.5, q="value_at", op="min")
        assert req.params == (("op", "min"), ("q", "value_at"), ("t", 0.5))

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError, match="algorithm"):
            request("voronoi", kind="random", seed=0, n=4)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="backend"):
            request("envelope", kind="random", seed=0, n=4, backend="torus")

    def test_domain_mismatch_raises(self):
        system = FamilySpec("system", "random", 0, 5, 1)
        with pytest.raises(ValueError, match="families"):
            QueryRequest("envelope", system)

    def test_run_params_defaults(self):
        assert request("envelope", kind="random", seed=0,
                       n=4).run_params() == {"op": "min"}
        assert request("hull_membership", kind="random", seed=0,
                       n=5).run_params() == {"query": 0}
        assert request("steady_hull", kind="random", seed=0,
                       n=5).run_params() == {}

    def test_query_excludes_run_params_and_defaults_q(self):
        req = request("envelope", kind="random", seed=0, n=4,
                      op="max", q="value_at", t=1.5)
        assert req.query() == {"q": "value_at", "t": 1.5}
        assert request("steady_hull", kind="random", seed=0,
                       n=5).query() == {"q": "hull"}

    def test_key_is_hashable_request_identity(self):
        a = request("envelope", kind="random", seed=0, n=4, op="min")
        b = request("envelope", kind="random", seed=0, n=4, op="min")
        c = request("envelope", kind="random", seed=0, n=4, op="max")
        assert a.key() == b.key() and hash(a.key()) == hash(b.key())
        assert a.key() != c.key()


class TestValidateRequest:
    def test_valid_requests_have_no_problems(self):
        assert validate_request(request("envelope", kind="random", seed=0,
                                        n=4, op="max")) == []
        assert validate_request(request("hull_membership", kind="random",
                                        seed=0, n=5, query=2,
                                        q="member_at", t=0.0)) == []

    def test_bad_envelope_op(self):
        req = request("envelope", kind="random", seed=0, n=4, op="median")
        assert any("op" in p for p in validate_request(req))

    def test_hull_query_index_out_of_range(self):
        req = request("hull_membership", kind="random", seed=0, n=5,
                      query=99)
        assert any("out of range" in p for p in validate_request(req))

    def test_unknown_query_name(self):
        req = request("steady_hull", kind="random", seed=0, n=5,
                      q="perimeter")
        assert any("unknown steady_hull query" in p
                   for p in validate_request(req))

    def test_missing_required_query_argument(self):
        req = request("envelope", kind="random", seed=0, n=4, q="value_at")
        assert any("requires parameter 't'" in p
                   for p in validate_request(req))

    def test_unknown_parameter(self):
        req = request("envelope", kind="random", seed=0, n=4, fnord=1)
        assert any("unknown parameter 'fnord'" in p
                   for p in validate_request(req))


class TestRunKeyAndShard:
    def test_derived_queries_share_the_run_key(self):
        full = request("envelope", kind="random", seed=0, n=4, op="min")
        at = request("envelope", kind="random", seed=0, n=4, op="min",
                     q="value_at", t=0.5)
        assert run_key(full, 64, None) == run_key(at, 64, None)

    def test_run_parameters_split_the_run_key(self):
        a = request("envelope", kind="random", seed=0, n=4, op="min")
        b = request("envelope", kind="random", seed=0, n=4, op="max")
        assert run_key(a, 64, None) != run_key(b, 64, None)
        assert run_key(a, 64, None) != run_key(a, 16, None)
        assert run_key(a, 64, None) != run_key(a, 64, "compiled")

    def test_shard_is_deterministic_and_in_range(self):
        for seed in range(20):
            req = request("steady_hull", kind="random", seed=seed, n=5)
            key = run_key(req, 64, None)
            for n_shards in (1, 2, 3, 8):
                s = shard_of(key, n_shards)
                assert 0 <= s < n_shards
                assert s == shard_of(key, n_shards)

    def test_shard_depends_only_on_the_family(self):
        a = request("hull_membership", kind="random", seed=3, n=6, query=0)
        b = request("hull_membership", kind="random", seed=3, n=6, query=2)
        assert shard_of(run_key(a, 64, None), 8) == \
            shard_of(run_key(b, 16, "compiled"), 8)


class TestRunDriverEncoding:
    def test_envelope_answer_matches_piecewise_evaluation(self):
        spec = FamilySpec("curves", "random", 11, 5, 2)
        entry = run_driver("envelope", spec, {"op": "min"}, "serial", 64)
        env = envelope_serial(spec.build(), PolynomialFamily(2), op="min")
        for t in (0.0, 0.25, 1.0, 3.0):
            got = answer_query("envelope", entry["result"],
                               {"q": "value_at", "t": t})
            piece = env.piece_at(t)
            assert got["value"] == pytest.approx(float(piece.fn(t)),
                                                 abs=1e-12)
            assert got["label"] == repr(piece.label)

    def test_membership_answer_matches_interval_scan(self):
        spec = FamilySpec("system", "random", 4, 6, 1)
        entry = run_driver("hull_membership", spec, {"query": 0},
                           "serial", 64)
        raw = hull_membership_intervals(None, spec.build(), query=0)
        assert entry["result"]["intervals"] == \
            [[float(lo), float(hi)] for lo, hi in raw]
        for lo, hi in entry["result"]["intervals"]:
            mid = (lo + hi) / 2.0
            assert answer_query("hull_membership", entry["result"],
                                {"q": "member_at", "t": mid}) is True

    def test_hull_answer_matches_driver_indices(self):
        spec = FamilySpec("system", "random", 8, 7, 1)
        entry = run_driver("steady_hull", spec, {}, "serial", 64)
        hull = [int(i) for i in steady_hull(None, spec.build())]
        assert entry["result"]["hull"] == hull
        for i in range(spec.size()):
            assert answer_query("steady_hull", entry["result"],
                                {"q": "is_extreme", "i": i}) == (i in hull)

    def test_serial_backend_has_no_sim_charges(self):
        spec = FamilySpec("curves", "random", 0, 4, 2)
        entry = run_driver("envelope", spec, {"op": "min"}, "serial", 64)
        assert entry["sim"] is None and entry["sim_time"] == 0.0

    def test_parallel_backend_charges_sim_time(self):
        spec = FamilySpec("curves", "random", 0, 4, 2)
        entry = run_driver("envelope", spec, {"op": "min"}, "mesh", 64)
        assert entry["sim_time"] > 0.0
        assert entry["sim"]["time"] == entry["sim_time"]

    def test_entry_is_json_plain(self):
        spec = FamilySpec("system", "random", 2, 6, 1)
        entry = run_driver("hull_membership", spec, {"query": 1},
                           "mesh", 64)
        assert json.loads(json.dumps(entry)) == entry

    def test_unknown_answer_query_raises(self):
        with pytest.raises(KeyError):
            answer_query("envelope", {"pieces": []}, {"q": "nope"})


class TestResponsePayload:
    def test_payload_is_a_pure_function_of_run_and_query(self):
        req = request("envelope", kind="random", seed=5, n=4, op="min",
                      q="value_at", t=0.75)
        entry = run_driver(req.algorithm, req.family, req.run_params(),
                           req.backend, 64)
        a = response_payload(req, entry, machine_size=64, executor=None)
        b = response_payload(req, entry, machine_size=64, executor=None)
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["schema"] == "repro.service/1"

    def test_direct_response_restores_the_ambient_executor(self):
        prev = set_compiled_plans("vectorized")
        try:
            direct_response(request("steady_hull", kind="random", seed=1,
                                    n=5), executor="reference")
            assert set_compiled_plans("vectorized") == "vectorized"
        finally:
            set_compiled_plans(prev)

    def test_service_error_is_structured(self):
        err = ServiceError("worker_failed", "boom", {"shard": 3})
        assert err.code == "worker_failed"
        assert err.to_dict() == {"code": "worker_failed", "detail": "boom",
                                 "context": {"shard": 3}}
        assert "worker_failed" in str(err)
