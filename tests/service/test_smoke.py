"""Tier-1 end-to-end smoke: one in-process service serving a real mix.

Fast by construction (thread workers, small families): proves the whole
pipeline — submit, plan, shard, run, cache, respond — plus the
observability surface: provenance manifests on responses, batch/request
spans consumable by the trace exporters, registry counters, reconciled
stats, and the ``python -m repro.service`` CLI entry point.
"""

import json

import pytest

from repro.service import QueryService, request
from repro.service.__main__ import build_stream, main
from repro.trace import get_counter, load_trace_spans
from repro.trace.export import write_chrome_trace
from repro.trace.tracer import span_from_dict

from .conftest import mixed_stream, run_async

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def served():
    """One served mixed stream shared by the smoke assertions."""
    reqs = mixed_stream()

    async def go():
        async with QueryService(shards=2, cache_capacity=64) as svc:
            cold = await svc.submit_many(reqs)
            warm = await svc.submit_many(reqs)   # second pass: cache hits
        return reqs + reqs, cold + warm, svc

    return run_async(go())


class TestEndToEnd:
    def test_every_request_answered_in_order(self, served):
        reqs, resps, _ = served
        assert len(resps) == len(reqs)
        for req, resp in zip(reqs, resps):
            assert resp.payload["schema"] == "repro.service/1"
            assert resp.payload["algorithm"] == req.algorithm

    def test_responses_carry_a_provenance_manifest(self, served):
        _, resps, _ = served
        for resp in resps:
            assert resp.provenance["schema"] == "repro.provenance/1"
            assert resp.provenance["config"]["shards"] == 2

    def test_repeat_traffic_hits_the_cache(self, served):
        reqs, resps, svc = served
        hits = [r for r in resps if r.cache_hit]
        assert len(hits) >= len(reqs) // 2   # the whole second pass
        assert svc.cache.stats()["hits"] >= 1

    def test_meta_carries_serving_coordinates(self, served):
        _, resps, svc = served
        for resp in resps:
            assert 0 <= resp.meta["shard"] < svc.n_shards
            assert resp.meta["batch_size"] >= 1
            assert resp.meta["latency_s"] >= 0.0

    def test_stats_reconcile_exactly(self, served):
        reqs, _, svc = served
        s = svc.counters
        assert s.requests == len(reqs)
        assert s.responses == s.requests  # no faults in the smoke stream
        assert s.cache_hit_requests + s.cold_requests + \
            s.coalesced_requests == s.responses
        assert s.dedup_hits >= 1          # the stream repeats requests
        assert svc.stats_dict()["service"] == s.to_dict()

    def test_simulated_charges_ride_the_response(self, served):
        _, resps, _ = served
        parallel = [r for r in resps if r.payload["backend"] != "serial"]
        assert parallel and all(r.payload["sim_time"] > 0 for r in parallel)


class TestObservability:
    def test_batch_spans_follow_the_tracer_schema(self, served):
        _, _, svc = served
        forest = svc.span_forest()
        assert forest
        for doc in forest:
            span = span_from_dict(doc)   # schema-compatible round-trip
            assert span.category == "batch"
            assert span.to_dict()["attrs"]["size"] >= 1
        sizes = [d["attrs"]["size"] for d in forest]
        assert sum(sizes) == svc.counters.responses

    def test_request_child_spans_carry_latency(self, served):
        _, _, svc = served
        children = [c for d in svc.span_forest() for c in d["children"]]
        assert children
        for child in children:
            assert child["cat"] == "request"
            assert child["attrs"]["latency_s"] >= 0.0

    def test_span_forest_exports_through_chrome_trace(self, served,
                                                      tmp_path):
        _, _, svc = served
        out = write_chrome_trace(tmp_path / "service_trace.json",
                                 svc.span_forest(),
                                 provenance=svc._provenance)
        doc = json.loads(out.read_text())
        assert doc["metadata"]["provenance"]["schema"] == \
            "repro.provenance/1"
        spans, _ = load_trace_spans(out)
        assert spans == svc.span_forest()

    def test_registry_counters_track_serving(self):
        before = get_counter("service.requests").value
        reqs = [request("steady_hull", kind="random", seed=9, n=5)]

        async def go():
            async with QueryService() as svc:
                await svc.submit_many(reqs)

        run_async(go())
        assert get_counter("service.requests").value == before + 1

    def test_span_limit_drops_oldest_batches(self):
        reqs = [request("steady_hull", kind="random", seed=s, n=4)
                for s in range(4)]

        async def go():
            async with QueryService(span_limit=2, batching=False) as svc:
                await svc.submit_many(reqs)
            return svc

        svc = run_async(go())
        assert len(svc.span_forest()) == 2
        assert svc.counters.spans_dropped == 2


class TestCommandLine:
    def test_build_stream_is_deterministic(self):
        a = build_stream(50, 6, seed=3)
        b = build_stream(50, 6, seed=3)
        assert [r.key() for r in a] == [r.key() for r in b]
        assert [r.key() for r in build_stream(50, 6, seed=4)] != \
            [r.key() for r in a]

    def test_stream_is_zipf_skewed_toward_head_families(self):
        stream = build_stream(300, 10, seed=0)
        head = stream[0].family
        count_head = sum(1 for r in stream if r.family == head)
        assert count_head >= 300 // 10   # far above uniform share in law

    def test_cli_smoke_replay_serves_everything(self, capsys):
        assert main(["--queries", "40", "--families", "6",
                     "--wave", "16"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["service"]["responses"] == 40
        assert stats["cache"]["lookups"] == stats["service"]["batches"]
