"""Shared fixtures for the test suite."""

import pytest

from repro.core.envelope import set_fast_combine


@pytest.fixture(params=[True, False], ids=["fast", "array"])
def fast_combine_mode(request):
    """Run the decorated tests under both envelope execution strategies.

    The host-side fast combine path (PR 1) must be output- and
    simulated-charge-identical to the array machinery; classes marked with
    ``@pytest.mark.usefixtures("fast_combine_mode")`` execute once per mode
    so neither path rots unexercised.
    """
    prev = set_fast_combine(request.param)
    try:
        yield request.param
    finally:
        set_fast_combine(prev)
