"""Shared fixtures for the test suite."""

import pytest

from repro.core.envelope import set_fast_combine
from repro.machines import clear_caches
from repro.ops.plans import set_compiled_plans


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Empty the cross-instance simulator memos before every test.

    The charge/doubling memos (``repro.machines.machine``) and the
    compiled movement-plan cache (``repro.ops.plans``) are process-wide by
    design.  Clearing them per test means a mis-keyed or stale entry fails
    the test that created it, instead of being masked by a correct entry
    some earlier test happened to populate (recompiling is microseconds).
    """
    clear_caches()
    yield


@pytest.fixture(params=[True, False], ids=["fast", "array"])
def fast_combine_mode(request):
    """Run the decorated tests under both envelope execution strategies.

    The host-side fast combine path (PR 1) must be output- and
    simulated-charge-identical to the array machinery; classes marked with
    ``@pytest.mark.usefixtures("fast_combine_mode")`` execute once per mode
    so neither path rots unexercised.
    """
    prev = set_fast_combine(request.param)
    try:
        yield request.param
    finally:
        set_fast_combine(prev)


@pytest.fixture(params=["vectorized", "compiled", "reference"],
                ids=["vectorized", "compiled", "interpreted"])
def plan_mode(request):
    """Run the decorated tests under all three data-movement executors.

    Same contract as ``fast_combine_mode``: the compiled plans (PR 3) and
    the vectorized column executor (PR 6) must be output- and
    simulated-charge-identical to the interpreted per-round path, so tests
    marked ``@pytest.mark.usefixtures("plan_mode")`` run once per
    executor.
    """
    prev = set_compiled_plans(request.param)
    try:
        yield request.param
    finally:
        set_compiled_plans(prev)
