"""One end-to-end scenario exercising the whole library together.

A 10-point planar system is analysed with every capability of the paper:
the transient Section 4 suite, the steady-state Section 5 suite, the
Section 6 pair sequences, serialization round trips, and machine-cost
sanity relations — all answers cross-checked against each other and
against brute force.  If any two subsystems disagree about the same
underlying physics, this test is where it surfaces.
"""

import math

import numpy as np
import pytest

from repro import (
    closest_pair_sequence,
    closest_point_sequence,
    collision_times,
    containment_intervals,
    enclosing_cube_edge_function,
    farthest_pair_sequence,
    hull_membership_intervals,
    hypercube_machine,
    is_extreme_at,
    mesh_machine,
    random_system,
    smallest_enclosing_cube_ever,
    steady_closest_pair,
    steady_farthest_pair,
    steady_hull,
    steady_nearest_neighbor,
)
from repro.baselines.brute import closest_pair_at, nearest_at
from repro.io import piecewise_from_dict, piecewise_to_dict, system_from_dict, system_to_dict


@pytest.fixture(scope="module")
def system():
    return random_system(10, d=2, k=1, seed=2024, scale=6.0)


@pytest.fixture(scope="module")
def machine():
    return hypercube_machine(256)


class TestStory:
    def test_chapter1_transient_neighbors(self, system, machine):
        seq = closest_point_sequence(machine, system)
        for t in np.linspace(0.05, 40, 60):
            j, d2 = nearest_at(system, 0, t)
            assert seq(t) == pytest.approx(d2, rel=1e-6, abs=1e-6)
        # Serialization round trip preserves the answer.
        clone = piecewise_from_dict(piecewise_to_dict(seq))
        assert clone.labels() == seq.labels()

    def test_chapter2_pairs_vs_point_sequences(self, system):
        pair_seq = closest_pair_sequence(None, system)
        for t in (0.3, 4.0, 17.0):
            _, _, want = closest_pair_at(system, t)
            assert pair_seq(t) == pytest.approx(want, rel=1e-6)
        far_seq = farthest_pair_sequence(None, system)
        for t in (0.3, 4.0, 17.0):
            assert far_seq(t) >= pair_seq(t)

    def test_chapter3_containment_consistency(self, system):
        D = enclosing_cube_edge_function(None, system)
        d_min, t_min = smallest_enclosing_cube_ever(None, system)
        assert D(t_min) == pytest.approx(d_min, rel=1e-9, abs=1e-9)
        # Fits-in-box with the minimal edge: t_min must lie inside some
        # reported window; box slightly smaller than d_min: never fits
        # around t_min.
        fits = containment_intervals(None, system, [d_min * 1.001] * 2)
        assert any(lo - 1e-6 <= t_min <= hi + 1e-6 for lo, hi in fits)
        too_small = containment_intervals(None, system, [d_min * 0.8] * 2)
        assert not any(lo <= t_min <= hi for lo, hi in too_small)

    def test_chapter4_membership_vs_oracle_and_steady(self, system):
        intervals = hull_membership_intervals(None, system, query=0)
        ends = [e for iv in intervals for e in iv if math.isfinite(e)]
        for t in np.linspace(0.05, 30, 80):
            if any(abs(t - e) < 0.05 for e in ends):
                continue
            inside = any(lo - 1e-9 <= t <= hi + 1e-9 for lo, hi in intervals)
            assert inside == is_extreme_at(system, 0, t)
        steady_extreme = 0 in steady_hull(None, system)
        tail = bool(intervals) and math.isinf(intervals[-1][1])
        assert tail == steady_extreme

    def test_chapter5_steady_matches_transient_tails(self, system):
        nn_seq = closest_point_sequence(None, system)
        assert steady_nearest_neighbor(None, system) == nn_seq.labels()[-1]
        cp_seq = closest_pair_sequence(None, system)
        assert tuple(sorted(steady_closest_pair(None, system))) == \
            tuple(sorted(cp_seq.labels()[-1]))
        fp_seq = farthest_pair_sequence(None, system)
        assert tuple(sorted(steady_farthest_pair(None, system))) == \
            tuple(sorted(fp_seq.labels()[-1]))

    def test_chapter6_costs_are_sane(self, system):
        mesh = mesh_machine(256)
        cube = hypercube_machine(256)
        closest_point_sequence(mesh, system)
        closest_point_sequence(cube, system)
        assert mesh.metrics.time > cube.metrics.time > 0
        assert mesh.metrics.comm_time <= mesh.metrics.time

    def test_chapter7_collisions_complete(self, system):
        times = collision_times(None, system)
        # Every reported time really is a meeting; brute-scan finds no
        # extra meetings between reported times.
        for t in times:
            pos = system.positions(t)
            d = np.linalg.norm(pos - pos[0], axis=1)
            d[0] = np.inf
            assert d.min() < 1e-3

    def test_chapter8_system_round_trip(self, system):
        clone = system_from_dict(system_to_dict(system))
        np.testing.assert_allclose(clone.positions(12.3),
                                   system.positions(12.3))
