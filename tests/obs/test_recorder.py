"""FlightRecorder unit contract: bounded rings, postmortem documents."""

import json

import pytest

from repro.obs.recorder import POSTMORTEM_SCHEMA, FlightRecorder

pytestmark = pytest.mark.obs


def test_rings_are_bounded_with_exact_drop_counts():
    rec = FlightRecorder(event_capacity=3, span_capacity=2)
    for i in range(6):
        rec.record_event({"seq": i, "event": "completed"})
    for i in range(5):
        rec.record_span({"name": f"batch:{i}"})
    assert [e["seq"] for e in rec.events] == [3, 4, 5]
    assert [s["name"] for s in rec.spans] == ["batch:3", "batch:4"]
    stats = rec.stats()
    assert stats["events_dropped"] == 3 and stats["spans_dropped"] == 3
    assert stats["events"] == 3 and stats["spans"] == 2


def test_zero_capacity_records_nothing():
    rec = FlightRecorder(event_capacity=0, span_capacity=0)
    rec.record_event({"seq": 0})
    rec.record_span({"name": "x"})
    assert rec.events == [] and rec.spans == []


def test_document_shape_and_provenance():
    rec = FlightRecorder()
    rec.record_event({"seq": 0, "event": "failed", "cid": "q-000000"})
    doc = rec.document("worker_death", context={"shard": 1},
                       stats={"service": {"errors": 1}})
    assert doc["schema"] == POSTMORTEM_SCHEMA
    assert doc["reason"] == "worker_death"
    assert doc["context"] == {"shard": 1}
    assert doc["events"][0]["cid"] == "q-000000"
    assert doc["stats"]["service"]["errors"] == 1
    assert doc["recorder"]["events"] == 1
    # Provenance is stamped at document time (the only timestamp).
    assert doc["provenance"]["schema"] == "repro.provenance/1"
    assert "git_sha" in doc["provenance"]
    bare = rec.document("worker_death", provenance=False)
    assert "provenance" not in bare


def test_dump_writes_loadable_json_and_counts(tmp_path):
    rec = FlightRecorder()
    rec.record_event({"seq": 0, "event": "failed"})
    path = rec.dump(tmp_path / "deep" / "pm.json", "service_error",
                    context={"batch": "b-000000"})
    doc = json.loads(path.read_text())
    assert doc["schema"] == POSTMORTEM_SCHEMA
    assert doc["context"]["batch"] == "b-000000"
    assert rec.dumps == 1
    rec.dump(tmp_path / "pm2.json", "service_error")
    assert rec.dumps == 2


def test_clear_empties_rings_but_keeps_accounting():
    rec = FlightRecorder(event_capacity=1)
    rec.record_event({"seq": 0})
    rec.record_event({"seq": 1})
    rec.clear()
    assert rec.events == [] and rec.spans == []
    assert rec.stats()["events_dropped"] == 1
