"""Log2Histogram unit contract: buckets, quantiles, exact merge.

The histogram is the deterministic backbone of the telemetry layer —
same samples, same bucket array, any grouping — so these tests pin the
arithmetic rather than sampling behaviour: exact bucket edges (powers of
two, no libm rounding), quantile-vs-sorted parity within one bucket's
resolution, merge associativity, and lossless snapshot round-trips.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.hist import HIST_SCHEMA, Log2Histogram, merge_histograms

pytestmark = pytest.mark.obs


def make(lo=2.0 ** -10, hi=2.0 ** 4, name="h"):
    return Log2Histogram(name, lo=lo, hi=hi, unit="s")


# ----------------------------------------------------------------------
# Construction and bucket arithmetic
# ----------------------------------------------------------------------
def test_range_must_be_power_of_two_multiple():
    Log2Histogram("ok", lo=0.5, hi=8.0)  # 0.5 * 2**4
    with pytest.raises(ValueError):
        Log2Histogram("bad", lo=0.5, hi=7.0)
    with pytest.raises(ValueError):
        Log2Histogram("bad", lo=0.0, hi=1.0)
    with pytest.raises(ValueError):
        Log2Histogram("bad", lo=2.0, hi=1.0)


def test_bucket_count_is_n_plus_underflow_overflow():
    h = make()  # lo * 2**14 == hi
    assert h.n == 14
    assert len(h.buckets) == 16


def test_bucket_edges_are_exact():
    h = make(lo=1.0, hi=16.0)  # buckets: [1,2) [2,4) [4,8) [8,16)
    # Underflow strictly below lo.
    assert h.bucket_of(0.0) == 0
    assert h.bucket_of(0.999999) == 0
    # Every lower edge starts its own bucket; the value just below the
    # edge stays in the previous one — exact, not libm-rounded.
    assert h.bucket_of(1.0) == 1
    assert h.bucket_of(2.0) == 2
    assert h.bucket_of(math.nextafter(2.0, 0.0)) == 1
    assert h.bucket_of(4.0) == 3
    assert h.bucket_of(8.0) == 4
    assert h.bucket_of(math.nextafter(16.0, 0.0)) == 4
    # Saturation at hi.
    assert h.bucket_of(16.0) == h.n + 1
    assert h.bucket_of(1e9) == h.n + 1


def test_observe_tracks_exact_aggregates():
    h = make(lo=1.0, hi=16.0)
    for v in (0.25, 1.5, 3.0, 40.0):
        h.observe(v)
    assert h.count == 4
    assert h.total == pytest.approx(44.75)
    assert h.vmin == 0.25 and h.vmax == 40.0
    assert h.mean == pytest.approx(44.75 / 4)
    assert sum(h.buckets) == h.count


def test_determinism_same_samples_same_buckets():
    rng = np.random.default_rng(7)
    samples = rng.uniform(0, 20, size=500)
    a, b = make(lo=1.0, hi=16.0), make(lo=1.0, hi=16.0)
    for v in samples:
        a.observe(v)
    for v in samples:
        b.observe(v)
    assert a.buckets == b.buckets and a.count == b.count


# ----------------------------------------------------------------------
# Quantiles: upper-bound contract + parity with sorted samples
# ----------------------------------------------------------------------
def test_quantile_empty_is_none():
    assert make().quantile(0.5) is None
    assert make().summary()["p50"] is None


def test_quantile_rejects_out_of_range():
    h = make()
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_quantile_is_bucket_upper_bound_of_rank_sample():
    rng = np.random.default_rng(3)
    samples = np.concatenate([
        rng.uniform(2.0 ** -12, 2.0 ** 5, size=900),   # in range + a tail
        rng.uniform(0.0, 2.0 ** -11, size=100),        # underflow mass
    ])
    h = make()
    for v in samples:
        h.observe(v)
    ordered = np.sort(samples)
    for q in (0.01, 0.25, 0.50, 0.90, 0.99, 1.0):
        rank = max(1, math.ceil(q * len(ordered)))
        sample = float(ordered[rank - 1])
        bound = h.quantile(q)
        # Exactly the upper edge of the bucket holding the rank sample...
        assert bound == h.upper_bound(h.bucket_of(sample))
        # ...hence within one bucket's resolution of the exact value
        # (overflowed ranks saturate to inf, explicitly).
        if sample < h.hi:
            assert sample <= bound <= max(2.0 * sample, h.lo)
        else:
            assert bound == math.inf


def test_quantile_saturates_to_inf_on_overflow_mass():
    h = make(lo=1.0, hi=4.0)
    for _ in range(10):
        h.observe(100.0)
    assert h.quantile(0.5) == math.inf


def test_percentiles_labels():
    h = make(lo=1.0, hi=4.0)
    h.observe(1.5)
    out = h.percentiles((0.5, 0.999))
    assert set(out) == {"p50", "p99_9"}


def test_cumulative_ends_at_total_count():
    h = make(lo=1.0, hi=4.0)
    for v in (0.5, 1.0, 2.0, 9.0):
        h.observe(v)
    pairs = h.cumulative()
    assert pairs[-1][0] == math.inf and pairs[-1][1] == h.count
    cums = [c for _, c in pairs]
    assert cums == sorted(cums)


# ----------------------------------------------------------------------
# Exact merge
# ----------------------------------------------------------------------
def test_merge_is_bucketwise_exact_and_grouping_invariant():
    rng = np.random.default_rng(11)
    samples = rng.uniform(0, 20, size=600)
    whole = make(lo=1.0, hi=16.0)
    for v in samples:
        whole.observe(v)
    parts = [make(lo=1.0, hi=16.0) for _ in range(4)]
    for i, v in enumerate(samples):
        parts[i % 4].observe(v)
    merged = merge_histograms(parts)
    assert merged.buckets == whole.buckets
    assert merged.count == whole.count
    assert merged.vmin == whole.vmin and merged.vmax == whole.vmax
    assert merged.total == pytest.approx(whole.total)
    # Any grouping of the same parts gives the same bucket state.
    left = merge_histograms(parts[:2]).merge(merge_histograms(parts[2:]))
    assert left.buckets == merged.buckets and left.count == merged.count


def test_merge_rejects_range_mismatch():
    with pytest.raises(ValueError):
        make(lo=1.0, hi=16.0).merge(make(lo=1.0, hi=32.0))


def test_merge_histograms_empty_iterable_is_none():
    assert merge_histograms([]) is None


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_to_dict_from_dict_round_trip_is_lossless():
    h = make(lo=1.0, hi=16.0)
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    doc = json.loads(json.dumps(h.to_dict()))
    assert doc["schema"] == HIST_SCHEMA
    back = Log2Histogram.from_dict(doc)
    assert back.buckets == h.buckets
    assert (back.count, back.total, back.vmin, back.vmax) == \
        (h.count, h.total, h.vmin, h.vmax)
    assert back.quantile(0.5) == h.quantile(0.5)


def test_from_dict_rejects_wrong_kind_and_shape():
    h = make(lo=1.0, hi=4.0)
    doc = h.to_dict()
    with pytest.raises(ValueError):
        Log2Histogram.from_dict({**doc, "kind": "linear"})
    with pytest.raises(ValueError):
        Log2Histogram.from_dict({**doc, "buckets": [0, 0]})


def test_clear_zeroes_state_but_keeps_range():
    h = make(lo=1.0, hi=4.0)
    h.observe(2.0)
    h.clear()
    assert h.count == 0 and sum(h.buckets) == 0
    assert h.vmin is None and h.quantile(0.5) is None
    assert (h.lo, h.hi) == (1.0, 4.0)
