"""``python -m repro.report postmortem`` — the dump renderer CLI."""

import json

import pytest

from repro.obs.recorder import FlightRecorder
from repro.report.postmortem import load_postmortem, main, render_postmortem

pytestmark = pytest.mark.obs


@pytest.fixture
def dump(tmp_path):
    rec = FlightRecorder()
    rec.record_event({"seq": 0, "event": "request_received",
                      "cid": "q-000000", "algorithm": "envelope"})
    rec.record_event({"seq": 1, "event": "batched", "cid": "q-000000",
                      "batch": "b-000000"})
    rec.record_event({"seq": 2, "event": "dispatched", "cid": "b-000000",
                      "cids": ["q-000000"], "shard": 0, "attempt": 1})
    rec.record_event({"seq": 3, "event": "failed", "cid": "q-000000",
                      "batch": "b-000000", "code": "worker_failed"})
    rec.record_event({"seq": 4, "event": "completed", "cid": "q-000001"})
    return rec.dump(
        tmp_path / "pm.json", "service_error",
        context={"batch": "b-000000", "shard": 0, "code": "worker_failed",
                 "cids": ["q-000000"]},
        stats={"service": {"requests": 2, "responses": 1, "errors": 1,
                           "retries": 0, "batches": 1}})


def test_render_reconstructs_the_failing_chain(dump):
    text = render_postmortem(load_postmortem(dump))
    assert "reason=service_error" in text
    assert "event chain [q-000000] (4 event(s))" in text
    for event in ("request_received", "batched", "dispatched", "failed"):
        assert event in text
    # The bystander request's chain is not rendered.
    assert "q-000001" not in text
    assert "requests=2" in text and "errors=1" in text


def test_render_is_pure(dump):
    doc = load_postmortem(dump)
    assert render_postmortem(doc) == render_postmortem(doc)


def test_cid_flag_selects_one_chain(dump, capsys):
    assert main([str(dump), "--cid", "q-000001"]) == 0
    out = capsys.readouterr().out
    assert "event chain [q-000001] (1 event(s))" in out
    assert "q-000000" not in out.split("event chain")[1]


def test_main_renders_and_exits_zero(dump, capsys):
    assert main([str(dump)]) == 0
    assert "postmortem: reason=service_error" in capsys.readouterr().out


def test_missing_and_malformed_files_are_usage_errors(tmp_path, capsys):
    assert main([str(tmp_path / "nope.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.postmortem/999",
                               "reason": "x"}))
    assert main([str(bad)]) == 2
    not_pm = tmp_path / "not_pm.json"
    not_pm.write_text(json.dumps({"hello": 1}))
    assert main([str(not_pm)]) == 2


def test_report_cli_dispatches_postmortem(dump, capsys):
    from repro.report.__main__ import main as report_main
    assert report_main(["postmortem", str(dump)]) == 0
    assert "reason=service_error" in capsys.readouterr().out
