"""ServiceTelemetry + registry histogram cells + Prometheus rendering."""

import pytest

from repro.obs import HIST_SPECS, ServiceTelemetry, render_prometheus
from repro.trace.registry import MetricsRegistry

pytestmark = pytest.mark.obs


def make_telemetry(**kwargs):
    # A private registry per test: the global REGISTRY aggregates across
    # service instances by design, which is exactly what a unit test of
    # the mirroring behaviour must not share.
    return ServiceTelemetry(registry=MetricsRegistry(), **kwargs)


# ----------------------------------------------------------------------
# Correlation-id mint
# ----------------------------------------------------------------------
def test_mint_is_monotone_per_domain():
    t = make_telemetry()
    assert [t.mint("q"), t.mint("q"), t.mint("q")] == \
        ["q-000000", "q-000001", "q-000002"]
    # Domains count independently; ids never collide across domains.
    assert t.mint("m") == "m-000000"
    assert t.mint("b") == "b-000000"
    assert t.mint("d") == "d-000000"
    assert t.mint("q") == "q-000003"


def test_mint_rejects_unknown_domain():
    with pytest.raises(KeyError):
        make_telemetry().mint("x")


# ----------------------------------------------------------------------
# Histograms: instance + registry mirror
# ----------------------------------------------------------------------
def test_observe_feeds_instance_and_registry_cells():
    reg = MetricsRegistry()
    t = ServiceTelemetry(registry=reg)
    t.observe("request_latency_s", 0.004)
    t.observe("request_latency_s", 0.008)
    t.observe("batch_size", 3)
    assert t.hists["request_latency_s"].count == 2
    snap = reg.snapshot()
    assert snap["service.hist.request_latency_s"]["count"] == 2
    assert snap["service.hist.batch_size"]["count"] == 1


def test_registry_histogram_range_conflict_is_an_error():
    reg = MetricsRegistry()
    reg.histogram("h", lo=1.0, hi=4.0)
    assert reg.histogram("h", lo=1.0, hi=4.0) is reg.histogram(
        "h", lo=1.0, hi=4.0)
    with pytest.raises(ValueError):
        reg.histogram("h", lo=1.0, hi=8.0)


def test_clear_resets_instance_cells_not_registry():
    reg = MetricsRegistry()
    t = ServiceTelemetry(registry=reg)
    t.observe("request_latency_s", 0.004)
    t.emit("completed", cid="q-000000")
    t.clear()
    assert t.hists["request_latency_s"].count == 0
    assert len(t.events) == 0 and t.recorder.events == []
    # The registry cell aggregates across instances by design.
    assert reg.snapshot()["service.hist.request_latency_s"]["count"] == 1


# ----------------------------------------------------------------------
# Events ride into the recorder
# ----------------------------------------------------------------------
def test_emit_is_retained_by_log_and_recorder():
    t = make_telemetry()
    rec = t.emit("failed", cid="q-000000", code="worker_failed")
    assert t.events.events() == [rec]
    assert t.recorder.events == [rec]


def test_snapshot_sections():
    t = make_telemetry()
    t.observe("queue_depth", 5)
    t.emit("completed", cid="q-000000")
    snap = t.snapshot()
    assert set(snap) == {"histograms", "events", "recorder"}
    assert set(snap["histograms"]) == set(HIST_SPECS)
    assert snap["histograms"]["queue_depth"]["count"] == 1
    assert snap["events"]["emitted"] == 1
    assert snap["recorder"]["events"] == 1


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------
def snapshot_doc():
    t = make_telemetry()
    for v in (0.002, 0.004, 0.064):
        t.observe("request_latency_s", v)
    return {
        "schema": "repro.obs/1",
        "uptime": {"wall_s": 1.5, "sim_time_served": 12.0},
        "counters": {"requests": 3, "responses": 3},
        "cache": {"hits": 2, "hit_rate": 0.5},
        "histograms": t.histogram_dicts(),
        "events": t.events.stats(),
        "recorder": t.recorder.stats(),
    }


def test_render_prometheus_gauges_and_histogram_blocks():
    text = render_prometheus(snapshot_doc())
    assert text.startswith("# repro stats snapshot schema=repro.obs/1\n")
    assert "repro_service_counters_requests 3" in text
    assert "repro_service_uptime_wall_s 1.5" in text
    assert "repro_service_cache_hit_rate 0.5" in text
    # Histogram exposition: cumulative buckets ending at +Inf == count.
    assert "# TYPE repro_service_request_latency_s histogram" in text
    assert 'repro_service_request_latency_s_bucket{le="+Inf"} 3' in text
    assert "repro_service_request_latency_s_count 3" in text


def test_render_prometheus_is_pure():
    doc = snapshot_doc()
    assert render_prometheus(doc) == render_prometheus(doc)


def test_rendered_cumulative_counts_are_monotone():
    text = render_prometheus(snapshot_doc())
    cums = [int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_service_request_latency_s_bucket")]
    assert cums and cums == sorted(cums) and cums[-1] == 3
