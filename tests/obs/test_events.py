"""EventLog unit contract: vocabulary, ordering, bounds, correlation."""

import json

import pytest

from repro.obs.events import EVENTS, EventLog

pytestmark = pytest.mark.obs


def test_vocabulary_is_closed():
    log = EventLog()
    with pytest.raises(ValueError):
        log.emit("request_recieved")  # the typo the vocabulary exists for
    rec = log.emit("request_received", cid="q-000000", algorithm="envelope")
    assert rec["event"] == "request_received"
    assert rec["cid"] == "q-000000"
    assert rec["algorithm"] == "envelope"


def test_sequence_numbers_are_the_ordering():
    log = EventLog()
    recs = [log.emit("completed", cid=f"q-{i:06d}") for i in range(5)]
    assert [r["seq"] for r in recs] == [0, 1, 2, 3, 4]
    assert [r["seq"] for r in log.events()] == [0, 1, 2, 3, 4]


def test_ring_is_bounded_with_exact_drop_count():
    log = EventLog(capacity=3)
    for i in range(10):
        log.emit("completed", cid=f"q-{i:06d}")
    assert len(log) == 3
    # Oldest dropped; the retained tail keeps its original seq numbers.
    assert [r["seq"] for r in log.events()] == [7, 8, 9]
    stats = log.stats()
    assert stats == {"emitted": 10, "dropped": 7, "size": 3, "capacity": 3}


def test_zero_capacity_retains_nothing_but_counts():
    log = EventLog(capacity=0)
    log.emit("completed")
    assert len(log) == 0 and log.stats()["emitted"] == 1


def test_for_cid_matches_direct_and_batch_scoped_records():
    log = EventLog()
    log.emit("request_received", cid="q-000000")
    log.emit("batched", cid="q-000000", batch="b-000000")
    log.emit("dispatched", cid="b-000000", cids=["q-000000", "q-000001"])
    log.emit("completed", cid="q-000001")
    chain = log.for_cid("q-000000")
    assert [r["event"] for r in chain] == \
        ["request_received", "batched", "dispatched"]
    assert [r["event"] for r in log.for_cid("q-000001")] == \
        ["dispatched", "completed"]
    assert log.for_cid("q-999999") == []


def test_jsonl_sink_mirrors_every_record(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=2, path=path)
    for i in range(5):
        log.emit("completed", cid=f"q-{i:06d}")
    log.close()
    lines = [json.loads(s) for s in path.read_text().splitlines()]
    # The sink is durable past the ring's capacity.
    assert len(lines) == 5
    assert [r["seq"] for r in lines] == [0, 1, 2, 3, 4]


def test_clear_keeps_counters_and_sequence_monotone():
    log = EventLog()
    log.emit("completed")
    log.clear()
    assert len(log) == 0
    rec = log.emit("completed")
    assert rec["seq"] == 1          # the sequence never restarts
    assert log.stats()["emitted"] == 2


def test_vocabulary_covers_the_service_lifecycle():
    assert {"request_received", "batched", "dispatched", "completed",
            "failed", "mutation_applied", "cache_invalidated"} == EVENTS
