"""Wall-clock smoke check — tier-1's guard against host-side regressions.

Runs the ``benchmarks/bench_wallclock.py`` sweep in smoke mode (reduced
sizes, a few seconds total) and fails on a >2x wall-clock regression
against the recorded seed baselines.  The JSON report goes to a pytest
temp dir, never to the repo-root ``BENCH_wallclock.json`` — that file is
reserved for explicit CLI benchmark runs, so the tier-1 suite cannot
overwrite deliberate large-tier results with smoke noise.  The
budgets are generous — the optimised tree runs 3-6x *faster* than seed, so
only a genuine regression (e.g. losing the fast combine path *and* the
crossing cache) can trip them, not machine noise.

Deselect with ``-m "not wallclock"`` when timing is meaningless (e.g.
under heavy parallel load).
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks"))

from bench_wallclock import run_wallclock, within_noise  # noqa: E402

pytestmark = pytest.mark.wallclock


def test_wallclock_smoke(tmp_path):
    json_path = tmp_path / "BENCH_wallclock.json"
    results = run_wallclock("smoke", repeats=3, json_path=json_path)
    assert json_path.exists()
    for name, entry in results["workloads"].items():
        # >2x regression vs the *seed* baseline fails: even the
        # unoptimised tree passed this with a 2x margin to spare.
        assert entry["seconds"] <= 2.0 * entry["seed_seconds"], (
            f"{name}: {entry['seconds']:.4f}s vs seed "
            f"{entry['seed_seconds']:.4f}s — wall-clock regression"
        )
    # The envelope sweep specifically must retain a clear win over seed:
    # losing the batched/cached fast path drops this to ~1x.
    assert results["workloads"]["envelope"]["speedup"] >= 1.5
    # Neither fast executor may be a pessimisation on the acceptance
    # workload.  Noise-aware (1.25x + 10 ms): smoke workloads run in tens
    # of milliseconds, where a plain ratio reads measurement grain as
    # signal — the large tier is where executor speedups are asserted.
    env = results["workloads"]["envelope"]
    assert within_noise(env["compiled_seconds"], env["plan_off_seconds"]), (
        f"envelope: compiled {env['compiled_seconds']:.4f}s slower than "
        f"interpreted {env['plan_off_seconds']:.4f}s"
    )
    assert within_noise(env["seconds"], env["plan_off_seconds"]), (
        f"envelope: vectorized {env['seconds']:.4f}s slower than "
        f"interpreted {env['plan_off_seconds']:.4f}s"
    )
