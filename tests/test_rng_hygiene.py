"""Enforce the no-unseeded-randomness rule across the whole tree.

Determinism is a load-bearing property here: golden simulated-time
numbers, the differential oracle's replayable corpus and the benchmark
tables all assume that every random draw flows from an explicit seed.  An
audit of ``src/``, ``tests/`` and ``benchmarks/`` found the rule already
held everywhere; this test keeps it that way mechanically by failing on:

* ``np.random.default_rng()`` with no seed argument;
* legacy global-state numpy draws (``np.random.seed``, ``np.random.rand``,
  ``np.random.uniform`` and friends called on the module singleton);
* the stdlib ``random`` module (its global Mersenne state is per-process).

``np.random.default_rng(seed)`` and ``np.random.Generator`` type hints are
of course fine.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
SCAN_DIRS = ("src", "tests", "benchmarks")

# Legacy numpy global-state entry points (module-level np.random.<fn>).
_LEGACY = (
    "seed|rand|randn|randint|random_sample|random|uniform|normal|choice|"
    "shuffle|permutation|standard_normal|RandomState"
)

FORBIDDEN = [
    (re.compile(r"default_rng\(\s*\)"),
     "np.random.default_rng() without an explicit seed"),
    (re.compile(rf"np\.random\.(?:{_LEGACY})\s*\("),
     "legacy numpy global-state RNG (np.random.<fn>(...))"),
    (re.compile(r"^\s*import random\b|^\s*from random import\b",
                re.MULTILINE),
     "stdlib random module (unseeded global state)"),
]


# Deliberately rule-violating inputs for the repro.check linter tests;
# RPR002 covers the same ground there with AST precision (and its own
# fixtures must contain violations to test against).
EXEMPT = REPO / "tests" / "check" / "fixtures"


def _python_files():
    for d in SCAN_DIRS:
        for path in sorted((REPO / d).rglob("*.py")):
            if not path.is_relative_to(EXEMPT):
                yield path


@pytest.mark.parametrize("pattern,label", FORBIDDEN,
                         ids=[lbl for _, lbl in FORBIDDEN])
def test_no_unseeded_randomness(pattern, label):
    this_file = pathlib.Path(__file__)
    offenders = []
    for path in _python_files():
        if path == this_file:
            continue
        text = path.read_text()
        for m in pattern.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            offenders.append(f"{path.relative_to(REPO)}:{line}")
    assert not offenders, (
        f"{label} found (thread a seeded np.random.Generator instead):\n  "
        + "\n  ".join(offenders)
    )


def test_scan_actually_scans():
    files = list(_python_files())
    assert len(files) > 100, "hygiene scan is not seeing the tree"
