"""Bounds and lifecycle of the cross-instance simulator memos.

The charge memo, doubling-bits memo and compiled-plan cache are process
globals by design; these tests pin that they (a) stay bounded under
adversarial sweeps, (b) empty completely through ``clear_caches``, and
(c) report hits/misses faithfully — both process-wide and per machine.
"""

import numpy as np

from repro.machines import clear_caches, hypercube_machine, mesh_machine
from repro.machines import machine as machine_mod
from repro.ops import bitonic_sort, plan_cache_stats
from repro.ops import plans as plans_mod


class TestChargeCacheBounds:
    def test_charge_cache_capped(self):
        for i, key in enumerate(range(machine_mod._CHARGE_CACHE_CAP + 10)):
            machine_mod._charge_cache_put(("probe", key), i)
            assert len(machine_mod._CHARGE_CACHE) <= machine_mod._CHARGE_CACHE_CAP

    def test_overflow_drops_then_refills(self):
        machine_mod._CHARGE_CACHE.clear()
        for key in range(machine_mod._CHARGE_CACHE_CAP):
            machine_mod._charge_cache_put(("probe", key), key)
        assert len(machine_mod._CHARGE_CACHE) == machine_mod._CHARGE_CACHE_CAP
        machine_mod._charge_cache_put(("probe", "overflow"), 0)
        assert len(machine_mod._CHARGE_CACHE) == 1

    def test_doubling_bits_capped(self):
        machine_mod._DOUBLING_BITS.clear()
        for k in range(machine_mod._DOUBLING_BITS_CAP + 16):
            mesh_machine(4).doubling_sweep(1 << (k % 20 + 1))
        assert len(machine_mod._DOUBLING_BITS) <= machine_mod._DOUBLING_BITS_CAP


class TestPlanCacheBounds:
    def test_plan_cache_capped(self):
        plans_mod.clear_plan_cache()
        m = hypercube_machine(4)
        for seg in (1, 2, 4):
            for asc in (True, False):
                plans_mod.get_sort_plan(m, 4, seg, asc)
        assert len(plans_mod._PLAN_CACHE) <= plans_mod._PLAN_CACHE_CAP

    def test_overflow_drops_whole_cache(self):
        plans_mod.clear_plan_cache()
        prev_cap = plans_mod._PLAN_CACHE_CAP
        plans_mod._PLAN_CACHE_CAP = 2
        try:
            m = hypercube_machine(8)
            plans_mod.get_sort_plan(m, 8, 8, True)
            plans_mod.get_sort_plan(m, 8, 8, False)
            assert len(plans_mod._PLAN_CACHE) == 2
            plans_mod.get_sort_plan(m, 8, 4, True)
            assert len(plans_mod._PLAN_CACHE) == 1
        finally:
            plans_mod._PLAN_CACHE_CAP = prev_cap
            plans_mod.clear_plan_cache()


class TestClearCaches:
    def test_empties_every_memo(self):
        bitonic_sort(mesh_machine(16), np.arange(16.0)[::-1])
        assert machine_mod._CHARGE_CACHE or machine_mod._DOUBLING_BITS
        clear_caches()
        assert not machine_mod._CHARGE_CACHE
        assert not machine_mod._DOUBLING_BITS
        assert not plans_mod._PLAN_CACHE
        stats = plan_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["size"] == 0


class TestPlanStats:
    def test_hit_miss_accounting(self):
        plans_mod.clear_plan_cache()
        data = np.random.default_rng(0).uniform(size=16)
        m1 = hypercube_machine(16)
        bitonic_sort(m1, data)
        first = plan_cache_stats()
        assert first["misses"] >= 1 and first["hits"] == 0
        m2 = hypercube_machine(16)
        bitonic_sort(m2, data)
        second = plan_cache_stats()
        assert second["misses"] == first["misses"]
        assert second["hits"] >= 1
        assert second["compile_seconds"] == first["compile_seconds"]

    def test_per_machine_metrics_mirror_globals(self):
        plans_mod.clear_plan_cache()
        data = np.random.default_rng(1).uniform(size=16)
        m1 = hypercube_machine(16)
        bitonic_sort(m1, data)
        assert m1.metrics.plan_misses >= 1
        assert m1.metrics.plan_hits == 0
        assert m1.metrics.plan_compile_seconds > 0.0
        m2 = hypercube_machine(16)
        bitonic_sort(m2, data)
        assert m2.metrics.plan_hits >= 1
        assert m2.metrics.plan_misses == 0

    def test_snapshot_carries_plan_counters(self):
        plans_mod.clear_plan_cache()
        m = hypercube_machine(16)
        bitonic_sort(m, np.random.default_rng(2).uniform(size=16))
        snap = m.metrics.snapshot()
        assert snap["plan_cache"]["misses"] == m.metrics.plan_misses
        assert snap["plan_cache"]["hits"] == m.metrics.plan_hits
