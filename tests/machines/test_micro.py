"""Tests for the register-transfer-level mesh (repro.machines.micro)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineConfigurationError, OperationContractError
from repro.machines.micro import (
    MicroMesh,
    broadcast_micro,
    prefix_rows,
    reduce_all,
    reduce_cols,
    reduce_rows,
    shearsort,
    sort_rows_odd_even,
)


def grid(n, seed=0):
    return np.random.default_rng(seed).uniform(-50, 50, n)


class TestMicroMesh:
    def test_size_validation(self):
        MicroMesh(16)
        with pytest.raises(MachineConfigurationError):
            MicroMesh(8)

    def test_load_shapes(self):
        m = MicroMesh(16)
        m.load("a", np.arange(16))
        m.load("b", np.arange(16).reshape(4, 4))
        np.testing.assert_array_equal(m.read("a"), m.read("b"))
        with pytest.raises(OperationContractError):
            m.load("c", np.arange(8))

    def test_shift_semantics(self):
        m = MicroMesh(16)
        m.load("x", np.arange(16))
        m.shift("y", "x", "west", fill=-1.0)  # receive from the left
        y = m.registers["y"]
        assert y[0, 0] == -1.0
        assert y[0, 1] == 0.0  # value of PE (0,0)
        assert m.metrics.comm_rounds == 1

    def test_shift_rejects_bad_direction(self):
        m = MicroMesh(16)
        m.load("x", np.arange(16))
        with pytest.raises(OperationContractError):
            m.shift("y", "x", "up")

    def test_compute_charges_local(self):
        m = MicroMesh(16)
        m.load("x", np.arange(16))
        m.compute("y", lambda g: g * 2, "x")
        assert m.metrics.local_rounds == 1
        np.testing.assert_array_equal(m.read("y"), np.arange(16) * 2)


class TestPrograms:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_broadcast(self, n):
        m = MicroMesh(n)
        data = grid(n, seed=n)
        m.load("x", data)
        broadcast_micro(m, "x", 1, 2)
        want = data.reshape(m.side, m.side)[1, 2]
        np.testing.assert_allclose(m.read("x"), want)

    @pytest.mark.parametrize("op,fill,np_red", [
        (np.minimum, np.inf, np.min),
        (np.maximum, -np.inf, np.max),
        (np.add, 0.0, np.sum),
    ])
    def test_reduce_all(self, op, fill, np_red):
        n = 64
        m = MicroMesh(n)
        data = grid(n, seed=3)
        m.load("x", data)
        reduce_all(m, "x", op, fill)
        np.testing.assert_allclose(m.read("x"), np_red(data), rtol=1e-12)

    def test_reduce_rows_cols(self):
        n = 64
        data = grid(n, seed=5).reshape(8, 8)
        m = MicroMesh(n)
        m.load("x", data)
        reduce_rows(m, "x", np.minimum, np.inf)
        np.testing.assert_allclose(
            m.registers["x"], np.broadcast_to(data.min(1)[:, None], (8, 8))
        )
        m2 = MicroMesh(n)
        m2.load("x", data)
        reduce_cols(m2, "x", np.maximum, -np.inf)
        np.testing.assert_allclose(
            m2.registers["x"], np.broadcast_to(data.max(0)[None, :], (8, 8))
        )

    def test_prefix_rows_sum(self):
        n = 64
        data = grid(n, seed=7).reshape(8, 8)
        m = MicroMesh(n)
        m.load("x", data)
        prefix_rows(m, "x", np.add, 0.0)
        np.testing.assert_allclose(m.registers["x"], np.cumsum(data, axis=1),
                                   rtol=1e-12)

    @pytest.mark.parametrize("n", [16, 64])
    def test_sort_rows(self, n):
        data = grid(n, seed=n + 1)
        m = MicroMesh(n)
        m.load("x", data)
        sort_rows_odd_even(m, "x")
        np.testing.assert_allclose(
            m.registers["x"], np.sort(data.reshape(m.side, m.side), axis=1)
        )

    def test_sort_rows_descending_mask(self):
        n = 16
        data = grid(n, seed=9)
        m = MicroMesh(n)
        m.load("x", data)
        mask = np.array([False, True, False, True])
        sort_rows_odd_even(m, "x", descending_mask=mask)
        g = m.registers["x"]
        ref = np.sort(data.reshape(4, 4), axis=1)
        np.testing.assert_allclose(g[0], ref[0])
        np.testing.assert_allclose(g[1], ref[1][::-1])

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_shearsort_snake_order(self, n):
        data = grid(n, seed=n + 2)
        m = MicroMesh(n)
        m.load("x", data)
        shearsort(m, "x")
        g = m.registers["x"].copy()
        g[1::2] = g[1::2, ::-1]  # unfold the snake
        flat = g.reshape(-1)
        assert np.all(np.diff(flat) >= -1e-9)
        np.testing.assert_allclose(np.sort(flat), np.sort(data))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_shearsort_is_permutation(self, seed):
        n = 16
        data = grid(n, seed=seed)
        m = MicroMesh(n)
        m.load("x", data)
        shearsort(m, "x")
        np.testing.assert_allclose(np.sort(m.read("x")), np.sort(data))


class TestCrossValidation:
    """The abstract cost model tracks the micro machine's real rounds."""

    def _micro_cost(self, program, n):
        m = MicroMesh(n)
        m.load("x", grid(n, seed=0))
        program(m)
        return m.metrics.time

    def test_broadcast_scaling_matches_model(self):
        from repro.ops import broadcast as model_broadcast
        from repro.machines import mesh_machine
        ratios = []
        for n in (64, 256, 1024):
            micro = self._micro_cost(
                lambda m: broadcast_micro(m, "x", 0, 0), n
            )
            model = mesh_machine(n)
            marked = np.zeros(n, dtype=bool)
            marked[0] = True
            model_broadcast(model, np.zeros(n), marked)
            ratios.append(micro / model.metrics.time)
        # Both Theta(sqrt n): the ratio must stay within a constant band.
        assert max(ratios) / min(ratios) < 2.0

    def test_semigroup_scaling_matches_model(self):
        from repro.ops import semigroup as model_semigroup
        from repro.machines import mesh_machine
        ratios = []
        for n in (64, 256, 1024):
            micro = self._micro_cost(
                lambda m: reduce_all(m, "x", np.minimum, np.inf), n
            )
            model = mesh_machine(n)
            model_semigroup(model, np.zeros(n), np.minimum)
            ratios.append(micro / model.metrics.time)
        assert max(ratios) / min(ratios) < 2.0

    def test_shearsort_pays_the_log_factor(self):
        """Shearsort (micro) grows ~sqrt(n) log n; bitonic under the
        shuffled cost model grows ~sqrt(n): their ratio must increase."""
        from repro.ops import bitonic_sort
        from repro.machines import mesh_machine
        ratios = []
        for n in (64, 256, 1024):
            micro = self._micro_cost(lambda m: shearsort(m, "x"), n)
            model = mesh_machine(n)
            bitonic_sort(model, grid(n, seed=1))
            ratios.append(micro / model.metrics.time)
        assert ratios[-1] > ratios[0]
