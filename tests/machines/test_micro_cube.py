"""Tests for the register-transfer-level hypercube (micro_cube).

The key property: on the hypercube the abstract cost model abstracts away
*nothing* (every rank-bit exchange is one physical link), so the micro
machine's communication round counts must equal the model's **exactly**.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineConfigurationError, OperationContractError
from repro.machines import hypercube_machine
from repro.machines.micro_cube import (
    MicroHypercube,
    cube_bitonic_sort,
    cube_broadcast,
    cube_prefix,
    cube_reduce,
)
from repro.ops import bitonic_sort, semigroup


def data(n, seed=0):
    return np.random.default_rng(seed).uniform(-100, 100, n)


class TestMicroHypercube:
    def test_size_validation(self):
        MicroHypercube(32)
        with pytest.raises(MachineConfigurationError):
            MicroHypercube(12)

    def test_load_shape(self):
        c = MicroHypercube(8)
        with pytest.raises(OperationContractError):
            c.load("x", np.zeros(4))

    def test_exchange_is_involution(self):
        c = MicroHypercube(8)
        c.load("x", np.arange(8))
        c.exchange("y", "x", 1)
        c.exchange("z", "y", 1)
        np.testing.assert_array_equal(c.read("z"), np.arange(8))
        assert c.metrics.comm_rounds == 2

    def test_exchange_dim_range(self):
        c = MicroHypercube(8)
        c.load("x", np.zeros(8))
        with pytest.raises(OperationContractError):
            c.exchange("y", "x", 3)


class TestPrograms:
    @pytest.mark.parametrize("n", [2, 16, 128])
    @pytest.mark.parametrize("op,red", [(np.minimum, np.min),
                                        (np.add, np.sum)])
    def test_reduce(self, n, op, red):
        c = MicroHypercube(n)
        d = data(n, seed=n)
        c.load("x", d)
        cube_reduce(c, "x", op)
        np.testing.assert_allclose(c.read("x"), red(d), rtol=1e-12)
        assert c.metrics.comm_rounds == int(np.log2(n))

    @pytest.mark.parametrize("source", [0, 3, 13])
    def test_broadcast(self, source):
        n = 16
        c = MicroHypercube(n)
        d = data(n, seed=1)
        c.load("x", d)
        cube_broadcast(c, "x", source)
        np.testing.assert_allclose(c.read("x"), d[source])

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_prefix(self, n):
        c = MicroHypercube(n)
        d = data(n, seed=n + 5)
        c.load("x", d)
        cube_prefix(c, "x", np.add)
        np.testing.assert_allclose(c.read("x"), np.cumsum(d), rtol=1e-10)
        assert c.metrics.comm_rounds == int(np.log2(n))

    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_bitonic_sort(self, n):
        c = MicroHypercube(n)
        d = data(n, seed=n + 9)
        c.load("x", d)
        cube_bitonic_sort(c, "x")
        np.testing.assert_allclose(c.read("x"), np.sort(d))
        q = int(np.log2(n))
        assert c.metrics.comm_rounds == q * (q + 1) // 2

    def test_descending_sort(self):
        c = MicroHypercube(16)
        d = data(16, seed=3)
        c.load("x", d)
        cube_bitonic_sort(c, "x", ascending=False)
        np.testing.assert_allclose(c.read("x"), np.sort(d)[::-1])

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=8))
    @settings(max_examples=64, deadline=None)
    def test_zero_one_principle(self, bits):
        """Batcher's 0-1 principle: a comparator network sorting every 0-1
        input sorts all inputs; we check the 0-1 side exhaustively-ish."""
        c = MicroHypercube(8)
        c.load("x", np.array(bits, dtype=float))
        cube_bitonic_sort(c, "x")
        np.testing.assert_array_equal(c.read("x"), np.sort(bits))


class TestExactModelAgreement:
    """Micro round counts == abstract model comm rounds, exactly."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_sort_rounds_exact(self, n):
        micro = MicroHypercube(n)
        micro.load("x", data(n))
        cube_bitonic_sort(micro, "x")
        model = hypercube_machine(n)
        bitonic_sort(model, data(n))
        assert micro.metrics.comm_rounds == model.metrics.comm_rounds
        assert micro.metrics.comm_time == model.metrics.comm_time

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_semigroup_rounds_exact(self, n):
        micro = MicroHypercube(n)
        micro.load("x", data(n))
        cube_reduce(micro, "x", np.minimum)
        model = hypercube_machine(n)
        semigroup(model, data(n), np.minimum)
        assert micro.metrics.comm_rounds == model.metrics.comm_rounds
