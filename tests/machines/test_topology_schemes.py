"""Tests for scheme-parametrized mesh cost models (the indexing ablation)."""

import numpy as np
import pytest

from repro.errors import MachineConfigurationError
from repro.machines import Machine
from repro.machines.topology import MeshTopology
from repro.ops import bitonic_sort


class TestSchemeParametrization:
    def test_default_is_shuffled_closed_form(self):
        t = MeshTopology(64)
        assert t.scheme == "shuffled-row-major"
        assert [t.exchange_distance(b) for b in range(6)] == [1, 1, 2, 2, 4, 4]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(MachineConfigurationError):
            MeshTopology(16, scheme="zigzag")

    def test_row_major_profile(self):
        t = MeshTopology(16, scheme="row-major")
        # Rank bit 0,1 move along the row (1,2), bits 2,3 along the column.
        assert [t.exchange_distance(b) for b in range(4)] == [1, 2, 1, 2]

    def test_snake_profile_worst_case(self):
        """Snake order folds rows: low bits can cross the whole row."""
        t = MeshTopology(16, scheme="snake-like")
        profile = [t.exchange_distance(b) for b in range(4)]
        assert max(profile) >= 3  # partners land far after the fold

    def test_shuffled_explicit_matches_closed_form(self):
        analytic = MeshTopology(64)
        # Explicit profile computation must agree with the closed form.
        measured = MeshTopology(64, scheme="shuffled-row-major")
        for b in range(6):
            assert measured.exchange_distance(b) == \
                analytic.exchange_distance(b)

    def test_trivial_mesh(self):
        t = MeshTopology(1, scheme="proximity")
        assert t.diameter == 0.0

    def test_sort_cost_ordering(self):
        """Thompson–Kung: shuffled order gives the cheapest bitonic sort."""
        data = np.random.default_rng(0).uniform(size=256)
        costs = {}
        for scheme in ("shuffled-row-major", "row-major", "snake-like",
                       "proximity"):
            m = Machine(MeshTopology(256, scheme))
            bitonic_sort(m, data)
            costs[scheme] = m.metrics.time
        assert costs["shuffled-row-major"] == min(costs.values())

    def test_results_identical_across_schemes(self):
        """The scheme changes cost only — never the computed answer."""
        data = np.random.default_rng(1).uniform(size=64)
        outs = []
        for scheme in ("shuffled-row-major", "row-major", "proximity"):
            m = Machine(MeshTopology(64, scheme))
            (out,), _ = bitonic_sort(m, data)
            outs.append(out)
        for o in outs[1:]:
            np.testing.assert_array_equal(o, outs[0])
