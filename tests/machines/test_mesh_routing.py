"""Tests for mesh packet routing — and why the mesh has no "expected" column.

On the hypercube, randomized routing buys an asymptotic improvement
(Theta(log n) expected vs Theta(log^2 n) deterministic sort).  On the mesh
every strategy is pinned to the Theta(sqrt n) communication diameter, which
is exactly why Tables 1 and 3 of the paper list expected-time improvements
for the hypercube only.
"""

import numpy as np
import pytest

from repro.errors import MachineConfigurationError, OperationContractError
from repro.machines.mesh_routing import (
    mesh_route_packets,
    mesh_transpose_permutation,
)


class TestTranspose:
    def test_is_permutation_and_involution(self):
        for n in (16, 64, 256):
            p = mesh_transpose_permutation(n)
            assert sorted(p.tolist()) == list(range(n))
            np.testing.assert_array_equal(p[p], np.arange(n))

    def test_rejects_non_square(self):
        with pytest.raises(MachineConfigurationError):
            mesh_transpose_permutation(12)


class TestMeshRouting:
    def test_identity_is_free(self):
        res = mesh_route_packets(np.arange(16))
        assert res.rounds == 0 and res.total_hops == 0

    @pytest.mark.parametrize("strategy", ["xy", "valiant"])
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_permutations_delivered(self, strategy, n):
        rng = np.random.default_rng(n)
        res = mesh_route_packets(rng.permutation(n), strategy=strategy,
                                 seed=n)
        assert res.rounds >= 1
        assert res.total_hops >= res.rounds

    def test_xy_hop_conservation(self):
        """XY routes are minimal: hops = sum of Manhattan distances."""
        n, side = 64, 8
        rng = np.random.default_rng(3)
        perm = rng.permutation(n)
        res = mesh_route_packets(perm, strategy="xy")
        src_r, src_c = np.arange(n) // side, np.arange(n) % side
        dst_r, dst_c = perm // side, perm % side
        manhattan = np.abs(src_r - dst_r) + np.abs(src_c - dst_c)
        assert res.total_hops == manhattan.sum()

    def test_rounds_are_diameter_bound(self):
        """Every strategy needs Theta(sqrt n) rounds — the Section 2.2
        communication diameter — so randomization cannot help the mesh the
        way it helps the hypercube (no mesh 'expected' column in Table 1)."""
        rounds_xy, rounds_v = [], []
        sizes = [64, 256, 1024]
        for n in sizes:
            tp = mesh_transpose_permutation(n)
            rounds_xy.append(mesh_route_packets(tp, strategy="xy").rounds)
            rounds_v.append(
                mesh_route_packets(tp, strategy="valiant", seed=1).rounds
            )
        for n, rx, rv in zip(sizes, rounds_xy, rounds_v):
            diam = 2 * (int(np.sqrt(n)) - 1)
            assert rx >= diam / 2
            assert rv >= rx  # two phases can only add rounds
        # Growth ~ sqrt(n): 4x packets -> ~2x rounds for both strategies.
        assert 1.7 < rounds_xy[2] / rounds_xy[1] < 2.4
        assert 1.7 < rounds_v[2] / rounds_v[1] < 2.4

    def test_transpose_queues_stay_small_under_xy(self):
        """Unlike the hypercube transpose, the mesh transpose drains its
        turn nodes (arrivals are staggered along the row), so XY queues
        stay O(1) — mesh congestion is capacity-, not hotspot-, limited."""
        for n in (64, 256, 1024):
            res = mesh_route_packets(mesh_transpose_permutation(n),
                                     strategy="xy")
            assert res.max_queue <= 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(MachineConfigurationError):
            mesh_route_packets(np.arange(12))
        with pytest.raises(OperationContractError):
            mesh_route_packets(np.zeros(16, dtype=int))
        with pytest.raises(OperationContractError):
            mesh_route_packets(np.arange(16), strategy="teleport")
