"""Unit tests for repro.machines.{topology,machine,metrics}."""

import pytest

from repro.errors import MachineConfigurationError
from repro.machines import (
    HypercubeTopology,
    MeshTopology,
    Metrics,
    PRAMTopology,
    SerialTopology,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
)


class TestTopologyValidation:
    def test_mesh_must_be_power_of_four(self):
        MeshTopology(64)
        with pytest.raises(MachineConfigurationError):
            MeshTopology(32)
        with pytest.raises(MachineConfigurationError):
            MeshTopology(12)

    def test_hypercube_must_be_power_of_two(self):
        HypercubeTopology(32)
        with pytest.raises(MachineConfigurationError):
            HypercubeTopology(12)

    def test_positive_pes(self):
        with pytest.raises(MachineConfigurationError):
            PRAMTopology(0)


class TestDiameters:
    """Communication diameters of Sections 2.2 and 2.3."""

    @pytest.mark.parametrize("n,expected", [(4, 2), (16, 6), (64, 14), (256, 30)])
    def test_mesh_diameter(self, n, expected):
        assert MeshTopology(n).diameter == expected  # 2*(sqrt(n)-1)

    @pytest.mark.parametrize("n,expected", [(2, 1), (16, 4), (1024, 10)])
    def test_hypercube_diameter(self, n, expected):
        assert HypercubeTopology(n).diameter == expected  # log2(n)


class TestExchangeCosts:
    def test_mesh_bit_cost(self):
        t = MeshTopology(64)
        assert [t.exchange_distance(b) for b in range(6)] == [1, 1, 2, 2, 4, 4]
        with pytest.raises(MachineConfigurationError):
            t.exchange_distance(6)

    def test_hypercube_bit_cost(self):
        t = HypercubeTopology(16)
        assert all(t.exchange_distance(b) == 1 for b in range(4))
        with pytest.raises(MachineConfigurationError):
            t.exchange_distance(4)

    def test_virtual_slots_are_local(self):
        t = MeshTopology(16)
        # 64 slots on 16 PEs: 4 slots per PE -> bits 0,1 are intra-PE.
        assert t.slot_exchange_distance(0, 64) == 0
        assert t.slot_exchange_distance(1, 64) == 0
        assert t.slot_exchange_distance(2, 64) == 1  # PE bit 0
        assert t.slot_exchange_distance(4, 64) == 2  # PE bit 2

    def test_slot_length_must_be_power_of_two(self):
        with pytest.raises(MachineConfigurationError):
            MeshTopology(16).slot_exchange_distance(0, 12)


class TestMachineCharging:
    def test_local_cost_scales_with_virtualisation(self):
        m = mesh_machine(16)
        m.local(16)
        assert m.metrics.time == 1
        m.reset()
        m.local(64)  # 4 slots per PE
        assert m.metrics.time == 4

    def test_serial_machine_charges_per_slot(self):
        m = serial_machine()
        m.local(128)
        assert m.metrics.time == 128

    def test_exchange_intra_pe_counts_as_local(self):
        m = mesh_machine(16)
        m.exchange(64, 0)
        assert m.metrics.comm_rounds == 0
        assert m.metrics.local_rounds == 4

    def test_exchange_comm_cost(self):
        m = mesh_machine(16)
        m.exchange(16, 2)  # PE bit 2 -> distance 2
        assert m.metrics.comm_time == 2.0
        h = hypercube_machine(16)
        h.exchange(16, 3)
        assert h.metrics.comm_time == 1.0

    def test_monotone_route_costs(self):
        mesh = mesh_machine(256)
        mesh.monotone_route(256)
        # sum over bits: 1+1+2+2+4+4+8+8 = 30 ~ Theta(sqrt(n))
        assert mesh.metrics.comm_time == 30.0
        cube = hypercube_machine(256)
        cube.monotone_route(256)
        assert cube.metrics.comm_time == 8.0  # log2(256) rounds

    def test_pram_everything_unit(self):
        p = pram_machine(64)
        p.exchange(64, 5)
        assert p.metrics.comm_time == 1.0

    def test_phase_attribution(self):
        m = mesh_machine(16)
        with m.phase("sort"):
            m.exchange(16, 2)
        m.local(16)
        assert m.metrics.phases["sort"] == 2.0
        assert m.metrics.time == 3.0

    def test_reset(self):
        m = mesh_machine(16)
        m.local(16)
        m.reset()
        assert m.metrics.time == 0
        assert m.metrics.snapshot()["rounds"] == 0


class TestMetrics:
    def test_snapshot_contains_phases(self):
        met = Metrics()
        with met.phase("x"):
            met.charge_comm(3.0)
        snap = met.snapshot()
        assert snap["phases"] == {"x": 3.0}
        assert snap["comm_time"] == 3.0
        assert snap["time"] == 3.0

    def test_nested_phases_charge_innermost(self):
        met = Metrics()
        with met.phase("outer"):
            with met.phase("inner"):
                met.charge_local()
        assert met.phases == {"inner": 1}
