"""Tests for the CCC and shuffle-exchange cost models (Section 1 remark)."""

import numpy as np
import pytest

from repro.errors import MachineConfigurationError
from repro.machines import (
    CCCTopology,
    ShuffleExchangeTopology,
    ccc_machine,
    hypercube_machine,
    shuffle_exchange_machine,
)
from repro.ops import bitonic_sort, parallel_prefix, semigroup


class TestTopologies:
    def test_power_of_two_required(self):
        CCCTopology(16)
        ShuffleExchangeTopology(16)
        with pytest.raises(MachineConfigurationError):
            CCCTopology(12)
        with pytest.raises(MachineConfigurationError):
            ShuffleExchangeTopology(12)

    def test_constant_bit_distance(self):
        ccc = CCCTopology(64)
        se = ShuffleExchangeTopology(64)
        for b in range(6):
            assert ccc.exchange_distance(b) == 3.0
            assert se.exchange_distance(b) == 2.0
        with pytest.raises(MachineConfigurationError):
            ccc.exchange_distance(6)

    def test_diameters_logarithmic(self):
        assert CCCTopology(1024).diameter == 25.0
        assert ShuffleExchangeTopology(1024).diameter == 20.0


class TestEmulation:
    """Normal algorithms run at an exact constant factor of the hypercube."""

    @pytest.mark.parametrize("op_name", ["sort", "prefix", "semigroup"])
    def test_constant_slowdown(self, op_name):
        n = 256
        data = np.random.default_rng(0).uniform(size=n)

        def run(machine):
            if op_name == "sort":
                bitonic_sort(machine, data)
            elif op_name == "prefix":
                parallel_prefix(machine, data, np.add)
            else:
                semigroup(machine, data, np.minimum)
            return machine.metrics.comm_time

        cube = run(hypercube_machine(n))
        ccc = run(ccc_machine(n))
        se = run(shuffle_exchange_machine(n))
        assert ccc == pytest.approx(3.0 * cube)
        assert se == pytest.approx(2.0 * cube)

    def test_results_identical(self):
        data = np.random.default_rng(1).uniform(size=64)
        outs = []
        for mk in (hypercube_machine, ccc_machine, shuffle_exchange_machine):
            (out,), _ = bitonic_sort(mk(64), data)
            outs.append(out)
        for o in outs[1:]:
            np.testing.assert_array_equal(o, outs[0])

    def test_envelope_runs_on_remark_architectures(self):
        from repro import PolynomialFamily, Polynomial, envelope, envelope_serial
        rng = np.random.default_rng(2)
        fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(12)]
        fam = PolynomialFamily(1)
        want = envelope_serial(fns, fam).labels()
        for mk in (ccc_machine, shuffle_exchange_machine):
            m = mk(64)
            assert envelope(m, fns, fam).labels() == want
            assert m.metrics.time > 0
