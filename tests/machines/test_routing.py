"""Tests for the hypercube packet-routing simulator (Reif–Valiant substrate)."""

import numpy as np
import pytest

from repro.errors import MachineConfigurationError, OperationContractError
from repro.machines.routing import (
    transpose_permutation,
    RoutingResult,
    bit_reversal_permutation,
    randomized_sort_rounds,
    route_packets,
)


class TestBitReversal:
    def test_is_permutation_and_involution(self):
        for n in (4, 16, 64, 256):
            p = bit_reversal_permutation(n)
            assert sorted(p.tolist()) == list(range(n))
            np.testing.assert_array_equal(p[p], np.arange(n))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MachineConfigurationError):
            bit_reversal_permutation(12)


class TestRouting:
    def test_identity_costs_nothing(self):
        res = route_packets(np.arange(16))
        assert res.rounds == 0 and res.total_hops == 0

    def test_single_swap_delivers(self):
        dst = np.arange(16)
        dst[0], dst[1] = 1, 0
        res = route_packets(dst)
        assert res.rounds >= 1

    @pytest.mark.parametrize("strategy", ["ecube", "valiant"])
    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_random_permutations_delivered(self, strategy, n):
        rng = np.random.default_rng(n)
        perm = rng.permutation(n)
        res = route_packets(perm, strategy=strategy, seed=n)
        assert isinstance(res, RoutingResult)
        assert res.rounds >= 1
        # Work conservation: every packet walks at least its Hamming distance.
        dist = np.array([bin(i ^ p).count("1") for i, p in enumerate(perm)])
        if strategy == "ecube":
            assert res.total_hops == dist.sum()

    def test_rejects_non_permutation(self):
        with pytest.raises(OperationContractError):
            route_packets(np.zeros(8, dtype=int))

    def test_rejects_bad_size(self):
        with pytest.raises(MachineConfigurationError):
            route_packets(np.arange(12))

    def test_unknown_strategy(self):
        with pytest.raises(OperationContractError):
            route_packets(np.arange(8), strategy="warp")

    def test_ecube_congestion_on_transpose(self):
        """The classic lower bound: dimension-order routing congests on the
        transpose permutation (queues grow like sqrt(n)), while Valiant's
        randomized scheme stays near the O(log n) ideal."""
        queues = {}
        for n in (256, 1024, 4096):
            det = route_packets(transpose_permutation(n), strategy="ecube")
            queues[n] = det.max_queue
        # Theta(sqrt(n)) hot spots: 4x nodes -> ~2x queue.
        assert queues[1024] >= 1.5 * queues[256]
        assert queues[4096] >= 1.5 * queues[1024]
        assert queues[4096] >= np.sqrt(4096) / 8
        # At n=4096 the randomized scheme beats deterministic rounds.
        det = route_packets(transpose_permutation(4096), strategy="ecube")
        rnd = route_packets(transpose_permutation(4096), strategy="valiant",
                            seed=1)
        assert rnd.rounds < det.rounds
        assert rnd.max_queue < det.max_queue

    def test_valiant_scales_logarithmically(self):
        """Expected O(log n): rounds grow far slower than n."""
        rounds = {}
        for n in (64, 256, 1024):
            rng = np.random.default_rng(7)
            res = route_packets(rng.permutation(n), strategy="valiant", seed=7)
            rounds[n] = res.rounds
        assert rounds[1024] < rounds[64] * 4  # 16x packets, < 4x rounds
        assert rounds[1024] <= 12 * np.log2(1024)


class TestRandomizedSortModel:
    def test_monotone_and_logarithmic(self):
        r64 = randomized_sort_rounds(64, seed=3)
        r1024 = randomized_sort_rounds(1024, seed=3)
        assert r1024 > r64
        assert r1024 < 4 * r64  # log-like growth

    def test_trivial(self):
        assert randomized_sort_rounds(1) == 1.0

    def test_expected_beats_bitonic_at_scale(self):
        """Table 1's expected Theta(log n) sort vs deterministic log^2 n."""
        from repro.machines import hypercube_machine
        from repro.ops import bitonic_sort
        n = 4096
        m = hypercube_machine(n)
        bitonic_sort(m, np.random.default_rng(0).uniform(size=n))
        assert randomized_sort_rounds(n, seed=0) < m.metrics.time
