"""The Metrics field-partition contract and accounting invariants.

Every ``Metrics`` dataclass field is either a *simulated charge* (carried
by ``absorb_sim``) or *host-side bookkeeping* (carried by ``absorb_wall``)
— and ``absorb`` is exactly the sum of the two paths.  These tests
introspect the dataclass so adding a field without assigning it to one of
the two absorption paths fails here, not in a silent double-count.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.metrics import Metrics

#: The documented partition (see the comment block above ``absorb_sim``).
SIM_FIELDS = {"time", "rounds", "comm_time", "comm_rounds", "local_rounds",
              "phases"}
WALL_FIELDS = {"wall_time", "wall_phases", "plan_hits", "plan_misses",
               "plan_compile_seconds"}
TRANSIENT_FIELDS = {"_phase_stack"}  # live bookkeeping, never absorbed


def _charged() -> Metrics:
    m = Metrics()
    with m.phase("alpha"):
        m.charge_local(3)
        m.charge_comm(2.0, rounds=2)
    with m.phase("beta"):
        m.charge_local(1)
    m.note_plan(hit=True)
    m.note_plan(hit=False, compile_seconds=0.25)
    return m


def test_every_field_is_assigned_to_exactly_one_absorb_path():
    fields = {f.name for f in dataclasses.fields(Metrics)}
    assert fields == SIM_FIELDS | WALL_FIELDS | TRANSIENT_FIELDS, (
        "new Metrics field: assign it to SIM_FIELDS or WALL_FIELDS here "
        "AND to the matching absorb_sim/absorb_wall path"
    )
    assert not SIM_FIELDS & WALL_FIELDS


def test_absorb_sim_moves_exactly_the_sim_fields():
    src, dst = _charged(), Metrics()
    dst.absorb_sim(src)
    for name in SIM_FIELDS:
        assert getattr(dst, name) == getattr(src, name), name
    for name in WALL_FIELDS:
        blank = getattr(Metrics(), name)
        assert getattr(dst, name) == blank, f"{name} leaked into absorb_sim"


def test_absorb_wall_moves_exactly_the_wall_fields():
    src, dst = _charged(), Metrics()
    dst.absorb_wall(src)
    for name in WALL_FIELDS:
        assert getattr(dst, name) == getattr(src, name), name
    for name in SIM_FIELDS:
        blank = getattr(Metrics(), name)
        assert getattr(dst, name) == blank, f"{name} leaked into absorb_wall"


def test_absorb_is_sim_plus_wall():
    src = _charged()
    via_absorb, via_parts = Metrics(), Metrics()
    via_absorb.absorb(src)
    via_parts.absorb_sim(src)
    via_parts.absorb_wall(src)
    assert via_absorb.snapshot() == via_parts.snapshot()
    assert via_absorb.snapshot()["time"] == src.time


def test_snapshot_round_trips_every_field():
    src = _charged()
    rebuilt = Metrics.from_snapshot(src.snapshot())
    assert rebuilt.snapshot() == src.snapshot()
    # The rebuilt accumulator is live, not a frozen view.
    rebuilt.charge_local(1)
    assert rebuilt.time == src.time + 1


def test_snapshot_is_a_copy():
    m = _charged()
    snap = m.snapshot()
    m.charge_local(5)
    assert snap["time"] != m.time
    snap["phases"]["alpha"] = -1.0
    assert m.phases["alpha"] != -1.0


@given(st.lists(st.integers(min_value=0, max_value=5),
                min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_nested_phase_wall_self_times_sum_to_wall_time(shape):
    """Per-phase wall self-times partition the outermost elapsed time.

    ``shape`` drives a two-level phase tree: each outer phase holds
    ``shape[i]`` nested inner phases.  Nested self-time goes to the inner
    label, the remainder to the outer label, and ``wall_time`` collects
    only outermost exits — so the parts must sum to the whole (up to
    float summation error).
    """
    m = Metrics()
    for i, inner_count in enumerate(shape):
        with m.phase(f"outer{i}"):
            m.charge_local(1)
            for j in range(inner_count):
                with m.phase(f"inner{i}.{j}"):
                    m.charge_local(1)
    total_self = sum(m.wall_phases.values())
    assert total_self == pytest.approx(m.wall_time, rel=1e-9, abs=1e-9)
    # The simulated side of the same contract is exact: every charge went
    # to exactly one phase label.
    assert sum(m.phases.values()) == m.time
