"""Unit tests for repro.machines.indexing (Figure 2 / Figure 3 properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineConfigurationError
from repro.machines.indexing import (
    SCHEMES,
    adjacency_fraction,
    gray_code,
    gray_code_inverse,
    is_recursively_decomposable,
    max_consecutive_distance,
    proximity,
    row_major,
    shuffled_row_major,
    snake_like,
)


@pytest.mark.parametrize("maker", SCHEMES.values(), ids=SCHEMES.keys())
@pytest.mark.parametrize("n", [4, 16, 64, 256])
class TestBijection:
    def test_scheme_is_a_bijection(self, maker, n):
        scheme = maker(n)
        r, c = scheme.all_coords()
        assert len(set(zip(r.tolist(), c.tolist()))) == n
        assert r.min() >= 0 and r.max() < scheme.side
        assert c.min() >= 0 and c.max() < scheme.side

    def test_rank_table_inverts(self, maker, n):
        scheme = maker(n)
        table = scheme.rank_table()
        r, c = scheme.all_coords()
        np.testing.assert_array_equal(table[r, c], np.arange(n))


class TestSizeValidation:
    def test_rejects_non_square(self):
        with pytest.raises(MachineConfigurationError):
            row_major(12)

    def test_rejects_non_power_of_four(self):
        # 36 = 6^2 but 6 is not a power of two.
        with pytest.raises(MachineConfigurationError):
            proximity(36)


class TestFigure2Properties:
    """The two properties of proximity order from Section 2.2."""

    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_proximity_consecutive_pes_adjacent(self, n):
        assert max_consecutive_distance(proximity(n)) == 1
        assert adjacency_fraction(proximity(n)) == 1.0

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_proximity_recursively_decomposable(self, n):
        assert is_recursively_decomposable(proximity(n))

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_shuffled_row_major_decomposable_but_not_adjacent(self, n):
        scheme = shuffled_row_major(n)
        assert is_recursively_decomposable(scheme)
        assert max_consecutive_distance(scheme) > 1

    @pytest.mark.parametrize("n", [16, 64])
    def test_snake_adjacent_but_not_decomposable(self, n):
        scheme = snake_like(n)
        assert max_consecutive_distance(scheme) == 1
        assert not is_recursively_decomposable(scheme)

    @pytest.mark.parametrize("n", [16, 64])
    def test_row_major_has_neither_property(self, n):
        scheme = row_major(n)
        assert max_consecutive_distance(scheme) > 1
        assert not is_recursively_decomposable(scheme)

    def test_shuffled_row_major_bit_locality(self):
        """Rank bit j toggles a row-or-column bit j//2 (Thompson–Kung)."""
        scheme = shuffled_row_major(64)
        r, c = scheme.all_coords()
        for j in range(6):
            ranks = np.arange(64)
            partner = ranks ^ (1 << j)
            dist = np.abs(r[ranks] - r[partner]) + np.abs(c[ranks] - c[partner])
            assert np.all(dist == (1 << (j // 2)))


class TestGrayCode:
    def test_small_table(self):
        np.testing.assert_array_equal(
            gray_code(np.arange(8)), [0, 1, 3, 2, 6, 7, 5, 4]
        )

    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100)
    def test_inverse(self, j):
        assert int(gray_code_inverse(gray_code(j))) == j

    def test_consecutive_ranks_are_neighbours(self):
        """Section 2.3: consecutive Gray-ranked PEs differ in one node bit."""
        g = gray_code(np.arange(1024))
        diffs = g[:-1] ^ g[1:]
        assert np.all(diffs & (diffs - 1) == 0)
        assert np.all(diffs != 0)

    def test_aligned_blocks_are_subcubes(self):
        """Blocks of 2^k consecutive ranks occupy subcubes."""
        g = gray_code(np.arange(256))
        for k in (1, 2, 4, 8, 16, 32):
            for start in range(0, 256, k):
                block = g[start : start + k]
                fixed = block[0]
                varying = 0
                for b in block:
                    varying |= b ^ fixed
                assert bin(int(varying)).count("1") <= int(np.log2(k))
