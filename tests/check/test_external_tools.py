"""Wiring tests for the generic tools (ruff, mypy) around ``repro.check``.

The container used for tier-1 runs does not ship ruff or mypy, so the
tests that *invoke* them are availability-gated with ``skipif`` — they
run in dev environments installed with ``pip install -e .[test]``.  The
configuration itself lives in ``pyproject.toml`` and is asserted
unconditionally, so a broken or deleted config fails tier-1 everywhere.
"""

import shutil
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

pytestmark = pytest.mark.check

REPO = Path(__file__).resolve().parents[2]

HAVE_RUFF = shutil.which("ruff") is not None
HAVE_MYPY = shutil.which("mypy") is not None


def _pyproject() -> dict:
    return tomllib.loads((REPO / "pyproject.toml").read_text())


# ----------------------------------------------------------------------
# Configuration contract (always runs)
# ----------------------------------------------------------------------
def test_tools_declared_in_test_extra():
    extra = _pyproject()["project"]["optional-dependencies"]["test"]
    assert "ruff" in extra and "mypy" in extra


def test_ruff_config_matches_repo_style():
    cfg = _pyproject()["tool"]["ruff"]
    assert cfg["target-version"] == "py310"
    lint = cfg["lint"]
    assert {"E", "F", "I"} <= set(lint["select"])
    # Fixture trees are deliberately rule-violating inputs; ruff must not
    # police them or every repro.check fixture becomes a lint failure.
    assert "tests/check/fixtures/**" in lint["per-file-ignores"]


def test_mypy_strict_scope_is_the_byte_critical_layers():
    # The strict set is the layers whose outputs are certified byte-for-
    # byte: charge accounting (machines/ops) and the serving + incremental
    # paths whose payloads the equivalence tests pin.
    overrides = _pyproject()["tool"]["mypy"]["overrides"]
    strict = [o for o in overrides if o.get("strict")]
    assert len(strict) == 1
    assert set(strict[0]["module"]) == {
        "repro.machines.*", "repro.ops.*",
        "repro.service.*", "repro.incremental.*",
    }


def test_check_marker_registered():
    markers = _pyproject()["tool"]["pytest"]["ini_options"]["markers"]
    assert any(m.startswith("check:") for m in markers)


# ----------------------------------------------------------------------
# Tool invocations (gated on availability)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_RUFF, reason="ruff not installed")
def test_ruff_accepts_config_and_tree():
    # --exit-zero: this asserts the configuration parses and the run
    # completes (a malformed [tool.ruff] exits 2); lint findings are a
    # dev-loop concern, not a tier-1 gate.
    proc = subprocess.run(
        ["ruff", "check", "--exit-zero", "src/repro"],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr


@pytest.mark.skipif(not HAVE_MYPY, reason="mypy not installed")
def test_mypy_accepts_config(tmp_path):
    target = tmp_path / "probe.py"
    target.write_text("x: int = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy",
         "--config-file", str(REPO / "pyproject.toml"),
         "--no-site-packages", str(target)],
        capture_output=True, text=True,
    )
    # rc 0/1 means the config parsed and checking ran; rc 2 is a usage or
    # configuration error.
    assert proc.returncode in (0, 1), proc.stdout + proc.stderr
