"""Call-graph builder tests: resolution properties and a golden snapshot.

The Hypothesis properties pin the resolution invariant the taint engine
leans on: however a callee is *spelled* at the call site — plain import,
``import ... as`` rename, ``from``-import (renamed or not), bound method
on a locally constructed instance — the edge lands on the same
``module.qualname`` key.  The golden snapshot freezes the resolved edge
set of ``repro.service.server`` so an accidental resolution regression
(or a genuine topology change) shows up as a reviewable diff; regenerate
with ``REPRO_UPDATE_GOLDENS=1``.
"""

import ast
import json
import keyword
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import build_graph
from repro.check.engine import iter_python_files, package_base

pytestmark = pytest.mark.check

GOLDEN = Path(__file__).parent / "golden_callgraph_server.json"
SRC_ROOT = Path(__file__).parents[2] / "src" / "repro"


def graph_of(files):
    return build_graph([(rel, ast.parse(src)) for rel, src in files])


def edge_keys(graph):
    return {(c.caller, c.callee) for c in graph.calls
            if c.callee is not None}


#: The caller's module name is longer than the 8-char identifier cap
#: below, so a generated library name can never collide with it.
CALLER_REL = "pkg/caller_module.py"
CALLER_MOD = "pkg.caller_module"

ident = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s) and not s.startswith("__"))

distinct_idents = st.lists(ident, min_size=3, max_size=3, unique=True)


# ----------------------------------------------------------------------
# Resolution properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(distinct_idents)
def test_alias_renamed_import_resolves_to_same_callee(names):
    pkg, fn, alias = names
    lib = (f"pkg/{pkg}.py", f"def {fn}():\n    return 1\n")
    plain = graph_of([lib, (CALLER_REL,
                            f"import pkg.{pkg}\n"
                            f"def caller():\n"
                            f"    return pkg.{pkg}.{fn}()\n")])
    renamed = graph_of([lib, (CALLER_REL,
                              f"import pkg.{pkg} as {alias}\n"
                              f"def caller():\n"
                              f"    return {alias}.{fn}()\n")])
    expected = (f"{CALLER_MOD}.caller", f"pkg.{pkg}.{fn}")
    assert expected in edge_keys(plain)
    assert edge_keys(plain) == edge_keys(renamed)


@settings(max_examples=40, deadline=None)
@given(distinct_idents)
def test_from_import_resolves_to_same_callee(names):
    pkg, fn, alias = names
    lib = (f"pkg/{pkg}.py", f"def {fn}():\n    return 1\n")
    direct = graph_of([lib, (CALLER_REL,
                             f"from pkg.{pkg} import {fn}\n"
                             f"def caller():\n"
                             f"    return {fn}()\n")])
    renamed = graph_of([lib, (CALLER_REL,
                              f"from pkg.{pkg} import {fn} as {alias}\n"
                              f"def caller():\n"
                              f"    return {alias}()\n")])
    relative = graph_of([("pkg/__init__.py", ""), lib,
                         (CALLER_REL,
                          f"from .{pkg} import {fn}\n"
                          f"def caller():\n"
                          f"    return {fn}()\n")])
    expected = (f"{CALLER_MOD}.caller", f"pkg.{pkg}.{fn}")
    assert expected in edge_keys(direct)
    assert expected in edge_keys(renamed)
    assert expected in edge_keys(relative)


@settings(max_examples=40, deadline=None)
@given(distinct_idents)
def test_bound_method_call_resolves_to_same_callee(names):
    cls_leaf, method, var = names
    cls = cls_leaf.capitalize() + "C"
    lib = (f"pkg/{cls_leaf}.py",
           f"class {cls}:\n"
           f"    def {method}(self):\n"
           f"        return 1\n")
    via_var = graph_of([lib, (CALLER_REL,
                              f"from pkg.{cls_leaf} import {cls}\n"
                              f"def caller():\n"
                              f"    {var} = {cls}()\n"
                              f"    return {var}.{method}()\n")])
    via_self = graph_of([lib, (CALLER_REL,
                               f"from pkg.{cls_leaf} import {cls}\n"
                               f"class Holder:\n"
                               f"    def __init__(self):\n"
                               f"        self.w = {cls}()\n"
                               f"    def caller(self):\n"
                               f"        return self.w.{method}()\n")])
    target = f"pkg.{cls_leaf}.{cls}.{method}"
    assert (f"{CALLER_MOD}.caller", target) in edge_keys(via_var)
    assert (f"{CALLER_MOD}.Holder.caller", target) in edge_keys(via_self)


def test_nested_def_shadows_module_function():
    g = graph_of([(CALLER_REL,
                   "def helper():\n    return 1\n"
                   "def caller():\n"
                   "    def helper():\n        return 2\n"
                   "    return helper()\n")])
    assert (f"{CALLER_MOD}.caller",
            f"{CALLER_MOD}.caller.helper") in edge_keys(g)
    assert (f"{CALLER_MOD}.caller",
            f"{CALLER_MOD}.helper") not in edge_keys(g)


def test_submit_edges_reach_the_submitted_callee():
    g = graph_of([("pkg/w.py", "def work(x):\n    return x\n"),
                  (CALLER_REL,
                   "from pkg.w import work\n"
                   "def caller(pool, item):\n"
                   "    return pool.submit(work, item)\n")])
    subs = [(c.caller, c.callee) for c in g.submitted()]
    assert (f"{CALLER_MOD}.caller", "pkg.w.work") in subs


# ----------------------------------------------------------------------
# Golden snapshot of repro.service.server
# ----------------------------------------------------------------------
def _server_snapshot():
    base = package_base(SRC_ROOT)
    files = [(p.relative_to(base).as_posix(), ast.parse(p.read_text()))
             for p in iter_python_files(SRC_ROOT)]
    graph = build_graph(files)
    mod = "repro.service.server"
    functions = sorted(
        ({"key": fn.key, "class": fn.class_name, "async": fn.is_async}
         for fn in graph.functions.values() if fn.module == mod),
        key=lambda d: d["key"])
    edges = sorted({(c.caller, c.callee, c.kind) for c in graph.calls
                    if c.callee is not None and c.caller is not None
                    and (c.caller == mod + ".<module>"
                         or c.caller.startswith(mod + "."))})
    return {"version": 1, "module": mod, "functions": functions,
            "edges": [list(e) for e in edges]}


def test_server_callgraph_matches_golden():
    snap = _server_snapshot()
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN.write_text(json.dumps(snap, indent=2) + "\n")
    assert GOLDEN.exists(), (
        "golden call-graph snapshot missing; regenerate with "
        "REPRO_UPDATE_GOLDENS=1 pytest tests/check/test_graph.py")
    golden = json.loads(GOLDEN.read_text())
    assert snap == golden, (
        "call graph of repro.service.server changed (stale golden); "
        "review the diff, then regenerate with REPRO_UPDATE_GOLDENS=1 "
        "pytest tests/check/test_graph.py")
