"""CLI contract of ``python -m repro.check``.

Exit codes are the shared ``verify``-style contract consumed by CI and
the tier-1 gate: 0 clean, 1 findings, 2 usage/input error.  The JSON
output is the machine-readable face of the same report object the gate
uses in-process.
"""

import json
from pathlib import Path

import pytest

from repro.check.__main__ import main

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_tree_exits_zero(capsys):
    rc = main([str(FIXTURES / "rpr001" / "core" / "good_clock.py")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_with_locations(capsys):
    rc = main([str(FIXTURES / "rpr001")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "bad_clock.py:9" in out and "RPR001" in out


def test_bad_path_exits_two(capsys):
    rc = main(["definitely/not/a/path.py"])
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


def test_json_output_schema(capsys):
    rc = main(["--json", str(FIXTURES / "rpr002")])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["ok"] is False
    assert doc["counts"] == {"RPR002": 6}
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005"} <= set(
        doc["rules"])
    finding = doc["findings"][0]
    assert {"path", "line", "col", "rule", "message", "source"} <= set(
        finding)


def test_select_restricts_rules(capsys):
    rc = main(["--json", "--select", "RPR004,RPR005",
               str(FIXTURES / "rpr002")])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0 and doc["counts"] == {}


def test_select_unknown_rule_exits_two(capsys):
    rc = main(["--select", "RPR123", str(FIXTURES / "rpr002")])
    assert rc == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    rc = main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rid in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert rid in out


def test_write_then_apply_baseline_roundtrip(tmp_path, capsys):
    base = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(base),
                 str(FIXTURES / "rpr003")]) == 0
    doc = json.loads(base.read_text())
    assert len(doc["entries"]) == 2
    assert all(e["reason"] for e in doc["entries"])

    capsys.readouterr()
    rc = main(["--baseline", str(base), str(FIXTURES / "rpr003")])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_baseline_reasons_are_mandatory(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({
        "version": 1,
        "entries": [{"fingerprint": "RPR001:x.py:src:0", "reason": ""}],
    }))
    rc = main(["--baseline", str(bad), str(FIXTURES / "rpr001")])
    assert rc == 2
    assert "reason" in capsys.readouterr().err


def test_stale_baseline_reported_and_strict(tmp_path, capsys):
    base = tmp_path / "baseline.json"
    base.write_text(json.dumps({
        "version": 1,
        "entries": [{"fingerprint": "RPR001:gone.py:whatever:0",
                     "reason": "kept for the stale-entry test"}],
    }))
    target = str(FIXTURES / "rpr001" / "core" / "good_clock.py")
    rc = main(["--baseline", str(base), target])
    assert rc == 0
    assert "stale" in capsys.readouterr().out
    assert main(["--baseline", str(base), "--strict-baseline", target]) == 1


def test_malformed_baseline_json_exits_two(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    rc = main(["--baseline", str(bad), str(FIXTURES / "rpr001")])
    assert rc == 2
