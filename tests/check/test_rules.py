"""Per-rule fixture tests: exact rule ids, lines, and suppressions.

Each RPR rule has a known-bad fixture (every expected finding asserted by
rule id and line number) and a known-good fixture (zero findings), under
``tests/check/fixtures/<rule>/``.  The fixture trees mimic the package
layout (``ops/``, ``machines/``, ...) because the rules scope themselves
by path through :class:`repro.check.policy.CheckPolicy`.
"""

from pathlib import Path

import pytest

from repro.check import RULES, Rule, register, run_check
from repro.check.rules import FileContext

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).parent / "fixtures"


def findings_of(subdir):
    report = run_check(FIXTURES / subdir)
    assert not report.parse_errors
    return report


def triples(report):
    """Sorted (filename, line, rule) for every *active* finding."""
    return sorted((f.path.rsplit("/", 1)[-1], f.line, f.rule)
                  for f in report.active)


# ----------------------------------------------------------------------
# RPR001 two-clock purity
# ----------------------------------------------------------------------
def test_rpr001_bad_fixture_exact_findings():
    report = findings_of("rpr001")
    assert triples(report) == [
        ("bad_clock.py", 4, "RPR001"),   # from time import perf_counter
        ("bad_clock.py", 5, "RPR001"),   # from datetime import datetime
        ("bad_clock.py", 9, "RPR001"),   # time.time() call
    ]


def test_rpr001_from_import_finding_covers_its_calls():
    # perf_counter() and datetime.now() calls produce no findings of
    # their own: the import line carries (and can suppress) them.
    report = findings_of("rpr001")
    assert all(f.line in (4, 5, 9) for f in report.active)


def test_rpr001_good_fixture_clean():
    report = run_check(FIXTURES / "rpr001" / "core" / "good_clock.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR002 determinism
# ----------------------------------------------------------------------
def test_rpr002_bad_fixture_exact_findings():
    report = findings_of("rpr002")
    assert triples(report) == [
        ("bad_rng.py", 10, "RPR002"),    # random.seed
        ("bad_rng.py", 11, "RPR002"),    # random.random
        ("bad_rng.py", 15, "RPR002"),    # legacy numpy global draw
        ("bad_rng.py", 19, "RPR002"),    # os.environ[...] in library code
        ("bad_rng.py", 24, "RPR002"),    # for c in set(...) feeding +=
        ("bad_rng.py", 30, "RPR002"),    # sum(... for ... in set(...))
    ]


def test_rpr002_entrypoint_may_read_environ():
    report = run_check(FIXTURES / "rpr002" / "ops" / "__main__.py")
    assert report.ok and not report.findings


def test_rpr002_good_fixture_clean():
    report = run_check(FIXTURES / "rpr002" / "ops" / "good_rng.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR003 charge accounting
# ----------------------------------------------------------------------
def test_rpr003_bad_fixture_exact_findings():
    report = findings_of("rpr003")
    assert triples(report) == [
        ("bad_movement.py", 8, "RPR003"),   # out[1:] = values[:-1]
        ("bad_movement.py", 14, "RPR003"),  # arr[src] = arr[dst]
    ]


def test_rpr003_charged_function_clean():
    report = run_check(FIXTURES / "rpr003" / "ops" / "good_movement.py")
    assert report.ok and not report.findings


def test_rpr003_only_binds_in_charge_scope(tmp_path):
    # The same movement writes outside ops//machines are not PE data.
    source = (FIXTURES / "rpr003" / "ops" / "bad_movement.py").read_text()
    elsewhere = tmp_path / "geometry"
    elsewhere.mkdir()
    (elsewhere / "movement.py").write_text(source)
    report = run_check(elsewhere)
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR004 bounded caches
# ----------------------------------------------------------------------
def test_rpr004_bad_fixture_exact_findings():
    report = findings_of("rpr004")
    assert triples(report) == [
        ("bad_cache.py", 5, "RPR004"),    # unbounded, unclearable _MEMO
        ("bad_cache.py", 14, "RPR004"),   # lru_cache(maxsize=None)
    ]


def test_rpr004_message_names_both_obligations():
    report = findings_of("rpr004")
    memo = [f for f in report.active if f.line == 5][0]
    assert "cap" in memo.message and "clear" in memo.message


def test_rpr004_good_fixture_clean():
    report = run_check(FIXTURES / "rpr004" / "machines" / "good_cache.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR005 fork-safety
# ----------------------------------------------------------------------
def test_rpr005_bad_fixture_exact_findings():
    report = findings_of("rpr005")
    assert triples(report) == [
        ("bad_workers.py", 15, "RPR005"),  # lambda worker
        ("bad_workers.py", 22, "RPR005"),  # nested-def worker
        ("bad_workers.py", 26, "RPR005"),  # global-mutating worker
    ]


def test_rpr005_good_fixture_clean():
    report = run_check(FIXTURES / "rpr005" / "verify" / "good_workers.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR006 vectorized-executor hygiene
# ----------------------------------------------------------------------
def test_rpr006_bad_fixture_exact_findings():
    report = findings_of("rpr006")
    assert triples(report) == [
        ("vexec.py", 8, "RPR006"),    # dtype=object outside _lower*/_rebox*
        ("vexec.py", 9, "RPR006"),    # for-over-range element loop
        ("vexec.py", 15, "RPR006"),   # per-round machine.exchange charge
        ("vexec.py", 20, "RPR006"),   # np.frompyfunc python lift
        ("vexec.py", 21, "RPR006"),   # astype(object)
    ]


def test_rpr006_good_fixture_boundary_functions_exempt():
    # The good tree boxes objects and walks elements *inside* the
    # _lower*/_rebox* boundary, charges only fused sweeps — zero findings.
    report = run_check(FIXTURES / "rpr006" / "good_tree")
    assert report.ok and not report.findings


def test_rpr006_only_binds_to_the_vexec_module(tmp_path):
    # The same code under any other module name is out of scope: RPR006
    # is a contract of repro.ops.vexec specifically.
    source = (FIXTURES / "rpr006" / "bad_tree" / "ops" /
              "vexec.py").read_text()
    ops = tmp_path / "ops"
    ops.mkdir()
    (ops / "helpers.py").write_text(source)
    report = run_check(tmp_path, select=["RPR006"])
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR007 service loop purity
# ----------------------------------------------------------------------
def test_rpr007_bad_fixture_exact_findings():
    report = findings_of("rpr007")
    assert triples(report) == [
        ("bad_server.py", 10, "RPR007"),  # envelope() in async handler
        ("bad_server.py", 11, "RPR007"),  # time.sleep() in async handler
        ("bad_server.py", 17, "RPR007"),  # driver via sync def nested in async
    ]


def test_rpr007_submit_pattern_and_sync_workers_clean():
    # pool.submit(execute_batch, ...) passes the callable uncalled, and a
    # plain sync function may run the driver — both are the point.
    report = run_check(FIXTURES / "rpr007" / "service" / "good_server.py")
    assert report.ok and not report.findings


def test_rpr007_only_binds_to_service_modules(tmp_path):
    # The same async driver calls outside service/ are out of scope:
    # RPR007 is a contract of the serving loop specifically.
    source = (FIXTURES / "rpr007" / "service" / "bad_server.py").read_text()
    verify = tmp_path / "verify"
    verify.mkdir()
    (verify / "bad_server.py").write_text(source)
    report = run_check(tmp_path, select=["RPR007"])
    assert report.ok and not report.findings


def test_rpr007_shipped_service_package_is_clean():
    # The real asyncio server honours its own rule with zero suppressions.
    # Checked from the package root so service/ modules resolve in scope.
    import repro
    root = Path(repro.__file__).parent
    assert (root / "service" / "server.py").exists()
    report = run_check(root, select=["RPR007"])
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR008 incremental event-queue determinism
# ----------------------------------------------------------------------
def test_rpr008_bad_fixture_exact_findings():
    report = findings_of("rpr008")
    assert triples(report) == [
        ("bad_queue.py", 8, "RPR008"),   # bare heappush (insertion order)
        ("bad_queue.py", 12, "RPR008"),  # id() in a sort key
        ("bad_queue.py", 16, "RPR008"),  # hash() in a sort key
    ]


def test_rpr008_canonical_tuple_push_clean():
    # Pushing explicit (failure_time, key, payload) tuples and sorting
    # by geometric keys is exactly the sanctioned pattern.
    report = run_check(FIXTURES / "rpr008" / "incremental" / "good_queue.py")
    assert report.ok and not report.findings


def test_rpr008_only_binds_to_incremental_modules(tmp_path):
    # The same code outside incremental/ is out of scope: RPR008 is a
    # contract of the certificate event queue specifically.
    source = (FIXTURES / "rpr008" / "incremental" / "bad_queue.py").read_text()
    analysis = tmp_path / "analysis"
    analysis.mkdir()
    (analysis / "bad_queue.py").write_text(source)
    report = run_check(tmp_path, select=["RPR008"])
    assert report.ok and not report.findings


def test_rpr008_shipped_incremental_package_is_clean():
    # The real engine honours its own rule with zero suppressions.
    import repro
    root = Path(repro.__file__).parent
    assert (root / "incremental" / "events.py").exists()
    report = run_check(root, select=["RPR008"])
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR009 telemetry hygiene
# ----------------------------------------------------------------------
def test_rpr009_bad_fixture_exact_findings():
    report = findings_of("rpr009")
    assert triples(report) == [
        ("bad_obs.py", 10, "RPR009"),  # time.time() in obs code
        ("bad_obs.py", 11, "RPR009"),  # unguarded self.records.append
        ("bad_obs.py", 16, "RPR009"),  # f-string payload to emit()
    ]


def test_rpr009_bounded_ring_and_structured_payloads_clean():
    # The cap-guarded ring idiom, perf_counter intervals, structured
    # fields, and local-list appends are all exactly the point.
    report = run_check(FIXTURES / "rpr009" / "obs" / "good_obs.py")
    assert report.ok and not report.findings


def test_rpr009_only_binds_to_obs_modules(tmp_path):
    # The same code outside obs/ (and service/, for emission sites) is
    # out of scope: RPR009 is a contract of the telemetry layer.
    source = (FIXTURES / "rpr009" / "obs" / "bad_obs.py").read_text()
    elsewhere = tmp_path / "analysis"
    elsewhere.mkdir()
    (elsewhere / "bad_obs.py").write_text(source)
    report = run_check(tmp_path, select=["RPR009"])
    assert report.ok and not report.findings


def test_rpr009_shipped_obs_package_is_clean():
    # The real telemetry package (and the service emission sites) honour
    # their own rule with zero suppressions.
    import repro
    root = Path(repro.__file__).parent
    assert (root / "obs" / "events.py").exists()
    report = run_check(root, select=["RPR009"])
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# Suppression behaviour (shared by all rules)
# ----------------------------------------------------------------------
def test_reasoned_noqa_suppresses_and_keeps_reason():
    report = findings_of("suppression")
    sup = [f for f in report.findings if f.line == 7]
    assert len(sup) == 1 and not sup[0].active
    assert sup[0].suppressed_by == "noqa"
    assert "reasoned suppression" in sup[0].suppress_reason


def test_reasonless_noqa_is_rpr000_and_does_not_suppress():
    report = findings_of("suppression")
    at_11 = sorted(f.rule for f in report.active if f.line == 11)
    assert at_11 == ["RPR000", "RPR002"]


def test_noqa_for_other_rule_does_not_cover():
    report = findings_of("suppression")
    at_15 = [f for f in report.active if f.line == 15]
    assert [f.rule for f in at_15] == ["RPR002"]


# ----------------------------------------------------------------------
# Rule-author API
# ----------------------------------------------------------------------
def test_custom_rule_registers_and_runs(tmp_path):
    @register
    class NoPrint(Rule):
        id = "RPR999"
        name = "no-print"
        summary = "print() calls in library code"

        def check(self, ctx: FileContext) -> None:
            for node, name in ctx.calls():
                if name == "print":
                    ctx.report(node, "print() in library code")

    try:
        target = tmp_path / "mod.py"
        target.write_text('def f():\n    print("hi")\n')
        report = run_check(target, select=["RPR999"])
        assert [(f.line, f.rule) for f in report.active] == [(2, "RPR999")]
    finally:
        RULES.pop("RPR999")


def test_builtin_rules_registered_with_docs():
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR006", "RPR007", "RPR008", "RPR009"} <= set(RULES)
    for rule in RULES.values():
        assert rule.name and rule.summary and rule.rationale
