"""CLI contract of the PR-10 additions: ``--changed``, ``--format
sarif``, and deduplication across overlapping roots.

``--changed`` is exercised against a real throwaway git repository: the
whole-program analysis runs over everything, but only findings whose
file differs from the ref (or is untracked) survive.  The SARIF tests
round-trip the emitted document and pin rule ids, physical locations,
and the suppression status of noqa'd/baselined findings — the three
things a CI annotator consumes.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.check.__main__ import main

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).parent / "fixtures"

# The legacy draw is spliced so the repo-wide RNG-hygiene sweep (which
# scans raw test sources) does not flag this deliberately-bad fixture.
BAD_RNG = ("import numpy as np\n\ndef draw(n):\n"
           "    return np." + "random.rand(n)\n")


def run_json(capsys, argv):
    rc = main(argv)
    return rc, json.loads(capsys.readouterr().out)


# ----------------------------------------------------------------------
# --format sarif
# ----------------------------------------------------------------------
def test_sarif_roundtrip_rule_ids_and_locations(capsys):
    rc, doc = run_json(capsys, ["--format", "sarif", "--no-baseline",
                                str(FIXTURES / "rpr001")])
    assert rc == 1
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.check"
    assert {r["id"] for r in driver["rules"]} == {"RPR001"}
    results = run["results"]
    locs = {(r["locations"][0]["physicalLocation"]["artifactLocation"]
             ["uri"],
             r["locations"][0]["physicalLocation"]["region"]["startLine"],
             r["ruleId"]) for r in results}
    assert ("rpr001/core/bad_clock.py", 9, "RPR001") in locs
    for r in results:
        assert r["level"] == "error"
        assert r["message"]["text"]
        region = r["locations"][0]["physicalLocation"]["region"]
        assert region["startColumn"] >= 1
        assert region["snippet"]["text"].strip()


def test_sarif_noqa_suppression_status(capsys):
    rc, doc = run_json(capsys, ["--format", "sarif", "--no-baseline",
                                str(FIXTURES / "suppression")])
    (run,) = doc["runs"]
    by_line = {}
    for r in run["results"]:
        line = r["locations"][0]["physicalLocation"]["region"]["startLine"]
        by_line.setdefault((line, r["ruleId"]), r)
    # Reasoned noqa: present in SARIF, marked suppressed in-source.
    sup = by_line[(7, "RPR002")]["suppressions"]
    assert [s["kind"] for s in sup] == ["inSource"]
    assert "reasoned suppression" in sup[0]["justification"]
    # Reasonless noqa: RPR000 finding is *active* (no suppressions).
    assert by_line[(11, "RPR000")]["suppressions"] == []


def test_sarif_baseline_suppression_status(tmp_path, capsys):
    target = tmp_path / "ops"
    target.mkdir()
    (target / "bad.py").write_text(BAD_RNG)
    base = tmp_path / "baseline.json"
    rc = main([str(tmp_path), "--write-baseline", str(base)])
    assert rc == 0
    capsys.readouterr()
    rc, sarif = run_json(capsys, ["--format", "sarif",
                                  "--baseline", str(base), str(tmp_path)])
    assert rc == 0
    (run,) = sarif["runs"]
    assert run["invocations"][0]["executionSuccessful"] is True
    kinds = [s["kind"] for r in run["results"] for s in r["suppressions"]]
    assert kinds == ["external"]


def test_sarif_clean_tree_has_empty_results(capsys):
    rc, doc = run_json(capsys, [
        "--format", "sarif", "--no-baseline",
        str(FIXTURES / "rpr001" / "core" / "good_clock.py")])
    assert rc == 0
    assert doc["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# Deduplication across overlapping roots
# ----------------------------------------------------------------------
def _package_tree(tmp_path):
    pkg = tmp_path / "pkg"
    (pkg / "ops").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "ops" / "__init__.py").write_text("")
    (pkg / "ops" / "bad.py").write_text(BAD_RNG)
    return pkg


def test_overlapping_roots_dedupe_findings(tmp_path, capsys):
    pkg = _package_tree(tmp_path)
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                str(pkg), str(pkg / "ops")])
    assert rc == 1
    findings = [f for rep in doc["reports"] for f in rep["findings"]]
    assert len(findings) == 1


def test_file_root_inside_dir_root_dedupes(tmp_path, capsys):
    pkg = _package_tree(tmp_path)
    rc, doc = run_json(capsys, ["--json", "--no-baseline", str(pkg),
                                str(pkg / "ops" / "bad.py")])
    assert rc == 1
    findings = [f for rep in doc["reports"] for f in rep["findings"]]
    assert len(findings) == 1


def test_disjoint_roots_not_deduped(tmp_path, capsys):
    pkg = _package_tree(tmp_path)
    other = tmp_path / "pkg2"
    other.mkdir()
    (other / "__init__.py").write_text("")
    (other / "bad.py").write_text(BAD_RNG)
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                str(pkg), str(other)])
    assert rc == 1
    findings = [f for rep in doc["reports"] for f in rep["findings"]]
    assert len(findings) == 2


# ----------------------------------------------------------------------
# --changed
# ----------------------------------------------------------------------
GIT_ENV = ["-c", "user.email=check@test", "-c", "user.name=check"]


def _git(repo, *argv):
    subprocess.run(["git", *GIT_ENV, *argv], cwd=repo, check=True,
                   capture_output=True)


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    """A throwaway git repo: pkg/ with one committed and one clean file."""
    repo = tmp_path / "work"
    pkg = repo / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "committed.py").write_text(BAD_RNG)
    (pkg / "clean.py").write_text("def ok():\n    return 1\n")
    _git(repo, "init", "-q")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "seed")
    monkeypatch.chdir(repo)
    return repo


def test_changed_filters_to_modified_files(git_tree, capsys):
    pkg = git_tree / "pkg"
    (pkg / "clean.py").write_text(BAD_RNG)  # modify vs HEAD
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                str(pkg), "--changed"])
    assert rc == 1
    paths = {f["path"] for f in doc["findings"]}
    # committed.py's finding is real but unchanged vs HEAD: filtered out.
    assert paths == {"pkg/clean.py"}


def test_changed_includes_untracked_files(git_tree, capsys):
    pkg = git_tree / "pkg"
    (pkg / "fresh.py").write_text(BAD_RNG)
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                str(pkg), "--changed"])
    assert rc == 1
    assert {f["path"] for f in doc["findings"]} == {"pkg/fresh.py"}


def test_changed_clean_diff_exits_zero(git_tree, capsys):
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                str(git_tree / "pkg"), "--changed"])
    # committed.py violates RPR002, but nothing changed vs HEAD.
    assert rc == 0
    assert doc["findings"] == []


def test_changed_explicit_ref(git_tree, capsys):
    pkg = git_tree / "pkg"
    (pkg / "clean.py").write_text(BAD_RNG)
    _git(git_tree, "add", "-A")
    _git(git_tree, "commit", "-qm", "introduce finding")
    rc, doc = run_json(capsys, ["--json", "--no-baseline",
                                "--changed", "HEAD~1", str(pkg)])
    assert rc == 1
    assert {f["path"] for f in doc["findings"]} == {"pkg/clean.py"}
    # Against HEAD itself the tree is unchanged again.
    rc = main(["--no-baseline", str(pkg), "--changed"])
    capsys.readouterr()
    assert rc == 0


def test_changed_bad_ref_exits_two(git_tree, capsys):
    rc = main(["--no-baseline", str(git_tree / "pkg"),
               "--changed", "no-such-ref"])
    assert rc == 2
    assert "--changed" in capsys.readouterr().err
