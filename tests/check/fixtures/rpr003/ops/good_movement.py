"""RPR003 fixture: movement paid through the charge API (clean)."""

import numpy as np


def charged_shift(machine, values):
    out = np.empty_like(values)
    out[1:] = values[:-1]
    machine.metrics.charge_comm(1.0)
    return out


def charged_swap(machine, arr, src, dst):
    tmp = arr[src].copy()
    arr[src] = arr[dst]
    arr[dst] = tmp
    machine.exchange(len(arr), 0)
