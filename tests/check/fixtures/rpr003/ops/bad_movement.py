"""RPR003 fixture: uncharged PE-data movement (flagged)."""

import numpy as np


def uncharged_shift(machine, values):
    out = np.empty_like(values)
    out[1:] = values[:-1]
    return out


def uncharged_swap(machine, arr, src, dst):
    tmp = arr[src].copy()
    arr[src] = arr[dst]
    arr[dst] = tmp
