"""RPR007 fixture: drivers stay in workers, loop only awaits (clean)."""

import asyncio

from repro.service.workers import execute_batch


async def handle(pool, payload):
    # Submitting the *uncalled* worker to the pool is the sanctioned
    # pattern: the loop awaits, the shard worker runs the driver.
    future = pool.submit(execute_batch, payload)
    await asyncio.sleep(0)
    return await asyncio.wrap_future(future)


def sync_worker(payload):
    # Sync helpers may run the driver directly — this is worker code.
    return execute_batch(payload)
