"""RPR007 fixture: drivers and sync sleeps on the event loop (flagged)."""

import time

from repro.core.envelope import envelope
from repro.service.workers import execute_batch


async def handle(machine, fns):
    env = envelope(machine, fns, fns)
    time.sleep(0.001)
    return env


async def handle_nested(payload):
    def inner():
        return execute_batch(payload)

    return inner()
