"""RPR008 fixture: canonical (failure_time, key) ordering (clean)."""

import heapq


def schedule(queue, certs):
    for cert in certs:
        heapq.heappush(queue, (cert.failure_time, cert.key, cert))


def keyed_by_geometry(certs):
    return sorted(certs, key=lambda c: (c.failure_time, c.key))
