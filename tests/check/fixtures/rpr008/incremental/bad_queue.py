"""RPR008 fixture: runtime-dependent event ordering (flagged)."""

import heapq


def schedule(queue, certs):
    for cert in certs:
        heapq.heappush(queue, cert)


def keyed_by_identity(certs):
    return sorted(certs, key=lambda c: (c.failure_time, id(c)))


def keyed_by_hash(certs):
    return sorted(certs, key=lambda c: hash(c.curves))
