"""Known-bad vectorized executor: every RPR006 failure mode in one file."""

import numpy as np


def execute_plan_vectorized(machine, plan, cols):
    length = len(cols[0])
    boxed = np.empty(length, dtype=object)
    for i in range(length):
        boxed[i] = cols[0][i]
    for rnd in plan.rounds:
        swap = boxed[rnd.src_lo] > boxed[rnd.src_hi]
        gidx = np.where(swap, rnd.upper, rnd.lower)
        boxed = boxed[gidx]
        machine.exchange(length, rnd.bit)
    return boxed


def widen_column(machine, col):
    lifted = np.frompyfunc(min, 2, 1)
    out = col.astype(object)
    machine.doubling_sweep(len(col))
    return lifted(out, out[::-1])
