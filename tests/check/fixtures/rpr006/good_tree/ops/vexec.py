"""Known-good vectorized executor: whole-array kernels, fused charges.

Object boxing happens only inside the declared ``_lower*`` / ``_rebox*``
boundary; execution loops iterate over plan rounds (never slots) and the
only charges are the fused per-operation vectors.
"""

import numpy as np


def _lower_column(values):
    lowered = []
    for i in range(len(values)):
        lowered.append(float(values[i]))
    out = np.empty(len(values), dtype=object)
    out[:] = lowered
    return out.astype(np.float64)


def _rebox_column(col):
    out = np.empty(len(col), dtype=object)
    out[:] = col.tolist()
    return out


def execute_plan_vectorized(machine, plan, keys):
    col = _lower_column(keys[0])
    perm = np.arange(len(col), dtype=np.intp)
    for rnd in plan.rounds:
        swap = col[rnd.src_lo] > col[rnd.src_hi]
        gidx = np.arange(len(col), dtype=np.intp)
        gidx[rnd.lower] = np.where(swap, rnd.upper, rnd.lower)
        gidx[rnd.upper] = np.where(swap, rnd.lower, rnd.upper)
        col = col[gidx]
        perm = perm[gidx]
    machine.exchange_sweep(len(col), plan.bits)
    for arr in keys:
        arr[:] = arr[perm]
    return _rebox_column(col)
