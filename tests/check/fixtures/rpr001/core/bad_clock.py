"""RPR001 fixture: wall-clock reads outside the allowlist (all flagged)."""

import time
from time import perf_counter
from datetime import datetime


def stamp_start(metrics):
    metrics.t0 = time.time()


def stamp_elapsed(metrics):
    # Covered by the finding on the import line (no second finding here).
    return perf_counter() - metrics.t0


def stamp_wall():
    return datetime.now().isoformat()
