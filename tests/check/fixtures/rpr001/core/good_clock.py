"""RPR001 fixture: simulated accounting only, no wall-clock reads (clean)."""


def accumulate(metrics, charge):
    metrics.time += charge
    return metrics.time
