"""RPR011 good fixture: no suspension between check and act."""

import asyncio


class Store:
    def __init__(self):
        self._lock = asyncio.Lock()

    async def lookup_locked(self, key):
        async with self._lock:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
            val = await self.compute(key)
            self.cache.put(key, val)
            return val

    async def lookup_reordered(self, key):
        # Read and write with no await between them: the check is never
        # stale when the act lands.
        val = await self.compute(key)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        self.cache.put(key, val)
        return val

    async def write_only(self, key):
        val = await self.compute(key)
        self.cache.put(key, val)
        return val
