"""RPR011 bad fixture: check-then-act on a cache across an await."""


class Store:
    async def lookup(self, key):
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        val = await self.compute(key)
        self.cache.put(key, val)
        return val

    async def member(self, key):
        if key in self.index:
            return True
        await self.refresh()
        self.index[key] = True
        return False
