"""Flow fixture: draws from an *unseeded* generator reaching result
bytes.  ``random.Random()`` passes the syntactic RPR002 allowlist (the
constructor is the sanctioned API — when seeded); only dataflow sees
that this instance is unseeded and that its draws land in payloads."""

import json
import random


def fresh_generator():
    return random.Random()


def jitter():
    gen = fresh_generator()
    return gen.random()


def render(values):
    noisy = [v + jitter() for v in values]
    return json.dumps({"values": noisy})
