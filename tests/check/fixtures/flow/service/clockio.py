"""Flow fixture: a host-clock value crossing a function boundary into
payload bytes.  The read itself is legal here (service modules measure
latency by design), so the syntactic RPR001 stays silent — only the
interprocedural taint pass sees the flow."""

import json
from time import perf_counter


def now_s():
    return perf_counter()


def build_payload(result):
    started = now_s()
    return json.dumps({"result": result, "started": started},
                      sort_keys=True)
