"""Flow fixture (clean): wall-clock used for latency only, RNG seeded,
set accumulation sanitized with sorted()."""

import json
import random
from time import perf_counter


def elapsed_since(t0):
    return perf_counter() - t0


def handle(result):
    t0 = perf_counter()
    payload = json.dumps({"result": result}, sort_keys=True)
    _latency = elapsed_since(t0)
    return payload


def seeded_jitter(seed):
    gen = random.Random(seed)
    return gen.random()


def render(values, seed):
    noisy = [v + seeded_jitter(seed) for v in values]
    return json.dumps({"values": noisy})
