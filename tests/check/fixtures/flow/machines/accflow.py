"""Flow fixture: set elements crossing a function boundary into float
accumulation.  The syntactic RPR002 only sees a loop over ``weights()``
— a call, not a set display — so the hash-order dependence is invisible
without the interprocedural pass."""


def weights():
    return {0.5, 1.5, 2.5}


def total_charge():
    total = 0.0
    for w in weights():
        total += w
    return total
