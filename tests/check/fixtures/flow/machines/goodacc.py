"""Flow fixture (clean): sorted() sanitizes set order before the sum."""


def weights():
    return {0.5, 1.5, 2.5}


def total_charge():
    total = 0.0
    for w in sorted(weights()):
        total += w
    return total
