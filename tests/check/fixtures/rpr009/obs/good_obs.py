"""Known-good telemetry module: bounded ring, structured payloads."""
from time import perf_counter


class GoodLog:
    def __init__(self, capacity=64):
        self.capacity = capacity
        self.records = []

    def emit(self, event, **fields):
        rec = {"event": event, **fields}
        if len(self.records) >= self.capacity:
            del self.records[0]
        self.records.append(rec)
        return rec

    def clear(self):
        self.records.clear()


def observe(log, started):
    # Interval measurement via perf_counter is the one sanctioned clock;
    # the payload stays structured fields, never a formatted message.
    log.emit("completed", wall=perf_counter() - started, code="ok")


def tabulate(records):
    # Local-variable appends are scope-bounded, not telemetry buffers.
    rows = []
    for rec in records:
        rows.append((rec["event"], rec.get("code")))
    return rows
