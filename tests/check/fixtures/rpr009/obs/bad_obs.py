"""Known-bad telemetry module: every RPR009 failure mode."""
import time


class BadLog:
    def __init__(self):
        self.records = []

    def emit(self, event, **fields):
        rec = {"event": event, "at": time.time(), **fields}
        self.records.append(rec)
        return rec


def narrate(log, name, count):
    log.emit(f"finished {name} after {count} retries")
