"""RPR012 good fixture: workers read config, return state; the parent
mutates its own aggregates."""

_CONFIG = {"shards": 4}
_RESULTS = []


def execute_batch(payload):
    # Worker-side *read* of a module global: config fans out at fork.
    shards = _CONFIG["shards"]
    local = []
    local.append(payload["cost"])      # worker-local scratch
    return {"ok": True, "shards": shards, "costs": local}


def collect(entry):
    # Parent-side mutation of a parent-read global: one process, fine.
    _RESULTS.append(entry)


def stats():
    return {"done": len(_RESULTS)}
