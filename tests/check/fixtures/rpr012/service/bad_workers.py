"""RPR012 bad fixture: worker-side writes to parent-read globals."""

_TOTALS = []
_LAST = [None]
_COUNT = 0


def execute_batch(payload):
    _tally(payload["cost"])
    _mark(payload["key"])
    _bump()
    return {"ok": True}


def _tally(cost):
    _TOTALS.append(cost)


def _mark(key):
    _LAST[0] = key


def _bump():
    global _COUNT
    _COUNT += 1


def stats():
    return {"batches": len(_TOTALS), "last": _LAST[0], "count": _COUNT}
