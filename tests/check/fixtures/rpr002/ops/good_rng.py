"""RPR002 fixture: seeded generators, order-fixed iteration (clean)."""

import numpy as np


def draw_noise(n, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=n)


def total_charge(charges):
    total = 0.0
    for c in sorted(set(charges)):
        total += c
    return total
