"""RPR002 fixture: global RNG, env reads, set-fed accumulation (flagged)."""

import os
import random

import numpy as np


def draw_noise(n):
    random.seed(0)
    return [random.random() for _ in range(n)]


def draw_legacy(n):
    return np.random.rand(n)


def read_config():
    return os.environ["REPRO_MODE"]


def total_charge(charges):
    total = 0.0
    for c in set(charges):
        total += c
    return total


def summed_charge(charges):
    return sum(c for c in set(charges))
