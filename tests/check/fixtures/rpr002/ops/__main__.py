"""RPR002 fixture: env reads are legal at the CLI edge (clean)."""

import os


def main():
    return int(os.environ.get("REPRO_JOBS", "1"))
