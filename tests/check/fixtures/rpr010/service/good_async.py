"""RPR010 good fixture: locked updates, single writes, drain loops."""

import asyncio


class Dispatcher:
    def __init__(self):
        # Both writes here are fine: __init__ is synchronous.
        self.pending = []
        self.done = []
        self._lock = asyncio.Lock()

    async def locked_drain(self, batch):
        async with self._lock:
            self.pending.append(batch)
            await asyncio.sleep(0)
            self.pending.pop()

    async def single_write(self, batch):
        await asyncio.sleep(0)
        self.pending.append(batch)

    async def loop_drain(self, queue):
        # The drain-loop shape: one write per iteration, awaits only
        # *before* it in statement order (not loop-carried).
        while True:
            item = await queue.get()
            self.done.append(item)
