"""RPR010 bad fixture: shared state written on both sides of an await."""

import asyncio

_DEPTH = 0


class Dispatcher:
    def __init__(self):
        self.pending = []
        self._lock = asyncio.Lock()

    async def drain(self, batch):
        self.pending.append(batch)
        await asyncio.sleep(0)
        self.pending.pop()


async def busy():
    global _DEPTH
    _DEPTH += 1
    await asyncio.sleep(0)
    _DEPTH -= 1
