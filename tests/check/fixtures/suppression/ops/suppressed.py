"""Suppression fixture: reasoned noqa works; reasonless noqa is RPR000."""

import numpy as np


def seeded_draw(n):
    return np.random.rand(n)  # repro: noqa RPR002 -- fixture: demonstrates a reasoned suppression


def unexplained_draw(n):
    return np.random.rand(n)  # repro: noqa RPR002


def other_rule_noqa(n):
    return np.random.rand(n)  # repro: noqa RPR003 -- wrong rule id, does not cover RPR002
