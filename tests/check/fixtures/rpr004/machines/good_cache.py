"""RPR004 fixture: bounded, clearable memo (clean)."""

_MEMO: dict = {}

_MEMO_CAP = 64


def lookup(key):
    if key not in _MEMO:
        if len(_MEMO) >= _MEMO_CAP:
            _MEMO.clear()
        _MEMO[key] = key * 2
    return _MEMO[key]


def clear_memo():
    _MEMO.clear()
