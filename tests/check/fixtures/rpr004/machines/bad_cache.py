"""RPR004 fixture: unbounded/unclearable module caches (flagged)."""

import functools

_MEMO: dict = {}


def lookup(key):
    if key not in _MEMO:
        _MEMO[key] = expensive(key)
    return _MEMO[key]


@functools.lru_cache(maxsize=None)
def expensive(key):
    return key * 2
