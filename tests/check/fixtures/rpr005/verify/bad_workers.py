"""RPR005 fixture: unpicklable / impure campaign workers (flagged)."""

from repro.parallel import parallel_map

_RESULTS: list = []


def _impure_worker(item):
    global _RESULTS
    _RESULTS = _RESULTS + [item]
    return item


def run_lambda(items):
    return parallel_map(lambda x: x + 1, items, jobs=2)


def run_nested(items):
    def worker(x):
        return x + 1

    return parallel_map(worker, items, jobs=2)


def run_impure(items):
    return parallel_map(_impure_worker, items, jobs=2)
