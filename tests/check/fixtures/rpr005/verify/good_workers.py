"""RPR005 fixture: module-level pure workers (clean)."""

from repro.parallel import parallel_map


def _worker(item):
    return item + 1


def run(items):
    return parallel_map(_worker, items, jobs=2)
