"""Tier-1 gate: the whole source tree passes the invariant checker.

This is the enforcement point of ``docs/static_analysis.md``: any
non-baselined RPR finding anywhere under ``src/repro`` (and in the
benchmark/example trees) fails tier-1 *before* a corrupted golden ever
gets a chance to.  It shares the exit-code contract with
``python -m repro.check`` by driving the same ``main()`` entry point.
"""

import json
from pathlib import Path

import pytest

from repro.check import load_baseline, run_check
from repro.check.__main__ import DEFAULT_BASELINE, DEFAULT_ROOT, main

pytestmark = pytest.mark.check

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_clean_via_shared_entry_point(capsys):
    """The CI command and the pytest gate are one entry point, rc 0."""
    rc = main(["--json", "--strict-baseline", str(DEFAULT_ROOT)])
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"], "\n".join(
        f'{f["path"]}:{f["line"]}: {f["rule"]} {f["message"]}'
        for f in doc["findings"] if not f["suppressed_by"])
    assert rc == 0


def test_src_tree_covers_every_package():
    report = run_check(DEFAULT_ROOT)
    seen = {f.split("/")[1] for f in
            (p.relative_to(DEFAULT_ROOT.parent).as_posix()
             for p in DEFAULT_ROOT.rglob("*.py"))
            if "/" in f}
    # Sanity: the walk really visited the accounting-critical layers.
    assert {"machines", "ops", "core", "verify", "trace", "check"} <= seen
    assert report.files_checked >= 90


def test_benchmarks_and_examples_clean():
    for tree in (REPO / "benchmarks", REPO / "examples"):
        report = run_check(tree)
        assert report.ok, report.render()


def test_every_inline_suppression_carries_reason():
    report = run_check(DEFAULT_ROOT)
    assert report.suppressed, "expected the documented noqa sites"
    for f in report.suppressed:
        assert f.suppress_reason and len(f.suppress_reason) > 10, f.render()


def test_committed_baseline_is_empty_or_reasoned():
    entries = load_baseline(DEFAULT_BASELINE)
    for fingerprint, reason in entries.items():
        assert reason.strip(), fingerprint
    # Nothing grandfathered today; loosening this requires a reason per
    # entry (load_baseline enforces) and a matching finding (no stale).
    report = run_check(DEFAULT_ROOT, baseline=entries)
    assert not report.stale_baseline
