"""Interprocedural (whole-program) rule tests: exact rule ids and lines.

The ``flow/`` fixtures are the acceptance cases for the taint engine:
each bad fixture is *provably* invisible to the syntactic rule set —
asserted here by running the old rules (``program=False``) over the same
tree and requiring zero findings — and caught at an exact (file, line,
rule) by the dataflow pass.  ``rpr010``/``rpr011``/``rpr012`` cover the
async-race and cross-process rules the same way.
"""

from pathlib import Path

import pytest

from repro.check import PROGRAM_RULES, RULES, run_check

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).parent / "fixtures"

#: The pre-dataflow rule set: RPR001..RPR009 (the async rules RPR010/011
#: are file-local too, but arrived with this engine, so they're not part
#: of the "old rules provably miss this" baseline).
SYNTACTIC = [f"RPR00{i}" for i in range(1, 10)]


def findings_of(subdir):
    report = run_check(FIXTURES / subdir)
    assert not report.parse_errors
    return report


def triples(report):
    return sorted((f.path.rsplit("/", 1)[-1], f.line, f.rule)
                  for f in report.active)


# ----------------------------------------------------------------------
# RPR010 await-straddled writes
# ----------------------------------------------------------------------
def test_rpr010_bad_fixture_exact_findings():
    report = findings_of("rpr010")
    assert triples(report) == [
        ("bad_async.py", 16, "RPR010"),  # self.pending.pop() after await
        ("bad_async.py", 23, "RPR010"),  # _DEPTH -= 1 after await
    ]


def test_rpr010_good_fixture_clean():
    report = run_check(FIXTURES / "rpr010" / "service" / "good_async.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR011 check-then-act across a suspension point
# ----------------------------------------------------------------------
def test_rpr011_bad_fixture_exact_findings():
    report = findings_of("rpr011")
    assert triples(report) == [
        ("bad_cache.py", 10, "RPR011"),  # cache.get -> await -> cache.put
        ("bad_cache.py", 17, "RPR011"),  # `in` check -> await -> store
    ]


def test_rpr011_good_fixture_clean():
    report = run_check(FIXTURES / "rpr011" / "service" / "good_cache.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# RPR012 cross-process state
# ----------------------------------------------------------------------
def test_rpr012_bad_fixture_exact_findings():
    report = findings_of("rpr012")
    assert triples(report) == [
        ("bad_workers.py", 16, "RPR012"),  # _TOTALS.append in worker
        ("bad_workers.py", 20, "RPR012"),  # _LAST[0] = ... in worker
        ("bad_workers.py", 25, "RPR012"),  # global _COUNT += 1 in worker
    ]


def test_rpr012_message_names_parent_reader():
    report = findings_of("rpr012")
    assert all("stats" in f.message for f in report.active)


def test_rpr012_good_fixture_clean():
    report = run_check(FIXTURES / "rpr012" / "service" / "good_workers.py")
    assert report.ok and not report.findings


# ----------------------------------------------------------------------
# Cross-function taint: the acceptance cases
# ----------------------------------------------------------------------
def test_flow_fixture_exact_findings():
    report = findings_of("flow")
    assert triples(report) == [
        ("accflow.py", 14, "RPR002"),   # set elements -> += accumulation
        ("clockio.py", 16, "RPR001"),   # perf_counter -> json payload
        ("rngflow.py", 21, "RPR002"),   # unseeded draws -> json payload
    ]


def test_flow_findings_carry_the_call_chain():
    report = findings_of("flow")
    by_file = {f.path.rsplit("/", 1)[-1]: f.message for f in report.active}
    # The message names the origin file:line and at least one hop.
    assert "clockio.py:" in by_file["clockio.py"]
    assert "via" in by_file["rngflow.py"]


def test_syntactic_rules_provably_miss_the_flow_fixtures():
    # The whole point: the same tree, old rules only, zero findings.
    report = run_check(FIXTURES / "flow", select=SYNTACTIC, program=False)
    assert not report.parse_errors
    assert report.findings == []


def test_unrelated_select_leaves_flow_rules_dormant():
    # Selecting an id no flow rule emits keeps the dataflow pass quiet:
    # selection gates program rules exactly like file rules.
    report = run_check(FIXTURES / "flow", select=["RPR003"])
    assert report.findings == []


def test_flow_good_fixtures_clean():
    for rel in ("service/goodio.py", "machines/goodacc.py"):
        report = run_check(FIXTURES / "flow" / rel)
        assert report.ok and not report.findings, rel


# ----------------------------------------------------------------------
# Suppression contract: flow findings obey noqa like file findings
# ----------------------------------------------------------------------
def test_noqa_suppresses_flow_finding(tmp_path):
    src = (FIXTURES / "flow" / "service" / "clockio.py").read_text()
    lines = src.splitlines()
    lines[15] += "  # repro: noqa RPR001 -- demo payload, not charged"
    target = tmp_path / "service"
    target.mkdir()
    (target / "clockio.py").write_text("\n".join(lines) + "\n")
    report = run_check(tmp_path)
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["RPR001"]


def test_program_select_accepts_emitted_id():
    # --select RPR001 runs both the syntactic rule and its flow upgrade.
    report = run_check(FIXTURES / "flow", select=["RPR001"])
    assert [(f.line, f.rule) for f in report.active] == [(16, "RPR001")]


# ----------------------------------------------------------------------
# Registry documentation
# ----------------------------------------------------------------------
def test_program_rules_registered_with_docs():
    # RPR010/011 are file-local (one async def at a time) and live in
    # RULES; RPR012 and the taint upgrades need the whole program.
    assert {"RPR010", "RPR011"} <= set(RULES)
    assert {"RPR012", "RPR001F", "RPR002F"} <= set(PROGRAM_RULES)
    for rule in PROGRAM_RULES.values():
        assert rule.name and rule.summary and rule.rationale


def test_flow_upgrades_emit_under_the_syntactic_ids():
    assert PROGRAM_RULES["RPR001F"].emits == ("RPR001",)
    assert PROGRAM_RULES["RPR002F"].emits == ("RPR002",)


def test_report_to_dict_documents_program_rules():
    report = run_check(FIXTURES / "flow")
    rules = report.to_dict()["rules"]
    assert "RPR010" in rules and "RPR012" in rules
    assert "emits" in rules["RPR001F"]
