"""Tests for repro.io — JSON round-tripping of systems and results."""

import io as stdio
import json

import numpy as np
import pytest

from repro import (
    PolynomialFamily,
    ReproError,
    closest_point_sequence,
    random_system,
)
from repro.io import (
    load_system,
    piecewise_from_dict,
    piecewise_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.kinetics.motion import projectile_system


class TestSystemRoundTrip:
    @pytest.mark.parametrize("maker,kwargs", [
        (random_system, dict(n=6, d=2, k=1, seed=3)),
        (random_system, dict(n=4, d=3, k=2, seed=5)),
        (projectile_system, dict(n=5, seed=1)),
    ])
    def test_round_trip_preserves_trajectories(self, maker, kwargs):
        system = maker(**kwargs)
        clone = system_from_dict(system_to_dict(system))
        assert len(clone) == len(system)
        assert clone.dimension == system.dimension
        for t in (0.0, 1.7, 9.2):
            np.testing.assert_allclose(clone.positions(t),
                                       system.positions(t))

    def test_file_round_trip(self):
        system = random_system(4, seed=7)
        buf = stdio.StringIO()
        save_system(system, buf)
        buf.seek(0)
        clone = load_system(buf)
        np.testing.assert_allclose(clone.positions(3.0), system.positions(3.0))

    def test_document_is_plain_json(self):
        doc = system_to_dict(random_system(3, seed=0))
        json.dumps(doc)  # must not raise
        assert doc["format"] == "repro/point-system"

    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            system_from_dict({"format": "something-else"})
        with pytest.raises(ReproError):
            system_from_dict({"format": "repro/point-system", "version": 99})

    def test_rejects_dimension_mismatch(self):
        doc = system_to_dict(random_system(3, d=2, seed=0))
        doc["dimension"] = 3
        with pytest.raises(ReproError):
            system_from_dict(doc)


class TestPiecewiseRoundTrip:
    def test_envelope_round_trip(self):
        system = random_system(6, d=2, k=1, seed=11)
        env = closest_point_sequence(None, system)
        clone = piecewise_from_dict(piecewise_to_dict(env))
        assert clone.labels() == env.labels()
        for t in (0.1, 2.0, 30.0):
            assert clone(t) == pytest.approx(env(t))

    def test_infinite_piece_round_trips(self):
        system = random_system(3, seed=1)
        env = closest_point_sequence(None, system)
        doc = piecewise_to_dict(env)
        assert doc["pieces"][-1]["hi"] is None
        clone = piecewise_from_dict(doc)
        assert np.isinf(clone[len(clone) - 1].hi)

    def test_tuple_labels_round_trip(self):
        from repro.core.pairs import closest_pair_sequence
        system = random_system(4, seed=2)
        env = closest_pair_sequence(None, system)
        clone = piecewise_from_dict(piecewise_to_dict(env))
        assert clone.labels() == env.labels()

    def test_rejects_non_polynomial_pieces(self):
        from repro.core.hull_membership import angle_restrictions
        gs, _ = angle_restrictions(random_system(3, seed=0))
        with pytest.raises(ReproError):
            piecewise_to_dict(gs[0])

    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            piecewise_from_dict({"format": "nope"})
