"""Unit tests for repro.ops.bitonic (Table 1: Sorting, Merging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationContractError
from repro.machines import hypercube_machine, mesh_machine, pram_machine
from repro.ops import bitonic_merge, bitonic_sort


def machines(n):
    return [mesh_machine(n), hypercube_machine(n), pram_machine(n)]


@pytest.mark.usefixtures("plan_mode")
class TestSortCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 64, 256])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        data = rng.uniform(-100, 100, n)
        for m in machines(max(n, 4) if n < 4 else n):
            (out,), _ = bitonic_sort(m, data)
            np.testing.assert_allclose(out, np.sort(data))

    def test_descending(self):
        data = np.array([3.0, 1.0, 4.0, 1.5])
        (out,), _ = bitonic_sort(mesh_machine(4), data, ascending=False)
        np.testing.assert_allclose(out, [4.0, 3.0, 1.5, 1.0])

    def test_payloads_travel_with_keys(self):
        keys = np.array([3.0, 1.0, 4.0, 2.0])
        tags = np.array(["c", "a", "d", "b"], dtype=object)
        (k,), (t,) = bitonic_sort(mesh_machine(4), keys, [tags])
        assert list(t) == ["a", "b", "c", "d"]

    def test_lexicographic_keys(self):
        k1 = np.array([1, 1, 0, 0])
        k2 = np.array([0.5, 0.1, 9.0, 2.0])
        (s1, s2), _ = bitonic_sort(mesh_machine(4), [k1, k2])
        assert list(s1) == [0, 0, 1, 1]
        assert list(s2) == [2.0, 9.0, 0.1, 0.5]

    def test_inputs_not_modified(self):
        data = np.array([2.0, 1.0])
        bitonic_sort(mesh_machine(4), data)
        assert list(data) == [2.0, 1.0]

    def test_segmented_sort(self):
        data = np.array([4.0, 3.0, 2.0, 1.0, 8.0, 5.0, 7.0, 6.0])
        (out,), _ = bitonic_sort(mesh_machine(4), data, segment_size=4)
        np.testing.assert_allclose(out, [1, 2, 3, 4, 5, 6, 7, 8])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(OperationContractError):
            bitonic_sort(mesh_machine(4), np.zeros(6))

    def test_rejects_mismatched_payload(self):
        with pytest.raises(OperationContractError):
            bitonic_sort(mesh_machine(4), np.zeros(4), [np.zeros(2)])

    def test_rejects_bad_segment_size(self):
        with pytest.raises(OperationContractError):
            bitonic_sort(mesh_machine(4), np.zeros(8), segment_size=3)

    @given(st.lists(st.integers(min_value=-50, max_value=50),
                    min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_property_sorted_permutation(self, xs):
        n = 1 << (len(xs) - 1).bit_length()
        data = np.array(xs + [10**6] * (n - len(xs)), dtype=np.int64)
        (out,), _ = bitonic_sort(hypercube_machine(max(n, 2)), data)
        assert list(out) == sorted(data.tolist())


@pytest.mark.usefixtures("plan_mode")
class TestMergeCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 16, 64])
    def test_two_sorted_halves(self, n):
        rng = np.random.default_rng(n)
        a = np.sort(rng.uniform(0, 10, n // 2))
        b = np.sort(rng.uniform(0, 10, n // 2))
        data = np.concatenate([a, b])
        for m in machines(max(n, 4)):
            (out,), _ = bitonic_merge(m, data)
            np.testing.assert_allclose(out, np.sort(data))

    def test_segmented_merge(self):
        data = np.array([1.0, 5.0, 2.0, 6.0,   0.0, 9.0, 4.0, 4.5])
        (out,), _ = bitonic_merge(mesh_machine(4), data, segment_size=4)
        np.testing.assert_allclose(out, [1, 2, 5, 6, 0, 4, 4.5, 9])

    def test_merge_with_payload(self):
        data = np.array([1.0, 3.0, 2.0, 4.0])
        tag = np.array([10, 30, 20, 40])
        (k,), (t,) = bitonic_merge(hypercube_machine(4), data, [tag])
        assert list(t) == [10, 20, 30, 40]

    def test_trivial_segment(self):
        (out,), _ = bitonic_merge(mesh_machine(4), np.array([5.0]), segment_size=1)
        assert list(out) == [5.0]


@pytest.mark.usefixtures("plan_mode")
class TestSortCosts:
    """Table 1: sort is Theta(sqrt(n)) mesh, Theta(log^2 n) hypercube."""

    def _cost(self, machine_fn, n):
        m = machine_fn(n)
        bitonic_sort(m, np.random.default_rng(0).uniform(size=n))
        return m.metrics.time

    def test_mesh_sort_scales_like_sqrt_n(self):
        c1 = self._cost(mesh_machine, 256)
        c2 = self._cost(mesh_machine, 4096)  # 16x more PEs
        ratio = c2 / c1
        assert 2.5 < ratio < 7.0  # sqrt(16) = 4, with log-factor slack

    def test_hypercube_sort_scales_like_log2(self):
        c1 = self._cost(hypercube_machine, 256)   # log^2 = 64
        c2 = self._cost(hypercube_machine, 4096)  # log^2 = 144
        ratio = c2 / c1
        assert 1.5 < ratio < 3.2  # 144/64 = 2.25

    def test_mesh_slower_than_hypercube(self):
        assert self._cost(mesh_machine, 1024) > self._cost(hypercube_machine, 1024)

    def test_sort_cost_dominates_merge(self):
        n = 1024
        data = np.random.default_rng(1).uniform(size=n)
        ms, mm = mesh_machine(n), mesh_machine(n)
        bitonic_sort(ms, data)
        half_sorted = np.concatenate([np.sort(data[: n // 2]), np.sort(data[n // 2 :])])
        bitonic_merge(mm, half_sorted)
        assert mm.metrics.time < ms.metrics.time
