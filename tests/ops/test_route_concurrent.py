"""Unit tests for repro.ops.route and repro.ops.concurrent."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationContractError
from repro.machines import hypercube_machine, mesh_machine
from repro.ops import (
    concurrent_read,
    concurrent_write,
    interval_locate,
    pack,
    permute,
    unpack_lists,
)


@pytest.mark.usefixtures("plan_mode")
class TestPack:
    def test_basic(self):
        mask = np.array([0, 1, 0, 1], dtype=bool)
        vals = np.array([10.0, 20.0, 30.0, 40.0])
        (out,), count = pack(mesh_machine(4), mask, [vals])
        assert count == 2
        np.testing.assert_allclose(out[:2], [20.0, 40.0])

    def test_preserves_order(self):
        mask = np.array([1, 0, 1, 1, 0, 1, 0, 0], dtype=bool)
        vals = np.arange(8)
        (out,), count = pack(hypercube_machine(8), mask, [vals])
        assert count == 4
        assert list(out[:4]) == [0, 2, 3, 5]

    def test_object_payload_and_fill(self):
        mask = np.array([0, 1, 0, 0], dtype=bool)
        vals = np.array(["a", "b", "c", "d"], dtype=object)
        (out,), count = pack(mesh_machine(4), mask, [vals], fill="-")
        assert list(out) == ["b", "-", "-", "-"]

    def test_none_marked(self):
        mask = np.zeros(4, dtype=bool)
        (out,), count = pack(mesh_machine(4), mask, [np.zeros(4)])
        assert count == 0

    def test_rejects_mismatch(self):
        with pytest.raises(OperationContractError):
            pack(mesh_machine(4), np.zeros(4, dtype=bool), [np.zeros(8)])

    @given(st.lists(st.booleans(), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_property_pack(self, bits):
        n = 1 << (len(bits) - 1).bit_length()
        mask = np.array(bits + [False] * (n - len(bits)))
        vals = np.arange(n)
        (out,), count = pack(hypercube_machine(max(n, 2)), mask, [vals])
        assert count == int(mask.sum())
        assert list(out[:count]) == list(vals[mask])


class TestUnpack:
    def test_flattens_in_order(self):
        lists = np.empty(4, dtype=object)
        lists[:] = [[1, 2], [], [3], [4, 5, 6]]
        flat, total = unpack_lists(mesh_machine(4), lists)
        assert total == 6
        assert list(flat[:6]) == [1, 2, 3, 4, 5, 6]
        assert len(flat) == 8  # next power of two

    def test_explicit_output_length(self):
        lists = np.empty(2, dtype=object)
        lists[:] = [[1], [2]]
        flat, total = unpack_lists(mesh_machine(4), lists, out_length=4)
        assert len(flat) == 4 and total == 2

    def test_overflow_raises(self):
        lists = np.empty(2, dtype=object)
        lists[:] = [[1, 2, 3], [4]]
        with pytest.raises(OperationContractError):
            unpack_lists(mesh_machine(4), lists, out_length=2)

    def test_all_empty(self):
        lists = np.empty(4, dtype=object)
        lists[:] = [[], [], [], []]
        flat, total = unpack_lists(mesh_machine(4), lists)
        assert total == 0


class TestPermute:
    def test_routes_to_destinations(self):
        dest = np.array([2, 0, 3, 1])
        vals = np.array([10, 20, 30, 40])
        (out,) = permute(mesh_machine(4), dest, [vals])
        # item i goes to slot dest[i]
        assert list(out) == [20, 40, 10, 30]

    def test_rejects_non_permutation(self):
        with pytest.raises(OperationContractError):
            permute(mesh_machine(4), np.array([0, 0, 1, 2]), [np.zeros(4)])


@pytest.mark.usefixtures("plan_mode")
class TestConcurrentRead:
    def test_exact_matches(self):
        mkeys = np.array([10, 20, 30])
        mvals = np.array(["x", "y", "z"], dtype=object)
        qkeys = np.array([30, 10, 10, 99])
        out = concurrent_read(mesh_machine(4), mkeys, mvals, qkeys, default="?")
        assert list(out) == ["z", "x", "x", "?"]

    def test_many_readers_one_master(self):
        """The defining CR pattern: n readers of a single cell."""
        mkeys = np.array([1])
        mvals = np.array([3.14], dtype=object)
        qkeys = np.ones(16, dtype=np.int64)
        out = concurrent_read(hypercube_machine(16), mkeys, mvals, qkeys)
        assert all(v == 3.14 for v in out)

    def test_empty_masters_rejected(self):
        with pytest.raises(OperationContractError):
            concurrent_read(mesh_machine(4), np.array([]), np.array([]),
                            np.array([1]))

    def test_cost_matches_sort_class(self):
        """CR costs Theta(sqrt(n)) mesh / Theta(log^2 n) hypercube (Sec. 6)."""
        n = 256
        mkeys = np.arange(n // 2)
        mvals = np.arange(n // 2).astype(object)
        qkeys = np.random.default_rng(0).integers(0, n // 2, n // 2)
        mesh = mesh_machine(n)
        concurrent_read(mesh, mkeys, mvals, qkeys)
        cube = hypercube_machine(n)
        concurrent_read(cube, mkeys, mvals, qkeys)
        assert mesh.metrics.time > cube.metrics.time


class TestConcurrentWrite:
    def test_combining_semantics(self):
        mkeys = np.array([1, 2, 3])
        rkeys = np.array([1, 1, 3, 1])
        rvals = np.array([5.0, 2.0, 9.0, 1.0], dtype=object)
        out = concurrent_write(mesh_machine(16), mkeys, rkeys, rvals, min,
                               default=None)
        assert out[0] == 1.0  # min of 5, 2, 1
        assert out[1] is None  # nobody wrote
        assert out[2] == 9.0

    def test_sum_combine(self):
        mkeys = np.array([0, 1])
        rkeys = np.array([0, 0, 0, 1])
        rvals = np.array([1, 1, 1, 7], dtype=object)
        out = concurrent_write(hypercube_machine(8), mkeys, rkeys, rvals,
                               lambda a, b: a + b)
        assert list(out) == [3, 7]


@pytest.mark.usefixtures("plan_mode")
class TestIntervalLocate:
    def test_basic(self):
        bounds = np.array([0.0, 10.0, 20.0])
        queries = np.array([5.0, 10.0, 25.0, -3.0])
        out = interval_locate(mesh_machine(16), bounds, queries)
        assert list(out) == [0, 1, 2, -1]

    def test_rejects_unsorted(self):
        with pytest.raises(OperationContractError):
            interval_locate(mesh_machine(4), np.array([3.0, 1.0]),
                            np.array([2.0]))

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=10, unique=True),
        st.lists(st.integers(-10, 110), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_searchsorted(self, bounds, queries):
        bounds = sorted(bounds)
        got = interval_locate(
            mesh_machine(4), np.array(bounds), np.array(queries)
        )
        want = np.searchsorted(bounds, queries, side="right") - 1
        np.testing.assert_array_equal(got, want)
