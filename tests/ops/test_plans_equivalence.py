"""Compiled movement plans vs the interpreted per-round executors.

The plan compiler (:mod:`repro.ops.plans`) is a pure host-side rewrite of
the bitonic and doubling loops: same pairs, same comparator outcomes, same
charges.  These tests pin that contract bit-exactly — keys, payloads, and
the full simulated-charge snapshot must match between the two executors on
every topology, segmented and unsegmented, for sort, merge, scan, and the
route operations that ride on them.
"""

import numpy as np
import pytest

from repro.machines import (
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    shuffle_exchange_machine,
)
from repro.ops import (
    bitonic_merge,
    bitonic_sort,
    fill_backward,
    pack,
    parallel_prefix,
    parallel_suffix,
    permute,
    semigroup,
    set_compiled_plans,
)
from repro.verify.compare import sim_snapshot

FACTORIES = {
    "mesh": mesh_machine,
    "hypercube": hypercube_machine,
    "ccc": ccc_machine,
    "shuffle-exchange": shuffle_exchange_machine,
}

N = 16


def both_modes(run):
    """Run ``run(machine)`` compiled and interpreted; return both results.

    ``run`` receives a fresh machine and returns ``(arrays, metrics)``
    where ``arrays`` is a sequence of numpy arrays.
    """
    out = {}
    for mode in (True, False):
        prev = set_compiled_plans(mode)
        try:
            out[mode] = run()
        finally:
            set_compiled_plans(prev)
    return out[True], out[False]


def assert_identical(compiled, interpreted):
    (c_arrays, c_metrics), (i_arrays, i_metrics) = compiled, interpreted
    assert len(c_arrays) == len(i_arrays)
    for c, i in zip(c_arrays, i_arrays):
        c, i = np.asarray(c), np.asarray(i)
        assert c.dtype == i.dtype
        assert c.tolist() == i.tolist()
    assert sim_snapshot(c_metrics) == sim_snapshot(i_metrics)


@pytest.mark.parametrize("kind", sorted(FACTORIES))
@pytest.mark.parametrize("segment_size", [None, 4])
@pytest.mark.parametrize("ascending", [True, False])
class TestSortEquivalence:
    def test_sort(self, kind, segment_size, ascending):
        rng = np.random.default_rng(7)
        keys = rng.uniform(-5, 5, N)
        tags = np.arange(N)

        def run():
            m = FACTORIES[kind](N)
            (k,), (t,) = bitonic_sort(
                m, keys, [tags], segment_size=segment_size,
                ascending=ascending,
            )
            return (k, t), m.metrics

        assert_identical(*both_modes(run))

    def test_merge(self, kind, segment_size, ascending):
        rng = np.random.default_rng(11)
        seg = segment_size or N
        keys = np.concatenate([
            np.sort(rng.uniform(size=seg // 2))[:: 1 if ascending else -1]
            for _ in range(2 * (N // seg))
        ])

        def run():
            m = FACTORIES[kind](N)
            (k,), _ = bitonic_merge(
                m, keys, segment_size=segment_size, ascending=ascending
            )
            return (k,), m.metrics

        assert_identical(*both_modes(run))


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestScanRouteEquivalence:
    def test_segmented_prefix_suffix(self, kind):
        rng = np.random.default_rng(3)
        vals = rng.integers(0, 9, N).astype(np.int64)
        segments = np.zeros(N, dtype=bool)
        segments[[0, 5, 11]] = True

        def run():
            m = FACTORIES[kind](N)
            pre = parallel_prefix(m, vals, np.add, segments=segments)
            suf = parallel_suffix(m, vals, np.add, segments=segments)
            return (pre, suf), m.metrics

        assert_identical(*both_modes(run))

    def test_semigroup_butterfly(self, kind):
        vals = np.random.default_rng(5).uniform(size=N)

        def run():
            m = FACTORIES[kind](N)
            total = semigroup(m, vals, np.minimum)
            return (np.asarray([total]),), m.metrics

        assert_identical(*both_modes(run))

    def test_fill_backward(self, kind):
        vals = np.arange(N, dtype=float)
        known = np.zeros(N, dtype=bool)
        known[[2, 9, 14]] = True

        def run():
            m = FACTORIES[kind](N)
            out = fill_backward(m, vals, known)
            return (out,), m.metrics

        assert_identical(*both_modes(run))

    def test_pack_and_permute(self, kind):
        rng = np.random.default_rng(13)
        vals = rng.uniform(size=N)
        keep = rng.uniform(size=N) < 0.5
        dest = rng.permutation(N)

        def run():
            m = FACTORIES[kind](N)
            (packed,), count = pack(m, keep, [vals])
            (routed,) = permute(m, dest, [vals])
            return (packed, np.asarray([count]), routed), m.metrics

        assert_identical(*both_modes(run))


class TestObjectKeys:
    def test_object_dtype_sort(self):
        """The pre-oriented comparator must agree on object (Polynomial) keys."""
        from numpy.polynomial import Polynomial

        rng = np.random.default_rng(17)
        keys = np.empty(N, dtype=object)
        coeffs = rng.integers(-3, 4, N)
        for i in range(N):
            keys[i] = float(coeffs[i])
        tags = np.array([Polynomial([c]) for c in coeffs], dtype=object)

        def run():
            m = hypercube_machine(N)
            (k,), (t,) = bitonic_sort(m, keys, [tags])
            return (k,), m.metrics

        assert_identical(*both_modes(run))

    def test_multi_key_sort(self):
        rng = np.random.default_rng(19)
        k1 = rng.integers(0, 3, N)
        k2 = rng.uniform(size=N)

        def run():
            m = mesh_machine(N)
            (s1, s2), _ = bitonic_sort(m, [k1, k2])
            return (s1, s2), m.metrics

        assert_identical(*both_modes(run))
