"""Vectorized executor vs compiled plans vs the interpreted reference.

The vectorized executor (:mod:`repro.ops.vexec`) lowers keys to numeric
columns once per operation and replays the compiled plan as whole-array
kernels.  These tests pin the three-way contract bit-exactly — values
*and* the full simulated-charge snapshot must agree across
``reference``/``compiled``/``vectorized`` on every topology, for every
key family the lowering layer accepts, and the refusal path (key types
that cannot be lowered) must fall back to the compiled executor
observably: same results, ``vexec.fallbacks`` incremented in the shared
registry.  Mirrors ``test_plans_equivalence.py``, which keeps pinning the
compiled-vs-reference half of the contract.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.machines import (
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    shuffle_exchange_machine,
)
from repro.ops import (
    bitonic_merge,
    bitonic_sort,
    fill_forward,
    pack,
    parallel_prefix,
    semigroup,
    set_compiled_plans,
    vexec_stats,
)
from repro.ops.vexec import lower_keys
from repro.trace.registry import registry_snapshot
from repro.verify.compare import sim_snapshot

FACTORIES = {
    "mesh": mesh_machine,
    "hypercube": hypercube_machine,
    "ccc": ccc_machine,
    "shuffle-exchange": shuffle_exchange_machine,
}

EXECUTORS = ("vectorized", "compiled", "reference")

N = 16


def all_modes(run):
    """Run ``run()`` under every executor; return ``{mode: result}``."""
    out = {}
    for mode in EXECUTORS:
        prev = set_compiled_plans(mode)
        try:
            out[mode] = run()
        finally:
            set_compiled_plans(prev)
    return out


def assert_all_identical(results):
    base_mode = EXECUTORS[-1]  # reference: the semantic oracle
    b_arrays, b_metrics = results[base_mode]
    for mode, (arrays, metrics) in results.items():
        assert len(arrays) == len(b_arrays)
        for got, want in zip(arrays, b_arrays):
            got, want = np.asarray(got), np.asarray(want)
            assert got.dtype == want.dtype, mode
            assert got.tolist() == want.tolist(), mode
        assert sim_snapshot(metrics) == sim_snapshot(b_metrics), mode


def _object_floats(rng, n):
    out = np.empty(n, dtype=object)
    out[:] = rng.uniform(-5, 5, n).tolist()
    return out


def _object_ints(rng, n):
    out = np.empty(n, dtype=object)
    out[:] = [int(v) << 40 for v in rng.integers(-50, 50, n)]
    return out


def _object_tuples(rng, n):
    out = np.empty(n, dtype=object)
    out[:] = list(zip(rng.integers(0, 3, n).tolist(),
                      rng.uniform(size=n).tolist()))
    return out


def _duplicate_heavy(rng, n):
    # Many ties: pins that the vectorized permutation reproduces the
    # network's (unstable) tie arrangement exactly, not just sortedness.
    out = np.empty(n, dtype=object)
    out[:] = [float(v) for v in rng.integers(0, 3, n)]
    return out


KEY_FAMILIES = {
    "native_float": lambda rng, n: rng.uniform(-5, 5, n),
    "object_float": _object_floats,
    "object_bigint": _object_ints,
    "object_tuple": _object_tuples,
    "duplicate_heavy": _duplicate_heavy,
}


@pytest.mark.parametrize("kind", sorted(FACTORIES))
@pytest.mark.parametrize("family", sorted(KEY_FAMILIES))
class TestSortEquivalence:
    def test_sort_with_payload(self, kind, family):
        rng = np.random.default_rng(7)
        keys = KEY_FAMILIES[family](rng, N)
        tags = np.arange(N)

        def run():
            m = FACTORIES[kind](N)
            (k,), (t,) = bitonic_sort(m, keys, [tags])
            return (k, t), m.metrics

        assert_all_identical(all_modes(run))

    def test_segmented_descending_sort(self, kind, family):
        rng = np.random.default_rng(11)
        keys = KEY_FAMILIES[family](rng, N)

        def run():
            m = FACTORIES[kind](N)
            (k,), _ = bitonic_sort(m, keys, segment_size=4, ascending=False)
            return (k,), m.metrics

        assert_all_identical(all_modes(run))


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestMergeEquivalence:
    def test_merge_object_keys(self, kind):
        rng = np.random.default_rng(13)
        keys = np.empty(N, dtype=object)
        keys[:N // 2] = np.sort(rng.uniform(size=N // 2)).tolist()
        keys[N // 2:] = np.sort(rng.uniform(size=N // 2)).tolist()
        tags = np.arange(N)

        def run():
            m = FACTORIES[kind](N)
            (k,), (t,) = bitonic_merge(m, keys, [tags])
            return (k, t), m.metrics

        assert_all_identical(all_modes(run))


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestScanEquivalence:
    def test_semigroup_min_max_object(self, kind):
        rng = np.random.default_rng(17)
        vals = _object_floats(rng, N)

        def run():
            m = FACTORIES[kind](N)
            lo = semigroup(m, vals, np.minimum)
            hi = semigroup(m, vals, np.maximum)
            return (lo, hi), m.metrics

        assert_all_identical(all_modes(run))

    def test_semigroup_add_object(self, kind):
        rng = np.random.default_rng(19)
        vals = _object_floats(rng, N)

        def run():
            m = FACTORIES[kind](N)
            return (semigroup(m, vals, np.add),), m.metrics

        assert_all_identical(all_modes(run))

    def test_fill_and_pack_ride_along(self, kind):
        # Fills/prefix are whole-array under every executor; pack rides on
        # them.  Pinned here so the executor switch can never skew them.
        rng = np.random.default_rng(23)
        vals = _object_floats(rng, N)
        known = np.zeros(N, dtype=bool)
        known[[2, 9, 14]] = True
        keep = rng.uniform(size=N) < 0.5

        def run():
            m = FACTORIES[kind](N)
            filled = fill_forward(m, vals, known)
            pre = parallel_prefix(m, np.arange(N), np.add)
            (packed,), count = pack(m, keep, [vals])
            return (filled, pre, packed, np.asarray([count])), m.metrics

        assert_all_identical(all_modes(run))


class TestMultiKey:
    def test_mixed_native_and_object_keys(self):
        rng = np.random.default_rng(29)
        k1 = rng.integers(0, 3, N)
        k2 = _object_floats(rng, N)

        def run():
            m = mesh_machine(N)
            (s1, s2), _ = bitonic_sort(m, [k1, k2])
            return (s1, s2), m.metrics

        assert_all_identical(all_modes(run))


class TestLowering:
    def test_lowerable_families(self):
        rng = np.random.default_rng(31)
        for family in ("object_float", "object_bigint", "object_tuple"):
            cols = lower_keys([KEY_FAMILIES[family](rng, N)])
            assert cols is not None, family
            assert all(c.dtype != object for c in cols), family

    def test_tuple_keys_widen_to_columns(self):
        rng = np.random.default_rng(37)
        cols = lower_keys([_object_tuples(rng, N)])
        assert len(cols) == 2

    def test_refusals(self):
        fractions = np.empty(N, dtype=object)
        fractions[:] = [Fraction(i, 7) for i in range(N)]
        huge = np.empty(N, dtype=object)
        huge[:] = [i << 200 for i in range(N)]
        inexact = np.empty(N, dtype=object)
        inexact[:] = [(1 << 53) + 1 - i for i in range(N // 2)] + \
            [0.5] * (N - N // 2)
        ragged = np.empty(N, dtype=object)
        ragged[:] = [(1,)] * (N - 1) + [(1, 2)]
        for name, arr in [("fractions", fractions), ("huge", huge),
                          ("inexact_mixed", inexact), ("ragged", ragged)]:
            assert lower_keys([arr]) is None, name


class TestObservableFallback:
    def test_non_lowerable_keys_fall_back_identically(self):
        keys = np.empty(N, dtype=object)
        keys[:] = [Fraction(3 * i % 11, 7) for i in range(N)]
        tags = np.arange(N)

        def run():
            m = hypercube_machine(N)
            (k,), (t,) = bitonic_sort(m, keys, [tags])
            return (k, t), m.metrics

        before = vexec_stats()
        assert_all_identical(all_modes(run))
        after = vexec_stats()
        # Exactly the one vectorized attempt refused; the compiled and
        # reference runs never consult the lowering layer.
        assert after["fallbacks"] == before["fallbacks"] + 1
        assert after["lowered"] == before["lowered"]

    def test_fallback_visible_in_registry_snapshot(self):
        keys = np.empty(N, dtype=object)
        keys[:] = [Fraction(i, 3) for i in range(N)]
        before = registry_snapshot().get("vexec.fallbacks", 0)
        prev = set_compiled_plans("vectorized")
        try:
            bitonic_sort(mesh_machine(N), keys)
        finally:
            set_compiled_plans(prev)
        snap = registry_snapshot()
        assert snap["vexec.fallbacks"] == before + 1

    def test_lowered_counter_advances(self):
        before = vexec_stats()["lowered"]
        prev = set_compiled_plans("vectorized")
        try:
            bitonic_sort(mesh_machine(N), np.arange(N, dtype=float))
        finally:
            set_compiled_plans(prev)
        assert vexec_stats()["lowered"] == before + 1

    def test_custom_semigroup_op_falls_back(self):
        rng = np.random.default_rng(41)
        vals = _object_floats(rng, N)
        lifted = np.frompyfunc(lambda a, b: a if a < b else b, 2, 1)

        def run():
            m = mesh_machine(N)
            return (semigroup(m, vals, lifted),), m.metrics

        before = vexec_stats()["fallbacks"]
        assert_all_identical(all_modes(run))
        assert vexec_stats()["fallbacks"] == before + 1
