"""Tests for the expected-time (randomized) sorting substrate."""

import numpy as np
import pytest

from repro.machines import hypercube_machine
from repro.ops import bitonic_sort, concurrent_read


class TestRandomizedSort:
    def test_same_answers_as_deterministic(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(size=256)
        tags = np.arange(256)
        det = hypercube_machine(256)
        rnd = hypercube_machine(256, randomized=True)
        (kd,), (td,) = bitonic_sort(det, data, [tags])
        (kr,), (tr,) = bitonic_sort(rnd, data, [tags])
        np.testing.assert_array_equal(kd, kr)
        np.testing.assert_array_equal(td, tr)

    def test_expected_time_is_cheaper_at_scale(self):
        """Table 1's expected column: randomized beats bitonic for large n."""
        n = 4096
        data = np.random.default_rng(1).uniform(size=n)
        det = hypercube_machine(n)
        rnd = hypercube_machine(n, randomized=True)
        bitonic_sort(det, data)
        bitonic_sort(rnd, data)
        assert rnd.metrics.comm_time < det.metrics.comm_time

    def test_expected_time_scaling_is_log_class(self):
        times = []
        for n in (256, 1024, 4096):
            m = hypercube_machine(n, randomized=True)
            bitonic_sort(m, np.random.default_rng(2).uniform(size=n))
            times.append(m.metrics.comm_time)
        # 16x data -> well under 2x rounds (log growth).
        assert times[-1] < 2.5 * times[0]

    def test_lexicographic_keys(self):
        m = hypercube_machine(8, randomized=True)
        k1 = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        k2 = np.array([3.0, 1.0, 1.0, 2.0, 2.0, 3.0, 0.0, 0.0])
        (s1, s2), _ = bitonic_sort(m, [k1, k2])
        assert list(s1[:4]) == [0, 0, 0, 0]
        assert list(s2[:4]) == sorted(s2[:4])

    def test_descending(self):
        m = hypercube_machine(8, randomized=True)
        (out,), _ = bitonic_sort(m, np.arange(8.0), ascending=False)
        np.testing.assert_array_equal(out, np.arange(8.0)[::-1])

    def test_segmented_falls_back_to_bitonic(self):
        """Segmented sorts keep the deterministic network (the randomized
        substrate routes globally)."""
        m = hypercube_machine(8, randomized=True)
        data = np.array([3.0, 1.0, 2.0, 0.0, 7.0, 5.0, 6.0, 4.0])
        (out,), _ = bitonic_sort(m, data, segment_size=4)
        np.testing.assert_array_equal(out, [0, 1, 2, 3, 4, 5, 6, 7])

    def test_steady_pipeline_end_to_end_expected_time(self):
        """The Table 3 expected column measured end-to-end: the same
        steady-state closest pair, cheaper on the randomized machine."""
        from repro import divergent_system, steady_closest_pair
        system = divergent_system(64, d=2, seed=3)
        det = hypercube_machine(64)
        rnd = hypercube_machine(64, randomized=True)
        a = steady_closest_pair(det, system)
        b = steady_closest_pair(rnd, system)
        assert a == b

    def test_sort_dominated_concurrent_read_benefits(self):
        n = 1024
        mkeys = np.arange(n // 2)
        mvals = np.arange(n // 2).astype(object)
        queries = np.random.default_rng(5).integers(0, n // 2, n // 2)
        det = hypercube_machine(n)
        rnd = hypercube_machine(n, randomized=True)
        a = concurrent_read(det, mkeys, mvals, queries)
        b = concurrent_read(rnd, mkeys, mvals, queries)
        assert list(a) == list(b)
        assert rnd.metrics.comm_time < det.metrics.comm_time
