"""Unit tests for repro.ops.scan (Table 1: semigroup, broadcast, prefix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationContractError
from repro.machines import hypercube_machine, mesh_machine, serial_machine
from repro.ops import (
    broadcast,
    fill_backward,
    fill_forward,
    parallel_prefix,
    parallel_suffix,
    semigroup,
)


@pytest.mark.usefixtures("plan_mode")
class TestPrefix:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_matches_cumsum(self, n):
        rng = np.random.default_rng(n)
        data = rng.integers(-5, 5, n).astype(np.int64)
        for m in (mesh_machine(max(4, 4 ** ((max(n, 4) - 1).bit_length() + 1 >> 1))),
                  hypercube_machine(max(n, 4))):
            out = parallel_prefix(m, data, np.add)
            np.testing.assert_array_equal(out, np.cumsum(data))

    def test_max_scan(self):
        data = np.array([3.0, 1.0, 7.0, 2.0])
        out = parallel_prefix(mesh_machine(4), data, np.maximum)
        np.testing.assert_allclose(out, [3, 3, 7, 7])

    def test_segmented(self):
        data = np.array([1, 1, 1, 1, 1, 1, 1, 1], dtype=np.int64)
        segs = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        out = parallel_prefix(mesh_machine(4), data, np.add, segments=segs)
        np.testing.assert_array_equal(out, [1, 2, 3, 1, 2, 1, 2, 3])

    def test_noncommutative_op(self):
        """Prefix must respect operand order (string concatenation)."""
        data = np.array(["a", "b", "c", "d"], dtype=object)
        out = parallel_prefix(mesh_machine(4), data, np.add)
        assert list(out) == ["a", "ab", "abc", "abcd"]

    def test_suffix_noncommutative(self):
        data = np.array(["a", "b", "c", "d"], dtype=object)
        out = parallel_suffix(mesh_machine(4), data, np.add)
        assert list(out) == ["abcd", "bcd", "cd", "d"]

    def test_rejects_bad_segments_length(self):
        with pytest.raises(OperationContractError):
            parallel_prefix(mesh_machine(4), np.zeros(4), np.add,
                            segments=np.zeros(2))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(OperationContractError):
            parallel_prefix(mesh_machine(4), np.zeros(6), np.add)

    def test_input_unmodified(self):
        data = np.array([1, 2], dtype=np.int64)
        parallel_prefix(mesh_machine(4), data, np.add)
        assert list(data) == [1, 2]

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_property_prefix(self, xs):
        n = 1 << (len(xs) - 1).bit_length()
        data = np.array(xs + [0] * (n - len(xs)), dtype=np.int64)
        out = parallel_prefix(hypercube_machine(max(n, 2)), data, np.add)
        np.testing.assert_array_equal(out, np.cumsum(data))


@pytest.mark.usefixtures("plan_mode")
class TestSemigroup:
    def test_unsegmented_total_everywhere(self):
        data = np.arange(8, dtype=np.int64)
        out = semigroup(hypercube_machine(8), data, np.add)
        np.testing.assert_array_equal(out, np.full(8, 28))

    def test_min_operation(self):
        data = np.array([5.0, 2.0, 9.0, 4.0])
        out = semigroup(mesh_machine(4), data, np.minimum)
        np.testing.assert_allclose(out, np.full(4, 2.0))

    def test_segmented(self):
        data = np.array([1, 2, 3, 4, 10, 20, 30, 40], dtype=np.int64)
        segs = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out = semigroup(mesh_machine(4), data, np.add, segments=segs)
        np.testing.assert_array_equal(out, [10, 10, 10, 10, 100, 100, 100, 100])

    def test_segmented_unaligned(self):
        data = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.int64)
        segs = np.array([0, 0, 0, 1, 1, 1, 1, 1])
        out = semigroup(mesh_machine(4), data, np.add, segments=segs)
        np.testing.assert_array_equal(out, [6, 6, 6, 30, 30, 30, 30, 30])

    def test_semigroup_cheaper_than_sort_on_hypercube(self):
        """Table 1: semigroup Theta(log n) vs sort Theta(log^2 n)."""
        from repro.ops import bitonic_sort
        n = 1024
        data = np.random.default_rng(0).uniform(size=n)
        m1, m2 = hypercube_machine(n), hypercube_machine(n)
        semigroup(m1, data, np.minimum)
        bitonic_sort(m2, data)
        assert m1.metrics.time * 3 < m2.metrics.time


@pytest.mark.usefixtures("plan_mode")
class TestFills:
    def test_fill_forward(self):
        vals = np.array([9.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0])
        defined = np.array([1, 0, 0, 1, 0, 0, 0, 0], dtype=bool)
        out = fill_forward(mesh_machine(4), vals, defined)
        np.testing.assert_allclose(out, [9, 9, 9, 5, 5, 5, 5, 5])

    def test_fill_forward_nearest_wins(self):
        vals = np.array([1.0, 0, 2.0, 0, 0, 0, 3.0, 0])
        defined = np.array([1, 0, 1, 0, 0, 0, 1, 0], dtype=bool)
        out = fill_forward(mesh_machine(4), vals, defined)
        np.testing.assert_allclose(out, [1, 1, 2, 2, 2, 2, 3, 3])

    def test_fill_backward(self):
        vals = np.array([0.0, 0.0, 7.0, 0.0])
        defined = np.array([0, 0, 1, 0], dtype=bool)
        out = fill_backward(mesh_machine(4), vals, defined)
        np.testing.assert_allclose(out, [7, 7, 7, 0])

    def test_fill_respects_segments(self):
        vals = np.array([9.0, 0, 0, 0])
        defined = np.array([1, 0, 0, 0], dtype=bool)
        segs = np.array([0, 0, 1, 1])
        out = fill_forward(mesh_machine(4), vals, defined, segments=segs)
        np.testing.assert_allclose(out, [9, 9, 0, 0])

    def test_undefined_slots_keep_values_without_source(self):
        vals = np.array([1.0, 2.0, 3.0, 9.0])
        defined = np.array([0, 0, 0, 1], dtype=bool)
        out = fill_forward(mesh_machine(4), vals, defined)
        np.testing.assert_allclose(out, [1, 2, 3, 9])


@pytest.mark.usefixtures("plan_mode")
class TestBroadcast:
    def test_single_source(self):
        vals = np.array([0.0, 0.0, 42.0, 0.0])
        marked = np.array([0, 0, 1, 0], dtype=bool)
        out = broadcast(mesh_machine(4), vals, marked)
        np.testing.assert_allclose(out, np.full(4, 42.0))

    def test_segmented_broadcast(self):
        vals = np.array([0.0, 7.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0])
        marked = np.array([0, 1, 0, 0, 0, 0, 1, 0], dtype=bool)
        segs = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out = broadcast(hypercube_machine(8), vals, marked, segments=segs)
        np.testing.assert_allclose(out, [7, 7, 7, 7, 3, 3, 3, 3])

    def test_unmarked_segment_untouched(self):
        vals = np.array([1.0, 2.0, 5.0, 0.0])
        marked = np.array([0, 0, 1, 0], dtype=bool)
        segs = np.array([0, 0, 1, 1])
        out = broadcast(mesh_machine(4), vals, marked, segments=segs)
        np.testing.assert_allclose(out, [1, 2, 5, 5])

    def test_broadcast_cost_mesh_sqrt(self):
        """Table 1: broadcast Theta(sqrt(n)) on the mesh."""
        def cost(n):
            m = mesh_machine(n)
            vals = np.zeros(n)
            marked = np.zeros(n, dtype=bool)
            marked[0] = True
            broadcast(m, vals, marked)
            return m.metrics.time
        ratio = cost(4096) / cost(256)
        assert 2.5 < ratio < 6.0  # ~sqrt(16) = 4


class TestSerialMachineCosts:
    def test_serial_prefix_costs_linear_work(self):
        m = serial_machine()
        parallel_prefix(m, np.zeros(64, dtype=np.int64), np.add)
        # log2(64) rounds, each costing 64 local slots.
        assert m.metrics.time == 6 * 64
