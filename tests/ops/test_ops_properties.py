"""Property-based and contract tests across the operation library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationContractError
from repro.machines import hypercube_machine, mesh_machine
from repro.ops import (
    bitonic_merge,
    bitonic_sort,
    broadcast,
    concurrent_read,
    concurrent_write,
    parallel_prefix,
    parallel_suffix,
    semigroup,
)


def pad_pow2(xs, fill):
    n = 1 << max(0, (len(xs) - 1)).bit_length() if xs else 1
    n = max(n, 2)
    return np.array(list(xs) + [fill] * (n - len(xs)))


class TestNaNGuards:
    def test_sort_rejects_nan_keys(self):
        keys = np.array([1.0, float("nan"), 2.0, 0.0])
        with pytest.raises(OperationContractError):
            bitonic_sort(mesh_machine(4), keys)

    def test_merge_rejects_nan_keys(self):
        keys = np.array([1.0, 2.0, float("nan"), 4.0])
        with pytest.raises(OperationContractError):
            bitonic_merge(mesh_machine(4), keys)

    def test_inf_keys_allowed(self):
        keys = np.array([np.inf, 1.0, -np.inf, 2.0])
        (out,), _ = bitonic_sort(mesh_machine(4), keys)
        assert out[0] == -np.inf and out[-1] == np.inf


class TestObjectPayloads:
    def test_sort_with_python_object_keys(self):
        keys = np.empty(4, dtype=object)
        keys[:] = [(2, "b"), (1, "z"), (1, "a"), (3, "q")]
        (out,), _ = bitonic_sort(hypercube_machine(4), keys)
        assert list(out) == [(1, "a"), (1, "z"), (2, "b"), (3, "q")]

    def test_semigroup_object_op(self):
        vals = np.array([{1}, {2}, {3}, {4}], dtype=object)
        union = np.frompyfunc(lambda a, b: a | b, 2, 1)
        out = semigroup(mesh_machine(4), vals, union)
        assert all(v == {1, 2, 3, 4} for v in out)

    def test_broadcast_object_values(self):
        vals = np.array([None, ("payload", 7), None, None], dtype=object)
        marked = np.array([0, 1, 0, 0], dtype=bool)
        out = broadcast(mesh_machine(4), vals, marked)
        assert all(v == ("payload", 7) for v in out)


class TestScanAlgebra:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_prefix_suffix_mirror(self, xs):
        data = pad_pow2(xs, 0).astype(np.int64)
        m = hypercube_machine(len(data))
        pre = parallel_prefix(m, data, np.add)
        suf = parallel_suffix(m, data[::-1].copy(), np.add)
        np.testing.assert_array_equal(pre, suf[::-1])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_semigroup_equals_prefix_tail(self, xs):
        data = pad_pow2(xs, 0).astype(np.int64)
        m = mesh_machine(4)
        total = semigroup(m, data, np.add)
        pre = parallel_prefix(m, data, np.add)
        assert total[0] == pre[-1]

    @given(st.lists(st.integers(0, 3), min_size=4, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_segmented_prefix_never_crosses(self, seg_list):
        segs = pad_pow2(seg_list, seg_list[-1])
        segs = np.sort(segs)  # segments must be runs
        data = np.ones(len(segs), dtype=np.int64)
        out = parallel_prefix(hypercube_machine(len(segs)), data, np.add,
                              segments=segs)
        # Within each run the prefix restarts from 1 and counts up.
        for sid in np.unique(segs):
            run = out[segs == sid]
            np.testing.assert_array_equal(run, np.arange(1, len(run) + 1))


class TestSortAlgebra:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_sort_idempotent(self, xs):
        data = pad_pow2(xs, 10**6).astype(np.int64)
        m = hypercube_machine(len(data))
        (once,), _ = bitonic_sort(m, data)
        (twice,), _ = bitonic_sort(m, once)
        np.testing.assert_array_equal(once, twice)

    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_merge_of_sorted_halves_equals_sort(self, xs):
        n = 1 << (len(xs) - 1).bit_length()
        data = np.array(xs + [10**6] * (n - len(xs)), dtype=np.int64)
        half = n // 2
        arranged = np.concatenate([np.sort(data[:half]), np.sort(data[half:])])
        m = mesh_machine(4)
        (merged,), _ = bitonic_merge(m, arranged)
        np.testing.assert_array_equal(merged, np.sort(data))

    def test_descending_segmented(self):
        data = np.array([1.0, 4.0, 2.0, 3.0, 9.0, 5.0, 7.0, 6.0])
        (out,), _ = bitonic_sort(mesh_machine(4), data, ascending=False,
                                 segment_size=4)
        np.testing.assert_allclose(out, [4, 3, 2, 1, 9, 7, 6, 5])


class TestConcurrentProperties:
    @given(st.dictionaries(st.integers(0, 30), st.integers(-99, 99),
                           min_size=1, max_size=10),
           st.lists(st.integers(0, 40), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_read_is_dictionary_lookup(self, table, queries):
        mkeys = np.array(sorted(table))
        mvals = np.array([table[k] for k in sorted(table)], dtype=object)
        out = concurrent_read(hypercube_machine(4), mkeys, mvals,
                              np.array(queries), default="MISS")
        for q, got in zip(queries, out):
            assert got == table.get(q, "MISS")

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(1, 9)),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_write_sums_match_groupby(self, writes):
        mkeys = np.arange(6)
        rkeys = np.array([k for k, _ in writes])
        rvals = np.array([v for _, v in writes], dtype=object)
        out = concurrent_write(mesh_machine(4), mkeys, rkeys, rvals,
                               lambda a, b: a + b, default=0)
        for key in range(6):
            want = sum(v for k, v in writes if k == key)
            assert out[key] == want
