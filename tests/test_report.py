"""Tests for the repro.report harness and its CLI."""

import pytest

from repro.report import EXPERIMENTS, run, run_all
from repro.report import ablations, figures, section6, table1
from repro.report.__main__ import main as cli_main


class TestRegistry:
    def test_expected_experiments_present(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "figures", "section6", "ablations", "architectures",
            "validation",
        }

    def test_every_module_has_title_and_tables(self):
        for mod in EXPERIMENTS.values():
            assert isinstance(mod.TITLE, str) and mod.TITLE
            assert callable(mod.tables)

    def test_run_rejects_unknown(self):
        with pytest.raises(KeyError):
            run("table99", out=lambda s: None)


class TestGenerators:
    """Structure checks on the cheap generators (full sweeps are the
    benchmarks' job)."""

    def test_topology_rows_structure(self):
        rows = figures.topology_rows(sizes=[16, 64])
        assert len(rows) == 2
        assert rows[0][1] == rows[0][2]  # diameter formula

    def test_locality_rows_small(self):
        rows = figures.locality_rows(n=16)
        assert {r[0] for r in rows} == {
            "row-major", "shuffled-row-major", "snake-like", "proximity"
        }

    def test_tangent_lines_attain_bound(self):
        from repro import PolynomialFamily, envelope_serial
        env = envelope_serial(figures.tangent_lines(8), PolynomialFamily(1))
        assert len(env) == 8

    def test_partial_family_has_gaps(self):
        fns = figures.partial_family(4, 2, seed=0)
        assert len(fns) == 4
        assert any(len(f.transition_times()) > 0 for f in fns)

    def test_table1_run_op_unknown(self):
        from repro.machines import mesh_machine
        import numpy as np
        with pytest.raises(ValueError):
            table1.run_op(mesh_machine(4), "teleport", 4,
                          np.random.default_rng(0))

    def test_ablation_small_sweeps(self):
        rows = ablations.sort_cost_by_scheme(sizes=[16, 64])
        assert len(rows) == 4
        rec = ablations.recursion_rows(sizes=[4, 8])
        assert rec[-1][0] == "fit"
        # Insertion never beats recursion.
        for row in rec[:-1]:
            assert float(row[2]) >= float(row[1])

    def test_section6_curves_deterministic(self):
        a = section6.curves(8, seed=1)
        b = section6.curves(8, seed=1)
        assert all(x == y for x, y in zip(a, b))


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "ablations" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment_prints_table(self, capsys):
        # ablations with the default sizes takes ~10 s; use figures' cheap
        # sub-generator through run() on the smallest registered module.
        # The CLI contract itself is what we check here.
        assert cli_main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out and "===" in out
