"""Tests for repro.analysis (scaling fits and table rendering)."""

import numpy as np
import pytest

from repro.analysis import (
    ScalingFit,
    geometric_sizes,
    polylog_fit,
    power_fit,
    render_table,
)


class TestPowerFit:
    def test_exact_power_law(self):
        sizes = [16, 64, 256, 1024]
        times = [3 * n**0.5 for n in sizes]
        fit = power_fit(sizes, times)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(0)
        sizes = [2**i for i in range(4, 12)]
        times = [n * rng.uniform(0.9, 1.1) for n in sizes]
        fit = power_fit(sizes, times)
        assert 0.9 < fit.exponent < 1.1
        assert fit.r_squared > 0.98

    def test_describe(self):
        fit = ScalingFit(0.5, 1.0, 0.999)
        assert "n^0.50" in fit.describe()

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            power_fit([4], [1.0])


class TestPolylogFit:
    def test_log_squared(self):
        sizes = [64, 256, 1024, 4096]
        times = [np.log2(n) ** 2 for n in sizes]
        assert polylog_fit(sizes, times) == pytest.approx(2.0, abs=1e-9)

    def test_plain_log(self):
        sizes = [64, 256, 1024, 4096]
        times = [5 * np.log2(n) for n in sizes]
        assert polylog_fit(sizes, times) == pytest.approx(1.0, abs=1e-9)


class TestHelpers:
    def test_geometric_sizes(self):
        assert geometric_sizes(16, 1024, factor=4) == [16, 64, 256, 1024]
        assert geometric_sizes(8, 8) == [8]

    def test_render_table(self):
        lines = []
        render_table("T", ["a", "bb"], [[1, 2.5], ["xy", 1e9]],
                     out=lines.append)
        text = "\n".join(lines)
        assert "=== T ===" in text
        assert "2.50" in text
        assert "1.00e+09" in text
        # Alignment: all data rows have the same width.
        widths = {len(line) for line in lines[1:] if "|" in line or "-+-" in line}
        assert len(widths) == 1
