"""Traced verify-campaigns: exact totals, jobs-determinism, export."""

import copy

import pytest

from repro.trace.export import chrome_trace_document, flatten_spans
from repro.trace.tracer import SIM_FIELDS
from repro.verify.oracle import campaign

pytestmark = pytest.mark.verify

ALGS = ["envelope", "steady_hull"]


@pytest.fixture(scope="module")
def traced_campaign():
    return campaign(algorithms=ALGS, instances=2, trace=True)


def test_algorithm_span_totals_equal_reported_totals_exactly(traced_campaign):
    result = traced_campaign
    totals = result.sim_totals()
    assert set(totals) == set(ALGS)
    spans = {s["name"]: s for s in result.algorithm_spans}
    for name in ALGS:
        assert totals[name] > 0.0
        # Bit-for-bit, not approx: same float summation order by design.
        assert spans[name]["sim"]["time"] == totals[name]


def test_reports_carry_sim_time(traced_campaign):
    result = traced_campaign
    assert result.ok
    for r in result.reports:
        assert r.sim_time > 0.0


def test_instance_spans_nest_backend_spans(traced_campaign):
    (env_span,) = [s for s in traced_campaign.algorithm_spans
                   if s["name"] == "envelope"]
    assert env_span["cat"] == "algorithm"
    assert env_span["attrs"] == {"instances": 2}
    for inst_span in env_span["children"]:
        assert inst_span["cat"] == "instance"
        backends = [c["name"] for c in inst_span["children"]]
        # serial reference first, then each backend with fast combine on/off.
        assert backends[0] == "serial"
        assert backends[1:] == ["mesh", "mesh", "hypercube", "hypercube",
                                "pram", "pram"]
        # Serial runs charge no machine metrics: excluded from sums.
        assert inst_span["children"][0]["sim"] is None


def test_instance_span_sum_matches_report(traced_campaign):
    result = traced_campaign
    (env_span,) = [s for s in result.algorithm_spans
                   if s["name"] == "envelope"]
    env_reports = [r for r in result.reports if r.algorithm == "envelope"]
    for inst_span, report in zip(env_span["children"], env_reports):
        assert inst_span["sim"]["time"] == report.sim_time


def test_trace_identical_for_every_jobs_value():
    a = campaign(algorithms=["envelope"], instances=2, trace=True, jobs=1)
    b = campaign(algorithms=["envelope"], instances=2, trace=True, jobs=2)

    def strip_wall(forest):
        forest = copy.deepcopy(forest)
        stack = list(forest)
        while stack:
            s = stack.pop()
            s["wall"] = None
            stack.extend(s["children"])
        return forest

    assert a.sim_totals() == b.sim_totals()
    assert strip_wall(a.algorithm_spans) == strip_wall(b.algorithm_spans)


def test_chrome_export_embeds_exact_totals(traced_campaign, tmp_path):
    result = traced_campaign
    doc = chrome_trace_document(result.algorithm_spans,
                                totals=result.sim_totals())
    assert doc["reproTotals"] == result.sim_totals()
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(flatten_spans(result.algorithm_spans))
    by_name = {e["name"]: e for e in xs if e["cat"] == "algorithm"}
    for name, total in result.sim_totals().items():
        assert by_name[name]["args"]["sim_time"] == total


def test_untraced_campaign_has_no_spans():
    result = campaign(algorithms=["envelope"], instances=1, trace=False)
    assert result.algorithm_spans is None
    assert result.reports[0].sim_time > 0.0


def test_sim_fields_cover_span_sums(traced_campaign):
    for span in traced_campaign.algorithm_spans:
        assert set(span["sim"]) == set(SIM_FIELDS)
