"""Tracing overhead + parity smoke checks (tier-1).

Two contracts:

* **Disabled is (near-)free**: with no tracer installed, the hook sites
  are a single ``None`` check and ``trace_span`` allocates nothing, so a
  steady-hull run stays within 5% of an identical back-to-back run.
  (Both runs go through the same hook-bearing code — the budget bounds
  run-to-run noise *plus* any accidental enabled-path work leaking into
  the disabled path, which is the regression this guards against.)
* **Tracing never moves simulated time**: a traced run's ``sim_snapshot``
  is bit-identical to an untraced run's.

Deselect with ``-m "not wallclock"`` when timing is meaningless.
"""

import time

import pytest

from repro.core.steady import steady_hull
from repro.kinetics.motion import random_system
from repro.machines.machine import mesh_machine
from repro.trace.tracer import Tracer, tracing_enabled, trace_span
from repro.verify.compare import sim_snapshot

pytestmark = pytest.mark.wallclock


def _run_steady_hull():
    machine = mesh_machine(64)
    system = random_system(24, k=1, seed=11)
    out = steady_hull(machine, system)
    return machine, out


def _min_of_interleaved(reps: int) -> tuple[float, float]:
    base = ref = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        _run_steady_hull()
        ref = min(ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run_steady_hull()
        base = min(base, time.perf_counter() - t0)
    return base, ref


def test_disabled_tracing_overhead_under_5_percent():
    assert not tracing_enabled()
    _run_steady_hull()  # warm caches so both passes hit the same paths
    # Interleave the passes and keep the min of N: the two timings face
    # identical cache/JIT/host conditions, so the ratio isolates overhead.
    # A real no-op-path regression biases every attempt the same way;
    # scheduler noise is symmetric, so a few attempts filter it out.
    ratios = []
    for _ in range(3):
        base, ref = _min_of_interleaved(reps=7)
        lo, hi = sorted((base, ref))
        ratios.append(hi / lo)
        if hi <= 1.05 * lo:
            return
    assert False, (
        f"disabled-tracing runs differ by {min(ratios) - 1.0:.1%} (> 5%) "
        "on every attempt: the no-op hook path is doing real work"
    )


def test_disabled_trace_span_is_allocation_free():
    assert not tracing_enabled()
    # The disabled path returns one shared nullcontext for every call —
    # structurally a no-op, not just a cheap op.
    assert trace_span("a") is trace_span("b", None, category="driver", n=9)


def test_traced_run_is_sim_bit_identical():
    untraced_machine, untraced_out = _run_steady_hull()
    with Tracer() as tracer:
        traced_machine, traced_out = _run_steady_hull()
    assert sim_snapshot(traced_machine.metrics) == sim_snapshot(
        untraced_machine.metrics
    )
    assert traced_out == untraced_out
    # ...and the trace actually observed the run.
    (root,) = tracer.roots
    assert root.name == "steady_hull"
    assert root.sim["time"] == traced_machine.metrics.time
