"""MetricsRegistry unit tests and subsystem-unification checks."""

import numpy as np

from repro.core.family import (
    PolynomialFamily,
    global_cache_stats,
    reset_global_cache_stats,
)
from repro.kinetics.polynomial import Polynomial
from repro.ops.plans import plan_cache_stats, reset_plan_stats
from repro.trace.registry import (
    REGISTRY,
    Counter,
    MetricsRegistry,
    get_counter,
    registry_snapshot,
)


def test_counter_cell_identity_and_reset():
    reg = MetricsRegistry()
    a = reg.counter("x.hits")
    b = reg.counter("x.hits")
    assert a is b
    a.value += 3
    a.inc(2)
    assert reg.snapshot() == {"x.hits": 5}
    reg.reset()
    assert a.value == 0


def test_float_counter_resets_to_float():
    c = Counter("t.seconds", 0.0)
    c.inc(0.25)
    c.reset()
    assert c.value == 0.0 and isinstance(c.value, float)


def test_gauges_sampled_at_snapshot_time():
    reg = MetricsRegistry()
    live = {"a": 1}
    reg.gauge("cache.size", lambda: len(live))
    assert reg.snapshot()["cache.size"] == 1
    live["b"] = 2
    assert reg.snapshot()["cache.size"] == 2


def test_dead_gauge_does_not_break_snapshot():
    reg = MetricsRegistry()
    reg.gauge("bad", lambda: 1 / 0)
    assert reg.snapshot() == {"bad": None}


def test_snapshot_is_sorted_flat_dict():
    reg = MetricsRegistry()
    reg.counter("b.x").inc()
    reg.counter("a.y").inc()
    reg.gauge("c.z", lambda: 7)
    assert list(reg.snapshot()) == ["a.y", "b.x", "c.z"]


def test_render_table_groups_and_derives_hit_rate():
    reg = MetricsRegistry()
    reg.counter("demo_cache.hits").inc(3)
    reg.counter("demo_cache.misses").inc(1)
    table = reg.render_table()
    assert "demo_cache" in table
    assert "hit_rate=75.0%" in table


def test_crossing_cache_counts_through_shared_registry():
    reset_global_cache_stats()
    before = registry_snapshot()
    fam = PolynomialFamily(2)
    f = Polynomial([0.0, 1.0])
    g = Polynomial([1.0, -1.0])
    fam.crossings(f, g, 0.0, 10.0)   # miss
    fam.crossings(f, g, 0.0, 10.0)   # hit
    after = registry_snapshot()
    assert after["crossing_cache.misses"] - before["crossing_cache.misses"] == 1
    assert after["crossing_cache.hits"] - before["crossing_cache.hits"] == 1
    # The legacy stats API reads the same cells.
    stats = global_cache_stats()
    assert stats["hits"] == after["crossing_cache.hits"]
    assert stats["misses"] == after["crossing_cache.misses"]


def test_plan_cache_counts_through_shared_registry():
    from repro.machines.machine import mesh_machine
    from repro.ops import bitonic_sort

    reset_plan_stats()
    machine = mesh_machine(16)
    bitonic_sort(machine, np.arange(16)[::-1])
    snap = registry_snapshot()
    stats = plan_cache_stats()
    assert stats["hits"] == snap["movement_plans.hits"]
    assert stats["misses"] == snap["movement_plans.misses"]
    assert stats["misses"] >= 1
    assert snap["movement_plans.cache_size"] == stats["size"]


def test_charge_cache_gauges_registered():
    from repro.machines.machine import mesh_machine
    from repro.ops import parallel_prefix

    machine = mesh_machine(16)
    parallel_prefix(machine, np.arange(16), np.add)
    snap = registry_snapshot()
    assert snap["charge_cache.size"] >= 1
    assert "charge_cache.doubling_bits" in snap


def test_module_conveniences_hit_the_shared_registry():
    cell = get_counter("test_registry.probe")
    cell.inc(2)
    try:
        assert registry_snapshot()["test_registry.probe"] == 2
        assert REGISTRY.counter("test_registry.probe") is cell
    finally:
        cell.reset()
