"""Fixtures for the tracing tests: never leak an installed tracer."""

import pytest

from repro.trace import tracer as tracer_mod


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Fail loudly if a test leaves a tracer installed, then clean up.

    The tracer is process-global state; a leaked installation would make
    every later test run traced (and `install` raise).
    """
    assert tracer_mod.current_tracer() is None, "tracer leaked into test"
    yield
    leaked = tracer_mod.current_tracer()
    tracer_mod.uninstall(leaked)
    assert leaked is None, f"test leaked installed tracer {leaked!r}"
