"""Tracer unit tests: span nesting, delta capture, disabled fast path."""

import pytest

from repro.machines.machine import hypercube_machine, mesh_machine
from repro.machines import metrics as metrics_mod
from repro.ops import parallel_prefix
from repro.trace.tracer import (
    SIM_FIELDS,
    Span,
    Tracer,
    current_tracer,
    install,
    span_from_dict,
    trace_span,
    tracing_enabled,
    uninstall,
)

import numpy as np


def test_span_captures_metrics_deltas():
    machine = mesh_machine(16)
    tracer = Tracer()
    with tracer:
        machine.metrics.charge_local(3)  # charged before: excluded
        with tracer.span("op", machine.metrics) as span:
            machine.metrics.charge_local(5)
            machine.metrics.charge_comm(4.0, rounds=2)  # cost 4.0 * 2
    assert span.sim == {"time": 13.0, "comm_time": 8.0, "rounds": 7,
                        "comm_rounds": 2, "local_rounds": 5}
    assert span.sim_time == 13.0
    assert span.comm_time == 8.0
    assert span.comm_fraction == pytest.approx(8.0 / 13.0)
    assert span.wall >= 0.0


def test_nested_spans_form_a_tree():
    machine = mesh_machine(16)
    with Tracer() as tracer:
        with tracer.span("outer", machine.metrics):
            with tracer.span("inner-1", machine.metrics):
                machine.metrics.charge_local(1)
            with tracer.span("inner-2", machine.metrics):
                machine.metrics.charge_local(2)
    (outer,) = tracer.roots
    assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
    assert outer.sim["time"] == 3.0
    assert [c.sim["time"] for c in outer.children] == [1.0, 2.0]


def test_metrics_less_span_sums_children_in_order():
    m1, m2 = mesh_machine(16), hypercube_machine(16)
    with Tracer() as tracer:
        with tracer.span("group") as group:
            with tracer.span("a", m1.metrics):
                m1.metrics.charge_local(2)
            with tracer.span("b", m2.metrics):
                m2.metrics.charge_comm(3.0)
    assert group.sim["time"] == 2.0 + 3.0
    assert group.sim["comm_time"] == 3.0
    assert group.sim["local_rounds"] == 2


def test_metrics_less_span_without_sim_children_has_no_sim():
    with Tracer() as tracer:
        with tracer.span("empty") as span:
            pass
    assert span.sim is None
    assert span.sim_time == 0.0


def test_phase_hook_records_phase_spans():
    machine = mesh_machine(16)
    with Tracer() as tracer:
        with machine.metrics.phase("sort"):
            machine.metrics.charge_local(4)
    (span,) = tracer.roots
    assert (span.name, span.category) == ("sort", "phase")
    assert span.sim["time"] == 4.0
    # ...and the phase accounting itself is untouched by tracing.
    assert machine.metrics.phases["sort"] == 4.0


def test_trace_span_disabled_is_shared_null_context():
    assert not tracing_enabled()
    a = trace_span("x")
    b = trace_span("y", None, category="driver", n=3)
    assert a is b  # one shared nullcontext: no per-call allocation
    with a:
        pass


def test_install_uninstall_lifecycle():
    t = Tracer()
    install(t)
    try:
        assert tracing_enabled()
        assert current_tracer() is t
        assert metrics_mod._TRACE_HOOK is t
        with pytest.raises(RuntimeError):
            install(Tracer())
    finally:
        uninstall(t)
    assert not tracing_enabled()
    assert metrics_mod._TRACE_HOOK is None
    uninstall(None)  # idempotent


def test_uninstall_wrong_tracer_raises():
    t = Tracer()
    install(t)
    try:
        with pytest.raises(RuntimeError):
            uninstall(Tracer())
    finally:
        uninstall(t)


def test_span_nesting_violation_raises():
    tracer = Tracer()
    with tracer:
        outer = tracer._open("outer", "span", None, {})
        tracer._open("inner", "span", None, {})
        with pytest.raises(RuntimeError, match="nesting"):
            tracer._close_span(outer)


def test_to_dict_round_trip():
    machine = mesh_machine(16)
    with Tracer() as tracer:
        with tracer.span("root", machine.metrics, category="driver", n=8):
            with tracer.span("leaf", machine.metrics):
                machine.metrics.charge_local(2)
    doc = tracer.to_dicts()[0]
    rebuilt = span_from_dict(doc)
    assert isinstance(rebuilt, Span)
    assert rebuilt.name == "root"
    assert rebuilt.category == "driver"
    assert rebuilt.attrs == {"n": 8}
    assert rebuilt.sim == doc["sim"]
    assert rebuilt.to_dict() == doc


def test_traced_op_spans_match_charged_time():
    """An instrumented op's span delta equals what the machine charged."""
    machine = mesh_machine(16)
    values = np.arange(16)
    with Tracer() as tracer:
        parallel_prefix(machine, values, np.add)
    (span,) = tracer.roots
    assert span.name == "parallel_prefix"
    assert span.sim["time"] == machine.metrics.time
    assert span.sim["comm_time"] == machine.metrics.comm_time
    assert span.attrs == {"n": 16}
