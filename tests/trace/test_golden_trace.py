"""Structural golden test: the pinned exemplar trace must reproduce.

The golden pins the *structure* of instrumentation — which spans exist,
how they nest, and the exact simulated charges each records — for a fixed
seeded envelope construction.  It fails when instrumentation is added,
removed, or a charge moves; re-pin intentionally with
``python -m repro.trace update-golden``.
"""

import json

import pytest

from repro.trace.golden import (
    DEFAULT_GOLDEN_TRACE_PATH,
    GOLDEN_WORKLOAD,
    golden_trace_document,
    structural_spans,
)


@pytest.fixture(scope="module")
def fresh():
    return golden_trace_document()


@pytest.fixture(scope="module")
def pinned():
    assert DEFAULT_GOLDEN_TRACE_PATH.exists(), (
        "golden trace missing; run `python -m repro.trace update-golden`"
    )
    return json.loads(DEFAULT_GOLDEN_TRACE_PATH.read_text())


def test_golden_trace_matches_pinned(fresh, pinned):
    assert pinned["schema"] == "repro.golden_trace/1"
    assert pinned["workload"] == GOLDEN_WORKLOAD
    assert fresh["sim_time"] == pinned["sim_time"]
    assert fresh["spans"] == pinned["spans"]


def test_golden_trace_is_deterministic(fresh):
    again = golden_trace_document()
    assert again["spans"] == fresh["spans"]
    assert again["sim_time"] == fresh["sim_time"]


def test_golden_root_is_envelope_driver_span(fresh):
    (root,) = fresh["spans"]
    assert (root["name"], root["cat"]) == ("envelope", "driver")
    assert root["sim"]["time"] == fresh["sim_time"]
    assert root["children"], "driver span must record phase/op children"


def test_structural_spans_strip_host_fields(fresh):
    def walk(forest):
        for s in forest:
            assert set(s) == {"name", "cat", "sim", "children"}
            walk(s["children"])

    walk(fresh["spans"])
