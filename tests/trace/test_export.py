"""Exporter tests: Chrome trace_event validity, JSONL round-trip, tree."""

import json

import numpy as np
import pytest

from repro.machines.machine import mesh_machine
from repro.ops import bitonic_sort
from repro.trace import (
    Tracer,
    chrome_trace_document,
    load_trace_spans,
    render_span_tree,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.export import flatten_spans


@pytest.fixture()
def traced_run():
    machine = mesh_machine(16)
    with Tracer() as tracer:
        with tracer.span("run", machine.metrics, category="driver", n=16):
            bitonic_sort(machine, np.arange(16)[::-1])
    return machine, tracer.to_dicts()


def test_chrome_document_shape(traced_run):
    machine, spans = traced_run
    doc = chrome_trace_document(spans, provenance={"x": 1},
                                totals={"run": machine.metrics.time},
                                counters={"c": 2})
    assert doc["metadata"]["provenance"] == {"x": 1}
    assert doc["reproTotals"] == {"run": machine.metrics.time}
    assert doc["reproCounters"] == {"c": 2}
    assert doc["reproSpans"] == spans  # lossless embedding
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == len(flatten_spans(spans))
    assert len(counters) == len(xs)  # one wall sample per span close
    assert len(metas) == 2
    root_event = xs[0]
    assert root_event["name"] == "run"
    # Simulated time maps to the timeline: 1 unit = 1 us of `dur`.
    assert root_event["args"]["sim_time"] == machine.metrics.time
    assert root_event["dur"] >= machine.metrics.time
    for e in xs:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)


def test_chrome_parent_spans_contain_children_on_timeline(traced_run):
    _, spans = traced_run
    doc = chrome_trace_document(spans)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    root = xs[0]
    for e in xs[1:]:
        assert e["ts"] >= root["ts"]
        assert e["ts"] + e["dur"] <= root["ts"] + root["dur"] + 1e-9


def test_chrome_widens_parent_when_children_exceed_delta():
    # Parallel composition: a parent absorbing only the slowest sibling can
    # have a smaller delta than its children's sum; layout must widen it.
    spans = [{
        "name": "parent", "cat": "driver", "attrs": {},
        "sim": {"time": 5.0, "comm_time": 0.0, "rounds": 1,
                "comm_rounds": 0, "local_rounds": 1},
        "wall": 0.0,
        "children": [
            {"name": f"c{i}", "cat": "op", "attrs": {},
             "sim": {"time": 5.0, "comm_time": 0.0, "rounds": 1,
                     "comm_rounds": 0, "local_rounds": 1},
             "wall": 0.0, "children": []}
            for i in range(2)
        ],
    }]
    doc = chrome_trace_document(spans)
    root = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert root["dur"] == 10.0          # widened to contain both children
    assert root["args"]["sim_time"] == 5.0  # exact delta preserved


def test_write_chrome_trace_and_load_round_trip(tmp_path, traced_run):
    _, spans = traced_run
    path = tmp_path / "trace.json"
    write_chrome_trace(path, spans, provenance={"seed": 7},
                       totals={"run": 1.0})
    loaded_spans, doc = load_trace_spans(path)
    assert loaded_spans == spans
    assert doc["metadata"]["provenance"] == {"seed": 7}
    json.loads(path.read_text())  # stays plain JSON


def test_jsonl_round_trip(tmp_path, traced_run):
    _, spans = traced_run
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, spans, provenance={"seed": 3})
    loaded, doc = load_trace_spans(path)
    assert doc["metadata"]["provenance"] == {"seed": 3}

    def skeleton(forest):
        return [
            (s["name"], s.get("cat"), s.get("sim"), skeleton(s["children"]))
            for s in forest
        ]

    assert skeleton(loaded) == skeleton(spans)


def test_render_span_tree_breakdown(traced_run):
    machine, spans = traced_run
    text = render_span_tree(spans)
    lines = text.splitlines()
    assert lines[0].startswith("run")
    assert f"sim={machine.metrics.time:g}".replace("=", "=") in lines[0].replace(" ", "")
    assert "comm=" in lines[0] and "local=" in lines[0] and "comm%=" in lines[0]
    assert any(line.startswith("  bitonic_sort") for line in lines)
    # max_depth prunes children.
    assert render_span_tree(spans, max_depth=0).count("\n") == 0


def test_load_rejects_unknown_format(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(ValueError, match="unrecognized"):
        load_trace_spans(path)


def test_summarize_cli(tmp_path, traced_run, capsys):
    from repro.trace.__main__ import main

    machine, spans = traced_run
    path = tmp_path / "trace.json"
    write_chrome_trace(path, spans, provenance={"seed": 1},
                       totals={"run": machine.metrics.time})
    assert main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "run" in out and "bitonic_sort" in out
