"""Provenance manifest tests."""

import json

from repro.trace.provenance import git_revision, provenance_manifest


def test_manifest_schema_and_fields():
    m = provenance_manifest(seed=42, config={"mode": "test", "n": 8})
    assert m["schema"] == "repro.provenance/1"
    assert m["seed"] == 42
    assert m["config"] == {"mode": "test", "n": 8}
    assert isinstance(m["python"], str)
    assert isinstance(m["numpy"], str)
    assert isinstance(m["host"]["host_cores"], int)
    assert m["timestamp"].endswith("+00:00")  # UTC, absolute
    json.dumps(m)  # must be JSON-serializable as-is


def test_git_revision_in_this_repo():
    rev = git_revision()
    # This test tree IS a git repo; the sha must resolve.
    assert rev["sha"] is None or (
        len(rev["sha"]) == 40 and isinstance(rev["dirty"], bool)
    )


def test_git_revision_unavailable_is_nones(tmp_path):
    rev = git_revision(root=tmp_path)
    assert rev == {"sha": None, "dirty": None}


def test_manifest_never_raises_without_git(tmp_path, monkeypatch):
    import repro.trace.provenance as prov

    monkeypatch.setattr(prov, "_REPO_ROOT", tmp_path)
    m = provenance_manifest()
    assert m["git_sha"] is None and m["git_dirty"] is None
