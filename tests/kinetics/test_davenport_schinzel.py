"""Unit tests for repro.kinetics.davenport_schinzel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinetics.davenport_schinzel import (
    inverse_ackermann,
    is_ds_sequence,
    lambda_bound,
    lambda_exact,
    lambda_hypercube_size,
    lambda_mesh_size,
    max_alternation,
    next_power_of_four,
    next_power_of_two,
)


class TestValidator:
    def test_immediate_repetition_rejected(self):
        assert not is_ds_sequence([1, 1], s=3)

    def test_paper_example(self):
        # For s=2, alternations of length s+2 = 4 are forbidden (E_12);
        # the paper's example z = a1 a2 a1 a2 a1 is not in L_{3,2}.
        assert not is_ds_sequence([1, 2, 1, 2, 1], s=2)
        assert not is_ds_sequence([1, 2, 1, 2], s=2)
        assert is_ds_sequence([1, 2, 1], s=2)  # length s+1 = 3 is allowed

    def test_alternation_subsequence_not_substring(self):
        # 1 2 3 1 2 contains alternation 1,2,1,2 as a subsequence.
        assert not is_ds_sequence([1, 2, 3, 1, 2], s=2)
        assert is_ds_sequence([1, 2, 3, 1, 2], s=3)

    def test_s_validation(self):
        with pytest.raises(ValueError):
            is_ds_sequence([1], s=0)

    def test_max_alternation(self):
        assert max_alternation([1, 2, 2, 1, 3, 2], 1, 2) == 4
        assert max_alternation([1, 1, 1], 1, 2) == 1
        assert max_alternation([], 1, 2) == 0


class TestExactValues:
    def test_closed_forms(self):
        for n in (1, 2, 3, 10, 100):
            assert lambda_exact(n, 1) == n
        for n in (2, 3, 10, 100):
            assert lambda_exact(n, 2) == 2 * n - 1
        for s in (1, 2, 3, 4, 5):
            assert lambda_exact(2, s) == s + 1
        assert lambda_exact(1, 7) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lambda_exact(0, 1)
        with pytest.raises(ValueError):
            lambda_exact(1, 0)

    def test_brute_force_matches_closed_form_small(self):
        # Run the exhaustive search on parameters with known closed forms.
        from repro.kinetics.davenport_schinzel import _lambda_brute

        assert _lambda_brute(3, 2, limit=64) == 5
        assert _lambda_brute(4, 2, limit=64) == 7
        assert _lambda_brute(3, 1, limit=64) == 3
        assert _lambda_brute(2, 3, limit=64) == 4

    def test_brute_force_s3(self):
        # lambda(3, 3) = 8: e.g. 1 2 1 3 1 3 2 3 ... exhaustive search value.
        val = lambda_exact(3, 3)
        assert val >= 7  # at least superlinear-ish behaviour appears
        # Lemma 2.4: 2 * lambda(n, s) <= lambda(2n, s); check n=1,2 via brute.
        assert 2 * lambda_exact(1, 3) <= lambda_exact(2, 3)

    def test_monotone_in_s(self):
        vals = [lambda_exact(3, s) for s in (1, 2, 3)]
        assert vals == sorted(vals)

    def test_monotone_in_n(self):
        vals = [lambda_exact(n, 2) for n in (1, 2, 3, 4)]
        assert vals == sorted(vals)

    def test_brute_limit_guard(self):
        with pytest.raises(RuntimeError):
            lambda_exact(6, 4, brute_force_limit=10)


class TestLemma24:
    """Lemma 2.4: 2*lambda(n, s) <= lambda(2n, s)."""

    @pytest.mark.parametrize("s", [1, 2])
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_closed_forms(self, n, s):
        assert 2 * lambda_exact(n, s) <= lambda_exact(2 * n, s)


class TestInverseAckermann:
    def test_small_values(self):
        assert inverse_ackermann(1) == 1
        assert inverse_ackermann(2) == 1
        # A(1,1) = 2, A(2,2) = A(1, A(2,1)) = A(1, A(1,2)) = A(1,4) = 16.
        assert inverse_ackermann(3) == 2
        assert inverse_ackermann(16) == 2
        assert inverse_ackermann(17) == 3

    def test_monotone(self):
        vals = [inverse_ackermann(n) for n in range(1, 2000, 37)]
        assert vals == sorted(vals)

    def test_tiny_for_huge_n(self):
        assert inverse_ackermann(10**15) <= 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            inverse_ackermann(0)


class TestBoundsAndSizing:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=6))
    @settings(max_examples=80)
    def test_bound_dominates_linear(self, n, s):
        assert lambda_bound(n, s) >= n

    def test_bound_exact_for_small_s(self):
        assert lambda_bound(10, 1) == 10
        assert lambda_bound(10, 2) == 19

    def test_bound_dominates_brute_force_values(self):
        for n, s in [(2, 3), (3, 3), (2, 4), (3, 4)]:
            assert lambda_bound(n, s) >= lambda_exact(n, s)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lambda_bound(0, 1)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1025) == 2048
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_next_power_of_four(self):
        assert next_power_of_four(1) == 1
        assert next_power_of_four(2) == 4
        assert next_power_of_four(4) == 4
        assert next_power_of_four(5) == 16
        assert next_power_of_four(17) == 64

    def test_machine_sizes_dominate_bound(self):
        for n in (3, 10, 50):
            for s in (1, 2, 3):
                lam = lambda_bound(n, s)
                m = lambda_mesh_size(n, s)
                h = lambda_hypercube_size(n, s)
                assert m >= lam and h >= lam
                # power-of-4 / power-of-2 structure
                assert (m & (m - 1)) == 0 and m.bit_length() % 2 == 1
                assert (h & (h - 1)) == 0
