"""Tests for the ASCII renderers."""

import pytest

from repro.kinetics.piecewise import INF, Piece, PiecewiseFunction
from repro.kinetics.polynomial import Polynomial
from repro.kinetics.render import (
    render_function,
    render_intervals,
    render_timeline,
)


def sample_pw():
    return PiecewiseFunction([
        Piece(0.0, 2.0, Polynomial([0.0, 1.0]), "a"),   # t
        Piece(2.0, 5.0, Polynomial([2.0]), "b"),        # 2
        Piece(7.0, INF, Polynomial([9.0, -1.0]), "c"),  # 9 - t
    ])


class TestRenderFunction:
    def test_contains_marks_and_axis(self):
        text = render_function(sample_pw(), width=40, height=8)
        assert "*" in text
        assert "+" in text and "-" in text
        assert len(text.splitlines()) == 10

    def test_gap_columns_blank(self):
        pw = PiecewiseFunction([
            Piece(0.0, 1.0, Polynomial([1.0]), "a"),
            Piece(9.0, 10.0, Polynomial([1.0]), "b"),
        ])
        text = render_function(pw, width=50, height=5)
        # Middle of the chart (the gap) must be blank in every row.
        rows = [ln.split("|", 1)[1] for ln in text.splitlines() if "|" in ln]
        middle = [r[20:30] for r in rows if len(r) >= 30]
        assert all(set(m) <= {" "} for m in middle)

    def test_empty_function(self):
        assert "nowhere defined" in render_function(PiecewiseFunction.empty())

    def test_constant_function_no_crash(self):
        pw = PiecewiseFunction.total(Polynomial([5.0]), "c")
        text = render_function(pw, width=30, height=5, t_max=10.0)
        assert "*" in text


class TestRenderTimeline:
    def test_labels_in_order_with_legend(self):
        text = render_timeline(sample_pw(), width=60)
        bar = text.splitlines()[0]
        assert bar.startswith("|") and bar.endswith("|")
        assert "0=a" in text and "1=b" in text and "2=c" in text
        # Gap between t=5 and t=7 renders as dots.
        assert "." in bar

    def test_empty(self):
        text = render_timeline(PiecewiseFunction.empty(), width=10)
        assert set(text.splitlines()[0].strip("|")) <= {"."}


class TestRenderIntervals:
    def test_bars(self):
        text = render_intervals([(0.0, 1.0), (3.0, 4.0)], width=40, t_max=5.0)
        bar = text.splitlines()[0].strip("|")
        assert "#" in bar and "." in bar
        assert bar[0] == "#" and bar[-1] == "."

    def test_infinite_interval(self):
        text = render_intervals([(2.0, float("inf"))], width=20, t_max=10.0)
        bar = text.splitlines()[0].strip("|")
        assert bar.endswith("#")

    def test_empty(self):
        assert render_intervals([]) == "(no intervals)"


class TestRealPipelines:
    def test_closest_sequence_timeline(self):
        from repro import closest_point_sequence, random_system
        system = random_system(6, seed=4)
        seq = closest_point_sequence(None, system)
        text = render_timeline(seq, width=64)
        assert "legend:" in text

    def test_membership_intervals_render(self):
        from repro import hull_membership_intervals, random_system
        system = random_system(5, d=2, k=1, seed=7, scale=4.0)
        intervals = hull_membership_intervals(None, system)
        text = render_intervals(intervals, t_max=20.0)
        assert text.startswith("|") or text == "(no intervals)"
