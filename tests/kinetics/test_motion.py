"""Unit tests for repro.kinetics.motion."""

import numpy as np
import pytest

from repro.errors import DegenerateSystemError
from repro.kinetics.motion import (
    Motion,
    PointSystem,
    converging_swarm,
    crossing_traffic,
    divergent_system,
    expanding_swarm,
    random_system,
    static_system,
)
from repro.kinetics.polynomial import Polynomial


class TestMotion:
    def test_linear(self):
        m = Motion.linear([1.0, 2.0], [3.0, -1.0])
        np.testing.assert_allclose(m(0.0), [1.0, 2.0])
        np.testing.assert_allclose(m(2.0), [7.0, 0.0])
        assert m.degree == 1
        assert m.dimension == 2

    def test_stationary(self):
        m = Motion.stationary([4.0, 5.0, 6.0])
        np.testing.assert_allclose(m(99.0), [4.0, 5.0, 6.0])
        assert m.degree == 0

    def test_from_arrays(self):
        m = Motion.from_arrays([[0.0, 0.0, 1.0], [1.0]])  # (t^2, 1)
        np.testing.assert_allclose(m(3.0), [9.0, 1.0])
        assert m.degree == 2

    def test_getitem_returns_coordinate_polynomial(self):
        m = Motion.linear([1.0], [2.0])
        assert isinstance(m[0], Polynomial)
        assert m[0](1.0) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpoly(self):
        with pytest.raises(ValueError):
            Motion([])
        with pytest.raises(TypeError):
            Motion([1.0, 2.0])

    def test_linear_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Motion.linear([0.0], [1.0, 2.0])

    def test_eq_hash(self):
        a = Motion.linear([0.0, 0.0], [1.0, 1.0])
        b = Motion.linear([0.0, 0.0], [1.0, 1.0])
        assert a == b and hash(a) == hash(b)

    def test_distance_squared_degree(self):
        a = Motion.linear([0.0, 0.0], [1.0, 0.0])
        b = Motion.linear([1.0, 1.0], [0.0, 1.0])
        d2 = a.distance_squared(b)
        assert d2.degree <= 2
        for t in (0.0, 0.5, 2.0):
            expected = np.sum((a(t) - b(t)) ** 2)
            assert d2(t) == pytest.approx(expected)

    def test_distance_squared_dim_mismatch(self):
        with pytest.raises(ValueError):
            Motion.stationary([0.0]).distance_squared(Motion.stationary([0.0, 0.0]))


class TestPointSystem:
    def test_validates_distinct_starts(self):
        with pytest.raises(DegenerateSystemError):
            PointSystem([
                Motion.linear([0.0, 0.0], [1.0, 0.0]),
                Motion.linear([0.0, 0.0], [0.0, 1.0]),
            ])

    def test_validates_dimensions(self):
        with pytest.raises(DegenerateSystemError):
            PointSystem([Motion.stationary([0.0]), Motion.stationary([1.0, 1.0])])

    def test_rejects_empty(self):
        with pytest.raises(DegenerateSystemError):
            PointSystem([])

    def test_positions_shape(self):
        sys = random_system(5, d=3, k=2, seed=1)
        assert sys.positions(1.5).shape == (5, 3)
        assert len(sys) == 5
        assert sys.dimension == 3
        assert sys.k <= 2

    def test_distance_squared(self):
        sys = static_system([[0.0, 0.0], [3.0, 4.0]])
        assert sys.distance_squared(0, 1)(0.0) == pytest.approx(25.0)

    def test_horizon_is_finite_positive(self):
        sys = random_system(4, k=2, seed=3)
        assert sys.horizon() > 0


class TestWorkloads:
    def test_random_system_reproducible(self):
        a = random_system(6, seed=42)
        b = random_system(6, seed=42)
        np.testing.assert_allclose(a.positions(1.0), b.positions(1.0))

    def test_crossing_traffic_collisions(self):
        sys = crossing_traffic(6, seed=0)
        # Odd-indexed aircraft meet aircraft 0 at t = their index.
        for i in (1, 3, 5):
            d2 = sys.distance_squared(0, i)
            assert d2(float(i)) == pytest.approx(0.0, abs=1e-9)
        # Even-indexed never collide with 0.
        for i in (2, 4):
            d2 = sys.distance_squared(0, i)
            assert all(d2(t) > 1.0 for t in np.linspace(0, 20, 50))

    def test_crossing_traffic_needs_two(self):
        with pytest.raises(ValueError):
            crossing_traffic(1)

    def test_converging_swarm_shrinks(self):
        sys = converging_swarm(10, seed=7)
        def box_size(t):
            pos = sys.positions(t)
            return float(np.max(pos.max(0) - pos.min(0)))
        assert box_size(8.0) < box_size(0.0)

    def test_expanding_swarm_grows(self):
        sys = expanding_swarm(8, seed=7)
        p0 = sys.positions(0.0)
        p5 = sys.positions(5.0)
        assert np.linalg.norm(p5, axis=1).min() > np.linalg.norm(p0, axis=1).min()

    def test_divergent_system_separates(self):
        sys = divergent_system(5, seed=2)
        t = sys.horizon()
        pos = sys.positions(t)
        d = np.linalg.norm(pos[:, None] - pos[None, :], axis=-1)
        np.fill_diagonal(d, np.inf)
        assert d.min() > 1.0

    def test_static_system(self):
        sys = static_system([[0, 0], [1, 1], [2, 0]])
        assert sys.k == 0
        np.testing.assert_allclose(sys.positions(5.0), sys.positions(0.0))
