"""Tests for the Sturm-sequence root isolation backend."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RootFindingError
from repro.kinetics.polynomial import ZERO, Polynomial
from repro.kinetics.sturm import count_roots, real_roots_sturm, sturm_chain


class TestSturmChain:
    def test_chain_of_quadratic(self):
        p = Polynomial.from_roots([1.0, 3.0])
        chain = sturm_chain(p)
        assert chain[0] == p
        assert chain[1] == p.derivative()
        assert chain[-1].degree == 0

    def test_zero_rejected(self):
        with pytest.raises(RootFindingError):
            sturm_chain(ZERO)


class TestCountRoots:
    def test_counts_simple_roots(self):
        p = Polynomial.from_roots([1.0, 2.0, 5.0])
        assert count_roots(p, 0.0, 10.0) == 3
        assert count_roots(p, 1.5, 10.0) == 2
        assert count_roots(p, 2.5, 4.0) == 0
        assert count_roots(p, 0.0, 2.0) == 2  # half-open: (0, 2] includes 2

    def test_counts_distinct_despite_multiplicity(self):
        p = Polynomial.from_roots([2.0, 2.0, 7.0])
        assert count_roots(p, 0.0, 10.0) == 2  # distinct roots only

    def test_no_real_roots(self):
        assert count_roots(Polynomial([1.0, 0.0, 1.0]), -10.0, 10.0) == 0


class TestRealRootsSturm:
    def test_matches_known_roots(self):
        p = Polynomial.from_roots([0.5, 1.5, 9.0])
        roots = real_roots_sturm(p)
        np.testing.assert_allclose(roots, [0.5, 1.5, 9.0], atol=1e-8)

    def test_double_root_reported_once(self):
        p = Polynomial.from_roots([3.0, 3.0])
        roots = real_roots_sturm(p)
        assert len(roots) == 1
        assert roots[0] == pytest.approx(3.0, abs=1e-6)

    def test_interval_restriction(self):
        p = Polynomial.from_roots([1.0, 5.0, 9.0])
        assert real_roots_sturm(p, 2.0, 8.0) == [pytest.approx(5.0)]

    def test_root_at_interval_start(self):
        p = Polynomial.from_roots([0.0, 4.0])
        roots = real_roots_sturm(p, 0.0, 10.0)
        assert len(roots) == 2
        assert roots[0] == pytest.approx(0.0, abs=1e-8)

    def test_degenerate_inputs(self):
        assert real_roots_sturm(ZERO) == []
        assert real_roots_sturm(Polynomial([5.0])) == []

    @given(st.lists(st.floats(min_value=0.2, max_value=30),
                    min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_cross_validates_companion_backend(self, roots):
        roots = sorted(roots)
        for a, b in zip(roots, roots[1:]):
            if b - a < 1e-2:
                return  # clustered roots: both backends' dedup gets fuzzy
        p = Polynomial.from_roots(roots)
        fast = p.real_roots()
        certified = real_roots_sturm(p)
        assert len(fast) == len(certified) == len(roots)
        np.testing.assert_allclose(certified, fast, atol=1e-6)

    @given(st.lists(st.integers(-8, 8).map(float), min_size=3, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_random_coefficients_agree_with_companion(self, cs):
        p = Polynomial(cs)
        if p.degree < 1:
            return
        fast = p.real_roots(0.0, 50.0)
        certified = real_roots_sturm(p, 0.0, 50.0)
        # Distinct-root counts agree away from tangencies; compare the
        # value sets with tolerance.
        for r in certified:
            assert any(abs(r - f) < 1e-4 * max(1, abs(r)) for f in fast) or \
                abs(p(r)) < 1e-6
        for f in fast:
            assert any(abs(f - r) < 1e-4 * max(1, abs(f)) for r in certified) or \
                abs(p(f)) < 1e-6
