"""Tests for the batched root-isolation engine (repro.kinetics.batch).

The contract under test is strict: batching is a host-side execution
strategy, so every batched result must be *identical* (same floats, same
order) to the per-polynomial computation — not merely close.
"""

import math

import numpy as np
import pytest

from repro.kinetics.batch import batch_real_roots, warm_root_candidates
from repro.kinetics.polynomial import ROOT_EPS, Polynomial


def _fresh_clone(p: Polynomial) -> Polynomial:
    """A copy of ``p`` with an empty root-candidate memo."""
    return Polynomial(np.array(p.coeffs, copy=True))


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4, 5, 6])
    def test_random_families_match_per_pair(self, degree):
        rng = np.random.default_rng(100 + degree)
        polys = [
            Polynomial(rng.normal(size=degree + 1)) for _ in range(40)
        ]
        serial = [_fresh_clone(p).real_roots(0.0, math.inf) for p in polys]
        batched = batch_real_roots(polys, 0.0, math.inf)
        assert batched == serial

    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_bounded_interval_match(self, degree):
        rng = np.random.default_rng(7 * degree)
        polys = [
            Polynomial(rng.normal(size=degree + 1)) for _ in range(25)
        ]
        serial = [_fresh_clone(p).real_roots(-1.5, 2.5) for p in polys]
        assert batch_real_roots(polys, -1.5, 2.5) == serial

    def test_mixed_degrees_one_call(self):
        rng = np.random.default_rng(42)
        polys = []
        for d in (1, 2, 3, 4, 5, 6):
            polys.extend(Polynomial(rng.normal(size=d + 1)) for _ in range(8))
        polys = [polys[i] for i in rng.permutation(len(polys))]
        serial = [_fresh_clone(p).real_roots() for p in polys]
        assert batch_real_roots(polys) == serial

    def test_roots_within_root_eps_of_truth(self):
        # Constructed roots recovered to within ROOT_EPS through the batch.
        roots = [0.5, 1.25, 3.0]
        p = Polynomial.from_roots(roots)
        (got,) = batch_real_roots([p])
        assert len(got) == len(roots)
        for r, expect in zip(got, roots):
            assert abs(r - expect) <= ROOT_EPS * max(1.0, abs(expect))

    def test_degenerate_members(self):
        polys = [
            Polynomial([0.0]),            # identically zero
            Polynomial([2.0]),            # constant, no roots
            Polynomial([1.0, -1.0]),      # linear, root at 1
            Polynomial([0.0, 0.0, 1.0]),  # double root at 0
        ]
        serial = [_fresh_clone(p).real_roots() for p in polys]
        assert batch_real_roots(polys) == serial

    def test_zeros_at_origin_stripping(self):
        # Trailing zero coefficients (roots at the origin) take the
        # np.roots strip-and-append path; the batch must replicate it.
        rng = np.random.default_rng(5)
        polys = []
        for _ in range(10):
            c = rng.normal(size=4)
            c[0] = 0.0  # constant term zero => root at t = 0
            polys.append(Polynomial(c))
        serial = [_fresh_clone(p).real_roots() for p in polys]
        assert batch_real_roots(polys) == serial


class TestWarming:
    def test_warm_installs_candidates(self):
        rng = np.random.default_rng(11)
        polys = [Polynomial(rng.normal(size=4)) for _ in range(6)]
        warm_root_candidates(polys)
        for p in polys:
            assert p._rc is not None
        # Warm results equal the lazily computed ones.
        for p in polys:
            assert p._rc == _fresh_clone(p)._root_candidates()

    def test_warm_skips_low_degree_and_warmed(self):
        lin = Polynomial([1.0, 2.0])
        const = Polynomial([3.0])
        quad = Polynomial([1.0, 0.0, -1.0])
        quad2 = Polynomial([2.0, 0.0, -1.0])
        warm_root_candidates([quad])
        memo = quad._rc
        warm_root_candidates([lin, const, quad, quad2])
        assert quad._rc is memo  # not recomputed
        assert quad2._rc is not None

    def test_batch_roots_staticmethod(self):
        rng = np.random.default_rng(3)
        polys = [Polynomial(rng.normal(size=5)) for _ in range(9)]
        assert Polynomial.batch_roots(polys) == [
            _fresh_clone(p).real_roots() for p in polys
        ]
