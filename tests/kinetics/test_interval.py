"""Tests for interval arithmetic and certified envelope verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import envelope, envelope_serial
from repro.core.family import PolynomialFamily
from repro.kinetics.interval import Interval, certify_envelope, poly_range
from repro.kinetics.piecewise import INF, Piece, PiecewiseFunction
from repro.kinetics.polynomial import Polynomial
from repro.machines import mesh_machine


class TestInterval:
    def test_construction_and_contains(self):
        iv = Interval(1.0, 3.0)
        assert 2.0 in iv and 0.5 not in iv
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_arithmetic_encloses(self):
        a, b = Interval(1.0, 2.0), Interval(-1.0, 3.0)
        s = a + b
        assert s.lo <= 0.0 and s.hi >= 5.0
        d = a - b
        assert d.lo <= -2.0 and d.hi >= 3.0
        m = a * b
        assert m.lo <= -2.0 and m.hi >= 6.0

    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5),
           st.floats(-5, 5), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=80)
    def test_property_mul_encloses_samples(self, a, b, c, d, u, v):
        lo1, hi1 = min(a, b), max(a, b)
        lo2, hi2 = min(c, d), max(c, d)
        x = lo1 + u * (hi1 - lo1)
        y = lo2 + v * (hi2 - lo2)
        prod = Interval(lo1, hi1) * Interval(lo2, hi2)
        assert prod.lo - 1e-9 <= x * y <= prod.hi + 1e-9


class TestPolyRange:
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=4),
           st.floats(0, 10), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=100)
    def test_range_encloses_point_evaluations(self, cs, lo, w, u):
        p = Polynomial(cs)
        hi = lo + w
        t = lo + u * w
        rng = poly_range(p, Interval(lo, hi))
        assert rng.lo - 1e-6 <= p(t) <= rng.hi + 1e-6

    def test_tightness_on_linear(self):
        p = Polynomial([1.0, 2.0])  # 1 + 2t
        rng = poly_range(p, Interval(0.0, 1.0))
        assert rng.lo == pytest.approx(1.0, abs=1e-9)
        assert rng.hi == pytest.approx(3.0, abs=1e-9)


class TestCertifyEnvelope:
    def rand_fns(self, n, k, seed):
        rng = np.random.default_rng(seed)
        return [Polynomial(rng.uniform(-10, 10, k + 1)) for _ in range(n)]

    @pytest.mark.parametrize("n,k", [(4, 1), (8, 1), (6, 2)])
    def test_certifies_true_envelopes(self, n, k):
        fns = self.rand_fns(n, k, seed=n + k)
        env = envelope_serial(fns, PolynomialFamily(k))
        assert certify_envelope(env, fns)

    def test_certifies_machine_envelope(self):
        fns = self.rand_fns(10, 2, seed=9)
        env = envelope(mesh_machine(64), fns, PolynomialFamily(2))
        assert certify_envelope(env, fns)

    def test_certifies_max_envelope(self):
        fns = self.rand_fns(6, 1, seed=1)
        env = envelope_serial(fns, PolynomialFamily(1), op="max")
        assert certify_envelope(env, fns, op="max")

    def test_rejects_wrong_envelope(self):
        f = Polynomial([0.0, 1.0])   # t
        g = Polynomial([2.0])        # 2 (smaller for t > 2)
        bogus = PiecewiseFunction([Piece(0.0, INF, f, 0)])
        assert not certify_envelope(bogus, [f, g])

    def test_rejects_subtle_violation(self):
        """A piece that is correct except on a thin interior window."""
        f = Polynomial([0.0, 1.0])        # t
        dip = Polynomial.from_roots([4.9, 5.1]) * 100.0 + Polynomial([0.0, 1.0])
        # dip < f only within (4.9, 5.1); claiming f is the min is wrong
        # there but right elsewhere — sampling could miss it.
        bogus = PiecewiseFunction([Piece(0.0, INF, f, 0)])
        assert not certify_envelope(bogus, [f, dip], horizon=20.0)

    def test_rejects_bad_op(self):
        env = PiecewiseFunction.total(Polynomial([1.0]), 0)
        with pytest.raises(ValueError):
            certify_envelope(env, [Polynomial([1.0])], op="median")

    def test_rejects_non_polynomial_pieces(self):
        env = PiecewiseFunction.total(lambda t: t, 0)
        with pytest.raises(TypeError):
            certify_envelope(env, [Polynomial([1.0])])

    @given(st.lists(st.lists(st.integers(-20, 20).map(float),
                             min_size=2, max_size=3),
                    min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_property_serial_envelopes_certify(self, rows):
        fns = [Polynomial(r) for r in rows]
        env = envelope_serial(fns, PolynomialFamily(2))
        assert certify_envelope(env, fns, tol=1e-5)
