"""Unit tests for repro.kinetics.polynomial."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kinetics.polynomial import ONE, T, ZERO, Polynomial

coeff = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
small_poly = st.lists(coeff, min_size=1, max_size=5).map(Polynomial)


class TestConstruction:
    def test_trims_trailing_zeros(self):
        p = Polynomial([1.0, 2.0, 0.0, 0.0])
        assert p.degree == 1

    def test_zero_polynomial_has_degree_zero(self):
        assert Polynomial([0.0, 0.0]).degree == 0
        assert Polynomial([0.0]).is_zero()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Polynomial([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Polynomial([float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Polynomial(np.zeros((2, 2)))

    def test_constant_and_identity(self):
        assert Polynomial.constant(3.0)(17.0) == 3.0
        assert Polynomial.identity()(4.5) == 4.5

    def test_from_roots(self):
        p = Polynomial.from_roots([1.0, 2.0], leading=3.0)
        assert p(1.0) == pytest.approx(0.0)
        assert p(2.0) == pytest.approx(0.0)
        assert p.leading == pytest.approx(3.0)

    def test_coeffs_are_read_only(self):
        p = Polynomial([1.0, 2.0])
        with pytest.raises(ValueError):
            p.coeffs[0] = 5.0


class TestEvaluation:
    def test_horner_matches_numpy_polyval(self):
        p = Polynomial([1.0, -2.0, 3.0, 0.5])
        ts = np.linspace(-3, 3, 17)
        expected = np.polyval(p.coeffs[::-1], ts)
        np.testing.assert_allclose(p(ts), expected)

    def test_scalar_returns_float(self):
        assert isinstance(Polynomial([1.0, 1.0])(2.0), float)

    def test_vector_returns_array(self):
        out = Polynomial([1.0, 1.0])(np.array([1.0, 2.0]))
        np.testing.assert_allclose(out, [2.0, 3.0])


class TestArithmetic:
    def test_add_sub(self):
        p = Polynomial([1.0, 2.0])
        q = Polynomial([0.0, 0.0, 3.0])
        assert (p + q).degree == 2
        assert (p + q)(2.0) == pytest.approx(p(2.0) + q(2.0))
        assert (p - q)(2.0) == pytest.approx(p(2.0) - q(2.0))

    def test_scalar_coercion(self):
        p = Polynomial([1.0, 1.0])
        assert (p + 2)(1.0) == pytest.approx(4.0)
        assert (2 + p)(1.0) == pytest.approx(4.0)
        assert (2 - p)(1.0) == pytest.approx(0.0)
        assert (3 * p)(1.0) == pytest.approx(6.0)

    def test_coercion_rejects_strings(self):
        with pytest.raises(TypeError):
            Polynomial([1.0]) + "x"

    def test_mul(self):
        p = Polynomial([1.0, 1.0])  # 1 + t
        q = Polynomial([-1.0, 1.0])  # -1 + t
        r = p * q  # t^2 - 1
        assert r.degree == 2
        assert r(3.0) == pytest.approx(8.0)

    def test_pow(self):
        p = Polynomial([1.0, 1.0])
        assert (p**3)(1.0) == pytest.approx(8.0)
        assert (p**0)(5.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            p ** (-1)

    def test_compose(self):
        p = Polynomial([0.0, 0.0, 1.0])  # t^2
        inner = Polynomial([1.0, 1.0])  # t + 1
        assert p.compose(inner)(2.0) == pytest.approx(9.0)

    def test_derivative(self):
        p = Polynomial([1.0, 2.0, 3.0])  # 1 + 2t + 3t^2
        d = p.derivative()
        assert d(2.0) == pytest.approx(2.0 + 12.0)
        assert ZERO.derivative().is_zero()

    @given(small_poly, small_poly, st.floats(min_value=-3, max_value=3))
    @settings(max_examples=100)
    def test_ring_laws_pointwise(self, p, q, t):
        assert (p + q)(t) == pytest.approx(p(t) + q(t), abs=1e-6, rel=1e-6)
        assert (p * q)(t) == pytest.approx(p(t) * q(t), abs=1e-4, rel=1e-5)
        assert (p - q)(t) == pytest.approx(p(t) - q(t), abs=1e-6, rel=1e-6)


class TestEqualityHash:
    def test_eq_and_hash(self):
        assert Polynomial([1.0, 2.0]) == Polynomial([1.0, 2.0, 0.0])
        assert hash(Polynomial([1.0, 2.0])) == hash(Polynomial([1.0, 2.0, 0.0]))

    def test_neq(self):
        assert Polynomial([1.0]) != Polynomial([2.0])
        assert Polynomial([1.0]).__eq__(42) is NotImplemented


class TestSteadyState:
    def test_sign_at_infinity(self):
        assert Polynomial([5.0, -1.0]).sign_at_infinity() == -1
        assert Polynomial([-5.0, 1.0]).sign_at_infinity() == 1
        assert ZERO.sign_at_infinity() == 0

    def test_steady_compare_matches_large_t(self):
        p = Polynomial([100.0, 1.0])
        q = Polynomial([0.0, 2.0])
        # q overtakes p eventually.
        assert p.steady_compare(q) == -1
        assert q.steady_compare(p) == 1
        assert p.steady_compare(p) == 0

    @given(small_poly, small_poly)
    @settings(max_examples=100)
    def test_steady_compare_consistent_with_horizon_sample(self, p, q):
        c = p.steady_compare(q)
        t = (p - q).horizon() * 4.0 + 1.0
        diff = p(t) - q(t)
        if c == 0:
            assert abs(diff) < 1e-6 * max(1.0, abs(p(t)))
        elif c < 0:
            assert diff < 1e-9 * max(1.0, abs(p(t)), abs(q(t)))
        else:
            assert diff > -1e-9 * max(1.0, abs(p(t)), abs(q(t)))

    def test_horizon_bounds_roots(self):
        p = Polynomial.from_roots([3.0, 17.0, -40.0])
        assert p.horizon() >= 40.0


class TestRoots:
    def test_linear(self):
        assert Polynomial([-4.0, 2.0]).real_roots() == [pytest.approx(2.0)]
        assert Polynomial([4.0, 2.0]).real_roots() == []  # root at -2 < 0

    def test_quadratic_both_roots(self):
        p = Polynomial.from_roots([1.0, 3.0])
        assert p.real_roots() == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_quadratic_no_real_roots(self):
        assert Polynomial([1.0, 0.0, 1.0]).real_roots() == []

    def test_quadratic_double_root(self):
        p = Polynomial.from_roots([2.0, 2.0])
        roots = p.real_roots()
        assert len(roots) == 1
        assert roots[0] == pytest.approx(2.0)

    def test_quadratic_stability_large_spread(self):
        # roots 1e-3 and 1e3: naive formula loses the small root.
        p = Polynomial.from_roots([1e-3, 1e3])
        roots = p.real_roots()
        assert roots[0] == pytest.approx(1e-3, rel=1e-6)
        assert roots[1] == pytest.approx(1e3, rel=1e-6)

    def test_quartic(self):
        p = Polynomial.from_roots([0.5, 1.5, 2.5, 7.0])
        roots = p.real_roots()
        assert len(roots) == 4
        np.testing.assert_allclose(roots, [0.5, 1.5, 2.5, 7.0], rtol=1e-6)

    def test_interval_filter(self):
        p = Polynomial.from_roots([1.0, 5.0, 9.0])
        assert p.real_roots(2.0, 8.0) == [pytest.approx(5.0)]

    def test_degree_zero_and_zero_poly(self):
        assert Polynomial([3.0]).real_roots() == []
        assert ZERO.real_roots() == []

    def test_dedupes_close_roots(self):
        p = Polynomial.from_roots([1.0, 1.0 + 1e-12])
        assert len(p.real_roots()) == 1

    @given(st.lists(st.floats(min_value=0.1, max_value=20), min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_roots_recovered_from_factored_form(self, roots):
        roots = sorted(roots)
        # Separate clustered roots: dedup expectation gets fuzzy otherwise.
        for a, b in zip(roots, roots[1:]):
            if b - a < 1e-3:
                return
        p = Polynomial.from_roots(roots)
        found = p.real_roots()
        assert len(found) == len(roots)
        np.testing.assert_allclose(found, roots, rtol=1e-4, atol=1e-6)

    def test_sign_changes_excludes_touch_points(self):
        # (t-2)^2 touches zero without sign change.
        p = Polynomial.from_roots([2.0, 2.0])
        assert p.sign_changes_on(0.0, 10.0) == []
        q = Polynomial.from_roots([2.0])
        assert q.sign_changes_on(0.0, 10.0) == [pytest.approx(2.0)]


class TestConstants:
    def test_module_constants(self):
        assert ZERO.is_zero()
        assert ONE(123.0) == 1.0
        assert T(7.0) == 7.0
