"""Tests for the ballistic (k = 2) workload generator."""

import numpy as np
import pytest

from repro.core.containment import enclosing_cube_edge_function
from repro.kinetics.motion import projectile_system


class TestProjectileSystem:
    def test_degree_is_two(self):
        system = projectile_system(5, seed=0)
        assert system.k == 2
        assert system.dimension == 2

    def test_reproducible(self):
        a = projectile_system(4, seed=9)
        b = projectile_system(4, seed=9)
        np.testing.assert_allclose(a.positions(2.0), b.positions(2.0))

    def test_launches_from_ground(self):
        system = projectile_system(6, seed=1)
        np.testing.assert_allclose(system.positions(0.0)[:, 1], 0.0)

    def test_ballistic_arc(self):
        """Every projectile rises then falls back through the ground."""
        system = projectile_system(6, seed=2)
        for m in system.motions:
            y = m[1]
            # Upward initial velocity, downward acceleration.
            assert y.coeffs[1] > 0
            assert y.coeffs[2] < 0
            apex_t = -y.coeffs[1] / (2 * y.coeffs[2])
            assert y(apex_t) > 0
            assert y(3 * apex_t) < 0

    def test_gravity_parameter(self):
        weak = projectile_system(3, seed=3, gravity=1.0)
        strong = projectile_system(3, seed=3, gravity=20.0)
        # Same launch, stronger gravity -> lower at the same time.
        assert strong.positions(2.0)[0, 1] < weak.positions(2.0)[0, 1]

    def test_salvo_spread_grows_then_its_envelope_is_exact(self):
        system = projectile_system(5, seed=4)
        D = enclosing_cube_edge_function(None, system)
        for t in np.linspace(0.1, 6.0, 25):
            pos = system.positions(t)
            want = float((pos.max(0) - pos.min(0)).max())
            assert D(t) == pytest.approx(want, rel=1e-6, abs=1e-6)
