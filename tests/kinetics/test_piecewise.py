"""Unit tests for repro.kinetics.piecewise."""

import math

import pytest

from repro.kinetics.piecewise import INF, Piece, PiecewiseFunction
from repro.kinetics.polynomial import Polynomial


def const(v):
    return Polynomial.constant(v)


class TestPiece:
    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Piece(2.0, 1.0, const(0))

    def test_degenerate(self):
        assert Piece(1.0, 1.0, const(0)).is_degenerate()
        assert not Piece(1.0, 2.0, const(0)).is_degenerate()

    def test_midpoint_finite_and_infinite(self):
        assert Piece(1.0, 3.0, const(0)).midpoint() == 2.0
        assert Piece(5.0, INF, const(0)).midpoint() == 6.0

    def test_call_evaluates_fn(self):
        p = Piece(0.0, 1.0, Polynomial([0.0, 2.0]))
        assert p(0.5) == pytest.approx(1.0)

    def test_overlaps(self):
        a = Piece(0.0, 2.0, const(0))
        b = Piece(1.0, 3.0, const(0))
        c = Piece(2.0, 3.0, const(0))
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching = degenerate intersection

    def test_clipped(self):
        p = Piece(0.0, 10.0, const(1), label="x")
        q = p.clipped(2.0, 4.0)
        assert q.interval == (2.0, 4.0)
        assert q.label == "x"


class TestPiecewiseFunction:
    def make(self):
        return PiecewiseFunction([
            Piece(0.0, 1.0, const(1.0), "a"),
            Piece(1.0, 4.0, const(2.0), "b"),
            Piece(6.0, INF, const(3.0), "c"),
        ])

    def test_validates_ordering(self):
        with pytest.raises(ValueError):
            PiecewiseFunction([
                Piece(0.0, 3.0, const(0)),
                Piece(1.0, 2.0, const(1)),
            ])

    def test_total_and_empty(self):
        f = PiecewiseFunction.total(const(5.0), label="only")
        assert len(f) == 1
        assert f(123.0) == 5.0
        assert len(PiecewiseFunction.empty()) == 0

    def test_evaluation_and_gaps(self):
        f = self.make()
        assert f(0.5) == 1.0
        assert f(2.0) == 2.0
        assert f(100.0) == 3.0
        assert not f.defined_at(5.0)
        with pytest.raises(ValueError):
            f(5.0)

    def test_piece_at_boundaries(self):
        f = self.make()
        assert f.piece_at(0.0).label == "a"
        assert f.piece_at(4.0).label == "b"
        assert f.piece_at(6.0).label == "c"

    def test_labels_in_order(self):
        assert self.make().labels() == ["a", "b", "c"]

    def test_breakpoints(self):
        assert self.make().breakpoints() == [0.0, 1.0, 4.0, 6.0]

    def test_domain_measure(self):
        f = self.make()
        assert f.domain_measure(10.0) == pytest.approx(1.0 + 3.0 + 4.0)

    def test_fused_merges_same_fn(self):
        f = PiecewiseFunction([
            Piece(0.0, 1.0, const(1.0), "a"),
            Piece(1.0, 2.0, const(1.0), "a"),
            Piece(2.0, 3.0, const(2.0), "b"),
        ])
        g = f.fused()
        assert len(g) == 2
        assert g[0].interval == (0.0, 2.0)

    def test_fused_respects_gaps(self):
        f = PiecewiseFunction([
            Piece(0.0, 1.0, const(1.0), "a"),
            Piece(2.0, 3.0, const(1.0), "a"),
        ])
        assert len(f.fused()) == 2

    def test_restricted(self):
        f = self.make()
        g = f.restricted(0.5, 7.0)
        assert len(g) == 3
        assert g[0].interval == (0.5, 1.0)
        assert g[2].interval == (6.0, 7.0)

    def test_restricted_drops_empty(self):
        f = self.make()
        g = f.restricted(4.5, 5.5)  # entirely inside the gap
        assert len(g) == 0

    def test_transition_times(self):
        f = PiecewiseFunction([
            Piece(1.0, 2.0, const(0), "a"),
            Piece(3.0, INF, const(0), "b"),
        ])
        ts = f.transition_times()
        assert ts == [1.0, 2.0, 3.0]

    def test_check_envelope_of_accepts_true_envelope(self):
        f1 = Polynomial([0.0, 1.0])       # t
        f2 = Polynomial([2.0])            # 2
        env = PiecewiseFunction([
            Piece(0.0, 2.0, f1, 0),
            Piece(2.0, INF, f2, 1),
        ])
        assert env.check_envelope_of([f1, f2])

    def test_check_envelope_of_rejects_wrong(self):
        f1 = Polynomial([0.0, 1.0])
        f2 = Polynomial([2.0])
        bad = PiecewiseFunction([Piece(0.0, INF, f1, 0)])
        assert not bad.check_envelope_of([f1, f2])
