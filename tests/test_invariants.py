"""Cross-cutting invariants and failure injection.

Properties that tie several subsystems together: min/max duality,
envelope idempotence, machine-agnosticism, steady-state consistency with
far-future snapshots, and the documented failure modes of malformed input.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DegenerateSystemError,
    Motion,
    PiecewiseFunction,
    PointSystem,
    Polynomial,
    PolynomialFamily,
    collision_times,
    containment_intervals,
    envelope,
    envelope_serial,
    hull_membership_intervals,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    random_system,
    serial_machine,
)
from repro.core.steady import steady_hull, steady_is_extreme_angular
from repro.kinetics.davenport_schinzel import extremal_sequence, is_ds_sequence
from repro.kinetics.motion import divergent_system

FAM1 = PolynomialFamily(1)
FAM2 = PolynomialFamily(2)

coeffs = st.lists(st.integers(-50, 50).map(float), min_size=2, max_size=3)


class TestDuality:
    """max{f_i} = -min{-f_i}: the envelope engine must respect it."""

    @given(st.lists(coeffs, min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_min_max_duality(self, rows):
        fns = [Polynomial(r) for r in rows]
        neg = [Polynomial([-c for c in r]) for r in rows]
        upper = envelope_serial(fns, FAM2, op="max")
        lower_neg = envelope_serial(neg, FAM2, op="min")
        for t in np.linspace(0.05, 20, 23):
            assert upper(t) == pytest.approx(-lower_neg(t), abs=1e-6)


class TestIdempotence:
    @given(st.lists(coeffs, min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_envelope_of_envelope_pieces(self, rows):
        """Feeding the envelope its own pieces back returns it unchanged."""
        fns = [Polynomial(r) for r in rows]
        env = envelope_serial(fns, FAM2)
        again = envelope_serial(
            [PiecewiseFunction([p]) for p in env.pieces], FAM2
        )
        for t in np.linspace(0.05, 30, 31):
            assert again(t) == pytest.approx(env(t), abs=1e-6)


class TestMachineAgnosticism:
    """The four machine models must compute identical answers."""

    @pytest.mark.parametrize("seed", range(3))
    def test_envelope_same_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        fns = [Polynomial(rng.uniform(-10, 10, 3)) for _ in range(9)]
        outputs = []
        for mk in (mesh_machine, hypercube_machine, pram_machine):
            outputs.append(envelope(mk(64), fns, FAM2).labels())
        outputs.append(envelope(serial_machine(), fns, FAM2).labels())
        outputs.append(envelope_serial(fns, FAM2).labels())
        assert all(o == outputs[0] for o in outputs)

    def test_collision_times_same_everywhere(self):
        from repro.kinetics.motion import crossing_traffic
        system = crossing_traffic(8, seed=0)
        want = collision_times(None, system)
        for mk in (mesh_machine, hypercube_machine, pram_machine):
            np.testing.assert_allclose(collision_times(mk(16), system), want,
                                       atol=1e-9)


class TestSteadyConsistency:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_steady_hull_matches_far_future(self, seed):
        system = divergent_system(7, d=2, seed=seed)
        got = sorted(steady_hull(None, system))
        from repro.geometry import convex_hull

        # How far out "far future" is depends on the instance:
        # near-parallel leading directions join or leave the hull late
        # (divergent_system seed 155 joins after 60x the horizon, seed
        # 1414 leaves only after 10000x), so evaluate well past any of
        # that — hull membership at 1e6x matches the steady hull on a
        # full 0..10000 seed sweep.
        t = system.horizon() * 1e6
        want = sorted(convex_hull([tuple(p) for p in system.positions(t)]))
        assert got == want

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_angular_criterion_equals_hull_membership(self, seed):
        system = divergent_system(6, d=2, seed=seed)
        hull = set(steady_hull(None, system))
        for q in range(len(system)):
            assert steady_is_extreme_angular(None, system, q) == (q in hull)


class TestTransientSteadyHandshake:
    """The last piece of a transient solution is the steady answer."""

    @pytest.mark.parametrize("seed", range(3))
    def test_hull_membership_tail_matches_steady(self, seed):
        system = divergent_system(6, d=2, seed=seed + 3)
        intervals = hull_membership_intervals(None, system, query=0)
        eventually_extreme = bool(intervals) and math.isinf(intervals[-1][1])
        assert eventually_extreme == steady_is_extreme_angular(None, system, 0)


class TestDSConstructions:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 33])
    @pytest.mark.parametrize("s", [1, 2])
    def test_extremal_sequences(self, n, s):
        from repro.kinetics import lambda_exact
        seq = extremal_sequence(n, s)
        assert is_ds_sequence(seq, s)
        assert len(seq) == lambda_exact(n, s)

    def test_extremal_rejects_large_s(self):
        with pytest.raises(ValueError):
            extremal_sequence(4, 3)

    def test_extremal_rejects_bad_n(self):
        with pytest.raises(ValueError):
            extremal_sequence(0, 1)


class TestFailureInjection:
    def test_coincident_starts_rejected_everywhere(self):
        with pytest.raises(DegenerateSystemError):
            PointSystem([
                Motion.linear([1.0, 1.0], [0.0, 1.0]),
                Motion.linear([1.0, 1.0], [1.0, 0.0]),
            ])

    def test_empty_envelope_inputs(self):
        assert len(envelope_serial([], FAM1)) == 0
        assert len(envelope(mesh_machine(4), [], FAM1)) == 0

    def test_containment_with_zero_box(self):
        """A zero-size box is legal: the system fits only when coincident
        (never, given distinct trajectories)."""
        system = random_system(4, d=2, k=1, seed=5)
        intervals = containment_intervals(None, system, [0.0, 0.0])
        assert intervals == []

    def test_duplicate_functions_in_envelope(self):
        f = Polynomial([2.0, 1.0])
        env = envelope_serial([f, f, f], FAM1)
        assert len(env) == 1
        for t in (0.0, 3.0):
            assert env(t) == pytest.approx(f(t))

    def test_constant_functions_tie(self):
        """Everywhere-equal distinct-object constants: one winner, fused."""
        env = envelope_serial(
            [Polynomial([5.0]), Polynomial([5.0])], PolynomialFamily(0)
        )
        assert len(env) == 1

    def test_machine_size_one_mesh(self):
        from repro.machines.topology import MeshTopology
        t = MeshTopology(1)
        assert t.diameter == 0.0

    def test_hull_membership_mixed_dims_rejected(self):
        with pytest.raises(DegenerateSystemError):
            hull_membership_intervals(None, random_system(4, d=3, seed=0))
