"""Tests for the serial / PRAM / brute-force baselines."""

import numpy as np
import pytest

from repro.baselines.brute import (
    bounding_box_at,
    closest_pair_at,
    farthest_at,
    farthest_pair_at,
    fits_box_at,
    hull_vertices_at,
    nearest_at,
    sampled_envelope,
)
from repro.baselines.pram import (
    chandran_mount_steps,
    crcw_round_cost,
    pram_envelope,
    simulation_cost,
)
from repro.baselines.serial import (
    serial_closest_sequence,
    serial_envelope,
    serial_envelope_cost,
    serial_work_units,
)
from repro.core.family import PolynomialFamily
from repro.kinetics.motion import random_system, static_system
from repro.kinetics.polynomial import Polynomial
from repro.machines import hypercube_machine, mesh_machine

FAM1 = PolynomialFamily(1)


def rand_lines(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(n)]


class TestSerialBaseline:
    def test_serial_envelope_matches_engine(self):
        fns = rand_lines(12, 3)
        env = serial_envelope(fns, FAM1)
        assert env.check_envelope_of(fns)

    def test_cost_counted_envelope(self):
        fns = rand_lines(16, 1)
        env, cost = serial_envelope_cost(fns, FAM1)
        assert env.check_envelope_of(fns)
        assert cost > 16  # at least linear serial work

    def test_serial_work_grows_superlinearly(self):
        assert serial_work_units(128) > 2 * serial_work_units(32)

    def test_serial_closest_sequence(self):
        system = random_system(6, seed=2)
        env = serial_closest_sequence(system)
        j, d2 = nearest_at(system, 0, 5.0)
        assert env(5.0) == pytest.approx(d2, rel=1e-6)


class TestPramBaseline:
    def test_pram_envelope_correct(self):
        fns = rand_lines(16, 5)
        env, steps = pram_envelope(fns, FAM1)
        assert env.check_envelope_of(fns)
        assert steps > 0

    def test_pram_steps_polylog(self):
        _, s64 = pram_envelope(rand_lines(64, 1), FAM1)
        _, s512 = pram_envelope(rand_lines(512, 1), FAM1)
        # log^2 growth: (9/6)^2 = 2.25; allow generous slack, reject linear.
        assert s512 < 4 * s64

    def test_chandran_mount_model(self):
        assert chandran_mount_steps(1024) == pytest.approx(40.0)
        assert chandran_mount_steps(1) == 4.0

    def test_crcw_cost_mesh_vs_hypercube(self):
        mesh_cost = crcw_round_cost(mesh_machine(256), 256)
        cube_cost = crcw_round_cost(hypercube_machine(256), 256)
        assert mesh_cost > cube_cost > 0

    def test_section6_claim_native_beats_simulation(self):
        """The paper's Section 6 comparison, at n = 1024, on both hosts."""
        from repro.core.envelope import envelope
        n = 1024
        fns = rand_lines(n, 9)
        for mk in (mesh_machine, hypercube_machine):
            native = mk(n)
            envelope(native, fns, FAM1)
            sim_host = mk(n)
            sim = simulation_cost(sim_host, n)
            assert native.metrics.time < sim, mk.__name__


class TestBruteOracles:
    def test_sampled_envelope(self):
        fns = [Polynomial([0.0, 1.0]), Polynomial([2.0])]
        ts = np.array([0.0, 1.0, 3.0])
        np.testing.assert_allclose(sampled_envelope(fns, ts), [0, 1, 2])

    def test_pair_oracles_agree(self):
        system = random_system(9, seed=7)
        i, j, d2 = closest_pair_at(system, 2.0)
        assert i < j
        fi, fj, fd2 = farthest_pair_at(system, 2.0)
        assert fd2 >= d2

    def test_nearest_farthest(self):
        system = static_system([[0, 0], [1, 0], [10, 0]])
        assert nearest_at(system, 0, 0.0)[0] == 1
        assert farthest_at(system, 0, 0.0)[0] == 2

    def test_box_oracles(self):
        system = static_system([[0, 0], [2, 3]])
        np.testing.assert_allclose(bounding_box_at(system, 1.0), [2, 3])
        assert fits_box_at(system, [2, 3], 1.0)
        assert not fits_box_at(system, [1, 3], 1.0)

    def test_hull_vertices(self):
        system = static_system([[0, 0], [4, 0], [4, 4], [0, 4], [2, 2]])
        assert hull_vertices_at(system, 0.0) == [0, 1, 2, 3]
