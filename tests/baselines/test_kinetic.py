"""Tests for the event-driven kinetic baseline vs the envelope approach."""

import numpy as np
import pytest

from repro.baselines.kinetic import (
    kinetic_closest_pair_sequence,
    kinetic_closest_sequence,
)
from repro.core.neighbors import closest_point_sequence
from repro.core.pairs import closest_pair_sequence
from repro.errors import DegenerateSystemError
from repro.kinetics.motion import Motion, PointSystem, random_system


def fused_labels(env):
    """Envelope labels with consecutive duplicates collapsed (the kinetic
    sweep reports takeovers only)."""
    out = []
    for lab in env.labels():
        if not out or out[-1] != lab:
            out.append(lab)
    return out


class TestKineticVsEnvelope:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2])
    def test_nearest_sequences_agree(self, seed, k):
        system = random_system(7, d=2, k=k, seed=seed * 3 + k)
        env = closest_point_sequence(None, system)
        kin = kinetic_closest_sequence(system)
        assert kin.labels == fused_labels(env)
        # Breakpoints agree too.
        env_times = [p.hi for p in env.pieces[:-1]]
        assert len(kin.times) <= len(env_times)
        for t_kin, t_env in zip(kin.times, env_times):
            assert t_kin == pytest.approx(t_env, abs=1e-5)

    @pytest.mark.parametrize("seed", range(3))
    def test_pair_sequences_agree(self, seed):
        system = random_system(5, d=2, k=1, seed=seed + 40)
        env = closest_pair_sequence(None, system)
        kin = kinetic_closest_pair_sequence(system)
        assert kin.labels == fused_labels(env)

    def test_no_events_for_stable_system(self):
        system = PointSystem([
            Motion.linear([0.0, 0.0], [0.0, 0.0]),
            Motion.linear([1.0, 0.0], [0.0, 0.0]),
            Motion.linear([9.0, 0.0], [0.0, 0.0]),
        ])
        kin = kinetic_closest_sequence(system)
        assert kin.labels == [1]
        assert kin.events == 0

    def test_event_and_work_accounting(self):
        system = random_system(8, d=2, k=1, seed=5)
        kin = kinetic_closest_sequence(system)
        assert kin.events == len(kin.labels) - 1
        # Theta(n) solves per interval.
        assert kin.root_solves >= (len(system) - 2) * len(kin.labels)

    def test_rejects_single_point(self):
        with pytest.raises(DegenerateSystemError):
            kinetic_closest_sequence(
                PointSystem([Motion.stationary([0.0, 0.0])])
            )

    def test_work_comparison_grows_with_events(self):
        """The online sweep re-solves everything per event; the offline
        envelope shares work across events — its advantage grows with the
        number of pieces."""
        lively = random_system(12, d=2, k=2, seed=8, scale=8.0)
        kin = kinetic_closest_pair_sequence(lively)
        pairs = len(lively) * (len(lively) - 1) // 2
        assert kin.root_solves >= pairs  # at least one full certificate pass
