"""Golden-number regression tests for the cost model.

The simulators are fully deterministic, so the *exact* simulated time of a
fixed operation on a fixed input is a stable contract.  These tests pin
those numbers: any change to the cost model (even a constant factor) shows
up here immediately, separating intentional model changes from accidents.

When a model change is intentional, update the golden numbers and the
affected rows of EXPERIMENTS.md together.
"""

import numpy as np
import pytest

from repro.machines import (
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    pram_machine,
)
from repro.ops import (
    bitonic_merge,
    bitonic_sort,
    broadcast,
    parallel_prefix,
    semigroup,
)
from repro.verify.diffs import scalar_diff


def fixed_data(n):
    return np.random.default_rng(123).uniform(size=n)


class TestGoldenOpCosts:
    """Exact comm_time of the Table 1 operations at n = 256."""

    N = 256

    def _run(self, mk, op):
        m = mk(self.N)
        data = fixed_data(self.N)
        if op == "sort":
            bitonic_sort(m, data)
        elif op == "merge":
            arranged = np.concatenate(
                [np.sort(data[: self.N // 2]), np.sort(data[self.N // 2:])]
            )
            bitonic_merge(m, arranged)
        elif op == "prefix":
            parallel_prefix(m, data, np.add)
        elif op == "semigroup":
            semigroup(m, data, np.minimum)
        elif op == "broadcast":
            marked = np.zeros(self.N, dtype=bool)
            marked[0] = True
            broadcast(m, data, marked)
        return m.metrics.comm_time

    # Mesh (shuffled-row-major): per-bit distances 1,1,2,2,4,4,8,8 sum 30.
    @pytest.mark.parametrize("op,want", [
        ("semigroup", 30.0),       # one doubling sweep
        ("prefix", 30.0),          # one doubling sweep
        ("broadcast", 60.0),       # forward + backward fill
        ("merge", 38.0),           # long shift (8) + one merge stage (30)
        ("sort", 89.0),            # Thompson-Kung geometric stage total
    ])
    def test_mesh_costs(self, op, want):
        got = self._run(mesh_machine, op)
        assert got == want, scalar_diff(
            {"op": op, "machine": "mesh"}, want, got
        )

    # Hypercube: unit distance per bit; log n = 8.
    @pytest.mark.parametrize("op,want", [
        ("semigroup", 8.0),
        ("prefix", 8.0),
        ("broadcast", 16.0),
        ("merge", 9.0),            # reversal (1) + 8 stages
        ("sort", 36.0),            # 8 * 9 / 2
    ])
    def test_hypercube_costs(self, op, want):
        got = self._run(hypercube_machine, op)
        assert got == want, scalar_diff(
            {"op": op, "machine": "hypercube"}, want, got
        )

    def test_ccc_is_exactly_3x_cube(self):
        assert self._run(ccc_machine, "sort") == 3 * self._run(
            hypercube_machine, "sort"
        )

    def test_pram_unit_rounds(self):
        got = self._run(pram_machine, "semigroup")  # rounds at cost 1
        assert got == 8.0, scalar_diff(
            {"op": "semigroup", "machine": "pram"}, 8.0, got
        )


class TestGoldenDiameters:
    def test_values(self):
        assert mesh_machine(1024).topology.diameter == 62.0
        assert hypercube_machine(1024).topology.diameter == 10.0
        assert ccc_machine(1024).topology.diameter == 25.0


class TestGoldenEnvelopeCost:
    def test_mesh_envelope_pinned(self):
        """End-to-end envelope cost on a fixed workload is deterministic."""
        from repro import PolynomialFamily, Polynomial, envelope
        rng = np.random.default_rng(77)
        fns = [Polynomial(rng.uniform(-10, 10, 2)) for _ in range(64)]
        m1 = mesh_machine(256)
        m2 = mesh_machine(256)
        envelope(m1, fns, PolynomialFamily(1))
        envelope(m2, fns, PolynomialFamily(1))
        assert m1.metrics.time == m2.metrics.time
        assert m1.metrics.time > 0
