"""Tests for the Theta-conformance engine and its golden file."""

import json

import pytest

from repro.verify.scaling import (
    DEFAULT_GOLDEN_PATH,
    SCALING_TARGETS,
    check_scaling,
    fit_scaling,
    update_golden,
)

pytestmark = pytest.mark.verify

# The cheapest target: collision is pure root-finding over n curves.
_CHEAP = ["collision"]


class TestFit:
    def test_fit_is_deterministic(self):
        a = fit_scaling(_CHEAP)
        b = fit_scaling(_CHEAP)
        assert a == b

    def test_fit_reports_expected_fields(self):
        fit = fit_scaling(_CHEAP)["collision"]
        assert set(fit) >= {"sizes", "mesh_times", "hypercube_times",
                            "mesh_exponent", "hypercube_exponent",
                            "crossover_n", "claim"}
        # Theta(sqrt) mesh behaviour: exponent near 1/2 in lambda.
        assert 0.3 < fit["mesh_exponent"] < 0.8

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            fit_scaling(["nope"])


class TestGoldenFile:
    def test_committed_golden_matches_measurement(self):
        """The checked-in golden tracks the current cost model exactly."""
        assert DEFAULT_GOLDEN_PATH.exists()
        ok, rows, rendered = check_scaling(targets=_CHEAP)
        assert ok, rendered

    def test_committed_golden_covers_all_targets(self):
        doc = json.loads(DEFAULT_GOLDEN_PATH.read_text())
        assert set(doc["targets"]) == set(SCALING_TARGETS)
        assert set(doc["bands"]) == {"mesh_exponent", "hypercube_exponent",
                                     "crossover_n"}

    def test_drift_detected_and_rendered(self, tmp_path):
        path = tmp_path / "golden.json"
        update_golden(path, _CHEAP)
        doc = json.loads(path.read_text())
        doc["targets"]["collision"]["mesh_exponent"] += 1.0
        doc["targets"]["collision"]["crossover_n"] = 999
        path.write_text(json.dumps(doc))
        ok, rows, rendered = check_scaling(path, _CHEAP)
        assert not ok
        fields = {r["context"]["field"] for r in rows}
        assert fields == {"mesh_exponent", "crossover_n"}
        assert "target=collision" in rendered
        assert "expected" in rendered

    def test_missing_golden_raises_with_instructions(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--update-golden"):
            check_scaling(tmp_path / "absent.json", _CHEAP)

    def test_update_preserves_other_targets(self, tmp_path):
        path = tmp_path / "golden.json"
        update_golden(path, _CHEAP)
        doc = json.loads(path.read_text())
        doc["targets"]["sentinel"] = {"mesh_exponent": 1.0}
        path.write_text(json.dumps(doc))
        update_golden(path, _CHEAP)
        doc = json.loads(path.read_text())
        assert "sentinel" in doc["targets"]
        assert "collision" in doc["targets"]
