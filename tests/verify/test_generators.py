"""Unit tests for the adversarial instance generators."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.kinetics.motion import PointSystem
from repro.verify.generators import (
    CURVE_KINDS,
    SYSTEM_KINDS,
    SYSTEM_SIZE_FLOORS,
    curve_lists,
    curves_from_json,
    curves_to_json,
    make_curves,
    make_system,
    planar_systems,
    system_from_json,
    system_to_json,
)


def _coeffs(fns):
    return [list(map(float, f._cl)) for f in fns]


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(CURVE_KINDS))
    def test_curves_are_pure_functions_of_seed(self, kind):
        a = make_curves(kind, seed=5, n=7, s=2)
        b = make_curves(kind, seed=5, n=7, s=2)
        assert _coeffs(a) == _coeffs(b)
        assert len(a) == 7

    @pytest.mark.parametrize("kind", sorted(SYSTEM_KINDS))
    def test_systems_are_pure_functions_of_seed(self, kind):
        a = make_system(kind, seed=3, n=6, k=1)
        b = make_system(kind, seed=3, n=6, k=1)
        assert system_to_json(a) == system_to_json(b)

    def test_unknown_kinds_rejected(self):
        with pytest.raises(KeyError):
            make_curves("nope", seed=0)
        with pytest.raises(KeyError):
            make_system("nope", seed=0)


class TestFamilyShapes:
    def test_tie_family_shares_a_common_point(self):
        fns = make_curves("tie", seed=11, n=6, s=2)
        # All curves pass through one common (t0, y0); find it from the
        # first pair's crossings and check every other curve hits it.
        from repro.core.family import PolynomialFamily
        crossings = PolynomialFamily(2).crossings(fns[0], fns[1], 0.0, 10.0)
        assert crossings
        hit = [t for t in crossings
               if all(abs(f(t) - fns[0](t)) < 1e-9 for f in fns)]
        assert hit, "no common tie point found"

    def test_duplicate_family_contains_exact_duplicates(self):
        fns = make_curves("duplicate", seed=2, n=8, s=2)
        keys = [tuple(c) for c in _coeffs(fns)]
        assert len(set(keys)) < len(keys)

    def test_tangent_family_touches_without_crossing(self):
        fns = make_curves("tangent", seed=4, n=2, s=2)
        f, g = fns
        diff = g - f  # c (t - a)^2: nonnegative, double root at a
        roots = diff.real_roots(0.0, 50.0)
        assert roots, "tangency root missing"
        for t in np.linspace(0.0, 20.0, 81):
            assert diff(t) >= -1e-9

    def test_degree_boundary_family_drops_leading_terms(self):
        fns = make_curves("degree_boundary", seed=9, n=12, s=3)
        assert min(f.degree for f in fns) < 3

    def test_grazing_system_has_exact_meetings(self):
        system = make_system("grazing", seed=1, n=5)
        d2 = system.distance_squared(0, 1)
        assert d2(1.5) < 1e-12  # point 1 is aimed to meet point 0 at t=1.5
        for t in np.linspace(0.0, 20.0, 201):
            assert d2(t) >= -1e-12  # a graze, not a crossing

    def test_symmetric_system_has_tied_distance_curves(self):
        system = make_system("symmetric", seed=6, n=7)
        # Mirror pairs (2i+1, 2i+2) are equidistant from point 0 for all t.
        a = system.distance_squared(0, 1)
        b = system.distance_squared(0, 2)
        for t in np.linspace(0.0, 10.0, 21):
            assert a(t) == pytest.approx(b(t), abs=1e-9)

    @pytest.mark.parametrize("kind", sorted(SYSTEM_KINDS))
    def test_systems_are_valid_and_planar(self, kind):
        system = make_system(kind, seed=8, n=6, k=1)
        assert isinstance(system, PointSystem)
        assert all(len(m.coords) == 2 for m in system)
        starts = [tuple(float(c(0.0)) for c in m.coords) for m in system]
        assert len(set(starts)) == len(starts)


class TestSizeContract:
    """Exact instance sizes, degenerate requests, and campaign-scale n."""

    @pytest.mark.parametrize("kind", sorted(CURVE_KINDS))
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64])
    def test_curve_families_return_exactly_n(self, kind, n):
        assert len(make_curves(kind, seed=13, n=n, s=2)) == n

    @pytest.mark.parametrize("kind", sorted(SYSTEM_KINDS))
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64])
    def test_system_families_return_floored_n(self, kind, n):
        system = make_system(kind, seed=13, n=n, k=1)
        assert len(system) == max(n, SYSTEM_SIZE_FLOORS[kind])

    def test_floors_cover_every_family(self):
        assert set(SYSTEM_SIZE_FLOORS) == set(SYSTEM_KINDS)

    @pytest.mark.parametrize("bad", [0, -4])
    def test_degenerate_sizes_rejected(self, bad):
        with pytest.raises(ValueError, match="n must be"):
            make_curves("random", seed=0, n=bad)
        with pytest.raises(ValueError, match="n must be"):
            make_system("random", seed=0, n=bad)

    @pytest.mark.parametrize("bad", [2.0, "8", None, True])
    def test_non_integer_sizes_rejected(self, bad):
        with pytest.raises(TypeError, match="n must be an integer"):
            make_curves("random", seed=0, n=bad)
        with pytest.raises(TypeError, match="n must be an integer"):
            make_system("random", seed=0, n=bad)

    def test_numpy_integer_sizes_accepted(self):
        # Campaign sweeps produce np.int64 sizes; they must pass through.
        assert len(make_curves("random", seed=0, n=np.int64(5), s=2)) == 5
        assert len(make_system("parallel", seed=0, n=np.int64(5))) == 5

    def test_degree_and_motion_bounds_validated(self):
        with pytest.raises(ValueError, match="s must be"):
            make_curves("random", seed=0, n=4, s=-1)
        with pytest.raises(ValueError, match="k must be"):
            make_system("random", seed=0, n=4, k=-1)

    @pytest.mark.parametrize("kind", ["random", "grazing", "parallel"])
    def test_campaign_scale_systems_stay_finite(self, kind):
        # 2^17 points: the builders' n-dependent terms (lane offsets,
        # mirror nudges, per-point speeds) grow at most linearly, so
        # coordinates must stay finite and starts distinct at scale.
        n = 1 << 17
        system = make_system(kind, seed=1, n=n, k=1)
        assert len(system) == n
        starts = np.array([[float(c(0.0)) for c in m.coords]
                           for m in system])
        assert np.isfinite(starts).all()
        assert len({tuple(row) for row in starts.tolist()}) == n

    def test_campaign_scale_curves_stay_finite(self):
        n = 1 << 17
        fns = make_curves("random", seed=1, n=n, s=2)
        assert len(fns) == n
        coeffs = np.concatenate([np.asarray(f._cl, dtype=float)
                                 for f in fns])
        assert np.isfinite(coeffs).all()


class TestJsonRoundTrip:
    def test_curves(self):
        fns = make_curves("random", seed=1, n=5, s=3)
        assert _coeffs(curves_from_json(curves_to_json(fns))) == _coeffs(fns)

    def test_system(self):
        system = make_system("mixed_degree", seed=2, n=5, k=2)
        again = system_from_json(system_to_json(system))
        assert system_to_json(again) == system_to_json(system)

    def test_type_tags_checked(self):
        with pytest.raises(ValueError):
            curves_from_json({"type": "system", "motions": []})
        with pytest.raises(ValueError):
            system_from_json({"type": "curves", "coeffs": []})


class TestHypothesisStrategies:
    @given(curve_lists(s=2, min_size=2, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_curve_lists_yield_polynomials(self, fns):
        assert 2 <= len(fns) <= 8  # seeded families may use their own n
        assert all(f.degree <= 2 for f in fns)

    @given(planar_systems(min_size=3, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_planar_systems_yield_valid_systems(self, system):
        assert isinstance(system, PointSystem)
        assert len(system) >= 2
