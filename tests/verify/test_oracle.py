"""Tests for the differential oracle (tier-1 slice + gated fuzz campaign).

Tier-1 runs a thin deterministic slice — a few seeds of the cheap
algorithms — to keep the suite fast; the full 50-instance-per-algorithm
campaign (the acceptance bar) runs via ``python -m repro.verify`` or
``REPRO_FUZZ=1 pytest -m fuzz``.
"""

import json
import os

import pytest

from repro.verify.compare import outputs_match
from repro.verify.oracle import (
    ALGORITHMS,
    campaign,
    replay,
    run_instance,
    save_failure,
)

pytestmark = pytest.mark.verify

# Cheap representatives of each output shape: piecewise function, array,
# interval list, scalar tuple, index, polynomial coefficients.
_TIER1_ALGOS = ("envelope", "collision", "containment", "steady_nearest",
                "steady_diameter")


class TestRunInstance:
    @pytest.mark.parametrize("name", _TIER1_ALGOS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_backends_agree(self, name, seed):
        report = run_instance(name, seed)
        assert report.ok, [
            (d.backend, d.fast_combine, d.mismatches)
            for d in report.divergences
        ]

    def test_registry_covers_every_family(self):
        # Envelope, transient (Section 4) and steady-state (Section 5).
        assert {"envelope", "hull_membership", "closest_point",
                "closest_pair", "collision", "containment",
                "steady_hull", "steady_closest_pair"} <= set(ALGORITHMS)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            run_instance("nope", 0)


class TestCorpusRoundTrip:
    def test_save_and_replay(self, tmp_path):
        # Serialize a (healthy) instance the way a divergence would be,
        # then replay it from coefficients alone: same verdict, no RNG.
        report = run_instance("collision", 1)
        from repro.verify.oracle import _serialize_instance
        report.instance_json = _serialize_instance(
            ALGORITHMS["collision"].build(1)
        )
        path = save_failure(report, tmp_path)
        record = json.loads(open(path).read())
        assert record["algorithm"] == "collision"
        assert record["instance"]["type"] == "system"
        replayed = replay(path)
        assert replayed.ok == report.ok
        assert replayed.seed == report.seed

    def test_campaign_counts_and_summary(self, tmp_path):
        result = campaign(algorithms=["steady_nearest"], instances=3,
                          corpus_dir=tmp_path)
        assert len(result.reports) == 3
        assert result.ok and not result.failures
        assert result.summary() == {
            "steady_nearest": {"instances": 3, "failed": 0}
        }


class TestComparatorSensitivity:
    """The oracle must actually be able to see a divergence."""

    def test_interval_shift_detected(self):
        assert outputs_match([(0.0, 1.0)], [(0.0, 1.5)])
        assert not outputs_match([(0.0, 1.0)], [(0.0, 1.0 + 1e-9)])

    def test_abutting_intervals_merge(self):
        assert not outputs_match([(0.0, 1.0), (1.0, 2.0)], [(0.0, 2.0)])

    def test_scalar_tolerance(self):
        assert not outputs_match(1.0, 1.0 + 1e-9)
        assert outputs_match(1.0, 1.01)


@pytest.mark.fuzz
@pytest.mark.skipif(not os.environ.get("REPRO_FUZZ"),
                    reason="full fuzz campaign; set REPRO_FUZZ=1 "
                           "(or run python -m repro.verify)")
def test_full_campaign_green(tmp_path):
    result = campaign(instances=50, corpus_dir=tmp_path)
    assert result.ok, result.summary()
