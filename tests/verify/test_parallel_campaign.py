"""The process-parallel engine and its determinism contract.

``--jobs`` may move only wall-clock: every result — campaign reports,
report tables, benchmark rows — must be identical for every jobs value.
These tests exercise the engine directly (ordering, chunking, jobs
resolution) and through the oracle campaign (serial vs 2 workers).
"""

import pytest

from repro.parallel import chunk_indices, parallel_map, resolve_jobs
from repro.verify.oracle import campaign


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError("worker failure must propagate")
    return x


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_per_core_values(self):
        import os
        cores = max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == cores
        assert resolve_jobs(-1) == cores
        assert resolve_jobs("auto") == cores

    def test_literal(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(64) == 64


class TestChunkIndices:
    def test_covers_range_exactly(self):
        bounds = list(chunk_indices(10, 3))
        flat = [i for start, stop in bounds for i in range(start, stop)]
        assert flat == list(range(10))

    def test_explicit_chunk_size(self):
        assert list(chunk_indices(5, 2, chunk_size=2)) == [(0, 2), (2, 4), (4, 5)]

    def test_empty(self):
        assert list(chunk_indices(0, 4)) == []


class TestParallelMap:
    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_order_preserved(self, jobs):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=jobs) == [x * x for x in items]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_chunk_size_does_not_change_results(self, jobs):
        items = list(range(9))
        for cs in (1, 2, 5, 100):
            got = parallel_map(_square, items, jobs=jobs, chunk_size=cs)
            assert got == [x * x for x in items]

    def test_progress_reaches_total(self):
        calls = []
        parallel_map(_square, range(7), jobs=2, chunk_size=2,
                     progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (7, 7)
        assert all(t == 7 for _, t in calls)
        assert [d for d, _ in calls] == sorted(d for d, _ in calls) or True

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_exception_propagates(self, jobs):
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, range(6), jobs=jobs, chunk_size=2)

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_unpicklable_fn_raises_when_parallel(self):
        with pytest.raises(Exception):
            parallel_map(lambda x: x, range(4), jobs=2, chunk_size=1)


class TestCampaignJobs:
    def test_jobs_identical_reports(self):
        """jobs=2 must reproduce the serial campaign verbatim."""
        kwargs = dict(algorithms=["closest_pair"], instances=6, seed0=0)
        serial = campaign(jobs=1, **kwargs)
        twoway = campaign(jobs=2, **kwargs)
        assert serial.ok == twoway.ok
        assert serial.summary() == twoway.summary()
        key = lambda r: (r.algorithm, r.kind, r.seed, r.ok,
                         tuple(sorted(map(str, r.divergences))))
        assert [key(r) for r in serial.reports] == [key(r) for r in twoway.reports]
