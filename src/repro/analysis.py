"""Measurement helpers for the benchmark harness.

The paper reports Theta-bounds, not wall-clock numbers; reproducing its
tables therefore means measuring *simulated parallel time* across problem
sizes and checking the growth exponent/shape.  This module provides the
log-log fitting and table-rendering utilities every bench uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["power_fit", "polylog_fit", "ScalingFit", "render_table",
           "geometric_sizes"]


@dataclass(frozen=True)
class ScalingFit:
    """Result of fitting ``time ~ c * n^exponent`` on a log-log scale."""

    exponent: float
    coefficient: float
    r_squared: float

    def describe(self) -> str:
        return f"n^{self.exponent:.2f} (R^2={self.r_squared:.3f})"


def power_fit(sizes: Sequence[float], times: Sequence[float]) -> ScalingFit:
    """Least-squares fit of ``log time = a log n + b``."""
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(times, dtype=float))
    if len(x) < 2:
        raise ValueError("need at least two sizes to fit a scaling law")
    a, b = np.polyfit(x, y, 1)
    pred = a * x + b
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(exponent=float(a), coefficient=float(math.exp(b)),
                      r_squared=r2)


def polylog_fit(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Fit ``time ~ c * (log2 n)^p`` and return the exponent ``p``.

    Distinguishes the hypercube's ``log^2 n`` rows from ``log n`` rows.
    """
    x = np.log(np.log2(np.asarray(sizes, dtype=float)))
    y = np.log(np.asarray(times, dtype=float))
    p, _ = np.polyfit(x, y, 1)
    return float(p)


def geometric_sizes(lo: int, hi: int, factor: int = 4) -> list[int]:
    """Power-of-``factor`` sizes from ``lo`` to ``hi`` inclusive."""
    out = []
    n = lo
    while n <= hi:
        out.append(n)
        n *= factor
    return out


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], *, out: Callable[[str], None] = print) -> None:
    """Print an aligned ASCII table (the benches' reporting format)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    line = "-+-".join("-" * w for w in widths)
    out(f"\n=== {title} ===")
    out(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out(line)
    for row in cells[1:]:
        out(" | ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0 or 1e-3 <= abs(c) < 1e6:
            return f"{c:.2f}"
        return f"{c:.2e}"
    return str(c)
