"""Structured tracing and telemetry for the simulated machines.

The observability layer of the reproduction (``docs/observability.md``):

* :mod:`repro.trace.tracer` — nested spans capturing simulated-charge
  deltas *and* host wall-clock; a single ``None`` check when disabled, and
  never a source of simulated charges (traced runs are bit-identical to
  untraced runs).
* :mod:`repro.trace.registry` — the process-wide
  :class:`~repro.trace.registry.MetricsRegistry` unifying every host-side
  counter (crossing cache, movement plans, charge memos, campaign
  bookkeeping) behind one snapshot API.
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``), plain-text span trees, JSONL event streams.
* :mod:`repro.trace.provenance` — run manifests (git SHA, seed, host,
  package versions) attached to benchmark entries and campaign outputs.

CLI: ``python -m repro.trace summarize TRACE.json`` renders the span tree
and top-k tables for any trace written by the ``--trace PATH`` flags on
``python -m repro.verify``, ``python -m repro.report`` and
``benchmarks/bench_wallclock.py``.
"""

from .export import (
    chrome_trace_document,
    flatten_spans,
    load_trace_spans,
    render_span_tree,
    write_chrome_trace,
    write_jsonl,
)
from .provenance import git_revision, provenance_manifest
from .registry import (
    REGISTRY,
    Counter,
    MetricsRegistry,
    get_counter,
    register_gauge,
    registry_snapshot,
    reset_counters,
)
from .tracer import (
    Span,
    Tracer,
    current_tracer,
    install,
    trace_span,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "Span", "Tracer", "current_tracer", "install", "uninstall",
    "trace_span", "tracing_enabled",
    "Counter", "MetricsRegistry", "REGISTRY", "get_counter",
    "register_gauge", "registry_snapshot", "reset_counters",
    "chrome_trace_document", "write_chrome_trace", "write_jsonl",
    "render_span_tree", "load_trace_spans", "flatten_spans",
    "git_revision", "provenance_manifest",
]
