"""Span-based tracing for the simulated machines.

A :class:`Tracer` records a tree of *spans*.  Each span captures two
independent clocks:

* **simulated charges** — deltas of the attached
  :class:`~repro.machines.metrics.Metrics` accumulator (``time``,
  ``comm_time``, ``rounds``, ``comm_rounds``, ``local_rounds``) between
  span entry and exit.  Tracing only *reads* the accumulator; it never
  charges anything, so traced runs are bit-identical in simulated time to
  untraced runs (asserted by ``tests/trace/test_overhead_smoke.py``);
* **host wall-clock** — real seconds spent inside the span
  (``perf_counter`` deltas), the execution cost of the same region.

Spans with no metrics attached (e.g. a campaign instance wrapping several
machines) derive their simulated totals as the sum of their direct
children's, in recording order — which keeps float summation order
deterministic, so campaign-level totals match the independently
accumulated per-report totals *exactly*.

Disabled behaviour
------------------
When no tracer is installed, :func:`trace_span` returns one shared
null context and :meth:`Metrics.phase` performs a single ``None`` check —
bounded, allocation-free overhead.  Installation is explicit
(``with Tracer() as t:`` or :func:`install`); the hook into
``Metrics.phase`` is set lazily so ``repro.machines`` never imports this
package.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter

__all__ = ["Span", "Tracer", "current_tracer", "install", "uninstall",
           "trace_span", "tracing_enabled"]

#: Metrics fields snapshotted at span entry/exit (simulated charges only —
#: never wall-clock or plan counters, which are host-side bookkeeping).
SIM_FIELDS = ("time", "comm_time", "rounds", "comm_rounds", "local_rounds")

#: The installed tracer (process-wide; the simulators are single-threaded).
_ACTIVE: "Tracer | None" = None

#: Shared do-nothing context for the disabled fast path.
_NULL = nullcontext()


class Span:
    """One traced region: simulated-charge deltas plus host wall-clock."""

    __slots__ = ("name", "category", "attrs", "children",
                 "sim", "wall", "_metrics", "_sim0", "_wall0")

    def __init__(self, name: str, category: str, metrics, attrs: dict):
        self.name = name
        self.category = category
        self.attrs = attrs
        self.children: list[Span] = []
        self._metrics = metrics
        self._sim0 = (
            None if metrics is None
            else tuple(getattr(metrics, f) for f in SIM_FIELDS)
        )
        #: Simulated-charge deltas keyed by ``SIM_FIELDS``; filled at close.
        self.sim: dict | None = None
        self.wall: float = 0.0
        self._wall0 = perf_counter()

    def _close(self) -> None:
        self.wall = perf_counter() - self._wall0
        if self._metrics is not None:
            self.sim = {
                f: getattr(self._metrics, f) - s0
                for f, s0 in zip(SIM_FIELDS, self._sim0)
            }
        else:
            # Derive totals from direct children, in recording order, so
            # float summation order is deterministic and reproducible.
            acc = dict.fromkeys(SIM_FIELDS, 0.0)
            any_sim = False
            for child in self.children:
                if child.sim is not None:
                    any_sim = True
                    for f in SIM_FIELDS:
                        acc[f] = acc[f] + child.sim[f]
            self.sim = acc if any_sim else None
        self._metrics = None

    # ------------------------------------------------------------------
    @property
    def sim_time(self) -> float:
        return 0.0 if self.sim is None else self.sim["time"]

    @property
    def comm_time(self) -> float:
        return 0.0 if self.sim is None else self.sim["comm_time"]

    @property
    def comm_fraction(self) -> float:
        t = self.sim_time
        return (self.comm_time / t) if t else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable (and picklable) form; see ``span_from_dict``."""
        return {
            "name": self.name,
            "cat": self.category,
            "attrs": self.attrs,
            "sim": None if self.sim is None else dict(self.sim),
            "wall": self.wall,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, sim_time={self.sim_time:g}, "
                f"wall={self.wall:.6f}, children={len(self.children)})")


def span_from_dict(doc: dict) -> Span:
    """Rebuild a closed :class:`Span` tree from :meth:`Span.to_dict` output.

    Used to merge per-worker campaign traces (serialized dicts cross the
    process boundary) back into one tree, by item index.
    """
    span = Span(doc["name"], doc.get("cat", "span"), None,
                dict(doc.get("attrs") or {}))
    span.sim = None if doc.get("sim") is None else dict(doc["sim"])
    span.wall = float(doc.get("wall") or 0.0)
    span.children = [span_from_dict(c) for c in doc.get("children", ())]
    span._metrics = None
    return span


class Tracer:
    """Collects a forest of nested spans for one run.

    Use as a context manager (installs itself process-wide) or via
    :func:`install`/:func:`uninstall`.  While installed, every
    ``Metrics.phase`` block and every instrumented operation opens a span;
    explicit regions can be traced with :meth:`span`.
    """

    def __init__(self, name: str = "run"):
        self.name = name
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle -------------------------------------------------
    def _open(self, name: str, category: str, metrics, attrs: dict) -> Span:
        span = Span(name, category, metrics, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span nesting violated: closing {span.name!r} "
                f"but {popped.name!r} is innermost"
            )
        span._close()

    @contextmanager
    def span(self, name: str, metrics=None, category: str = "span", **attrs):
        """Record a span around the block; deltas read from ``metrics``."""
        s = self._open(name, category, metrics, attrs)
        try:
            yield s
        finally:
            self._close_span(s)

    # -- Metrics.phase hook protocol ------------------------------------
    def begin_phase(self, label: str, metrics) -> Span:
        return self._open(label, "phase", metrics, {})

    def end_phase(self, span: Span) -> None:
        self._close_span(span)

    # -- installation ---------------------------------------------------
    def __enter__(self) -> "Tracer":
        install(self)
        return self

    def __exit__(self, *exc) -> None:
        uninstall(self)

    # -- results --------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.roots]


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def install(tracer: Tracer) -> None:
    """Install ``tracer`` process-wide and hook ``Metrics.phase``.

    Nested installation is rejected: one tracer owns a run.  The hook is
    set via :func:`repro.machines.metrics.set_trace_hook` (imported lazily
    so the machines layer has no import-time dependency on tracing).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already installed")
    from ..machines import metrics as _metrics

    _ACTIVE = tracer
    _metrics.set_trace_hook(tracer)


def uninstall(tracer: Tracer | None = None) -> None:
    """Remove the installed tracer (idempotent; ``tracer`` must match)."""
    global _ACTIVE
    if tracer is not None and _ACTIVE is not tracer and _ACTIVE is not None:
        raise RuntimeError("uninstalling a tracer that is not installed")
    if _ACTIVE is None:
        return
    from ..machines import metrics as _metrics

    _ACTIVE = None
    _metrics.set_trace_hook(None)


def trace_span(name: str, metrics=None, category: str = "op", **attrs):
    """A span context when tracing is enabled; a shared no-op otherwise.

    The instrumentation entry point for the ops and core layers: cost when
    disabled is one global read and a ``None`` check (the returned null
    context is a single shared instance — no allocation).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL
    return tracer.span(name, metrics, category, **attrs)
