"""Trace exporters: Chrome ``trace_event`` JSON, span-tree text, JSONL.

The Chrome format (loadable in Perfetto / ``chrome://tracing``) maps the
**simulated** clock to the timeline: one simulated time unit renders as one
microsecond, so a mesh run visibly spends its width in ``Θ(√n)`` sweeps.
Host wall-clock rides along as a counter track (cumulative seconds sampled
at each span boundary) rather than a second timeline — the two clocks are
deliberately not comparable.

Exact totals: each event's ``args`` carries the span's raw simulated
deltas (``sim_time``, ``comm_time``, rounds and the comm/local split) and
the document embeds the original span forest under ``"reproSpans"`` plus
per-algorithm totals under ``"reproTotals"``.  Chrome-format consumers
ignore the extra keys; ``python -m repro.trace summarize`` reads them back
losslessly (timeline layout involves clamping — see `_layout` — but the
embedded spans and totals are exact).
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["chrome_trace_document", "write_chrome_trace", "write_jsonl",
           "render_span_tree", "load_trace_spans", "flatten_spans",
           "merged_spans"]

from .tracer import SIM_FIELDS, Span, span_from_dict


def _as_dicts(spans) -> list[dict]:
    return [s.to_dict() if isinstance(s, Span) else s for s in spans]


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def _layout(span: dict, ts: float, events: list, wall_cursor: list,
            pid: int, tid: int) -> float:
    """Emit one complete ("X") event per span, children laid sequentially.

    Returns the duration allotted to ``span`` on the simulated timeline.
    A span whose children's simulated totals exceed its own delta (parallel
    composition absorbs only the slowest sibling) is widened so children
    stay visually contained; the exact per-span delta always lives in
    ``args.sim_time``.
    """
    sim = span.get("sim") or {}
    own = float(sim.get("time", 0.0) or 0.0)
    cursor = ts
    child_events_start = len(events)
    children_total = 0.0
    # Reserve our slot now so parents precede children in the event list.
    event = {
        "name": span["name"],
        "cat": span.get("cat", "span"),
        "ph": "X",
        "ts": ts,
        "dur": 0.0,  # patched below
        "pid": pid,
        "tid": tid,
        "args": {
            **{f: sim.get(f) for f in SIM_FIELDS},
            "sim_time": sim.get("time"),
            "wall_seconds": span.get("wall"),
            **(span.get("attrs") or {}),
        },
    }
    events.append(event)
    del child_events_start  # children append after us; order is DFS
    for child in span.get("children", ()):
        children_total += _layout(child, cursor + children_total, events,
                                  wall_cursor, pid, tid)
    dur = max(own, children_total)
    event["dur"] = dur
    # Wall-clock counter track: cumulative seconds at span completion.
    wall_cursor[0] += float(span.get("wall") or 0.0)
    events.append({
        "name": "wall_time",
        "ph": "C",
        "ts": ts + dur,
        "pid": pid,
        "args": {"cumulative_seconds": round(wall_cursor[0], 9)},
    })
    return dur


def chrome_trace_document(spans, provenance: dict | None = None,
                          totals: dict | None = None,
                          counters: dict | None = None,
                          histograms: dict | None = None) -> dict:
    """Build the Chrome ``trace_event`` JSON object for a span forest.

    ``spans`` may be :class:`~repro.trace.tracer.Span` objects or their
    ``to_dict`` forms.  ``totals`` (e.g. per-algorithm simulated time),
    ``counters`` (a registry snapshot), and ``histograms`` (full
    ``repro.obs`` bucket-array snapshots, keyed by name) are embedded
    verbatim; Chrome-format consumers ignore the extra keys.
    """
    spans = _as_dicts(spans)
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "repro simulated time (1 unit = 1 us)"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "simulated machine"}},
    ]
    wall_cursor = [0.0]
    cursor = 0.0
    for span in spans:
        cursor += _layout(span, cursor, events, wall_cursor, pid=1, tid=1)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"provenance": provenance or {}},
        "reproSpans": spans,
        "reproTotals": totals or {},
        "reproCounters": counters or {},
        "reproHistograms": histograms or {},
    }
    return doc


def write_chrome_trace(path, spans, provenance: dict | None = None,
                       totals: dict | None = None,
                       counters: dict | None = None,
                       histograms: dict | None = None) -> pathlib.Path:
    """Write the Chrome trace JSON for ``spans`` to ``path``."""
    path = pathlib.Path(path)
    doc = chrome_trace_document(spans, provenance, totals, counters,
                                histograms)
    path.write_text(json.dumps(doc, indent=1, default=str) + "\n")
    return path


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------
def _jsonl_events(span: dict, depth: int, path: str):
    sim = span.get("sim") or {}
    yield {
        "event": "span",
        "path": path,
        "name": span["name"],
        "cat": span.get("cat", "span"),
        "depth": depth,
        **{f: sim.get(f) for f in SIM_FIELDS},
        "wall_seconds": span.get("wall"),
        "attrs": span.get("attrs") or {},
    }
    for i, child in enumerate(span.get("children", ())):
        yield from _jsonl_events(child, depth + 1, f"{path}/{i}")


def write_jsonl(path, spans, provenance: dict | None = None) -> pathlib.Path:
    """Write spans as a JSONL event stream (one header + one line per span)."""
    path = pathlib.Path(path)
    spans = _as_dicts(spans)
    with path.open("w") as fh:
        fh.write(json.dumps(
            {"event": "header", "schema": "repro.trace/1",
             "provenance": provenance or {}}, default=str) + "\n")
        for i, span in enumerate(spans):
            for rec in _jsonl_events(span, 0, str(i)):
                fh.write(json.dumps(rec, default=str) + "\n")
    return path


# ----------------------------------------------------------------------
# Plain-text hierarchical span tree (the --verbose renderer)
# ----------------------------------------------------------------------
def _fmt_num(x) -> str:
    if x is None:
        return "-"
    if isinstance(x, float) and not x.is_integer():
        return f"{x:.6g}"
    return f"{int(x)}"


def _tree_lines(span: dict, depth: int, lines: list, max_depth) -> None:
    if max_depth is not None and depth > max_depth:
        return
    sim = span.get("sim") or {}
    t = sim.get("time")
    comm = sim.get("comm_time")
    local = (t - comm) if (t is not None and comm is not None) else None
    frac = (comm / t) if t else None
    wall = span.get("wall")
    lines.append(
        f"{'  ' * depth}{span['name']:<{max(1, 36 - 2 * depth)}s} "
        f"sim={_fmt_num(t):>10s}  comm={_fmt_num(comm):>10s}  "
        f"local={_fmt_num(local):>10s}  "
        f"comm%={f'{frac:.1%}' if frac is not None else '-':>6s}  "
        f"wall={f'{wall:.4f}s' if wall is not None else '-'}"
    )
    for child in span.get("children", ()):
        _tree_lines(child, depth + 1, lines, max_depth)


def render_span_tree(spans, max_depth: int | None = None) -> str:
    """The plain-text hierarchical view: sim/comm/local breakdown per span."""
    spans = _as_dicts(spans)
    lines: list[str] = []
    for span in spans:
        _tree_lines(span, 0, lines, max_depth)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Loading (the summarize side)
# ----------------------------------------------------------------------
def load_trace_spans(path) -> tuple[list[dict], dict]:
    """Load a trace written by this module; returns ``(spans, document)``.

    Accepts the Chrome JSON (reads the lossless ``reproSpans`` embedding)
    and the JSONL stream (rebuilds the forest from ``path`` fields).
    """
    path = pathlib.Path(path)
    text = path.read_text()
    first = text.lstrip()[:1]
    if first == "{" and '"traceEvents"' in text[:4096]:
        doc = json.loads(text)
        return list(doc.get("reproSpans", [])), doc
    if first == "{" and text.lstrip().splitlines()[0].rstrip().endswith("}"):
        # JSONL: one object per line.
        spans_by_path: dict[str, dict] = {}
        header: dict = {}
        roots: list[dict] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            rec = json.loads(line)
            if rec.get("event") == "header":
                header = rec
                continue
            span = {
                "name": rec["name"], "cat": rec.get("cat", "span"),
                "attrs": rec.get("attrs") or {},
                "sim": {f: rec.get(f) for f in SIM_FIELDS}
                if rec.get("time") is not None else None,
                "wall": rec.get("wall_seconds"), "children": [],
            }
            spans_by_path[rec["path"]] = span
            parent = rec["path"].rpartition("/")[0]
            if parent:
                spans_by_path[parent]["children"].append(span)
            else:
                roots.append(span)
        return roots, {"metadata": {"provenance": header.get("provenance", {})}}
    doc = json.loads(text)
    if isinstance(doc, dict) and "spans" in doc:  # golden-trace documents
        return list(doc["spans"]), doc
    raise ValueError(f"unrecognized trace file format: {path}")


def flatten_spans(spans) -> list[dict]:
    """DFS-flatten a span forest (dict form) for top-k tables."""
    out: list[dict] = []

    def visit(span: dict) -> None:
        out.append(span)
        for child in span.get("children", ()):
            visit(child)

    for span in _as_dicts(spans):
        visit(span)
    return out


def merged_spans(dict_forests: list[list[dict]]) -> list[Span]:
    """Rebuild Span trees from per-worker dict forests, in item order."""
    return [span_from_dict(d) for forest in dict_forests for d in forest]
