"""Process-wide metrics registry: one namespace for every host-side counter.

Before this module, host-side execution counters were scattered: crossing
cache hits/misses in ``repro.core.family``, movement-plan stats in
``repro.ops.plans``, charge-memo sizes in ``repro.machines.machine``,
campaign bookkeeping in ``repro.verify``.  Each had its own ad-hoc
``*_stats()`` / ``reset_*()`` pair and its own ``--verbose`` rendering.

The registry unifies them behind two primitives:

* :class:`Counter` — a monotonically increasing cell (ints or float
  accumulators such as compile seconds).  Hot paths hold the cell and do
  ``cell.value += 1``; no dict lookup or lock on the increment path (the
  simulators are single-threaded per process).
* **gauges** — zero-argument callables sampled at snapshot time, for
  values that are views of live state (cache sizes).

A third cell kind rides along for the serving layer: **histograms** —
:class:`repro.obs.hist.Log2Histogram` cells for value *distributions*
(request latency, batch size).  Hot paths hold the cell and call
``cell.observe(v)``; snapshots embed the compact summary (count, sum,
extremes, p50/p99) under the cell's name so the flat dict stays flat.

``snapshot()`` returns every counter and gauge as one flat
``{dotted.name: value}`` dict — the single API trace exporters, the
``--verbose`` cache table, and benchmark provenance all read.

The registry is **process-local** by design: worker processes of a
``--jobs N`` campaign own independent registries, and the campaign engine
merges what it needs (per-item traces, report counts) by item index in the
parent.  Like the plan and charge caches, counters describe how the host
executed a run — never simulated charges.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Counter", "MetricsRegistry", "REGISTRY", "get_counter",
           "get_histogram", "register_gauge", "registry_snapshot",
           "reset_counters"]


class Counter:
    """A named, monotonically increasing counter cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value=0):
        self.name = name
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0 if isinstance(self.value, int) else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value!r})"


class MetricsRegistry:
    """Named counters and gauges with a single snapshot/reset API."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Callable[[], object]] = {}
        self._histograms: dict = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, initial=0) -> Counter:
        """The counter cell for ``name``, creating it on first use.

        Repeated calls return the same cell, so modules can bind it at
        import time and increment without lookups.
        """
        cell = self._counters.get(name)
        if cell is None:
            cell = self._counters[name] = Counter(name, initial)
        return cell

    def gauge(self, name: str, fn: Callable[[], object]) -> None:
        """Register (or replace) a lazily sampled gauge."""
        self._gauges[name] = fn

    def histogram(self, name: str, *, lo: float, hi: float, unit: str = ""):
        """The histogram cell for ``name``, creating it on first use.

        Repeated calls return the same cell; a repeat with a *different*
        declared range is an error (silent range drift would break the
        exact-merge contract of :mod:`repro.obs.hist`).
        """
        # Imported lazily: obs depends on this registry for mirroring,
        # so a module-level import here would be a cycle.
        from ..obs.hist import Log2Histogram

        cell = self._histograms.get(name)
        if cell is None:
            cell = self._histograms[name] = Log2Histogram(
                name, lo=lo, hi=hi, unit=unit)
        elif (cell.lo, cell.hi) != (float(lo), float(hi)):
            raise ValueError(
                f"histogram {name!r} already declared with range "
                f"({cell.lo}, {cell.hi}); refusing ({lo}, {hi})")
        return cell

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every counter value and sampled gauge, as one sorted flat dict."""
        out = {name: cell.value for name, cell in self._counters.items()}
        for name, fn in self._gauges.items():
            try:
                out[name] = fn()
            except Exception:  # pragma: no cover - defensive: a dead gauge
                out[name] = None  # must not break diagnostics
        for name, cell in self._histograms.items():
            out[name] = cell.summary()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every counter and histogram (gauges are read-only views)."""
        for cell in self._counters.values():
            cell.reset()
        for cell in self._histograms.values():
            cell.clear()

    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """The one coherent ``--verbose`` cache/counter table.

        Counters are grouped by their dotted prefix; derived hit rates are
        appended for any group exposing both ``hits`` and ``misses``.
        """
        snap = self.snapshot()
        groups: dict[str, dict[str, object]] = {}
        for name, value in snap.items():
            prefix, _, leaf = name.rpartition(".")
            groups.setdefault(prefix or name, {})[leaf or name] = value
        lines = ["counter/gauge table:"]
        for prefix in sorted(groups):
            fields = groups[prefix]
            hits, misses = fields.get("hits"), fields.get("misses")
            if isinstance(hits, (int, float)) and isinstance(misses, (int, float)):
                total = hits + misses
                fields = dict(fields)
                fields["hit_rate"] = (
                    f"{hits / total:.1%}" if total else "n/a"
                )
            rendered = "  ".join(
                f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(fields.items())
            )
            lines.append(f"  {prefix:24s} {rendered}")
        return "\n".join(lines)


#: The process-wide registry every subsystem shares.
REGISTRY = MetricsRegistry()


def get_counter(name: str, initial=0) -> Counter:
    """Module-level convenience: ``REGISTRY.counter(name)``."""
    return REGISTRY.counter(name, initial)


def get_histogram(name: str, *, lo: float, hi: float, unit: str = ""):
    """Module-level convenience: ``REGISTRY.histogram(name, ...)``."""
    return REGISTRY.histogram(name, lo=lo, hi=hi, unit=unit)


def register_gauge(name: str, fn: Callable[[], object]) -> None:
    """Module-level convenience: ``REGISTRY.gauge(name, fn)``."""
    REGISTRY.gauge(name, fn)


def registry_snapshot() -> dict:
    """Module-level convenience: ``REGISTRY.snapshot()``."""
    return REGISTRY.snapshot()


def reset_counters() -> None:
    """Module-level convenience: ``REGISTRY.reset()``."""
    REGISTRY.reset()
