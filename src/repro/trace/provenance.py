"""Run provenance manifests: reproducible-by-construction results.

Every exported trace, every ``BENCH_wallclock.json`` entry, and every
verify-campaign corpus file carries a manifest answering *exactly which
code, inputs, and host produced this number*: git SHA (and dirty flag),
seed, host identity and core count, and the python/numpy/package versions
the run loaded.  Two manifests that agree on ``git_sha``/``seed``/
``config`` describe runs whose *simulated* results must be bit-identical —
the invariant the verification harness enforces — while wall-clock fields
are expected to move between hosts.
"""

from __future__ import annotations

import os
import pathlib
import platform
import subprocess
import sys
from datetime import datetime, timezone

__all__ = ["provenance_manifest", "git_revision"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def git_revision(root: pathlib.Path | None = None) -> dict:
    """The checked-out revision: ``{"sha": ..., "dirty": ...}``.

    Returns ``{"sha": None, "dirty": None}`` when git (or the repository)
    is unavailable — provenance must never fail a run.
    """
    cwd = str(root or _REPO_ROOT)
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        return {"sha": sha, "dirty": bool(status)}
    except Exception:
        return {"sha": None, "dirty": None}


def provenance_manifest(seed=None, config: dict | None = None) -> dict:
    """The provenance manifest for the current process and ``seed``.

    ``config`` is the caller's run configuration (CLI arguments, workload
    parameters) and is recorded verbatim; it must be JSON-serializable.
    The schema is documented in ``docs/observability.md``.
    """
    import numpy as np

    import repro

    rev = git_revision()
    return {
        "schema": "repro.provenance/1",
        "git_sha": rev["sha"],
        "git_dirty": rev["dirty"],
        "seed": seed,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "node": platform.node(),
            "host_cores": os.cpu_count(),
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro_version": getattr(repro, "__version__", None),
        "argv": list(sys.argv),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "config": dict(config or {}),
    }
