"""``python -m repro.trace`` — inspect and maintain trace artifacts.

Subcommands:

* ``summarize PATH`` — render a trace file (Chrome JSON or JSONL written
  by any ``--trace`` flag): provenance header, the hierarchical span tree
  with per-span simulated/comm/local breakdown, and top-k tables by
  simulated time, wall time, and communication fraction.
* ``update-golden [PATH]`` — re-run the exemplar workload and re-pin the
  structural golden trace (default: ``tests/corpus/golden_trace.json``).
"""

from __future__ import annotations

import argparse
import sys

from .export import flatten_spans, load_trace_spans, render_span_tree
from .golden import DEFAULT_GOLDEN_TRACE_PATH, write_golden_trace


def _top_k(spans: list[dict], key, k: int) -> list[tuple]:
    scored = []
    for span in spans:
        value = key(span)
        if value is not None:
            scored.append((value, span))
    scored.sort(key=lambda pair: -pair[0])
    return scored[:k]


def _sim_time(span: dict):
    sim = span.get("sim") or {}
    return sim.get("time")


def _wall(span: dict):
    return span.get("wall")


def _comm_fraction(span: dict):
    sim = span.get("sim") or {}
    t, comm = sim.get("time"), sim.get("comm_time")
    if not t or comm is None:
        return None
    return comm / t


def _render_top(title: str, rows: list[tuple], fmt) -> None:
    print(f"\ntop spans by {title}:")
    if not rows:
        print("  (none)")
        return
    for value, span in rows:
        print(f"  {fmt(value):>12s}  {span['name']} [{span.get('cat', '?')}]")


def summarize(path: str, k: int = 10, max_depth: int | None = None) -> int:
    spans, doc = load_trace_spans(path)
    prov = (doc.get("metadata") or {}).get("provenance") or {}
    if prov:
        sha = prov.get("git_sha")
        print(f"provenance: git={str(sha)[:12]}"
              f"{'+dirty' if prov.get('git_dirty') else ''} "
              f"seed={prov.get('seed')} python={prov.get('python')} "
              f"numpy={prov.get('numpy')} "
              f"host_cores={(prov.get('host') or {}).get('host_cores')}")
    totals = doc.get("reproTotals") or {}
    if totals:
        print("simulated time totals:")
        for name, value in sorted(totals.items()):
            print(f"  {name:24s} {value:g}")
    print("\nspan tree (sim/comm/local per span):")
    print(render_span_tree(spans, max_depth=max_depth))
    flat = flatten_spans(spans)
    _render_top("simulated time", _top_k(flat, _sim_time, k),
                lambda v: f"{v:g}")
    _render_top("wall time", _top_k(flat, _wall, k),
                lambda v: f"{v:.4f}s")
    _render_top("comm fraction", _top_k(flat, _comm_fraction, k),
                lambda v: f"{v:.1%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect and maintain trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="render a trace file")
    p_sum.add_argument("path", help="trace file (--trace output or JSONL)")
    p_sum.add_argument("--top", type=int, default=10, metavar="K",
                       help="rows in each top-k table (default: 10)")
    p_sum.add_argument("--max-depth", type=int, default=None, metavar="D",
                       help="limit the span tree depth")
    p_gold = sub.add_parser("update-golden",
                            help="re-pin tests/corpus/golden_trace.json")
    p_gold.add_argument("path", nargs="?",
                        default=str(DEFAULT_GOLDEN_TRACE_PATH))
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return summarize(args.path, k=args.top, max_depth=args.max_depth)
    path = write_golden_trace(args.path)
    print(f"golden trace re-pinned: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
