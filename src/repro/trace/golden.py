"""The traced exemplar run pinned as ``tests/corpus/golden_trace.json``.

A small mesh envelope construction is traced and reduced to its
*structural* skeleton: span names, categories, nesting, and the exact
simulated-charge deltas.  Wall-clock and other host-side values are
stripped — the golden is a statement about the operation sequence and its
accounting, which are pure functions of the input, never about execution
speed.  ``python -m repro.trace update-golden`` re-pins it after an
intentional change to instrumentation or charge structure.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

__all__ = ["golden_trace_document", "structural_spans",
           "DEFAULT_GOLDEN_TRACE_PATH", "GOLDEN_WORKLOAD"]

DEFAULT_GOLDEN_TRACE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "tests" / "corpus" / "golden_trace.json"
)

#: The exemplar workload: small mesh envelope, deterministic in the seed.
GOLDEN_WORKLOAD = {"algorithm": "envelope", "n": 12, "k": 2,
                   "n_pe": 64, "seed": 7, "op": "min"}

_STRUCTURAL_KEYS = ("name", "cat", "sim")


def structural_spans(spans: list[dict]) -> list[dict]:
    """Strip a span forest (dict form) to its structural skeleton.

    Keeps names, categories, nesting, and simulated deltas; drops wall
    seconds and free-form attrs (which may carry host-dependent values).
    """
    out = []
    for span in spans:
        kept = {k: span.get(k) for k in _STRUCTURAL_KEYS}
        kept["children"] = structural_spans(span.get("children", ()))
        out.append(kept)
    return out


def golden_trace_document() -> dict:
    """Run the exemplar workload traced; return the structural document.

    The run uses the library defaults (compiled plans, fast combine) — the
    executors whose simulated charges are contract-identical to their
    fallbacks, so the golden pins *both* paths at once.
    """
    from ..core.envelope import envelope
    from ..core.family import PolynomialFamily
    from ..kinetics.polynomial import Polynomial
    from ..machines.machine import mesh_machine
    from .tracer import Tracer

    w = GOLDEN_WORKLOAD
    rng = np.random.default_rng(w["seed"])
    curves = [Polynomial(rng.normal(size=w["k"] + 1)) for _ in range(w["n"])]
    machine = mesh_machine(w["n_pe"])
    tracer = Tracer("golden")
    with tracer:
        # ``envelope`` emits its own driver-category root span.
        envelope(machine, curves, PolynomialFamily(w["k"]), op=w["op"])
    return {
        "schema": "repro.golden_trace/1",
        "workload": dict(w),
        "sim_time": machine.metrics.time,
        "spans": structural_spans(tracer.to_dicts()),
    }


def write_golden_trace(path=DEFAULT_GOLDEN_TRACE_PATH) -> pathlib.Path:
    """Re-measure and re-pin the golden trace file."""
    path = pathlib.Path(path)
    doc = golden_trace_document()
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path
