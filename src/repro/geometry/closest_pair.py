"""Closest pair: serial divide-and-conquer and its parallel costing.

Static substrate for Proposition 5.3 and Table 4.  The divide-and-conquer
uses only coordinate comparisons and squared distances, so it runs on
steady-state coordinates unchanged (Lemma 5.1): the "strip" test compares
``(x - x_mid)^2`` with the current best squared distance — a polynomial
comparison.

The parallel version charges the Miller–Stout mesh pattern: one global sort
by x, then ``log n`` simultaneous merge levels, each a constant number of
sort/scan/pack rounds on the strings of that level — ``Theta(sqrt(n))``
mesh, ``Theta(log^2 n)`` hypercube (expected ``Theta(log n)`` with the
randomized sort of Table 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateSystemError
from ..machines.machine import Machine
from ..ops import bitonic_merge, bitonic_sort, pack, semigroup
from ..ops._common import next_pow2
from .primitives import dist2

__all__ = ["closest_pair", "closest_pair_parallel", "closest_pair_brute"]


def closest_pair_brute(points) -> tuple[int, int]:
    """O(n^2) oracle returning the index pair with minimum squared distance."""
    pts = list(points)
    if len(pts) < 2:
        raise DegenerateSystemError("closest pair needs at least two points")
    best = None
    pair = (0, 1)
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            d = dist2(pts[i], pts[j])
            if best is None or d < best:
                best, pair = d, (i, j)
    return pair


def closest_pair(points) -> tuple[int, int]:
    """Divide-and-conquer closest pair; returns the winning index pair.

    Comparison-generic: works for float or SteadyValue coordinates.
    """
    pts = list(points)
    if len(pts) < 2:
        raise DegenerateSystemError("closest pair needs at least two points")
    order = sorted(range(len(pts)), key=lambda i: tuple(pts[i]))
    pair, _ = _cp_rec(pts, order)
    return pair


def _cp_rec(pts, order):
    m = len(order)
    if m <= 3:
        best, pair = None, None
        for i in range(m):
            for j in range(i + 1, m):
                d = dist2(pts[order[i]], pts[order[j]])
                if best is None or d < best:
                    best, pair = d, (order[i], order[j])
        return pair, best
    mid = m // 2
    x_mid = pts[order[mid]][0]
    pl, dl = _cp_rec(pts, order[:mid])
    pr, dr = _cp_rec(pts, order[mid:])
    pair, best = (pl, dl) if dl <= dr else (pr, dr)
    # Strip: |x - x_mid|^2 < best, scanned in y order with the classic
    # constant-neighbour window.
    strip = [i for i in order
             if (pts[i][0] - x_mid) * (pts[i][0] - x_mid) < best]
    strip.sort(key=lambda i: tuple((pts[i][1], pts[i][0])))
    for a in range(len(strip)):
        for b in range(a + 1, min(a + 8, len(strip))):
            i, j = strip[a], strip[b]
            dy = pts[j][1] - pts[i][1]
            if dy * dy >= best:
                break
            d = dist2(pts[i], pts[j])
            if d < best:
                best, pair = d, (i, j)
    return pair, best


def closest_pair_parallel(machine: Machine, points) -> tuple[int, int]:
    """Closest pair with Miller–Stout cost accounting on the machine."""
    pts = list(points)
    if len(pts) < 2:
        raise DegenerateSystemError("closest pair needs at least two points")
    n = len(pts)
    length = next_pow2(n)
    xs = np.empty(length, dtype=object)
    ys = np.empty(length, dtype=object)
    for i in range(length):
        p = pts[min(i, n - 1)]
        xs[i], ys[i] = p[0], p[1]
    with machine.phase("sort"):
        bitonic_sort(machine, [xs, ys])
    # log n merge levels.  All strings of one level work simultaneously, so
    # a level costs what one string of that size costs: ops are charged on
    # arrays of the string length (cost depends only on the rank-bit span).
    size = 4
    while size <= length:
        with machine.phase("cp-merge"):
            bitonic_merge(machine, np.zeros(size))
            semigroup(machine, np.zeros(size), np.minimum)
            pack(machine, np.ones(size, dtype=bool), [np.zeros(size)])
            machine.local(size, count=8)
        size *= 2
    return closest_pair(pts)
