"""Comparison-based geometric primitives, generic over the scalar type.

Every predicate here uses only ``+ - *`` and order comparisons, so it works
for ordinary floats *and* for :class:`~repro.core.steady.reduction.SteadyValue`
coordinates — the property that lets Section 5 of the paper reduce
steady-state problems to static ones (Lemma 5.1).

Points are index-able sequences of scalars (tuples, lists, arrays).
"""

from __future__ import annotations

__all__ = ["orientation", "cross", "dot", "dist2", "sign_of", "lex_key"]


def sign_of(v) -> int:
    """-1 / 0 / +1 for any scalar supporting subtraction and comparison."""
    zero = v - v
    if v > zero:
        return 1
    if v < zero:
        return -1
    return 0


def cross(o, a, b):
    """Cross product of (a - o) with (b - o)."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def dot(o, a, b):
    """Dot product of (a - o) with (b - o)."""
    return (a[0] - o[0]) * (b[0] - o[0]) + (a[1] - o[1]) * (b[1] - o[1])


def orientation(o, a, b) -> int:
    """+1 for a counter-clockwise turn o->a->b, -1 clockwise, 0 collinear."""
    return sign_of(cross(o, a, b))


def dist2(a, b):
    """Squared Euclidean distance (any dimension)."""
    acc = (a[0] - b[0]) * (a[0] - b[0])
    for x, y in zip(a[1:], b[1:]):
        acc = acc + (x - y) * (x - y)
    return acc


def lex_key(p):
    """Sort key for lexicographic (x, then y, ...) point ordering."""
    return tuple(p)
