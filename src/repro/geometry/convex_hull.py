"""Convex hulls: serial monotone chain and the parallel divide-and-conquer
scheme of Miller–Stout (used by Proposition 5.4 and Table 4).

The serial algorithm is Andrew's monotone chain — the library's oracle and
the building block of each parallel merge step.  The parallel algorithm
sorts points by x once, then merges sibling sub-hulls level by level;
sibling merges run on disjoint strings simultaneously, so

``T(n) = T(n/2) + Theta(merge)``  ->  ``Theta(sqrt(n))`` mesh /
``Theta(log^2 n)`` hypercube,

the bounds quoted in Tables 3 and 4.  All predicates are comparison-based,
so both algorithms run unchanged on steady-state coordinates (Lemma 5.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateSystemError
from ..machines.machine import Machine
from ..ops import bitonic_merge, bitonic_sort, broadcast, pack, semigroup
from ..ops._common import next_pow2
from .primitives import lex_key, orientation

__all__ = ["convex_hull", "convex_hull_parallel", "hull_contains"]


def _chain(points: list, idx: list[int]) -> list[int]:
    """Half-hull scan keeping only strict turns (extreme points)."""
    out: list[int] = []
    for i in idx:
        while len(out) >= 2 and orientation(
            points[out[-2]], points[out[-1]], points[i]
        ) <= 0:
            out.pop()
        out.append(i)
    return out


def convex_hull(points) -> list[int]:
    """Indices of the extreme points of ``hull(points)``, CCW order.

    Collinear boundary points are excluded (the paper's *extreme points*).
    Duplicates are tolerated.  Raises for an empty input.
    """
    pts = list(points)
    if not pts:
        raise DegenerateSystemError("hull of an empty point set")
    order = sorted(range(len(pts)), key=lambda i: lex_key(pts[i]))
    # Deduplicate coincident points (keep the first of each run).
    uniq = [order[0]]
    for i in order[1:]:
        if tuple(pts[i]) != tuple(pts[uniq[-1]]):
            uniq.append(i)
    if len(uniq) == 1:
        return [uniq[0]]
    lower = _chain(pts, uniq)
    upper = _chain(pts, uniq[::-1])
    if len(lower) == 2 and lower == upper[::-1]:
        return lower  # all points collinear: the two endpoints
    return lower[:-1] + upper[:-1]


def hull_contains(points, hull_idx: list[int], q) -> bool:
    """Is ``q`` inside or on the hull given by CCW vertex indices?"""
    h = [points[i] for i in hull_idx]
    if len(h) == 1:
        return tuple(h[0]) == tuple(q)
    if len(h) == 2:
        return orientation(h[0], h[1], q) == 0 and _between(h[0], h[1], q)
    for a, b in zip(h, h[1:] + h[:1]):
        if orientation(a, b, q) < 0:
            return False
    return True


def _between(a, b, q) -> bool:
    lo0, hi0 = (a[0], b[0]) if a[0] <= b[0] else (b[0], a[0])
    lo1, hi1 = (a[1], b[1]) if a[1] <= b[1] else (b[1], a[1])
    return lo0 <= q[0] <= hi0 and lo1 <= q[1] <= hi1


def convex_hull_parallel(machine: Machine, points) -> list[int]:
    """Miller–Stout style parallel hull with full cost accounting.

    Pipeline: one global sort by (x, y); then ``log n`` merge levels.  At
    each level, sibling groups (disjoint strings of the machine) combine
    their sub-hulls: a broadcast of the partition boundary, a merge of the
    two x-sorted vertex runs, the common-tangent computation (a semigroup +
    Theta(1) local rounds), and a pack of surviving vertices.  Sibling
    merges are simultaneous, so each level is charged once.
    """
    pts = list(points)
    if not pts:
        raise DegenerateSystemError("hull of an empty point set")
    n = len(pts)
    length = next_pow2(n)

    # Global sort by (x, y): object keys support SteadyValue coordinates.
    xs = np.empty(length, dtype=object)
    ys = np.empty(length, dtype=object)
    idx = np.arange(length)
    for i in range(length):
        p = pts[min(i, n - 1)]
        xs[i], ys[i] = p[0], p[1]
    with machine.phase("sort"):
        _, (order,) = bitonic_sort(machine, [xs, ys], [idx])
    order = [int(i) for i in order if i < n]

    # Merge levels: groups of size g combine pairwise.
    groups = [[i] for i in order]
    while len(groups) > 1:
        merged = []
        level_len = max(2, next_pow2(2 * max(len(g) for g in groups)))
        with machine.phase("hull-merge"):
            # One simultaneous round of: boundary broadcast, vertex-run
            # merge, tangent semigroup, and pack — charged once per level.
            broadcast(machine, np.zeros(level_len),
                      np.eye(1, level_len, 0, dtype=bool)[0])
            bitonic_merge(machine, np.zeros(level_len))
            semigroup(machine, np.zeros(level_len), np.maximum)
            machine.local(level_len)
            pack(machine, np.ones(level_len, dtype=bool), [np.zeros(level_len)])
        for a, b in zip(groups[::2], groups[1::2]):
            union = a + b
            sub = convex_hull([pts[i] for i in union])
            merged.append([union[j] for j in sub])
        if len(groups) % 2:
            merged.append(groups[-1])
        groups = merged
    return groups[0]
