"""Minimum-area enclosing rectangle — Theorem 5.8's static substrate.

A minimal-area rectangle enclosing a convex polygon has one side collinear
with a polygon edge; the other three sides pass through support vertices.
For every edge we find the three support vertices (max perpendicular
distance, min/max projection along the edge), form the area, and take the
minimum over edges — the rotating-calipers algorithm behind Theorem 5.8.

Areas are compared as *fractions* ``A_e / |e|^2`` with positive
denominators, using cross-multiplication: ``A_e * L_f < A_f * L_e``.  This
keeps every comparison polynomial, so steady-state coordinates (Lemma 5.1)
work unchanged — mirroring the paper's observation that the squared area
function has degree at most 8k.
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateSystemError
from ..machines.machine import Machine
from ..ops import semigroup
from ..ops._common import next_pow2
from .antipodal import antipodal_pairs_parallel
from .primitives import sign_of

__all__ = ["enclosing_rectangle", "enclosing_rectangle_parallel",
           "rectangle_corners", "RectangleSupport"]


class RectangleSupport:
    """The combinatorial answer: edge index + three support vertex indices.

    ``area2_num / len2_den`` is the squared... more precisely: ``area_num``
    equals ``area * |e|^2`` and ``len2_den`` equals ``|e|^2``, so the true
    area is ``area_num / len2_den`` — exact in the scalar ring, no division.
    """

    __slots__ = ("edge", "far", "left", "right", "area_num", "len2_den")

    def __init__(self, edge, far, left, right, area_num, len2_den):
        self.edge = edge
        self.far = far
        self.left = left
        self.right = right
        self.area_num = area_num
        self.len2_den = len2_den

    def better_than(self, other: "RectangleSupport") -> bool:
        """Fraction comparison by cross-multiplication (denominators > 0)."""
        lhs = self.area_num * other.len2_den
        rhs = other.area_num * self.len2_den
        return sign_of(lhs - rhs) < 0

    def area(self) -> float:
        """Numeric area (float coordinates only)."""
        return float(self.area_num) / float(self.len2_den)


def enclosing_rectangle(poly) -> RectangleSupport:
    """Minimum-area enclosing rectangle of a CCW convex polygon.

    Returns the witnessing supports.  O(m^2) scan over edges x vertices —
    simple, comparison-generic, and plenty for the polygon sizes the
    steady-state pipeline produces (it post-processes hull output).
    """
    pts = list(poly)
    m = len(pts)
    if m < 3:
        raise DegenerateSystemError("enclosing rectangle needs >= 3 vertices")
    best: RectangleSupport | None = None
    for e in range(m):
        a = pts[e]
        b = pts[(e + 1) % m]
        ex = b[0] - a[0]
        ey = b[1] - a[1]
        len2 = ex * ex + ey * ey
        # Projections along the edge and perpendicular heights (times |e|).
        far = left = right = None
        h_far = p_min = p_max = None
        for v in range(m):
            q = pts[v]
            h = ex * (q[1] - a[1]) - ey * (q[0] - a[0])   # cross: height*|e|
            p = ex * (q[0] - a[0]) + ey * (q[1] - a[1])   # dot: proj*|e|
            if h_far is None or h > h_far:
                h_far, far = h, v
            if p_min is None or p < p_min:
                p_min, left = p, v
            if p_max is None or p > p_max:
                p_max, right = p, v
        # width*|e| = p_max - p_min; height*|e| = h_far;
        # area = width * height = (p_max - p_min) * h_far / |e|^2.
        area_num = (p_max - p_min) * h_far
        cand = RectangleSupport(e, far, left, right, area_num, len2)
        if best is None or cand.better_than(best):
            best = cand
    return best


def rectangle_corners(poly, sup: RectangleSupport) -> np.ndarray:
    """The 4 corners of the supported rectangle (float coordinates)."""
    pts = [np.array([float(p[0]), float(p[1])]) for p in poly]
    a = pts[sup.edge]
    b = pts[(sup.edge + 1) % len(pts)]
    e = b - a
    e = e / np.linalg.norm(e)
    nrm = np.array([-e[1], e[0]])
    p_min = min(float(np.dot(p - a, e)) for p in pts)
    p_max = max(float(np.dot(p - a, e)) for p in pts)
    h_max = max(float(np.dot(p - a, nrm)) for p in pts)
    c0 = a + p_min * e
    c1 = a + p_max * e
    return np.array([c0, c1, c1 + h_max * nrm, c0 + h_max * nrm])


def enclosing_rectangle_parallel(machine: Machine, poly) -> RectangleSupport:
    """Theorem 5.8 cost accounting: Lemma 5.5 + grouping + steady-min.

    Steps 1–4 reuse the antipodal machinery; step 5 is Theta(1) local work
    per edge; step 6 is a semigroup min over the edge areas.
    """
    result = enclosing_rectangle(poly)
    length = next_pow2(max(2, len(list(poly))))
    antipodal_pairs_parallel(machine, poly)        # steps 1-4
    machine.local(length)                          # step 5
    with machine.phase("steady-min"):
        semigroup(machine, np.zeros(length), np.minimum)  # step 6
    return result
