"""Antipodal vertex pairs of a convex polygon — Lemma 5.5 / Figure 6.

The rotating-calipers construction of [Shamos 1975]: each edge of the
polygon, viewed as a ray from the origin, selects the *sector* (Figure 6b)
containing its opposite ray; the vertex owning that sector is antipodal to
both endpoints of the edge.  Everything is expressed with cross/dot-product
sign tests, so the computation is comparison-generic and therefore runs on
steady-state coordinates via Lemma 5.1.

The parallel variant charges Lemma 5.5's six steps — broadcast, local angle
computation, sort, neighbour exchange, sector grouping — giving
``Theta(sqrt(n))`` mesh / ``Theta(log^2 n)`` hypercube (expected
``Theta(log n)``) time, and guarantees every antipodal pair is discovered
with at most four pairs per PE.
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateSystemError
from ..machines.machine import Machine
from ..ops import bitonic_sort, broadcast, interval_locate
from ..ops._common import next_pow2
from .primitives import cross, dist2, sign_of

__all__ = ["antipodal_pairs", "antipodal_pairs_parallel", "diameter_pair",
           "antipodal_pairs_brute"]


def _area2(o, a, b):
    """Twice the signed triangle area (a cross product)."""
    return cross(o, a, b)


def antipodal_pairs(poly) -> list[tuple[int, int]]:
    """All antipodal vertex pairs of a CCW convex polygon (indices).

    ``poly`` is the list of extreme points in counter-clockwise order (the
    output of :func:`repro.geometry.convex_hull.convex_hull` applied to the
    point set).  Uses the rotating-calipers sweep: advance the far vertex
    while the triangle area over the current edge keeps growing.
    """
    pts = list(poly)
    m = len(pts)
    if m < 2:
        raise DegenerateSystemError("antipodal pairs need >= 2 vertices")
    if m == 2:
        return [(0, 1)]
    pairs: set[tuple[int, int]] = set()
    j = 1
    for i in range(m):
        nxt = (i + 1) % m
        # Advance j while area(P[i], P[i+1], P[j+1]) > area(P[i], P[i+1], P[j]).
        while True:
            jn = (j + 1) % m
            grow = _area2(pts[i], pts[nxt], pts[jn]) - _area2(
                pts[i], pts[nxt], pts[j]
            )
            if sign_of(grow) > 0:
                j = jn
            else:
                break
        pairs.add(_norm(i, j))
        pairs.add(_norm(nxt, j))
        # Parallel-edge tie: the next vertex is antipodal as well.
        jn = (j + 1) % m
        tie = _area2(pts[i], pts[nxt], pts[jn]) - _area2(pts[i], pts[nxt], pts[j])
        if sign_of(tie) == 0:
            pairs.add(_norm(i, jn))
            pairs.add(_norm(nxt, jn))
    return sorted(p for p in pairs if p[0] != p[1])


def _norm(i, j):
    return (i, j) if i < j else (j, i)


def antipodal_pairs_brute(poly) -> list[tuple[int, int]]:
    """O(m^2) oracle: (i, j) is antipodal iff parallel support lines exist.

    A pair is antipodal iff each vertex is extreme in some direction ``u``
    and its partner is extreme in ``-u``; equivalently the edges adjacent
    to ``i`` and to ``j`` "straddle" a common direction.  We test all
    directions normal to edges plus vertex-vertex directions.
    """
    pts = list(poly)
    m = len(pts)
    if m == 2:
        return [(0, 1)]
    out = set()
    for i in range(m):
        for j in range(i + 1, m):
            d = (pts[j][0] - pts[i][0], pts[j][1] - pts[i][1])
            # support direction u with u . d extreme: check existence of a
            # direction where i minimises and j maximises the projection:
            # true iff the edge fans at i and at j contain opposite rays.
            if _fans_contain_opposite(pts, i, j):
                out.add((i, j))
    return sorted(out)


def _fans_contain_opposite(pts, i, j) -> bool:
    m = len(pts)

    def edges(v):
        prv = pts[(v - 1) % m]
        cur = pts[v]
        nxt = pts[(v + 1) % m]
        return ((cur[0] - prv[0], cur[1] - prv[1]),
                (nxt[0] - cur[0], nxt[1] - cur[1]))

    (a1, a2), (b1, b2) = edges(i), edges(j)
    nb1 = tuple(-c for c in b1)
    nb2 = tuple(-c for c in b2)
    # Antipodal iff the CCW sector [a1, a2] intersects the sector
    # [-b1, -b2] (sector of i overlaps reflected sector of j).
    return _sectors_overlap(a1, a2, nb1, nb2)


def _x(u, v):
    return u[0] * v[1] - u[1] * v[0]


def _in_sector(lo, hi, v) -> bool:
    """Is direction v inside the CCW sector from lo to hi (inclusive)?"""
    if sign_of(_x(lo, hi)) >= 0:
        return sign_of(_x(lo, v)) >= 0 and sign_of(_x(v, hi)) >= 0
    return sign_of(_x(lo, v)) >= 0 or sign_of(_x(v, hi)) >= 0


def _sectors_overlap(a1, a2, b1, b2) -> bool:
    return (_in_sector(a1, a2, b1) or _in_sector(a1, a2, b2)
            or _in_sector(b1, b2, a1) or _in_sector(b1, b2, a2))


def diameter_pair(poly) -> tuple[int, int]:
    """The farthest vertex pair (the diameter) via antipodal pairs.

    [Shamos 1975]: a farthest pair must be antipodal, so the maximum over
    the O(m) antipodal pairs is the diameter.
    """
    pts = list(poly)
    if len(pts) < 2:
        raise DegenerateSystemError("diameter needs >= 2 vertices")
    best, pair = None, None
    for i, j in antipodal_pairs(pts):
        d = dist2(pts[i], pts[j])
        if best is None or d > best:
            best, pair = d, (i, j)
    return pair


def antipodal_pairs_parallel(machine: Machine, poly) -> list[tuple[int, int]]:
    """Lemma 5.5 with cost accounting (six steps).

    Steps: (1) broadcast P_0; (2) local angles; (3) sort into CCW order;
    (4) neighbour exchange of coordinates; (5) local sector computation;
    (6) grouping search locating each edge's opposite ray among the sorted
    sector boundaries.  Every pair of antipodal vertices appears, and no PE
    holds more than four pairs (checked by the tests).
    """
    pts = list(poly)
    m = len(pts)
    length = next_pow2(max(2, m))
    with machine.phase("antipodal"):
        marked = np.zeros(length, dtype=bool)
        marked[0] = True
        broadcast(machine, np.zeros(length), marked)       # step 1
        machine.local(length)                              # step 2
        bitonic_sort(machine, np.zeros(length))            # step 3
        machine.exchange(length, 0, count=2)               # step 4
        machine.local(length)                              # step 5
        interval_locate(machine, np.arange(length),        # step 6
                        np.arange(length))
    return antipodal_pairs(pts)
