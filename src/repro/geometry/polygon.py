"""Convex polygon utilities, comparison-generic like the rest of
:mod:`repro.geometry`.

Helpers consumed by the Section 5 pipelines and their tests: signed areas
(shoelace), convexity validation of CCW vertex lists, perimeter-free width
computations, and support functions (extreme vertex in a direction) — the
"line of support" primitive of the paper's Figure 6 discussion.
"""

from __future__ import annotations

from ..errors import DegenerateSystemError
from .primitives import orientation

__all__ = ["signed_area2", "is_ccw_convex", "support_vertex", "width_squared_along"]


def signed_area2(poly) -> object:
    """Twice the signed area of a polygon (positive for CCW order).

    Shoelace formula in the scalar ring — works for floats and
    :class:`~repro.core.steady.reduction.SteadyValue` alike.
    """
    pts = list(poly)
    if len(pts) < 3:
        raise DegenerateSystemError("area needs at least 3 vertices")
    pairs = list(zip(pts, pts[1:] + pts[:1]))
    a, b = pairs[0]
    acc = a[0] * b[1] - b[0] * a[1]
    for a, b in pairs[1:]:
        acc = acc + (a[0] * b[1] - b[0] * a[1])
    return acc


def is_ccw_convex(poly, *, strict: bool = True) -> bool:
    """Is the vertex list a convex polygon in counter-clockwise order?

    ``strict`` additionally rejects collinear triples (the paper's hulls
    carry extreme points only).
    """
    pts = list(poly)
    m = len(pts)
    if m < 3:
        return False
    for i in range(m):
        o = orientation(pts[i], pts[(i + 1) % m], pts[(i + 2) % m])
        if o < 0 or (strict and o == 0):
            return False
    return True


def support_vertex(poly, direction) -> int:
    """Index of the vertex extreme in ``direction`` (a line of support).

    The vertex maximising the dot product with ``direction``; ties broken
    by the first maximiser in vertex order.  O(m) comparisons — on the
    machine this is the per-edge semigroup of Lemma 5.5 / Theorem 5.8.
    """
    pts = list(poly)
    if not pts:
        raise DegenerateSystemError("support of an empty polygon")
    dx, dy = direction
    best, best_i = None, 0
    for i, p in enumerate(pts):
        proj = p[0] * dx + p[1] * dy
        if best is None or proj > best:
            best, best_i = proj, i
    return best_i


def width_squared_along(poly, direction) -> object:
    """Squared extent of the polygon along ``direction`` (unnormalised).

    ``(max proj - min proj)^2`` where projections are taken against the
    *unnormalised* direction, keeping everything in the scalar ring; divide
    by ``|direction|^2`` (or compare cross-multiplied) for true widths.
    """
    pts = list(poly)
    if not pts:
        raise DegenerateSystemError("width of an empty polygon")
    dx, dy = direction
    projs = [p[0] * dx + p[1] * dy for p in pts]
    hi = projs[0]
    lo = projs[0]
    for v in projs[1:]:
        if v > hi:
            hi = v
        if v < lo:
            lo = v
    span = hi - lo
    return span * span
