"""Static computational geometry, comparison-generic (Tables 3 and 4).

Every algorithm uses only ring arithmetic and order comparisons on the
coordinates, so the same code serves float inputs (static problems,
Table 4) and :class:`~repro.core.steady.reduction.SteadyValue` inputs
(steady-state problems, Section 5) — the paper's Lemma 5.1 reduction.
"""

from .antipodal import (
    antipodal_pairs,
    antipodal_pairs_brute,
    antipodal_pairs_parallel,
    diameter_pair,
)
from .closest_pair import closest_pair, closest_pair_brute, closest_pair_parallel
from .convex_hull import convex_hull, convex_hull_parallel, hull_contains
from .primitives import cross, dist2, dot, lex_key, orientation, sign_of
from .rectangle import (
    RectangleSupport,
    enclosing_rectangle,
    enclosing_rectangle_parallel,
    rectangle_corners,
)

__all__ = [
    "antipodal_pairs", "antipodal_pairs_brute", "antipodal_pairs_parallel",
    "diameter_pair",
    "closest_pair", "closest_pair_brute", "closest_pair_parallel",
    "convex_hull", "convex_hull_parallel", "hull_contains",
    "cross", "dist2", "dot", "lex_key", "orientation", "sign_of",
    "RectangleSupport", "enclosing_rectangle", "enclosing_rectangle_parallel",
    "rectangle_corners",
]
