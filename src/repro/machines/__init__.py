"""Simulated parallel machines: meshes, hypercubes, PRAM, serial (Section 2)."""

from .indexing import (
    IndexScheme,
    SCHEMES,
    adjacency_fraction,
    gray_code,
    gray_code_inverse,
    is_recursively_decomposable,
    max_consecutive_distance,
    proximity,
    row_major,
    shuffled_row_major,
    snake_like,
)
from .machine import (
    Machine,
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
    shuffle_exchange_machine,
)
from .machine import clear_machine_caches
from .metrics import Metrics


def clear_caches() -> None:
    """Empty every cross-instance memo in the simulator.

    Clears the charge-parameter and doubling-bit memos of
    :mod:`repro.machines.machine` and the compiled movement-plan cache of
    :mod:`repro.ops.plans` (imported lazily: ``ops`` depends on
    ``machines``, not the other way round).  The test suite calls this
    between tests so a stale or mis-keyed cache entry surfaces as a
    failure in the test that created it instead of leaking silently.
    """
    clear_machine_caches()
    from ..ops.plans import clear_plan_cache

    clear_plan_cache()
from .topology import (
    CCCTopology,
    HypercubeTopology,
    MeshTopology,
    PRAMTopology,
    SerialTopology,
    ShuffleExchangeTopology,
    Topology,
)

__all__ = [
    "IndexScheme", "SCHEMES", "adjacency_fraction", "gray_code",
    "gray_code_inverse", "is_recursively_decomposable",
    "max_consecutive_distance", "proximity", "row_major",
    "shuffled_row_major", "snake_like",
    "Machine", "ccc_machine", "hypercube_machine", "mesh_machine",
    "pram_machine", "serial_machine", "shuffle_exchange_machine", "Metrics",
    "clear_caches", "clear_machine_caches",
    "CCCTopology", "HypercubeTopology", "MeshTopology", "PRAMTopology",
    "SerialTopology", "ShuffleExchangeTopology", "Topology",
]
