"""Simulated parallel machines: meshes, hypercubes, PRAM, serial (Section 2)."""

from .indexing import (
    IndexScheme,
    SCHEMES,
    adjacency_fraction,
    gray_code,
    gray_code_inverse,
    is_recursively_decomposable,
    max_consecutive_distance,
    proximity,
    row_major,
    shuffled_row_major,
    snake_like,
)
from .machine import (
    Machine,
    ccc_machine,
    hypercube_machine,
    mesh_machine,
    pram_machine,
    serial_machine,
    shuffle_exchange_machine,
)
from .metrics import Metrics
from .topology import (
    CCCTopology,
    HypercubeTopology,
    MeshTopology,
    PRAMTopology,
    SerialTopology,
    ShuffleExchangeTopology,
    Topology,
)

__all__ = [
    "IndexScheme", "SCHEMES", "adjacency_fraction", "gray_code",
    "gray_code_inverse", "is_recursively_decomposable",
    "max_consecutive_distance", "proximity", "row_major",
    "shuffled_row_major", "snake_like",
    "Machine", "ccc_machine", "hypercube_machine", "mesh_machine",
    "pram_machine", "serial_machine", "shuffle_exchange_machine", "Metrics",
    "CCCTopology", "HypercubeTopology", "MeshTopology", "PRAMTopology",
    "SerialTopology", "ShuffleExchangeTopology", "Topology",
]
