"""Interconnection topologies and their communication cost models.

The paper's algorithms are written against abstract data movement operations
(Section 2.6) whose implementations differ only in how far a "shift by 2^j
ranks" or "exchange with the rank differing in bit j" travels:

* **Hypercube** (Section 2.3): with binary-reflected-Gray-code ranking, a
  bit-``j`` rank exchange is one link traversal — cost 1; diameter
  ``log2 n``.
* **Mesh** (Section 2.2): with shuffled-row-major / proximity ranking, rank
  bit ``j`` toggles row-or-column bit ``j // 2``, so a bit-``j`` exchange is
  a lockstep transfer across ``2^{j//2}`` links.  Summed over the bitonic
  network this yields the ``Theta(sqrt(n))`` totals of Thompson–Kung, which
  the paper's Table 1 relies on.
* **PRAM** (baseline of Chandran–Mount): any exchange costs 1 — the uniform
  shared-memory model the paper compares against in Sections 1 and 6.
* **Serial**: a single PE; an "exchange" over L virtual slots costs L (the
  serial model of Atallah 1985, used as the sequential baseline).

Virtual slots: an operation over ``L`` items on an ``n``-PE machine stores
slot ``v`` in PE ``v // (L / n)``; exchanges within one PE are local and
cost 1.
"""

from __future__ import annotations

import math

from ..errors import MachineConfigurationError

__all__ = ["Topology", "MeshTopology", "HypercubeTopology", "CCCTopology",
           "ShuffleExchangeTopology", "PRAMTopology", "SerialTopology"]


class Topology:
    """Abstract interconnection topology with ``n_pe`` processing elements."""

    name: str = "abstract"

    def __init__(self, n_pe: int) -> None:
        if n_pe < 1:
            raise MachineConfigurationError("a machine needs at least one PE")
        self.n_pe = n_pe

    # -- cost model ----------------------------------------------------
    def exchange_distance(self, pe_bit: int) -> float:
        """Link distance of a lockstep exchange between PEs whose *ranks*
        differ in bit ``pe_bit``."""
        raise NotImplementedError

    @property
    def diameter(self) -> float:
        """Maximum link distance between any two PEs."""
        raise NotImplementedError

    def slot_exchange_distance(self, bit: int, length: int) -> float:
        """Distance of an exchange at *virtual-slot* bit ``bit`` for an
        operation over ``length`` slots.

        Slots map to PEs high-bits-first (slot ``v`` lives in PE
        ``v >> slot_bits``); exchanges below ``slot_bits`` stay inside a PE.
        """
        if length & (length - 1):
            raise MachineConfigurationError(
                f"operation length {length} must be a power of two"
            )
        slots_per_pe = max(1, length // self.n_pe)
        slot_bits = slots_per_pe.bit_length() - 1
        if bit < slot_bits:
            return 0.0  # intra-PE: the round is charged as local work
        return self.exchange_distance(bit - slot_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_pe={self.n_pe})"


class MeshTopology(Topology):
    """Two-dimensional mesh of ``n`` PEs, ``sqrt(n) x sqrt(n)`` (Figure 1).

    The cost of a rank-bit exchange depends on the PE indexing scheme
    (Figure 2).  The default, shuffled-row-major, makes rank bit ``j`` a
    row-or-column displacement of exactly ``2^{j//2}`` grid steps — the
    property behind the Thompson–Kung ``Theta(sqrt n)`` sort.  Passing any
    other Figure 2 scheme name computes the per-bit *lockstep* distance
    (the maximum over partner pairs) from the scheme itself, enabling the
    indexing ablation benchmark.
    """

    name = "mesh"

    def __init__(self, n_pe: int,
                 scheme: str = "shuffled-row-major") -> None:
        super().__init__(n_pe)
        side = math.isqrt(n_pe)
        if side * side != n_pe or (side & (side - 1)):
            raise MachineConfigurationError(
                f"mesh size {n_pe} must be a power of four"
            )
        self.side = side
        self.scheme = scheme
        if scheme == "shuffled-row-major":
            self._bit_distance = None  # closed form below
        else:
            self._bit_distance = self._profile_from_scheme(scheme)

    def _profile_from_scheme(self, scheme: str) -> list[float]:
        from .indexing import SCHEMES  # local import: avoid cycles

        if scheme not in SCHEMES:
            raise MachineConfigurationError(
                f"unknown mesh indexing scheme {scheme!r}; "
                f"choose from {sorted(SCHEMES)}"
            )
        import numpy as np

        if self.n_pe == 1:
            return [0.0]
        idx_scheme = SCHEMES[scheme](self.n_pe)
        r, c = idx_scheme.all_coords()
        ranks = np.arange(self.n_pe)
        profile = []
        for b in range(max(1, self.n_pe.bit_length() - 1)):
            partner = ranks ^ (1 << b)
            dist = np.abs(r - r[partner]) + np.abs(c - c[partner])
            profile.append(float(dist.max()))
        return profile

    def exchange_distance(self, pe_bit: int) -> float:
        if pe_bit >= 2 * (self.side.bit_length() - 1):
            raise MachineConfigurationError(
                f"rank bit {pe_bit} out of range for mesh of size {self.n_pe}"
            )
        if self._bit_distance is None:
            return float(1 << (pe_bit // 2))
        return self._bit_distance[pe_bit]

    @property
    def diameter(self) -> float:
        return float(2 * (self.side - 1))


class HypercubeTopology(Topology):
    """Hypercube of ``n = 2^q`` PEs (Figure 3), Gray-code ranked.

    Under binary-reflected Gray code ranking, PEs whose ranks differ in bit
    ``j`` are at hypercube distance at most 2 (exactly 1 for the ranks the
    bitonic network pairs, since aligned ``2^j`` blocks occupy subcubes);
    we charge the standard unit cost used in the paper's analysis.
    """

    name = "hypercube"

    def __init__(self, n_pe: int) -> None:
        super().__init__(n_pe)
        if n_pe & (n_pe - 1):
            raise MachineConfigurationError(
                f"hypercube size {n_pe} must be a power of two"
            )
        self.dim = n_pe.bit_length() - 1

    def exchange_distance(self, pe_bit: int) -> float:
        if pe_bit >= self.dim and self.n_pe > 1:
            raise MachineConfigurationError(
                f"rank bit {pe_bit} out of range for hypercube of size {self.n_pe}"
            )
        return 1.0

    @property
    def diameter(self) -> float:
        return float(self.dim)


class CCCTopology(Topology):
    """Cube-connected cycles — the paper's Section 1 closing remark.

    A CCC replaces every hypercube node with a cycle of ``log n`` small
    processors, keeping degree 3.  For *normal* algorithms — those that
    touch rank bits in sequential order, which covers bitonic networks and
    recursive doubling, i.e. everything in :mod:`repro.ops` — the CCC
    emulates the hypercube with constant slowdown [Preparata–Vuillemin]:
    each bit-exchange costs O(1) cycle rotations plus one cube edge.  We
    charge that constant explicitly so the envelope algorithms can be run
    and measured on this architecture too, confirming the paper's "it is
    possible that these algorithms can be implemented on other
    architectures" with the same ``Theta(log^2 n)`` totals at a ~3x
    constant.
    """

    name = "ccc"

    #: Amortised cost of one bit-exchange for a normal algorithm: rotate
    #: the cycle (1), traverse the cube edge (1), rotate back into place (1).
    EMULATION_FACTOR = 3.0

    def __init__(self, n_pe: int) -> None:
        super().__init__(n_pe)
        if n_pe & (n_pe - 1):
            raise MachineConfigurationError(
                f"CCC emulation size {n_pe} must be a power of two"
            )
        self.dim = n_pe.bit_length() - 1

    def exchange_distance(self, pe_bit: int) -> float:
        if pe_bit >= self.dim and self.n_pe > 1:
            raise MachineConfigurationError(
                f"rank bit {pe_bit} out of range for CCC of size {self.n_pe}"
            )
        return self.EMULATION_FACTOR

    @property
    def diameter(self) -> float:
        # 2.5 log n is the classic CCC diameter bound.
        return 2.5 * max(1, self.dim)


class ShuffleExchangeTopology(Topology):
    """Shuffle-exchange network — the other Section 1 remark architecture.

    Degree-3 network with *shuffle* (cyclic bit rotation) and *exchange*
    (flip bit 0) edges.  A normal algorithm's bit-``j`` exchange is
    performed by shuffling the target bit into position 0, exchanging, and
    continuing — amortised O(1) shuffles per step when bits are visited in
    order, charged here as a constant factor of 2.
    """

    name = "shuffle-exchange"

    EMULATION_FACTOR = 2.0

    def __init__(self, n_pe: int) -> None:
        super().__init__(n_pe)
        if n_pe & (n_pe - 1):
            raise MachineConfigurationError(
                f"shuffle-exchange size {n_pe} must be a power of two"
            )
        self.dim = n_pe.bit_length() - 1

    def exchange_distance(self, pe_bit: int) -> float:
        if pe_bit >= self.dim and self.n_pe > 1:
            raise MachineConfigurationError(
                f"rank bit {pe_bit} out of range for size {self.n_pe}"
            )
        return self.EMULATION_FACTOR

    @property
    def diameter(self) -> float:
        return 2.0 * max(1, self.dim)


class PRAMTopology(Topology):
    """CREW PRAM: uniform unit-cost access to shared memory.

    Used by the Chandran–Mount baseline (Sections 1 and 6); *simulating*
    this machine on a mesh or hypercube multiplies each step by the host's
    concurrent-read/concurrent-write cost.
    """

    name = "pram"

    def exchange_distance(self, pe_bit: int) -> float:
        return 1.0

    @property
    def diameter(self) -> float:
        return 1.0


class SerialTopology(Topology):
    """A single processor: every "parallel" round costs one unit per slot."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(1)

    def exchange_distance(self, pe_bit: int) -> float:  # pragma: no cover
        return 1.0

    def slot_exchange_distance(self, bit: int, length: int) -> float:
        return 0.0  # all slots are local; cost is charged as L local steps

    @property
    def diameter(self) -> float:
        return 0.0
