"""Store-and-forward packet routing on the 2-D mesh.

Companion to :mod:`repro.machines.routing`: the same queueing simulation on
the Figure 1 grid.  Deterministic XY (dimension-order) routing sends a
packet along its row to the destination column, then along the column —
simple, minimal-distance, but adversarial permutations such as the matrix
*transpose* funnel a whole row's packets into a single column and build
``Theta(sqrt n)`` queues.  Valiant-style randomization (route to a random
intermediate PE first) restores near-diameter delivery with high
probability, at twice the hop work.

This substrate quantifies the mesh side of the paper's concurrent-access
story: any routing scheme is lower-bounded by the ``Theta(sqrt n)``
communication diameter (Section 2.2), which is why the paper implements
concurrent read/write by *sorting* rather than ad-hoc routing.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike

from ..errors import MachineConfigurationError, OperationContractError
from .routing import RoutingResult

__all__ = ["mesh_route_packets", "mesh_transpose_permutation"]


def mesh_transpose_permutation(n: int) -> np.ndarray:
    """The permutation sending PE (r, c) to PE (c, r): XY routing's nemesis."""
    side = math.isqrt(n)
    if side * side != n:
        raise MachineConfigurationError("n must be a perfect square")
    idx = np.arange(n)
    r, c = idx // side, idx % side
    return c * side + r


def _xy_phase(cur_r: np.ndarray, cur_c: np.ndarray, dst_r: np.ndarray,
              dst_c: np.ndarray, order: np.ndarray, side: int,
              max_rounds: int) -> tuple[int, int, int]:
    """Route all packets with XY (row-first) forwarding; FIFO arbitration."""
    n = len(cur_r)
    cur_r = cur_r.copy()
    cur_c = cur_c.copy()
    rounds = 0
    hops = 0
    max_queue = int(np.bincount(cur_r * side + cur_c, minlength=n).max())
    while True:
        pend = (cur_r != dst_r) | (cur_c != dst_c)
        if not pend.any():
            return rounds, max_queue, hops
        if rounds >= max_rounds:
            raise OperationContractError(
                f"mesh routing did not converge within {max_rounds} rounds"
            )
        rounds += 1
        idx = np.flatnonzero(pend)
        # XY: fix the column first (horizontal moves), then the row.
        move_c = cur_c[idx] != dst_c[idx]
        step_r = np.where(move_c, 0, np.sign(dst_r[idx] - cur_r[idx]))
        step_c = np.where(move_c, np.sign(dst_c[idx] - cur_c[idx]), 0)
        # Directed link id: (node, direction).
        direction = (step_r + 1) * 3 + (step_c + 1)
        link = (cur_r[idx] * side + cur_c[idx]) * 9 + direction
        key = np.lexsort((order[idx], link))
        sorted_links = link[key]
        first = np.ones(len(key), dtype=bool)
        first[1:] = sorted_links[1:] != sorted_links[:-1]
        movers = key[first]
        sel = idx[movers]
        cur_r[sel] += step_r[movers]
        cur_c[sel] += step_c[movers]
        hops += len(sel)
        max_queue = max(
            max_queue, int(np.bincount(cur_r * side + cur_c, minlength=n).max())
        )


def mesh_route_packets(destinations: ArrayLike, *, strategy: str = "xy",
                       seed: int = 0,
                       max_rounds: int | None = None) -> RoutingResult:
    """Route packet ``i`` (at PE ``i`` in row-major grid order) to
    ``destinations[i]`` on the smallest square mesh holding them.

    ``strategy`` is ``"xy"`` (deterministic dimension order) or
    ``"valiant"`` (random intermediate PE, then XY).
    """
    dst = np.asarray(destinations, dtype=np.int64)
    n = len(dst)
    side = math.isqrt(n)
    if side * side != n:
        raise MachineConfigurationError("packet count must be a perfect square")
    if sorted(dst.tolist()) != list(range(n)):
        raise OperationContractError("destinations must form a permutation")
    if max_rounds is None:
        max_rounds = 64 * max(1, n)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    start = np.arange(n, dtype=np.int64)
    sr, sc = start // side, start % side
    dr, dc = dst // side, dst % side
    if strategy == "xy":
        r, q, h = _xy_phase(sr, sc, dr, dc, order, side, max_rounds)
        return RoutingResult(r, q, h)
    if strategy == "valiant":
        mid = rng.integers(0, n, size=n, dtype=np.int64)
        mr, mc = mid // side, mid % side
        r1, q1, h1 = _xy_phase(sr, sc, mr, mc, order, side, max_rounds)
        r2, q2, h2 = _xy_phase(mr, mc, dr, dc, order, side, max_rounds)
        return RoutingResult(r1 + r2, max(q1, q2), h1 + h2)
    raise OperationContractError(f"unknown strategy {strategy!r}")
