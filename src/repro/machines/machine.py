"""The lockstep SIMD machine simulator.

A :class:`Machine` pairs a :class:`~repro.machines.topology.Topology` with a
:class:`~repro.machines.metrics.Metrics` accumulator.  Data lives in ordinary
NumPy arrays indexed by *virtual slot* (rank order); the data-movement
operations in :mod:`repro.ops` perform the actual array manipulation and call
back into the machine to charge simulated parallel time:

* :meth:`Machine.local` — one lockstep round of local computation,
* :meth:`Machine.exchange` — a compare/exchange or shift round at a given
  virtual-slot bit (cost = link distance under the topology),
* :meth:`Machine.monotone_route` — an order-preserving route (cost = one
  round per rank bit: ``Theta(sqrt(n))`` mesh, ``Theta(log n)`` hypercube),
* :meth:`Machine.long_shift` — a lockstep shift across a whole segment
  (used for the reversal step of bitonic merging).

The asymptotics of every Table 1 operation emerge from these four charges.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from typing import TypeVar

from ..trace.registry import register_gauge
from .metrics import Metrics
from .topology import (
    CCCTopology,
    HypercubeTopology,
    MeshTopology,
    PRAMTopology,
    SerialTopology,
    ShuffleExchangeTopology,
    Topology,
)

__all__ = ["Machine", "mesh_machine", "hypercube_machine", "ccc_machine",
           "shuffle_exchange_machine", "pram_machine", "serial_machine"]


#: Charge parameters are pure functions of (topology kind, size, scheme,
#: operation length), so they are memoised ACROSS machine instances — the
#: envelope recursion creates a fresh sub-machine per combine, which would
#: defeat per-instance caches.  Values are small tuples of floats/ints.
_CHARGE_CACHE: dict = {}

#: Bound on cached charge signatures.  A run touches a few hundred
#: (topology, length, bits) combinations; adversarial sweeps over many
#: machine sizes could otherwise grow the memo without limit, so on
#: overflow the whole memo is dropped (recomputation is cheap and exact).
_CHARGE_CACHE_CAP = 4096

#: Memoised bit tuples for doubling sweeps, keyed by operation length.
_DOUBLING_BITS: dict = {}

_DOUBLING_BITS_CAP = 512

# Live cache sizes, sampled by the shared registry at snapshot time so the
# --verbose table and trace exports show every memo in one place.
register_gauge("charge_cache.size", lambda: len(_CHARGE_CACHE))
register_gauge("charge_cache.doubling_bits", lambda: len(_DOUBLING_BITS))


_T = TypeVar("_T")


def _charge_cache_put(key: tuple, value: _T) -> _T:
    if len(_CHARGE_CACHE) >= _CHARGE_CACHE_CAP:
        _CHARGE_CACHE.clear()
    _CHARGE_CACHE[key] = value
    return value


def clear_machine_caches() -> None:
    """Drop the cross-instance charge memos (see ``repro.machines.clear_caches``)."""
    _CHARGE_CACHE.clear()
    _DOUBLING_BITS.clear()


class Machine:
    """A simulated SIMD parallel machine with cost accounting.

    ``randomized`` switches the sorting substrate from deterministic
    bitonic networks to the Reif–Valiant-style randomized sort (Table 1's
    "expected" column): sorts then charge the *measured* round count of a
    Valiant two-phase routing simulation instead of the bitonic network.
    Only meaningful on hypercube-like topologies, where randomization buys
    an asymptotic improvement.
    """

    def __init__(self, topology: Topology, *, randomized: bool = False) -> None:
        self.topology = topology
        self.metrics = Metrics()
        self.randomized = randomized
        self._rand_calls = 0
        # Cross-instance charge-parameter memo key for this topology.
        self._sig = (
            type(topology),
            topology.n_pe,
            getattr(topology, "scheme", None),
        )

    # ------------------------------------------------------------------
    @property
    def n_pe(self) -> int:
        return self.topology.n_pe

    @property
    def name(self) -> str:
        return self.topology.name

    def phase(self, label: str) -> AbstractContextManager[Metrics]:
        """Context manager attributing charges to ``label``."""
        return self.metrics.phase(label)

    def reset(self) -> None:
        self.metrics.reset()

    # ------------------------------------------------------------------
    # Cost charges
    # ------------------------------------------------------------------
    def _slots_per_pe(self, length: int) -> int:
        if isinstance(self.topology, SerialTopology):
            return length
        return max(1, length // self.n_pe)

    def local(self, length: int, count: int = 1) -> None:
        """Charge ``count`` local rounds of an operation over ``length`` slots.

        With ``c`` slots per PE a lockstep round costs ``c`` (each PE handles
        its slots serially); on the serial machine it costs ``length``.
        """
        self.metrics.charge_local(count * self._slots_per_pe(length))

    def exchange(self, length: int, bit: int, count: int = 1) -> None:
        """Charge ``count`` lockstep exchange/shift rounds at slot bit ``bit``.

        All PEs exchange simultaneously with the partner whose rank differs
        in the corresponding rank bit; the round costs the link distance
        (times the slots-per-PE factor for virtualised operations).
        """
        cached = _CHARGE_CACHE.get(("x", self._sig, bit, length))
        if cached is None:
            c = self._slots_per_pe(length)
            dist = self.topology.slot_exchange_distance(bit, length)
            cached = _charge_cache_put(("x", self._sig, bit, length), (c, dist))
        c, dist = cached
        if dist <= 0:
            # Intra-PE data motion: a local round.
            self.metrics.charge_local(count * c)
        else:
            self.metrics.charge_comm(dist * c, rounds=count)

    def monotone_route(self, length: int) -> None:
        """Charge an order-preserving (concentration) route over ``length``.

        A monotone route crosses each rank-bit dimension at most once with
        no congestion, so its cost is the sum of per-bit exchange distances:
        ``Theta(sqrt(n))`` on the mesh, ``Theta(log n)`` on the hypercube,
        1 on the PRAM.  The per-bit legs are aggregated into one charge
        (all distances are integer-valued, so the total is bit-identical
        to charging the legs individually).
        """
        cached = _CHARGE_CACHE.get(("r", self._sig, length))
        if cached is None:
            c = self._slots_per_pe(length)
            bits = max(1, length.bit_length() - 1)
            cost = sum(
                max(self.topology.slot_exchange_distance(b, length), 1.0) * c
                for b in range(bits)
            )
            cached = _charge_cache_put(("r", self._sig, length), (cost, bits))
        cost, bits = cached
        self.metrics.charge_comm_total(cost, bits)

    def exchange_sweep(self, length: int, bits: tuple) -> None:
        """Charge one exchange round per bit in ``bits``, aggregated.

        Bit-identical to ``for b in bits: self.exchange(length, b)``: the
        per-leg costs are integer-valued, so summing them before charging
        changes neither the totals nor the local/comm split.
        """
        key = ("s", self._sig, length, bits)
        cached = _CHARGE_CACHE.get(key)
        if cached is None:
            c = self._slots_per_pe(length)
            loc = 0
            cost = 0.0
            rounds = 0
            for b in bits:
                dist = self.topology.slot_exchange_distance(b, length)
                if dist <= 0:
                    loc += c
                else:
                    cost += dist * c
                    rounds += 1
            cached = _charge_cache_put(key, (loc, cost, rounds))
        loc, cost, rounds = cached
        if loc:
            self.metrics.charge_local(loc)
        if rounds:
            self.metrics.charge_comm_total(cost, rounds)

    def doubling_sweep(self, length: int) -> None:
        """Charge a recursive-doubling sweep (prefix/fill cost pattern):
        one exchange round at each bit ``0 .. log2(length) - 1``."""
        bits = _DOUBLING_BITS.get(length)
        if bits is None:
            if len(_DOUBLING_BITS) >= _DOUBLING_BITS_CAP:
                _DOUBLING_BITS.clear()
            bits = _DOUBLING_BITS[length] = tuple(
                range(max(0, length.bit_length() - 1))
            )
        self.exchange_sweep(length, bits)

    def long_shift(self, length: int, span: int) -> None:
        """Charge a lockstep shift/reversal across a span of ``span`` slots.

        Used for the half-reversal that turns two ascending runs into a
        bitonic sequence; cost is the topology distance across the span
        (``Theta(sqrt(span))`` mesh, ``Theta(log span)`` hypercube).
        """
        c = self._slots_per_pe(length)
        bits = max(1, span.bit_length() - 1)
        # Distance across a block of `span` slots: the highest bit dominates.
        dist = max(
            (self.topology.slot_exchange_distance(b, length) for b in range(bits)),
            default=1.0,
        )
        self.metrics.charge_comm(max(dist, 1.0) * c, rounds=1)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.topology!r}, time={self.metrics.time:g})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def mesh_machine(n_pe: int, scheme: str = "shuffled-row-major") -> Machine:
    """A mesh of size ``n_pe`` (must be a power of four), Section 2.2.

    ``scheme`` selects the Figure 2 indexing order the cost model assumes;
    the default gives the Thompson–Kung exchange distances.
    """
    return Machine(MeshTopology(n_pe, scheme))


def hypercube_machine(n_pe: int, *, randomized: bool = False) -> Machine:
    """A hypercube of size ``n_pe`` (must be a power of two), Section 2.3.

    ``randomized=True`` selects the expected-time sorting substrate
    (Reif–Valiant model): Table 1/3's "expected Theta(log n)" columns.
    """
    return Machine(HypercubeTopology(n_pe), randomized=randomized)


def ccc_machine(n_pe: int) -> Machine:
    """A cube-connected-cycles emulation of ``n_pe`` virtual nodes (Sec. 1
    remark; constant-slowdown for the normal algorithms used here)."""
    return Machine(CCCTopology(n_pe))


def shuffle_exchange_machine(n_pe: int) -> Machine:
    """A shuffle-exchange emulation of ``n_pe`` virtual nodes (Sec. 1
    remark)."""
    return Machine(ShuffleExchangeTopology(n_pe))


def pram_machine(n_pe: int) -> Machine:
    """A CREW PRAM with ``n_pe`` processors (baseline model)."""
    return Machine(PRAMTopology(n_pe))


def serial_machine() -> Machine:
    """A single-processor machine (serial baseline model)."""
    return Machine(SerialTopology())
