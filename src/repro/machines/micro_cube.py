"""A register-transfer-level hypercube simulator.

Companion to :mod:`repro.machines.micro`: ``2^q`` PEs that physically hold
register values, with one lockstep instruction per communication —
``exchange(dim)`` swaps a register with the neighbour across dimension
``dim`` (one link traversal for every PE simultaneously; the hypercube's
defining move).  Normal algorithms are written directly against it:

* recursive-doubling reduction and all-prefix (Theta(log n) rounds),
* broadcast from any node (Theta(log n)),
* Batcher bitonic sort (Theta(log^2 n) exchanges),

and the validation tests check the measured round counts equal the
abstract cost model's charges *exactly* — on the hypercube the model has
no geometry to abstract away, so the two must coincide, not merely track.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.typing import ArrayLike

from ..errors import MachineConfigurationError, OperationContractError
from .metrics import Metrics

#: Elementwise combiner applied by the normal-algorithm programs.
BinaryOp = Callable[[np.ndarray, np.ndarray], np.ndarray]

__all__ = ["MicroHypercube", "cube_broadcast", "cube_reduce", "cube_prefix",
           "cube_bitonic_sort"]


class MicroHypercube:
    """A hypercube of ``2^q`` PEs with named per-node registers."""

    def __init__(self, n_pe: int) -> None:
        if n_pe < 1 or (n_pe & (n_pe - 1)):
            raise MachineConfigurationError(
                f"hypercube size {n_pe} must be a power of two"
            )
        self.n_pe = n_pe
        self.dim = n_pe.bit_length() - 1
        self.registers: dict[str, np.ndarray] = {}
        self.metrics = Metrics()

    def load(self, name: str, values: ArrayLike) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self.n_pe,):
            raise OperationContractError(
                f"register needs shape ({self.n_pe},), got {arr.shape}"
            )
        self.registers[name] = arr.copy()

    def read(self, name: str) -> np.ndarray:
        return self.registers[name].copy()

    # ------------------------------------------------------------------
    def exchange(self, dst: str, src: str, dim: int) -> None:
        """One lockstep dimension exchange: every PE ``i`` receives
        ``src`` from PE ``i XOR 2^dim`` into ``dst`` (cost: 1 link)."""
        if not (0 <= dim < max(1, self.dim)):
            raise OperationContractError(
                f"dimension {dim} out of range for a {self.dim}-cube"
            )
        g = self.registers[src]
        partner = np.arange(self.n_pe) ^ (1 << dim)
        self.registers[dst] = g[partner].copy()
        self.metrics.charge_comm(1.0)

    def compute(self, dst: str, fn: Callable, *srcs: str) -> None:
        args = [self.registers[s] for s in srcs]
        self.registers[dst] = np.asarray(fn(*args), dtype=float)
        self.metrics.charge_local(1)


# ----------------------------------------------------------------------
# Normal-algorithm programs
# ----------------------------------------------------------------------
def cube_reduce(cube: MicroHypercube, reg: str,
                op: BinaryOp = np.minimum) -> None:
    """All-reduce: after ``q`` exchanges every PE holds the global ``op``."""
    for d in range(cube.dim):
        cube.exchange("_rd", reg, d)
        cube.compute(reg, op, reg, "_rd")


def cube_broadcast(cube: MicroHypercube, reg: str, source: int) -> None:
    """Broadcast PE ``source``'s value to all: ``q`` exchange rounds.

    Implemented as a reduce with a select-the-source operator: after
    dimension ``d``, the value has flooded the subcube agreeing with the
    source on the remaining dimensions.
    """
    n = cube.n_pe
    owner = np.zeros(n)
    owner[source] = 1.0
    cube.registers["_bc_own"] = owner
    cube.metrics.charge_local(1)
    for d in range(cube.dim):
        cube.exchange("_bc_v", reg, d)
        cube.exchange("_bc_o", "_bc_own", d)
        cube.compute(reg, lambda v, o, vi, oi: np.where(oi > 0, vi, v),
                     reg, "_bc_own", "_bc_v", "_bc_o")
        cube.compute("_bc_own", np.maximum, "_bc_own", "_bc_o")


def cube_prefix(cube: MicroHypercube, reg: str, op: BinaryOp = np.add) -> None:
    """Inclusive prefix over PE rank order (the classic hypercube scan).

    Maintains a running subcube total alongside the prefix: at dimension
    ``d``, partners exchange their subcube totals; PEs with rank bit ``d``
    set fold the partner subcube (all lower-ranked) into their prefix.
    """
    n = cube.n_pe
    ranks = np.arange(n)
    cube.compute("_sc_tot", lambda g: g, reg)
    for d in range(cube.dim):
        cube.exchange("_sc_in", "_sc_tot", d)
        has_bit = (ranks >> d) & 1 == 1

        def fold(prefix: np.ndarray, incoming: np.ndarray,
                 hb: np.ndarray = has_bit,
                 op: BinaryOp = op) -> np.ndarray:
            return np.where(hb, op(prefix, incoming), prefix)

        cube.compute(reg, fold, reg, "_sc_in")
        cube.compute("_sc_tot", op, "_sc_tot", "_sc_in")


def cube_bitonic_sort(cube: MicroHypercube, reg: str,
                      ascending: bool = True) -> None:
    """Batcher bitonic sort: ``q (q + 1) / 2`` dimension exchanges."""
    n = cube.n_pe
    ranks = np.arange(n)
    k = 2
    while k <= n:
        j = k >> 1
        while j >= 1:
            d = j.bit_length() - 1
            cube.exchange("_bs_in", reg, d)
            is_lower = (ranks & j) == 0
            if k == n:
                up = np.full(n, ascending)
            else:
                up = ((ranks & k) == 0) == ascending

            def ce(g: np.ndarray, other: np.ndarray,
                   lo: np.ndarray = is_lower,
                   up: np.ndarray = up) -> np.ndarray:
                keep_min = lo == up  # lower slot of an ascending pair
                return np.where(keep_min, np.fmin(g, other),
                                np.fmax(g, other))

            cube.compute(reg, ce, reg, "_bs_in")
            j >>= 1
        k <<= 1