"""A register-transfer-level mesh simulator (the "micro" machine).

The operation library in :mod:`repro.ops` charges costs through an abstract
model (rank-bit exchange distances).  This module provides the ground
truth that model abstracts: a mesh of PEs that *physically* hold register
values in a ``side x side`` grid and execute lockstep instructions

* ``shift`` — every PE sends a register to its north/south/east/west
  neighbour (one link traversal, one comm round), and
* ``compute`` — every PE applies a local function to its registers
  (one local round),

exactly the machine of Figure 1.  Classic SIMD-mesh programs are written
against it — broadcast, row/column reductions, prefix scans, odd-even
transposition row sorting, and shearsort — and the validation bench checks
that their measured round counts track the abstract model's charges
(broadcast/semigroup ``Theta(sqrt n)``) and exhibit the known
``Theta(sqrt n log n)`` shearsort vs ``Theta(sqrt n)`` bitonic gap.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from numpy.typing import ArrayLike

from ..errors import MachineConfigurationError, OperationContractError
from .metrics import Metrics

#: Elementwise combiner applied by the reduction/prefix programs.
#: ``np.ufunc`` objects (``np.minimum``, ``np.add``, ...) satisfy it.
BinaryOp = Callable[[np.ndarray, np.ndarray], np.ndarray]

__all__ = ["MicroMesh", "broadcast_micro", "reduce_rows", "reduce_all",
           "prefix_rows", "sort_rows_odd_even", "shearsort"]

_DIRECTIONS = ("north", "south", "east", "west")


class MicroMesh:
    """A ``side x side`` SIMD mesh with named grid registers."""

    def __init__(self, n_pe: int) -> None:
        side = math.isqrt(n_pe)
        if side * side != n_pe or (side & (side - 1)):
            raise MachineConfigurationError(
                f"mesh size {n_pe} must be a power of four"
            )
        self.side = side
        self.n_pe = n_pe
        self.registers: dict[str, np.ndarray] = {}
        self.metrics = Metrics()

    # ------------------------------------------------------------------
    def load(self, name: str, values: ArrayLike) -> None:
        """Install a register from a flat (row-major) or grid array."""
        arr = np.asarray(values, dtype=float)
        if arr.shape == (self.n_pe,):
            arr = arr.reshape(self.side, self.side)
        if arr.shape != (self.side, self.side):
            raise OperationContractError(
                f"register shape {arr.shape} does not fit a "
                f"{self.side}x{self.side} mesh"
            )
        self.registers[name] = arr.copy()

    def read(self, name: str) -> np.ndarray:
        """The register as a flat row-major array (host-side observation)."""
        return self.registers[name].reshape(-1).copy()

    # ------------------------------------------------------------------
    def shift(self, dst: str, src: str, direction: str,
              fill: float = np.nan) -> None:
        """One lockstep neighbour transfer: ``dst`` receives ``src`` from
        the PE in ``direction``; boundary PEs receive ``fill``."""
        if direction not in _DIRECTIONS:
            raise OperationContractError(f"unknown direction {direction!r}")
        g = self.registers[src]
        out = np.full_like(g, fill)
        if direction == "north":      # receive from the PE above
            out[1:, :] = g[:-1, :]
        elif direction == "south":
            out[:-1, :] = g[1:, :]
        elif direction == "west":     # receive from the PE to the left
            out[:, 1:] = g[:, :-1]
        else:
            out[:, :-1] = g[:, 1:]
        self.registers[dst] = out
        self.metrics.charge_comm(1.0)

    def compute(self, dst: str, fn: Callable, *srcs: str) -> None:
        """One local round: ``dst = fn(src_registers...)`` elementwise."""
        args = [self.registers[s] for s in srcs]
        self.registers[dst] = np.asarray(fn(*args), dtype=float)
        self.metrics.charge_local(1)

    def constant(self, dst: str, value: float) -> None:
        self.registers[dst] = np.full((self.side, self.side), float(value))
        self.metrics.charge_local(1)


# ----------------------------------------------------------------------
# Classic SIMD-mesh programs
# ----------------------------------------------------------------------
def broadcast_micro(mesh: MicroMesh, reg: str, row: int, col: int) -> None:
    """Broadcast the value at PE ``(row, col)`` to every PE: first along
    the source column, then along every row — ``2(side-1)`` shift rounds
    each way, the textbook ``Theta(sqrt n)`` broadcast."""
    side = mesh.side
    grid = mesh.registers[reg]
    mask = np.zeros((side, side))
    mask[row, col] = 1.0
    mesh.registers["_bc_mask"] = mask
    mesh.registers["_bc_val"] = grid * mask
    mesh.metrics.charge_local(1)
    for direction in ("north", "south"):
        for _ in range(side - 1):
            mesh.shift("_bc_in", "_bc_val", direction, fill=0.0)
            mesh.shift("_bc_mask_in", "_bc_mask", direction, fill=0.0)
            mesh.compute(
                "_bc_val",
                lambda v, m, vi, mi: np.where(mi > 0, vi, v),
                "_bc_val", "_bc_mask", "_bc_in", "_bc_mask_in",
            )
            mesh.compute("_bc_mask", np.maximum, "_bc_mask", "_bc_mask_in")
    for direction in ("east", "west"):
        for _ in range(side - 1):
            mesh.shift("_bc_in", "_bc_val", direction, fill=0.0)
            mesh.shift("_bc_mask_in", "_bc_mask", direction, fill=0.0)
            mesh.compute(
                "_bc_val",
                lambda v, m, vi, mi: np.where(mi > 0, vi, v),
                "_bc_val", "_bc_mask", "_bc_in", "_bc_mask_in",
            )
            mesh.compute("_bc_mask", np.maximum, "_bc_mask", "_bc_mask_in")
    mesh.registers[reg] = mesh.registers["_bc_val"]


def _shift_by(mesh: MicroMesh, dst: str, src: str, direction: str,
              distance: int, fill: float) -> None:
    """Move a register ``distance`` links in ``direction`` (that many
    lockstep single-link rounds)."""
    mesh.compute(dst, lambda g: g, src)
    for _ in range(distance):
        mesh.shift(dst, dst, direction, fill=fill)


def reduce_rows(mesh: MicroMesh, reg: str, op: BinaryOp = np.minimum,
                fill: float = np.inf) -> None:
    """Every PE ends with the ``op``-reduction of its whole row.

    A recursive-doubling butterfly along the row: at step ``d`` every PE
    combines with the partner whose column differs in bit ``log2 d``, a
    distance-``d`` transfer realised as ``d`` single-link shifts.  Total
    ``2 (side - 1)`` shift rounds; correct for any associative commutative
    ``op`` with identity ``fill``.
    """
    side = mesh.side
    cols = np.arange(side)[None, :]
    d = 1
    while d < side:
        _shift_by(mesh, "_rd_w", reg, "west", d, fill)   # from column c - d
        _shift_by(mesh, "_rd_e", reg, "east", d, fill)   # from column c + d
        take_west = (cols & d) != 0

        def combine(g: np.ndarray, w: np.ndarray, e: np.ndarray,
                    tw: np.ndarray = take_west,
                    op: BinaryOp = op) -> np.ndarray:
            return op(g, np.where(tw, w, e))

        mesh.compute(reg, combine, reg, "_rd_w", "_rd_e")
        d <<= 1


def reduce_cols(mesh: MicroMesh, reg: str, op: BinaryOp = np.minimum,
                fill: float = np.inf) -> None:
    """Column analogue of :func:`reduce_rows`."""
    side = mesh.side
    rows = np.arange(side)[:, None]
    d = 1
    while d < side:
        _shift_by(mesh, "_cd_n", reg, "north", d, fill)
        _shift_by(mesh, "_cd_s", reg, "south", d, fill)
        take_north = (rows & d) != 0

        def combine(g: np.ndarray, u: np.ndarray, v: np.ndarray,
                    tn: np.ndarray = take_north,
                    op: BinaryOp = op) -> np.ndarray:
            return op(g, np.where(tn, u, v))

        mesh.compute(reg, combine, reg, "_cd_n", "_cd_s")
        d <<= 1


def reduce_all(mesh: MicroMesh, reg: str, op: BinaryOp = np.minimum,
               fill: float = np.inf) -> None:
    """Every PE ends with the global reduction: rows, then columns —
    ``4 (side - 1)`` shift rounds, the textbook semigroup computation."""
    reduce_rows(mesh, reg, op, fill)
    reduce_cols(mesh, reg, op, fill)


def prefix_rows(mesh: MicroMesh, reg: str, op: BinaryOp = np.add,
                fill: float = 0.0) -> None:
    """Inclusive left-to-right prefix within every row.

    Hillis–Steele doubling: combine with the value ``d`` columns to the
    left for ``d = 1, 2, 4, ...`` — ``side - 1`` shift rounds total.
    ``fill`` must be the identity of ``op``.
    """
    d = 1
    while d < mesh.side:
        _shift_by(mesh, "_px", reg, "west", d, fill)
        mesh.compute(reg, op, reg, "_px")
        d <<= 1


def sort_rows_odd_even(mesh: MicroMesh, reg: str,
                       descending_mask: np.ndarray | None = None) -> None:
    """Odd-even transposition sort of every row, ``side`` phases.

    ``descending_mask[r]`` flips row ``r``'s direction (needed by
    shearsort's snake ordering).
    """
    side = mesh.side
    if descending_mask is None:
        descending_mask = np.zeros(side, dtype=bool)
    desc_col = descending_mask[:, None]
    cols = np.arange(side)[None, :]
    for phase in range(side):
        start = phase % 2
        left_mask = ((cols % 2) == start) & (cols + 1 < side)
        mesh.shift("_oe_r", reg, "east", fill=np.nan)   # value to the right
        mesh.shift("_oe_l", reg, "west", fill=np.nan)   # value to the left

        def step(g: np.ndarray, right: np.ndarray,
                 left: np.ndarray) -> np.ndarray:
            lo = np.where(desc_col, np.fmax(g, right), np.fmin(g, right))
            hi = np.where(desc_col, np.fmin(g, left), np.fmax(g, left))
            out = np.where(left_mask, lo, g)
            right_mask = np.roll(left_mask, 1, axis=1) & (cols > 0)
            out = np.where(right_mask, hi, out)
            return out

        mesh.compute(reg, step, reg, "_oe_r", "_oe_l")


def shearsort(mesh: MicroMesh, reg: str) -> None:
    """Shearsort: snake-order sort in ``ceil(log2 side) + 1`` row/column
    phases — the simple ``Theta(sqrt(n) log n)`` mesh sort, a log factor
    off the Thompson–Kung bitonic bound (the validation bench measures
    exactly that gap)."""
    side = mesh.side
    snake = np.arange(side) % 2 == 1  # odd rows sort descending
    phases = max(1, side.bit_length() - 1) + 1
    for _ in range(phases):
        sort_rows_odd_even(mesh, reg, descending_mask=snake)
        _transpose(mesh, reg)
        sort_rows_odd_even(mesh, reg)
        _transpose(mesh, reg)
    sort_rows_odd_even(mesh, reg, descending_mask=snake)


def _transpose(mesh: MicroMesh, reg: str) -> None:
    """Logical transpose so column sorts reuse the row sorter.

    A physical mesh transpose is a fixed permutation route: fully
    pipelined XY routing delivers it in ``2 (side - 1)`` unit-distance
    lockstep rounds (cf. :mod:`repro.machines.mesh_routing`, where the
    measured transpose rounds are exactly diameter-bound).  We charge
    those rounds and exchange the axes.
    """
    mesh.registers[reg] = mesh.registers[reg].T.copy()
    mesh.metrics.charge_comm(1.0, rounds=2 * (mesh.side - 1))
