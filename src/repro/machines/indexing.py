"""PE indexing schemes for meshes and hypercubes (Figures 2 and 3).

The paper indexes mesh PEs in *proximity order* (the Peano–Hilbert scan
curve) because (1) consecutively indexed PEs are mesh neighbours, and (2)
the mesh subdivides recursively into submeshes of consecutively indexed PEs.
This module implements all four orders of Figure 2 — row-major, shuffled
row-major (Morton / Z-order), snake-like, and proximity (Hilbert) — plus the
binary reflected Gray code used to label hypercube nodes (Section 2.3), and
the locality metrics the Figure 2 benchmark reports.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from numpy.typing import ArrayLike

from ..errors import MachineConfigurationError

__all__ = [
    "row_major",
    "shuffled_row_major",
    "snake_like",
    "proximity",
    "SCHEMES",
    "IndexScheme",
    "gray_code",
    "gray_code_inverse",
    "gray_rank_to_node",
    "adjacency_fraction",
    "max_consecutive_distance",
    "is_recursively_decomposable",
]


class IndexScheme:
    """A bijection between ranks ``0..n-1`` and mesh coordinates.

    ``coords`` maps an array of ranks to ``(rows, cols)`` arrays;
    ``ranks`` is the inverse.  ``side`` is the mesh side length.
    """

    def __init__(self, name: str, side: int,
                 coords: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
                 ) -> None:
        self.name = name
        self.side = side
        self._coords = coords

    def coords(self, rank: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
        rank = np.asarray(rank, dtype=np.int64)
        return self._coords(rank)

    def all_coords(self) -> tuple[np.ndarray, np.ndarray]:
        return self.coords(np.arange(self.side * self.side))

    def rank_table(self) -> np.ndarray:
        """``table[r, c]`` = rank of the PE at row r, column c."""
        rows, cols = self.all_coords()
        table = np.empty((self.side, self.side), dtype=np.int64)
        table[rows, cols] = np.arange(self.side * self.side)
        return table


def _check_mesh_size(n: int) -> int:
    side = math.isqrt(n)
    if side * side != n or n < 1:
        raise MachineConfigurationError(f"mesh size {n} is not a perfect square")
    if side & (side - 1):
        raise MachineConfigurationError(
            f"mesh side {side} must be a power of two (size a power of four)"
        )
    return side


def row_major(n: int) -> IndexScheme:
    """Figure 2a: rank = row * side + col."""
    side = _check_mesh_size(n)

    def coords(rank: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return rank // side, rank % side

    return IndexScheme("row-major", side, coords)


def snake_like(n: int) -> IndexScheme:
    """Figure 2c: row-major with odd rows reversed."""
    side = _check_mesh_size(n)

    def coords(rank: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        r = rank // side
        c = rank % side
        c = np.where(r % 2 == 1, side - 1 - c, c)
        return r, c

    return IndexScheme("snake-like", side, coords)


def _deinterleave(v: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Split the even/odd bits of ``v`` into two integers."""
    even = np.zeros_like(v)
    odd = np.zeros_like(v)
    for b in range(bits):
        even |= ((v >> (2 * b)) & 1) << b
        odd |= ((v >> (2 * b + 1)) & 1) << b
    return even, odd


def shuffled_row_major(n: int) -> IndexScheme:
    """Figure 2b: bit-interleaved (Morton / Z-order) indexing.

    Rank bits alternate row/column bits, so rank bit ``j`` toggles row-or-
    column bit ``j // 2`` — the property that makes bitonic sort run in
    ``Theta(sqrt(n))`` mesh time (Thompson–Kung).
    """
    side = _check_mesh_size(n)
    bits = side.bit_length() - 1

    def coords(rank: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        col, row = _deinterleave(rank, bits)
        return row, col

    return IndexScheme("shuffled-row-major", side, coords)


def proximity(n: int) -> IndexScheme:
    """Figure 2d: proximity (Peano–Hilbert) order.

    Consecutive ranks are mesh neighbours and every aligned subsquare holds
    consecutive ranks — the two properties the paper relies on (Section 2.2).
    """
    side = _check_mesh_size(n)

    def coords(rank: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rank = rank.copy()
        x = np.zeros_like(rank)
        y = np.zeros_like(rank)
        t = rank
        s = 1
        while s < side:
            rx = (t // 2) & 1
            ry = (t ^ rx) & 1
            # Rotate quadrant.
            swap = ry == 0
            flip = swap & (rx == 1)
            x_f = np.where(flip, s - 1 - x, x)
            y_f = np.where(flip, s - 1 - y, y)
            x_new = np.where(swap, y_f, x_f)
            y_new = np.where(swap, x_f, y_f)
            x = x_new + s * rx
            y = y_new + s * ry
            t = t // 4
            s *= 2
        return y, x  # row = y, col = x

    return IndexScheme("proximity", side, coords)


SCHEMES: dict[str, Callable[[int], IndexScheme]] = {
    "row-major": row_major,
    "shuffled-row-major": shuffled_row_major,
    "snake-like": snake_like,
    "proximity": proximity,
}


# ----------------------------------------------------------------------
# Gray codes (Section 2.3)
# ----------------------------------------------------------------------
def gray_code(j: ArrayLike) -> np.ndarray:
    """Binary reflected Gray code ``G(j) = j XOR (j >> 1)``.

    Consecutive integers map to node labels differing in one bit, so
    consecutively *ranked* PEs are hypercube neighbours; and every aligned
    power-of-two block of ranks occupies a subcube.
    """
    j = np.asarray(j)
    return j ^ (j >> 1)


def gray_code_inverse(g: ArrayLike) -> np.ndarray:
    """Inverse of :func:`gray_code` (prefix-XOR of the bits)."""
    g = np.asarray(g).copy()
    shift = 1
    out = g.copy()
    # prefix XOR over bits; 64 suffices for int64 ranks
    while shift < 64:
        out ^= out >> shift
        shift *= 2
    return out


def gray_rank_to_node(rank: ArrayLike) -> np.ndarray:
    """Alias making call sites read naturally: rank -> physical node id."""
    return gray_code(rank)


# ----------------------------------------------------------------------
# Locality metrics (Figure 2 benchmark)
# ----------------------------------------------------------------------
def _consecutive_distances(scheme: IndexScheme) -> np.ndarray:
    n = scheme.side * scheme.side
    r, c = scheme.all_coords()
    return np.abs(np.diff(r)) + np.abs(np.diff(c))


def adjacency_fraction(scheme: IndexScheme) -> float:
    """Fraction of consecutive rank pairs that are mesh neighbours."""
    d = _consecutive_distances(scheme)
    return float(np.mean(d == 1))


def max_consecutive_distance(scheme: IndexScheme) -> int:
    """Worst-case mesh distance between consecutively ranked PEs."""
    return int(_consecutive_distances(scheme).max())


def is_recursively_decomposable(scheme: IndexScheme) -> bool:
    """Property 2 of proximity order: every aligned subsquare at every scale
    contains a consecutive block of ranks."""
    side = scheme.side
    table = scheme.rank_table()
    size = side
    while size >= 2:
        for r0 in range(0, side, size):
            for c0 in range(0, side, size):
                block = table[r0 : r0 + size, c0 : c0 + size].ravel()
                lo, hi = block.min(), block.max()
                if hi - lo + 1 != block.size:
                    return False
        size //= 2
    return True
