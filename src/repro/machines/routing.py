"""Store-and-forward packet routing on the hypercube.

The paper's expected-time results (Tables 1 and 3) rest on the randomized
sorting of Reif–Valiant, whose engine is Valiant's two-phase randomized
routing: send every packet to a *random* intermediate node, then to its
destination, e-cube style.  We reproduce that substrate with an honest
queueing simulation:

* one packet may cross each directed link per round,
* e-cube (dimension-order) forwarding: fix the lowest differing bit,
* FIFO arbitration by packet age.

Deterministic e-cube routing suffers ``Theta(sqrt(n))`` congestion on
adversarial permutations (the matrix-transpose permutation is the classic
example: whole subcubes funnel through single intermediate nodes), while
the two-phase randomized scheme delivers any permutation in ``O(log n)``
rounds with high probability — the gap the benchmark for the "expected"
columns demonstrates.  :func:`randomized_sort_rounds` models a
flashsort-style randomized sort as two routed phases plus ``O(log n)``
bookkeeping rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from ..errors import MachineConfigurationError, OperationContractError

__all__ = ["RoutingResult", "route_packets", "bit_reversal_permutation",
           "transpose_permutation", "randomized_sort_rounds"]


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of a routing simulation."""

    rounds: int          #: lockstep rounds until every packet arrived
    max_queue: int       #: largest per-node queue observed
    total_hops: int      #: sum of link traversals (work)


def bit_reversal_permutation(n: int) -> np.ndarray:
    """The adversarial permutation for dimension-order routing."""
    if n & (n - 1):
        raise MachineConfigurationError("n must be a power of two")
    bits = n.bit_length() - 1
    idx = np.arange(n)
    out = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        out |= ((idx >> b) & 1) << (bits - 1 - b)
    return out


def transpose_permutation(n: int) -> np.ndarray:
    """Swap the high and low halves of the node-index bits.

    The adversarial case for dimension-order (e-cube) routing: every packet
    of a source subcube funnels through one intermediate node, creating
    ``Theta(sqrt(n))`` queues.
    """
    if n & (n - 1):
        raise MachineConfigurationError("n must be a power of two")
    bits = n.bit_length() - 1
    h = bits // 2
    lo_mask = (1 << h) - 1
    idx = np.arange(n)
    return ((idx & lo_mask) << (bits - h)) | (idx >> h)


def _ecube_phase(cur: np.ndarray, dst: np.ndarray, order: np.ndarray,
                 max_rounds: int) -> tuple[int, int, int]:
    """Route all packets to their targets; returns (rounds, max_queue, hops).

    ``order`` breaks link contention (lower value wins — FIFO by age).
    Vectorised: each round computes every packet's desired link, and one
    packet per directed link advances.
    """
    n = len(cur)
    cur = cur.copy()
    rounds = 0
    hops = 0
    max_queue = int(np.bincount(cur, minlength=n).max()) if n else 0
    while True:
        pending = cur != dst
        if not pending.any():
            return rounds, max_queue, hops
        if rounds >= max_rounds:
            raise OperationContractError(
                f"routing did not converge within {max_rounds} rounds"
            )
        rounds += 1
        idx = np.flatnonzero(pending)
        diff = cur[idx] ^ dst[idx]
        bit = (diff & -diff).astype(np.int64)  # lowest differing bit
        link = cur[idx] * np.int64(2 * n) + bit  # directed link id
        # FIFO arbitration: sort by (link, age), first of each link moves.
        key = np.lexsort((order[idx], link))
        sorted_links = link[key]
        first = np.ones(len(key), dtype=bool)
        first[1:] = sorted_links[1:] != sorted_links[:-1]
        movers = idx[key[first]]
        cur[movers] ^= bit[np.searchsorted(idx, movers)]
        hops += len(movers)
        max_queue = max(max_queue, int(np.bincount(cur, minlength=n).max()))


def route_packets(destinations: ArrayLike, *, strategy: str = "ecube",
                  seed: int = 0,
                  max_rounds: int | None = None) -> RoutingResult:
    """Route packet ``i`` (starting at node ``i``) to ``destinations[i]``.

    ``strategy`` is ``"ecube"`` (deterministic dimension-order) or
    ``"valiant"`` (two-phase: random intermediate, then e-cube).
    """
    dst = np.asarray(destinations, dtype=np.int64)
    n = len(dst)
    if n & (n - 1):
        raise MachineConfigurationError("packet count must be a power of two")
    if sorted(dst.tolist()) != list(range(n)):
        raise OperationContractError("destinations must form a permutation")
    if max_rounds is None:
        max_rounds = 64 * max(1, n)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)  # tie-break identities
    start = np.arange(n, dtype=np.int64)
    if strategy == "ecube":
        r, q, h = _ecube_phase(start, dst, order, max_rounds)
        return RoutingResult(r, q, h)
    if strategy == "valiant":
        mid = rng.integers(0, n, size=n, dtype=np.int64)
        r1, q1, h1 = _ecube_phase(start, mid, order, max_rounds)
        r2, q2, h2 = _ecube_phase(mid, dst, order, max_rounds)
        return RoutingResult(r1 + r2, max(q1, q2), h1 + h2)
    raise OperationContractError(f"unknown strategy {strategy!r}")


def randomized_sort_rounds(n: int, *, seed: int = 0,
                           c_local: float = 3.0) -> float:
    """Modelled round count of a flashsort-style randomized hypercube sort.

    A random permutation is routed in two Valiant phases (splitter-directed
    delivery) plus ``c_local * log2 n`` rounds of local bookkeeping — the
    expected ``Theta(log n)`` behaviour of [Reif and Valiant 1987] that the
    paper's "expected" columns cite.  Returns the measured total.
    """
    if n < 2:
        return 1.0
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    res = route_packets(perm, strategy="valiant", seed=seed)
    return res.rounds + c_local * np.log2(n)
