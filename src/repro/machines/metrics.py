"""Parallel-time accounting for the simulated machines.

One *round* is a lockstep step in which every active PE either performs a
local operation (cost 1) or takes part in a communication whose cost is the
link distance travelled.  ``Metrics.time`` is the weighted total — the
quantity whose growth the paper's Theta-bounds describe — and ``rounds`` is
the unweighted count.  ``phases`` gives a per-label breakdown so benches can
report, e.g., how much of an envelope construction went into merging versus
prefix operations.

Wall-clock vs simulated time
----------------------------
``wall_time`` / ``wall_phases`` record *real host seconds* spent inside
:meth:`Metrics.phase` blocks, alongside the simulated charges.  The two are
deliberately independent: simulated time is accounting (a pure function of
the operation sequence), wall-clock is execution.  Host-side optimisations
(batched eigensolves, crossing caches) shrink ``wall_time`` while leaving
every simulated charge bit-identical — the invariant
``docs/cost_model.md`` documents and ``benchmarks/bench_wallclock.py``
tracks.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator, Protocol

__all__ = ["Metrics", "global_wall_phases", "reset_global_wall_phases",
           "set_trace_hook"]

class PhaseHook(Protocol):
    """Structural type of the span-trace hook (``repro.trace.tracer``)."""

    def begin_phase(self, label: str, metrics: Metrics) -> object: ...

    def end_phase(self, token: object) -> None: ...


#: The installed span-trace hook (``repro.trace.tracer.Tracer`` — or any
#: object with ``begin_phase(label, metrics) -> token`` and
#: ``end_phase(token)``).  ``None`` means tracing is disabled, and the
#: only cost :meth:`Metrics.phase` pays is this one ``None`` check.  The
#: hook *observes* the accumulator (reading charge deltas at entry/exit);
#: it must never mutate it — the sim-parity contract tested by
#: ``tests/trace/test_overhead_smoke.py``.
_TRACE_HOOK: PhaseHook | None = None


def set_trace_hook(hook: PhaseHook | None) -> None:
    """Install (or with ``None`` remove) the process-wide phase-span hook.

    Called by :func:`repro.trace.tracer.install`; the dependency points
    from the tracing layer into the machines layer, never back.
    """
    global _TRACE_HOOK
    _TRACE_HOOK = hook

#: Process-wide per-phase wall-clock, summed over every Metrics instance.
#: Each phase exit is counted exactly once (absorbing a sub-machine's
#: metrics into a parent does not re-count), so this is the true host cost
#: of each phase across an entire run — the number the benchmark harness
#: prints under --verbose.
_GLOBAL_WALL_PHASES: defaultdict[str, float] = defaultdict(float)  # repro: noqa RPR004 -- keyed by phase labels (small fixed vocabulary), wall-side only; cleared by reset_global_wall_phases()


def global_wall_phases() -> dict:
    """A copy of the process-wide per-phase wall-clock totals (seconds)."""
    return dict(_GLOBAL_WALL_PHASES)


def reset_global_wall_phases() -> None:
    _GLOBAL_WALL_PHASES.clear()


@dataclass
class Metrics:
    """Mutable accumulator of simulated parallel cost and host wall-clock."""

    time: float = 0.0
    rounds: int = 0
    comm_time: float = 0.0
    comm_rounds: int = 0
    local_rounds: int = 0
    wall_time: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_compile_seconds: float = 0.0
    phases: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    wall_phases: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    _phase_stack: list[list[Any]] = field(default_factory=list)

    def charge_local(self, count: int = 1) -> None:
        """Charge ``count`` lockstep local-computation rounds."""
        self.time += count
        self.rounds += count
        self.local_rounds += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1][0]] += count

    def charge_comm(self, distance: float, rounds: int = 1) -> None:
        """Charge a communication round spanning ``distance`` links."""
        self.charge_comm_total(distance * rounds, rounds)

    def charge_comm_total(self, cost: float, rounds: int) -> None:
        """Charge ``rounds`` communication rounds totalling ``cost``.

        Used to aggregate a deterministic sweep of exchanges (e.g. the
        per-bit legs of a monotone route) into one call.  All link
        distances in the cost model are integer-valued, so the aggregated
        total is bit-identical to charging the legs one by one.
        """
        self.time += cost
        self.rounds += rounds
        self.comm_time += cost
        self.comm_rounds += rounds
        if self._phase_stack:
            self.phases[self._phase_stack[-1][0]] += cost

    def note_plan(self, hit: bool, compile_seconds: float = 0.0) -> None:
        """Record one movement-plan cache lookup (host-side diagnostics).

        Plan counters are execution bookkeeping like ``wall_time``, not
        simulated charges: they are excluded from the bit-identity
        comparison (``repro.verify.compare.sim_snapshot``).
        """
        if hit:
            self.plan_hits += 1
        else:
            self.plan_misses += 1
            self.plan_compile_seconds += compile_seconds

    @contextmanager
    def phase(self, label: str) -> Iterator[Metrics]:
        """Attribute costs charged inside the block to ``label``.

        Simulated charges go to ``phases[label]``; real elapsed host time
        goes to ``wall_phases[label]`` (self time: nested phases are
        attributed to the inner label, as with simulated charges) and, for
        outermost phases, to ``wall_time``.
        """
        hook = _TRACE_HOOK
        span = hook.begin_phase(label, self) if hook is not None else None
        frame = [label, 0.0]  # label, accumulated child wall time
        self._phase_stack.append(frame)
        start = perf_counter()
        try:
            yield self
        finally:
            elapsed = perf_counter() - start
            self._phase_stack.pop()
            self_time = elapsed - frame[1]
            self.wall_phases[label] += self_time
            _GLOBAL_WALL_PHASES[label] += self_time
            if self._phase_stack:
                self._phase_stack[-1][1] += elapsed
            else:
                self.wall_time += elapsed
            if span is not None:
                hook.end_phase(span)

    # ------------------------------------------------------------------
    # Absorbing sub-machine accumulators
    # ------------------------------------------------------------------
    # Every field of this dataclass belongs to exactly one of two groups,
    # and each group has exactly one absorption path:
    #
    # * **simulated charges** (time, rounds, comm/local splits, phases) —
    #   carried only by :meth:`absorb_sim`;
    # * **host-side bookkeeping** (wall_time, wall_phases, plan counters) —
    #   carried only by :meth:`absorb_wall`.
    #
    # :meth:`absorb` is exactly ``absorb_sim + absorb_wall`` — it adds
    # nothing of its own, so no field can ever be carried twice (or be
    # carried by one path and silently dropped by the other).  The
    # partition is enforced by ``tests/machines/test_metrics_contract.py``,
    # which introspects the dataclass fields: adding a field without
    # assigning it to one of the two paths fails that test.
    def absorb_sim(self, other: "Metrics") -> None:
        """Add only the simulated charges of another accumulator."""
        self.time += other.time
        self.rounds += other.rounds
        self.comm_time += other.comm_time
        self.comm_rounds += other.comm_rounds
        self.local_rounds += other.local_rounds
        for k, v in other.phases.items():
            self.phases[k] += v

    def absorb(self, other: "Metrics") -> None:
        """Add another accumulator's simulated charges *and* host-side
        bookkeeping (``absorb_sim`` followed by ``absorb_wall``)."""
        self.absorb_sim(other)
        self.absorb_wall(other)

    def absorb_wall(self, other: "Metrics") -> None:
        """Add only the host-side bookkeeping of another accumulator:
        wall-clock, per-phase wall-clock, and plan-cache counters.

        Parallel composition takes the *maximum* simulated time over
        siblings but the host executed every sibling serially, so the
        non-dominant siblings contribute wall-clock (and plan lookups)
        without simulated time.
        """
        self.wall_time += other.wall_time
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_compile_seconds += other.plan_compile_seconds
        for k, v in other.wall_phases.items():
            self.wall_phases[k] += v

    def reset(self) -> None:
        self.time = 0.0
        self.rounds = 0
        self.comm_time = 0.0
        self.comm_rounds = 0
        self.local_rounds = 0
        self.wall_time = 0.0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_compile_seconds = 0.0
        self.phases.clear()
        self.wall_phases.clear()
        self._phase_stack.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        return {
            "time": self.time,
            "rounds": self.rounds,
            "comm_time": self.comm_time,
            "comm_rounds": self.comm_rounds,
            "local_rounds": self.local_rounds,
            "wall_time": self.wall_time,
            "plan_cache": {
                "hits": self.plan_hits,
                "misses": self.plan_misses,
                "compile_seconds": self.plan_compile_seconds,
            },
            "phases": dict(self.phases),
            "wall_phases": dict(self.wall_phases),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Metrics":
        """Rebuild an accumulator from :meth:`snapshot` output.

        The inverse used by trace/benchmark consumers that aggregate
        serialized snapshots; ``m.from_snapshot(m.snapshot())`` round-trips
        every field exactly (``tests/machines/test_metrics_contract.py``).
        """
        plan = snap.get("plan_cache", {})
        m = cls(
            time=snap["time"],
            rounds=snap["rounds"],
            comm_time=snap["comm_time"],
            comm_rounds=snap["comm_rounds"],
            local_rounds=snap["local_rounds"],
            wall_time=snap.get("wall_time", 0.0),
            plan_hits=plan.get("hits", 0),
            plan_misses=plan.get("misses", 0),
            plan_compile_seconds=plan.get("compile_seconds", 0.0),
        )
        m.phases.update(snap.get("phases", {}))
        m.wall_phases.update(snap.get("wall_phases", {}))
        return m
