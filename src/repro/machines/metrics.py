"""Parallel-time accounting for the simulated machines.

One *round* is a lockstep step in which every active PE either performs a
local operation (cost 1) or takes part in a communication whose cost is the
link distance travelled.  ``Metrics.time`` is the weighted total — the
quantity whose growth the paper's Theta-bounds describe — and ``rounds`` is
the unweighted count.  ``phases`` gives a per-label breakdown so benches can
report, e.g., how much of an envelope construction went into merging versus
prefix operations.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Mutable accumulator of simulated parallel cost."""

    time: float = 0.0
    rounds: int = 0
    comm_time: float = 0.0
    comm_rounds: int = 0
    local_rounds: int = 0
    phases: dict = field(default_factory=lambda: defaultdict(float))
    _phase_stack: list = field(default_factory=list)

    def charge_local(self, count: int = 1) -> None:
        """Charge ``count`` lockstep local-computation rounds."""
        self.time += count
        self.rounds += count
        self.local_rounds += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1]] += count

    def charge_comm(self, distance: float, rounds: int = 1) -> None:
        """Charge a communication round spanning ``distance`` links."""
        cost = distance * rounds
        self.time += cost
        self.rounds += rounds
        self.comm_time += cost
        self.comm_rounds += rounds
        if self._phase_stack:
            self.phases[self._phase_stack[-1]] += cost

    @contextmanager
    def phase(self, label: str):
        """Attribute costs charged inside the block to ``label``."""
        self._phase_stack.append(label)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def reset(self) -> None:
        self.time = 0.0
        self.rounds = 0
        self.comm_time = 0.0
        self.comm_rounds = 0
        self.local_rounds = 0
        self.phases.clear()
        self._phase_stack.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        return {
            "time": self.time,
            "rounds": self.rounds,
            "comm_time": self.comm_time,
            "comm_rounds": self.comm_rounds,
            "local_rounds": self.local_rounds,
            "phases": dict(self.phases),
        }
