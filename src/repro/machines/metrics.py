"""Parallel-time accounting for the simulated machines.

One *round* is a lockstep step in which every active PE either performs a
local operation (cost 1) or takes part in a communication whose cost is the
link distance travelled.  ``Metrics.time`` is the weighted total — the
quantity whose growth the paper's Theta-bounds describe — and ``rounds`` is
the unweighted count.  ``phases`` gives a per-label breakdown so benches can
report, e.g., how much of an envelope construction went into merging versus
prefix operations.

Wall-clock vs simulated time
----------------------------
``wall_time`` / ``wall_phases`` record *real host seconds* spent inside
:meth:`Metrics.phase` blocks, alongside the simulated charges.  The two are
deliberately independent: simulated time is accounting (a pure function of
the operation sequence), wall-clock is execution.  Host-side optimisations
(batched eigensolves, crossing caches) shrink ``wall_time`` while leaving
every simulated charge bit-identical — the invariant
``docs/cost_model.md`` documents and ``benchmarks/bench_wallclock.py``
tracks.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

__all__ = ["Metrics", "global_wall_phases", "reset_global_wall_phases"]

#: Process-wide per-phase wall-clock, summed over every Metrics instance.
#: Each phase exit is counted exactly once (absorbing a sub-machine's
#: metrics into a parent does not re-count), so this is the true host cost
#: of each phase across an entire run — the number the benchmark harness
#: prints under --verbose.
_GLOBAL_WALL_PHASES: dict = defaultdict(float)


def global_wall_phases() -> dict:
    """A copy of the process-wide per-phase wall-clock totals (seconds)."""
    return dict(_GLOBAL_WALL_PHASES)


def reset_global_wall_phases() -> None:
    _GLOBAL_WALL_PHASES.clear()


@dataclass
class Metrics:
    """Mutable accumulator of simulated parallel cost and host wall-clock."""

    time: float = 0.0
    rounds: int = 0
    comm_time: float = 0.0
    comm_rounds: int = 0
    local_rounds: int = 0
    wall_time: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_compile_seconds: float = 0.0
    phases: dict = field(default_factory=lambda: defaultdict(float))
    wall_phases: dict = field(default_factory=lambda: defaultdict(float))
    _phase_stack: list = field(default_factory=list)

    def charge_local(self, count: int = 1) -> None:
        """Charge ``count`` lockstep local-computation rounds."""
        self.time += count
        self.rounds += count
        self.local_rounds += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1][0]] += count

    def charge_comm(self, distance: float, rounds: int = 1) -> None:
        """Charge a communication round spanning ``distance`` links."""
        self.charge_comm_total(distance * rounds, rounds)

    def charge_comm_total(self, cost: float, rounds: int) -> None:
        """Charge ``rounds`` communication rounds totalling ``cost``.

        Used to aggregate a deterministic sweep of exchanges (e.g. the
        per-bit legs of a monotone route) into one call.  All link
        distances in the cost model are integer-valued, so the aggregated
        total is bit-identical to charging the legs one by one.
        """
        self.time += cost
        self.rounds += rounds
        self.comm_time += cost
        self.comm_rounds += rounds
        if self._phase_stack:
            self.phases[self._phase_stack[-1][0]] += cost

    def note_plan(self, hit: bool, compile_seconds: float = 0.0) -> None:
        """Record one movement-plan cache lookup (host-side diagnostics).

        Plan counters are execution bookkeeping like ``wall_time``, not
        simulated charges: they are excluded from the bit-identity
        comparison (``repro.verify.compare.sim_snapshot``).
        """
        if hit:
            self.plan_hits += 1
        else:
            self.plan_misses += 1
            self.plan_compile_seconds += compile_seconds

    @contextmanager
    def phase(self, label: str):
        """Attribute costs charged inside the block to ``label``.

        Simulated charges go to ``phases[label]``; real elapsed host time
        goes to ``wall_phases[label]`` (self time: nested phases are
        attributed to the inner label, as with simulated charges) and, for
        outermost phases, to ``wall_time``.
        """
        frame = [label, 0.0]  # label, accumulated child wall time
        self._phase_stack.append(frame)
        start = perf_counter()
        try:
            yield self
        finally:
            elapsed = perf_counter() - start
            self._phase_stack.pop()
            self_time = elapsed - frame[1]
            self.wall_phases[label] += self_time
            _GLOBAL_WALL_PHASES[label] += self_time
            if self._phase_stack:
                self._phase_stack[-1][1] += elapsed
            else:
                self.wall_time += elapsed

    def absorb(self, other: "Metrics") -> None:
        """Add another accumulator's simulated charges and wall-clock."""
        self.time += other.time
        self.rounds += other.rounds
        self.comm_time += other.comm_time
        self.comm_rounds += other.comm_rounds
        self.local_rounds += other.local_rounds
        for k, v in other.phases.items():
            self.phases[k] += v
        self.absorb_wall(other)

    def absorb_wall(self, other: "Metrics") -> None:
        """Add only the wall-clock component of another accumulator.

        Parallel composition takes the *maximum* simulated time over
        siblings but the host executed every sibling serially, so the
        non-dominant siblings contribute wall-clock without simulated time.
        """
        self.wall_time += other.wall_time
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_compile_seconds += other.plan_compile_seconds
        for k, v in other.wall_phases.items():
            self.wall_phases[k] += v

    def reset(self) -> None:
        self.time = 0.0
        self.rounds = 0
        self.comm_time = 0.0
        self.comm_rounds = 0
        self.local_rounds = 0
        self.wall_time = 0.0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_compile_seconds = 0.0
        self.phases.clear()
        self.wall_phases.clear()
        self._phase_stack.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy for reporting."""
        return {
            "time": self.time,
            "rounds": self.rounds,
            "comm_time": self.comm_time,
            "comm_rounds": self.comm_rounds,
            "local_rounds": self.local_rounds,
            "wall_time": self.wall_time,
            "plan_cache": {
                "hits": self.plan_hits,
                "misses": self.plan_misses,
                "compile_seconds": self.plan_compile_seconds,
            },
            "phases": dict(self.phases),
            "wall_phases": dict(self.wall_phases),
        }
