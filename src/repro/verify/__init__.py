"""repro.verify — the repo's correctness tooling layer.

The paper (Tables 1–3) claims Theta-bounds with no empirical section, so
this reproduction's credibility rests on two mechanically checkable facts:

1. **Differential equivalence** (:mod:`repro.verify.oracle`): every dynamic
   algorithm computes the *same geometry* on the mesh machine, the
   hypercube machine, the CREW PRAM baseline, and the serial (Atallah)
   baseline — with the host-side fast-combine path both on and off, where
   additionally every simulated charge must be bit-identical.
2. **Theta-conformance** (:mod:`repro.verify.scaling`): measured simulated
   parallel time scales as the bounds predict —
   ``Theta(lambda^{1/2}(n, s))`` on the mesh, ``Theta(log^2 n)`` on the
   hypercube — with fitted exponents pinned as golden JSON with tolerance
   bands.
3. **Update parity** (:mod:`repro.verify.incremental`): the incremental
   engine's maintained envelope is *byte-identical* to a cold serial
   recompute after every insert/delete/retarget of a seeded update
   script (exact within the robust-kind domain; see the module
   docstring for the degeneracy boundary).

Adversarial instances come from :mod:`repro.verify.generators`
(tangencies, coincident trajectories, breakpoint ties, degree-boundary
coefficients), usable both as seeded deterministic builders (the oracle's
fuzz campaign) and as Hypothesis strategies (the property tests under
``tests/``).  Divergent instances serialize to ``tests/corpus/`` for
one-command replay; see ``docs/verification.md`` and
``python -m repro.verify --help``.
"""

from .compare import canonicalize, outputs_match, sim_snapshot
from .diffs import render_diff, scalar_diff
from .generators import (
    CURVE_KINDS,
    SYSTEM_KINDS,
    curves_from_json,
    curves_to_json,
    make_curves,
    make_system,
    system_from_json,
    system_to_json,
)
from .incremental import (
    UPDATE_KINDS,
    UpdateCampaignResult,
    make_update_script,
    replay_update,
    run_update_instance,
    update_campaign,
)
from .oracle import ALGORITHMS, BACKENDS, CampaignResult, campaign, replay, run_instance
from .scaling import (
    DEFAULT_GOLDEN_PATH,
    SCALING_TARGETS,
    check_scaling,
    fit_scaling,
    update_golden,
)

__all__ = [
    "ALGORITHMS", "BACKENDS", "CampaignResult", "campaign", "replay",
    "run_instance",
    "CURVE_KINDS", "SYSTEM_KINDS", "make_curves", "make_system",
    "curves_to_json", "curves_from_json", "system_to_json",
    "system_from_json",
    "canonicalize", "outputs_match", "sim_snapshot",
    "render_diff", "scalar_diff",
    "DEFAULT_GOLDEN_PATH", "SCALING_TARGETS", "check_scaling", "fit_scaling",
    "update_golden",
    "UPDATE_KINDS", "UpdateCampaignResult", "make_update_script",
    "replay_update", "run_update_instance", "update_campaign",
]
