"""The incremental-update oracle: every update, byte-identical envelopes.

The incremental engine (:mod:`repro.incremental`) promises more than
tolerance-level agreement: after **any** sequence of
insert/delete/retarget updates its maintained envelope must be
*byte-identical* — same piece boundaries, same coefficients, same
labels, to the last bit — to a cold :func:`repro.core.envelope
.envelope_serial` run over the surviving curves.  This module fuzzes
that contract with seeded update scripts and compares canonical JSON
bytes (:func:`repro.incremental.envelope_bytes`) after every step.

Scripts are a pure function of their seed: the base family, the number
of updates, each action and its operands all come from one
``np.random.default_rng(seed)`` stream, so a failing seed replays
exactly — and a serialized failure replays with no RNG at all
(coefficients ride in the corpus record).

Script kinds cycle over the generator families whose crossing structure
is *robust*: ``random``, ``duplicate``, ``tangent`` and
``degree_boundary``.  The engineered multi-way-coincident kinds
(``tie``, ``near_degenerate``) are excluded by design: at a k-way
coincident crossing the serial oracle's own output depends on its
divide-and-conquer merge history (hairline 2-ulp boundary gaps), which
no history-free maintained structure can replay.  That boundary is
documented in ``docs/incremental.md``; within it, parity is exact and
this campaign holds the line.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..incremental import IncrementalEnvelope, envelope_bytes
from .generators import make_curves
from .oracle import DEFAULT_CORPUS_DIR

__all__ = ["UPDATE_KINDS", "UpdateReport", "UpdateCampaignResult",
           "make_update_script", "run_update_instance", "update_campaign",
           "replay_update", "save_update_failure"]

#: Generator kinds with robust (non-multi-way-coincident) crossing
#: structure — the domain of the exact byte-parity contract.
UPDATE_KINDS = ("random", "duplicate", "tangent", "degree_boundary")

_ACTIONS = ("insert", "delete", "retarget")


def make_update_script(seed: int, *, s: int = 2, base_lo: int = 3,
                       base_hi: int = 10, steps_lo: int = 6,
                       steps_hi: int = 14) -> dict:
    """One seeded update script: base family plus an action sequence.

    Deterministic in ``(seed, s, bounds)``.  Inserted curves are drawn
    from the same generator family as the base (fresh sub-seeds), delete
    and retarget targets are chosen by *position* among the live ids at
    that step — so the script is replayable against a fresh engine
    without recording ids.
    """
    kind = UPDATE_KINDS[seed % len(UPDATE_KINDS)]
    rng = np.random.default_rng(seed)
    n = int(rng.integers(base_lo, base_hi + 1))
    steps = int(rng.integers(steps_lo, steps_hi + 1))
    base = make_curves(kind, seed, n=n, s=s)
    degree = max([s] + [c.degree for c in base])
    script = []
    live = n  # mirror of the engine's population size
    fresh = 0
    for _ in range(steps):
        action = _ACTIONS[int(rng.integers(0, 3))] if live else "insert"
        if action == "insert":
            sub = seed * 1000 + fresh + 1
            fresh += 1
            curve = make_curves(kind, sub, n=1, s=s)[0]
            script.append({"action": "insert",
                           "coeffs": [float(c) for c in curve._cl]})
            live += 1
        else:
            pos = int(rng.integers(0, live))
            if action == "delete":
                script.append({"action": "delete", "pos": pos})
                live -= 1
            else:
                sub = seed * 1000 + fresh + 1
                fresh += 1
                curve = make_curves(kind, sub, n=1, s=s)[0]
                script.append({"action": "retarget", "pos": pos,
                               "coeffs": [float(c) for c in curve._cl]})
    return {
        "kind": kind, "seed": seed, "n": n, "s": degree,
        "op": "min" if seed % 2 == 0 else "max",
        "base": [[float(c) for c in f._cl] for f in base],
        "script": script,
    }


@dataclass
class UpdateReport:
    """Parity verdict for one seeded update script."""

    kind: str
    seed: int
    ok: bool
    steps: int
    #: 1-based index of the first diverging update (0: the bootstrap
    #: itself diverged; None: no divergence).
    failed_step: int | None = None
    mismatch: str | None = None
    script_json: dict | None = None


@dataclass
class UpdateCampaignResult:
    reports: list[UpdateReport]
    corpus_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def failures(self) -> list[UpdateReport]:
        return [r for r in self.reports if not r.ok]

    def summary(self) -> dict:
        per: dict[str, dict] = {}
        for r in self.reports:
            stat = per.setdefault(r.kind, {"instances": 0, "failed": 0})
            stat["instances"] += 1
            stat["failed"] += not r.ok
        return per


def _first_diff(got: bytes, want: bytes) -> str:
    """A short human-readable locator for the first differing byte."""
    n = min(len(got), len(want))
    at = next((i for i in range(n) if got[i] != want[i]), n)
    lo, hi = max(0, at - 40), at + 40
    return (f"first differing byte at offset {at}: "
            f"incremental ...{got[lo:hi]!r}... vs "
            f"reference ...{want[lo:hi]!r}...")


def _apply_step(engine: IncrementalEnvelope, step: dict) -> None:
    if step["action"] == "insert":
        engine.insert(step["coeffs"])
        return
    ids = engine.ids()
    if step["action"] == "delete":
        engine.delete(ids[step["pos"]])
    else:
        engine.retarget(ids[step["pos"]], step["coeffs"])


def run_update_instance(seed: int, *, check_each: bool = True,
                        script: dict | None = None) -> UpdateReport:
    """Replay one update script, checking byte parity along the way.

    ``check_each`` compares after the bootstrap and after every update
    (the campaign default); ``False`` checks the final state only (the
    benchmark's cheaper in-run assertion).
    """
    if script is None:
        script = make_update_script(seed)
    engine = IncrementalEnvelope(s=script["s"], op=script["op"])
    engine.reset(script["base"])

    def parity() -> str | None:
        got = engine.canonical_bytes()
        want = envelope_bytes(engine.recompute_reference())
        return None if got == want else _first_diff(got, want)

    steps = len(script["script"])
    if check_each:
        mism = parity()
        if mism:
            return UpdateReport(script["kind"], script["seed"], False, steps,
                                failed_step=0, mismatch=mism,
                                script_json=script)
    for i, step in enumerate(script["script"], start=1):
        _apply_step(engine, step)
        if check_each:
            mism = parity()
            if mism:
                return UpdateReport(script["kind"], script["seed"], False,
                                    steps, failed_step=i,
                                    mismatch=f"after {step['action']}: {mism}",
                                    script_json=script)
    if not check_each:
        mism = parity()
        if mism:
            return UpdateReport(script["kind"], script["seed"], False, steps,
                                failed_step=steps, mismatch=mism,
                                script_json=script)
    return UpdateReport(script["kind"], script["seed"], True, steps)


def save_update_failure(report: UpdateReport,
                        corpus_dir=DEFAULT_CORPUS_DIR) -> str:
    """Serialize a diverging script for one-command, RNG-free replay."""
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    record = {
        "algorithm": "incremental",
        "kind": report.kind,
        "seed": report.seed,
        "failed_step": report.failed_step,
        "mismatch": report.mismatch,
        **(report.script_json or {}),
    }
    path = corpus_dir / (
        f"incremental-{report.kind}-seed{report.seed}.json"
    )
    path.write_text(json.dumps(record, indent=2, default=str) + "\n")
    return str(path)


def replay_update(path) -> UpdateReport:
    """Re-run a serialized update script from its coefficients (no RNG)."""
    record = json.loads(pathlib.Path(path).read_text())
    return run_update_instance(record["seed"], script=record)


def _update_item(item: tuple) -> UpdateReport:
    """Worker entry point: one seeded script, rebuilt inside the worker.

    Module-level and a pure function of the seed, so campaign results
    are identical for every ``jobs`` value.
    """
    (seed,) = item
    return run_update_instance(seed)


def update_campaign(instances: int = 50, seed0: int = 0, corpus_dir=None,
                    progress: Callable[[str], None] | None = None,
                    jobs: int = 1) -> UpdateCampaignResult:
    """Byte-parity fuzzing over ``instances`` seeded update scripts.

    Seeds ``seed0 .. seed0+instances-1`` cycle the robust generator
    kinds; each script checks parity after the bootstrap and after every
    update.  ``jobs`` fans scripts out over worker processes
    (``repro.parallel``) with results merged in seed order — identical
    output for every ``jobs`` value.
    """
    from ..parallel import parallel_map

    items = [(seed0 + i,) for i in range(instances)]
    reports = list(parallel_map(_update_item, items, jobs=jobs))
    corpus_files = []
    for report in reports:
        if not report.ok and corpus_dir is not None:
            corpus_files.append(save_update_failure(report, corpus_dir))
    if progress:
        by_kind = {}
        for r in reports:
            ok, total = by_kind.get(r.kind, (0, 0))
            by_kind[r.kind] = (ok + r.ok, total + 1)
        for kind in sorted(by_kind):
            ok, total = by_kind[kind]
            progress(f"incremental/{kind}: {ok}/{total} byte-identical")
    return UpdateCampaignResult(reports=reports, corpus_files=corpus_files)
