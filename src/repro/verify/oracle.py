"""The differential oracle: one geometry, every backend, same answer.

For each registered dynamic algorithm, an instance is generated from a
seeded adversarial family (:mod:`repro.verify.generators`), the serial
baseline (``machine=None`` — the Atallah-style oracle path every algorithm
ships) computes the reference output, and the mesh machine, hypercube
machine and CREW PRAM baseline recompute it — each with the host-side
fast-combine path both **on** and **off**.  Checks, per backend:

* output equivalence to tolerance against the serial reference
  (:func:`repro.verify.compare.outputs_match` — value-based, so tie
  re-orderings and representation differences don't false-positive);
* **bit-identical** simulated metrics between fast-combine on and off
  (the PR-1 contract: execution strategy must not move simulated time).

The first divergent instance serializes to the failure corpus
(``tests/corpus/`` by default) as plain JSON carrying both the generator
coordinates ``(kind, seed, n)`` and the raw coefficients, so
``python -m repro.verify --replay <file>`` reproduces it with no RNG in
the loop.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.collision import collision_times
from ..core.containment import containment_intervals, smallest_enclosing_cube_ever
from ..core.envelope import envelope, envelope_serial, set_fast_combine
from ..core.family import PolynomialFamily
from ..core.hull_membership import hull_membership_intervals
from ..core.neighbors import closest_point_sequence, farthest_point_sequence
from ..core.pairs import closest_pair_sequence
from ..core.steady import (
    steady_closest_pair,
    steady_diameter_squared,
    steady_hull,
    steady_nearest_neighbor,
)
from ..machines.machine import hypercube_machine, mesh_machine, pram_machine
from ..trace.provenance import provenance_manifest
from ..trace.tracer import SIM_FIELDS, Tracer, trace_span
from .compare import TOL, outputs_match, sim_snapshot
from .generators import (
    curves_from_json,
    curves_to_json,
    make_curves,
    make_system,
    system_from_json,
    system_to_json,
)

__all__ = ["ALGORITHMS", "BACKENDS", "Algorithm", "Divergence",
           "InstanceReport", "CampaignResult", "run_instance", "campaign",
           "replay", "save_failure", "DEFAULT_CORPUS_DIR"]

#: Machine backends differentially tested against the serial baseline.
#: 64 PEs everywhere: outputs are machine-size independent (the engine caps
#: sub-machines at the parent's size), so small machines keep campaigns fast.
BACKENDS: dict[str, Callable] = {
    "mesh": lambda: mesh_machine(64),
    "hypercube": lambda: hypercube_machine(64),
    "pram": lambda: pram_machine(64),
}

DEFAULT_CORPUS_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "tests" / "corpus"
)


@dataclass(frozen=True)
class Algorithm:
    """A differentially tested dynamic algorithm.

    ``build(seed)`` returns the instance dict (generator coordinates plus
    live objects); ``run(machine_or_None, instance)`` computes the output
    on one backend (``None`` = the serial baseline).
    """

    name: str
    build: Callable[[int], dict]
    run: Callable[[object, dict], object]


def _poly_coeffs(poly) -> list[float]:
    return [float(c) for c in poly._cl]


# ----------------------------------------------------------------------
# Instance builders (all deterministic in the seed)
# ----------------------------------------------------------------------
_CURVE_CYCLE = ("random", "tangent", "duplicate", "tie", "degree_boundary",
                "near_degenerate")
_SYSTEM_CYCLE = ("random", "grazing", "symmetric", "parallel", "mixed_degree")


def _curve_instance(seed: int, *, s: int = 2, lo: int = 4, hi: int = 12) -> dict:
    kind = _CURVE_CYCLE[seed % len(_CURVE_CYCLE)]
    rng = np.random.default_rng(seed)
    n = int(rng.integers(lo, hi + 1))
    return {
        "domain": "curves", "kind": kind, "seed": seed, "n": n, "s": s,
        "params": {"op": "min" if seed % 2 == 0 else "max"},
        "curves": make_curves(kind, seed, n=n, s=s),
    }


def _system_instance(seed: int, *, kinds=_SYSTEM_CYCLE, k: int = 1,
                     lo: int = 5, hi: int = 10, params=None) -> dict:
    kind = kinds[seed % len(kinds)]
    rng = np.random.default_rng(seed)
    n = int(rng.integers(lo, hi + 1))
    inst = {
        "domain": "system", "kind": kind, "seed": seed, "n": n, "k": k,
        "params": dict(params(rng) if params else {}),
        "system": make_system(kind, seed, n=n, k=k),
    }
    return inst


def _containment_params(rng) -> dict:
    side = float(np.round(rng.uniform(10.0, 60.0) * 4) / 4)
    return {"box": [side, side]}


ALGORITHMS: dict[str, Algorithm] = {}  # repro: noqa RPR004 -- import-time registry of the fixed algorithm set, not a runtime cache


def _register(name, build, run):
    ALGORITHMS[name] = Algorithm(name, build, run)


_register(
    "envelope",
    _curve_instance,
    lambda m, inst: (
        envelope_serial(inst["curves"], PolynomialFamily(inst["s"]),
                        op=inst["params"]["op"])
        if m is None else
        envelope(m, inst["curves"], PolynomialFamily(inst["s"]),
                 op=inst["params"]["op"])
    ),
)
_register(
    "hull_membership",
    lambda seed: _system_instance(seed, lo=5, hi=8),
    lambda m, inst: hull_membership_intervals(m, inst["system"]),
)
_register(
    "closest_point",
    lambda seed: _system_instance(seed),
    lambda m, inst: closest_point_sequence(m, inst["system"]),
)
_register(
    "farthest_point",
    lambda seed: _system_instance(seed),
    lambda m, inst: farthest_point_sequence(m, inst["system"]),
)
_register(
    "closest_pair",
    lambda seed: _system_instance(seed, lo=4, hi=7),
    lambda m, inst: closest_pair_sequence(m, inst["system"]),
)
_register(
    "collision",
    lambda seed: _system_instance(
        seed, kinds=("crossing", "grazing", "random", "symmetric")
    ),
    lambda m, inst: collision_times(m, inst["system"]),
)
_register(
    "containment",
    lambda seed: _system_instance(
        seed, kinds=("converging", "random", "parallel", "symmetric"),
        params=_containment_params,
    ),
    lambda m, inst: containment_intervals(m, inst["system"],
                                          inst["params"]["box"]),
)
_register(
    "enclosing_cube",
    lambda seed: _system_instance(seed, kinds=("converging", "random",
                                               "parallel")),
    lambda m, inst: smallest_enclosing_cube_ever(m, inst["system"]),
)
_register(
    "steady_hull",
    lambda seed: _system_instance(seed),
    lambda m, inst: steady_hull(m, inst["system"]),
)
# Steady pair outputs are compared by the *squared-distance polynomial* of
# the returned pair, not the indices: mirror-symmetric instances have
# exactly tied pairs, and any of them is a correct answer.
_register(
    "steady_closest_pair",
    lambda seed: _system_instance(seed),
    lambda m, inst: _poly_coeffs(
        inst["system"].distance_squared(*steady_closest_pair(m, inst["system"]))
    ),
)
_register(
    "steady_diameter",
    lambda seed: _system_instance(seed),
    lambda m, inst: _poly_coeffs(steady_diameter_squared(m, inst["system"])),
)
_register(
    "steady_nearest",
    lambda seed: _system_instance(seed),
    lambda m, inst: steady_nearest_neighbor(m, inst["system"]),
)


# ----------------------------------------------------------------------
# Differential runs
# ----------------------------------------------------------------------
@dataclass
class Divergence:
    backend: str
    fast_combine: bool | None  # None: the on/off *metrics* comparison
    mismatches: list[str]


@dataclass
class InstanceReport:
    algorithm: str
    kind: str
    seed: int
    ok: bool
    divergences: list[Divergence] = field(default_factory=list)
    instance_json: dict | None = None
    #: Total simulated time over every machine run of the differential
    #: check, accumulated in run order (see ``_run_differential``) so it is
    #: bit-identical to the traced instance span's derived total.
    sim_time: float = 0.0


@dataclass
class CampaignResult:
    reports: list[InstanceReport]
    corpus_files: list[str] = field(default_factory=list)
    #: One ``algorithm``-category span dict per algorithm (item spans as
    #: children, merged by seed order) when the campaign ran traced.
    algorithm_spans: list[dict] | None = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def failures(self) -> list[InstanceReport]:
        return [r for r in self.reports if not r.ok]

    def summary(self) -> dict:
        per = {}
        for r in self.reports:
            stat = per.setdefault(r.algorithm, {"instances": 0, "failed": 0})
            stat["instances"] += 1
            stat["failed"] += not r.ok
        return per

    def sim_totals(self) -> dict:
        """Per-algorithm simulated time, summed over reports in seed order.

        The summation order matches the trace's per-algorithm span sums
        exactly, so ``reproTotals`` in an exported campaign trace equals
        these values bit-for-bit.
        """
        totals: dict[str, float] = {}
        for r in self.reports:
            totals[r.algorithm] = totals.get(r.algorithm, 0.0) + r.sim_time
        return totals


def _serialize_instance(inst: dict) -> dict:
    payload = {
        k: inst[k] for k in ("domain", "kind", "seed", "n", "params")
        if k in inst
    }
    payload["s"] = inst.get("s")
    payload["k"] = inst.get("k")
    if inst["domain"] == "curves":
        payload["instance"] = curves_to_json(inst["curves"])
    else:
        payload["instance"] = system_to_json(inst["system"])
    return payload


def _deserialize_instance(payload: dict) -> dict:
    inst = dict(payload)
    if payload["domain"] == "curves":
        inst["curves"] = curves_from_json(payload["instance"])
    else:
        inst["system"] = system_from_json(payload["instance"])
    return inst


def _run_differential(alg: Algorithm, inst: dict,
                      tol: float) -> tuple[list[Divergence], float]:
    """Serial reference vs every machine backend, fast combine on and off.

    Returns ``(divergences, sim_time)``; ``sim_time`` accumulates
    ``machine.metrics.time`` over the machine runs *in run order*, the same
    order a tracer records the backend spans in — so traced totals equal
    the reported totals exactly (same float summation order).
    """
    with trace_span("serial", category="backend"):
        reference = alg.run(None, inst)
    divergences = []
    sim_time = 0.0
    prev = set_fast_combine(True)
    try:
        for backend, mk in BACKENDS.items():
            outputs = {}
            snapshots = {}
            for fast in (True, False):
                set_fast_combine(fast)
                machine = mk()
                with trace_span(backend, machine.metrics, category="backend",
                                fast_combine=fast):
                    outputs[fast] = alg.run(machine, inst)
                snapshots[fast] = sim_snapshot(machine.metrics)
                sim_time += machine.metrics.time
            for fast in (True, False):
                mism = outputs_match(reference, outputs[fast], tol)
                if mism:
                    divergences.append(Divergence(backend, fast, mism))
            if snapshots[True] != snapshots[False]:
                moved = sorted(
                    k for k in snapshots[True]
                    if snapshots[True][k] != snapshots[False][k]
                )
                divergences.append(Divergence(backend, None, [
                    "simulated metrics differ between fast-combine on/off: "
                    + ", ".join(
                        f"{k}: {snapshots[True][k]!r} vs "
                        f"{snapshots[False][k]!r}" for k in moved
                    )
                ]))
    finally:
        set_fast_combine(prev)
    return divergences, sim_time


def run_instance(algorithm: str, seed: int, tol: float = TOL,
                 inst: dict | None = None) -> InstanceReport:
    """One differential check of ``algorithm`` on the seeded instance."""
    alg = ALGORITHMS[algorithm]
    if inst is None:
        inst = alg.build(seed)
    divergences, sim_time = _run_differential(alg, inst, tol)
    return InstanceReport(
        algorithm=algorithm,
        kind=inst.get("kind", "?"),
        seed=inst.get("seed", seed),
        ok=not divergences,
        divergences=divergences,
        instance_json=_serialize_instance(inst) if divergences else None,
        sim_time=sim_time,
    )


def save_failure(report: InstanceReport, corpus_dir=DEFAULT_CORPUS_DIR) -> str:
    """Serialize a divergent instance for one-command replay."""
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    record = {
        "algorithm": report.algorithm,
        "kind": report.kind,
        "seed": report.seed,
        "divergences": [
            {"backend": d.backend, "fast_combine": d.fast_combine,
             "mismatches": d.mismatches}
            for d in report.divergences
        ],
        "provenance": provenance_manifest(seed=report.seed),
        **(report.instance_json or {}),
    }
    path = corpus_dir / (
        f"{report.algorithm}-{report.kind}-seed{report.seed}.json"
    )
    path.write_text(json.dumps(record, indent=2, default=str) + "\n")
    return str(path)


def replay(path, tol: float = TOL) -> InstanceReport:
    """Re-run a corpus record from its serialized coefficients (no RNG)."""
    record = json.loads(pathlib.Path(path).read_text())
    inst = _deserialize_instance(record)
    return run_instance(record["algorithm"], record["seed"], tol, inst=inst)


def _campaign_item(item: tuple):
    """Worker entry point: one ``(algorithm, seed, tol[, traced])`` run.

    Module-level so the process-parallel engine can pickle it; the
    instance is rebuilt inside the worker from its seed, so the result is
    a pure function of the item — independent of which worker runs it.
    With ``traced`` a local tracer wraps the run in one ``instance`` span
    and the serialized span forest rides back with the report (dicts cross
    the process boundary; the parent merges them by item index).
    """
    name, seed, tol, *rest = item
    if not (rest and rest[0]):
        return run_instance(name, seed, tol)
    tracer = Tracer(f"{name}/seed{seed}")
    with tracer:
        with tracer.span(f"{name}[{seed}]", category="instance",
                         algorithm=name, seed=seed):
            report = run_instance(name, seed, tol)
    return report, tracer.to_dicts()


def _algorithm_span(name: str, children: list[dict]) -> dict:
    """One parent span over an algorithm's traced instances, in seed order.

    Simulated totals are the children's sums accumulated in list order —
    the same order :meth:`CampaignResult.sim_totals` uses, so the two are
    bit-identical.
    """
    sim = dict.fromkeys(SIM_FIELDS, 0.0)
    any_sim = False
    wall = 0.0
    for child in children:
        wall += float(child.get("wall") or 0.0)
        csim = child.get("sim")
        if csim is not None:
            any_sim = True
            for f in SIM_FIELDS:
                sim[f] = sim[f] + csim[f]
    return {"name": name, "cat": "algorithm", "attrs": {"instances": len(children)},
            "sim": sim if any_sim else None, "wall": wall,
            "children": children}


def campaign(algorithms=None, instances: int = 50, seed0: int = 0,
             tol: float = TOL, corpus_dir=None,
             progress: Callable[[str], None] | None = None,
             jobs: int = 1, trace: bool = False) -> CampaignResult:
    """Run the differential oracle over seeded instances of each algorithm.

    ``instances`` seeded cases per algorithm, seeds ``seed0 .. seed0+i-1``
    (each algorithm cycles its adversarial families over those seeds).
    Divergent instances are serialized to ``corpus_dir`` when given.

    ``jobs`` fans the seeded instances of each algorithm out over that
    many worker processes (``repro.parallel``).  Every instance is a pure
    function of its ``(algorithm, seed)`` coordinates and results are
    merged in seed order, so the returned reports — and any corpus files —
    are identical for every ``jobs`` value.

    ``trace`` records a span forest per instance (inside the worker) and
    merges them by item index into one ``algorithm`` span per algorithm
    (:attr:`CampaignResult.algorithm_spans`).  Merging follows seed order,
    never completion order, so the trace too is identical for every
    ``jobs`` value — and the per-algorithm span totals equal
    :meth:`CampaignResult.sim_totals` bit-for-bit.
    """
    from ..parallel import parallel_map

    names = list(algorithms) if algorithms else list(ALGORITHMS)
    for name in names:
        if name not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {name!r}; "
                           f"have {sorted(ALGORITHMS)}")
    reports = []
    corpus_files = []
    algorithm_spans: list[dict] | None = [] if trace else None
    for name in names:
        items = [(name, seed0 + i, tol, trace) for i in range(instances)]
        results = parallel_map(_campaign_item, items, jobs=jobs)
        failed = 0
        instance_spans: list[dict] = []
        for res in results:
            if trace:
                report, spans = res
                instance_spans.extend(spans)
            else:
                report = res
            reports.append(report)
            if not report.ok:
                failed += 1
                if corpus_dir is not None:
                    corpus_files.append(save_failure(report, corpus_dir))
        if trace:
            algorithm_spans.append(_algorithm_span(name, instance_spans))
        if progress:
            progress(f"{name}: {instances - failed}/{instances} ok")
    return CampaignResult(reports=reports, corpus_files=corpus_files,
                          algorithm_spans=algorithm_spans)
