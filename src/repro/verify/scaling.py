"""Theta-conformance engine: pin the paper's growth rates as goldens.

Tables 1–3 of the paper claim ``Theta(lambda^{1/2}(n, s))`` mesh time and
``Theta(log^2 n)`` hypercube time for the dynamic algorithms.  This module
measures *simulated* parallel time over a size sweep for a representative
workload per algorithm family, log-log-fits

* mesh time against ``lambda(n, s)`` — the fitted exponent should sit
  near ``0.5`` (time ~ sqrt of the lambda-sized mesh side), and
* hypercube time against ``log2 n`` — the fitted exponent should sit
  near ``2``,

and records the fitted exponents plus the mesh/hypercube crossover size
(the first swept ``n`` at which the hypercube's simulated time beats the
mesh's) in a golden JSON file with per-field tolerance bands.  Simulated
time is deterministic, so a re-fit only moves when the cost model or an
algorithm's round structure changes — :func:`check_scaling` fails on such
drift and :func:`update_golden` re-pins after an intentional change (the
same workflow as ``tests/test_golden_costs.py``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis import polylog_fit, power_fit
from ..core.collision import collision_times
from ..core.containment import containment_intervals
from ..core.envelope import envelope
from ..core.family import PolynomialFamily
from ..core.hull_membership import hull_membership_intervals
from ..core.neighbors import closest_point_sequence
from ..kinetics.davenport_schinzel import lambda_mesh_size
from ..kinetics.motion import converging_swarm, crossing_traffic, random_system
from ..machines.machine import hypercube_machine, mesh_machine
from ..ops import bitonic_sort
from .diffs import render_diff
from .generators import make_curves

__all__ = ["SCALING_TARGETS", "ScalingTarget", "DEFAULT_GOLDEN_PATH",
           "DEFAULT_BANDS", "fit_scaling", "check_scaling", "update_golden"]

DEFAULT_GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "tests" / "corpus" / "golden_scaling.json"
)

#: Allowed drift per recorded field before :func:`check_scaling` fails.
#: Exponent fits on 3-point sweeps wobble with any intentional cost-model
#: retune; crossover sizes are integers and must match exactly.
DEFAULT_BANDS = {
    "mesh_exponent": 0.10,
    "hypercube_exponent": 0.25,
    "crossover_n": 0.0,
}

#: Machine size used for every measurement (matches the report generators).
_PES = 4096


@dataclass(frozen=True)
class ScalingTarget:
    """One Theta-claim to pin: a workload, a size sweep, a lambda bound."""

    name: str
    sizes: tuple
    run: Callable  # (machine, n) -> None; output discarded, metrics read
    lam: Callable[[int], float]  # n -> lambda(n, s) for the mesh fit
    claim: str  # human-readable Theta claim (for reports/docs)


def _run_envelope(machine, n):
    envelope(machine, make_curves("random", seed=7, n=n, s=2),
             PolynomialFamily(2))


def _run_closest(machine, n):
    closest_point_sequence(machine, random_system(n, d=2, k=1, seed=1))


def _run_collision(machine, n):
    collision_times(machine, crossing_traffic(n, seed=1))


def _run_hull(machine, n):
    hull_membership_intervals(machine, random_system(n, d=2, k=1, seed=2,
                                                     scale=5.0))


def _run_containment(machine, n):
    containment_intervals(machine, converging_swarm(n, seed=3), [40.0, 40.0])


def _run_sort(machine, n):
    bitonic_sort(machine, np.random.default_rng(4).uniform(size=n))


def _run_envelope_large(machine, n):
    envelope(machine, make_curves("random", seed=7, n=n, s=2),
             PolynomialFamily(2))


SCALING_TARGETS: dict[str, ScalingTarget] = {
    t.name: t for t in (
        ScalingTarget("envelope", (16, 64, 256), _run_envelope,
                      lambda n: lambda_mesh_size(n, 2),
                      "Theta(lambda^{1/2}(n,2)) mesh / Theta(log^2 n) cube"),
        ScalingTarget("closest_point", (16, 64, 256), _run_closest,
                      lambda n: lambda_mesh_size(n - 1, 2),
                      "Theta(lambda^{1/2}(n-1,2)) mesh / Theta(log^2 n) cube"),
        ScalingTarget("collision", (16, 64, 256), _run_collision,
                      lambda n: float(n),
                      "Theta(n^{1/2}) mesh / Theta(log^2 n) cube"),
        ScalingTarget("hull_membership", (8, 16, 32), _run_hull,
                      lambda n: lambda_mesh_size(n, 4),
                      "Theta(lambda^{1/2}(n,4)) mesh / Theta(log^2 n) cube"),
        ScalingTarget("containment", (16, 64, 256), _run_containment,
                      lambda n: lambda_mesh_size(n, 1),
                      "Theta(lambda^{1/2}(n,1)) mesh / Theta(log^2 n) cube"),
        # Table-1-scale sweeps: the primitive the vectorized executor
        # accelerates, pinned at sizes up to the full 4096-PE machine,
        # and the envelope sweep extended 4x beyond its small-tier pin.
        ScalingTarget("sort", (256, 1024, 4096), _run_sort,
                      lambda n: float(n),
                      "Theta(n^{1/2}) mesh / Theta(log^2 n) cube"),
        ScalingTarget("envelope_large", (64, 256, 1024), _run_envelope_large,
                      lambda n: lambda_mesh_size(n, 2),
                      "Theta(lambda^{1/2}(n,2)) mesh / Theta(log^2 n) cube"),
    )
}


def _measure(target: ScalingTarget, machine_factory) -> list[float]:
    times = []
    for n in target.sizes:
        machine = machine_factory(_PES)
        target.run(machine, n)
        times.append(float(machine.metrics.time))
    return times


def fit_scaling(targets=None,
                progress: Callable[[str], None] | None = None) -> dict:
    """Measure and fit every (or the named) scaling target.

    Returns ``{name: {"sizes", "mesh_times", "hypercube_times",
    "mesh_exponent", "mesh_r_squared", "hypercube_exponent",
    "crossover_n", "claim"}}``.  Deterministic: same code, same numbers.
    """
    names = list(targets) if targets else list(SCALING_TARGETS)
    out = {}
    for name in names:
        if name not in SCALING_TARGETS:
            raise KeyError(f"unknown scaling target {name!r}; "
                           f"have {sorted(SCALING_TARGETS)}")
        t = SCALING_TARGETS[name]
        mesh_t = _measure(t, mesh_machine)
        cube_t = _measure(t, hypercube_machine)
        lam = [t.lam(n) for n in t.sizes]
        mesh_fit = power_fit(lam, mesh_t)
        cube_p = polylog_fit(t.sizes, cube_t)
        crossover = next(
            (n for n, mt, ct in zip(t.sizes, mesh_t, cube_t) if ct < mt),
            None,
        )
        out[name] = {
            "sizes": list(t.sizes),
            "mesh_times": mesh_t,
            "hypercube_times": cube_t,
            "mesh_exponent": round(mesh_fit.exponent, 4),
            "mesh_r_squared": round(mesh_fit.r_squared, 4),
            "hypercube_exponent": round(cube_p, 4),
            "crossover_n": crossover,
            "claim": t.claim,
        }
        if progress:
            progress(
                f"{name}: mesh lambda^{out[name]['mesh_exponent']:.2f} "
                f"(R^2={out[name]['mesh_r_squared']:.3f}), cube "
                f"(log n)^{out[name]['hypercube_exponent']:.2f}, "
                f"crossover n={crossover}"
            )
    return out


def update_golden(path=DEFAULT_GOLDEN_PATH, targets=None,
                  progress: Callable[[str], None] | None = None) -> dict:
    """Re-measure and (re)write the golden scaling file.

    When ``targets`` names a subset, other targets' recorded entries are
    preserved.  Returns the full golden document written.
    """
    path = pathlib.Path(path)
    doc = {"bands": dict(DEFAULT_BANDS), "targets": {}}
    if path.exists():
        doc = json.loads(path.read_text())
        doc.setdefault("bands", dict(DEFAULT_BANDS))
        doc.setdefault("targets", {})
    doc["targets"].update(fit_scaling(targets, progress))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def check_scaling(path=DEFAULT_GOLDEN_PATH, targets=None,
                  progress: Callable[[str], None] | None = None):
    """Re-fit and compare against the golden file.

    Returns ``(ok, rows, rendered)`` where ``rows`` feed
    :func:`repro.verify.diffs.render_diff` (and ``rendered`` is that
    block, or the all-clear line).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden scaling file at {path}; run "
            "`python -m repro.verify --scaling --update-golden` to create it"
        )
    doc = json.loads(path.read_text())
    bands = {**DEFAULT_BANDS, **doc.get("bands", {})}
    golden = doc.get("targets", {})
    fits = fit_scaling(targets, progress)
    rows = []
    for name, fit in fits.items():
        if name not in golden:
            rows.append({"context": {"target": name, "field": "recorded"},
                         "expected": "present in golden", "got": "missing"})
            continue
        want = golden[name]
        for field_name, band in bands.items():
            exp, got = want.get(field_name), fit.get(field_name)
            if exp is None and got is None:
                continue
            if (exp is None) != (got is None):
                drifted = True
            elif isinstance(exp, (int, float)) and isinstance(got, (int, float)):
                drifted = abs(float(got) - float(exp)) > band
            else:
                drifted = exp != got
            if drifted:
                rows.append({
                    "context": {"target": name, "field": field_name},
                    "expected": exp, "got": got, "band": band,
                })
    rendered = render_diff(
        "golden scaling drift (re-pin with --update-golden if intentional)",
        rows,
    )
    return (not rows), rows, rendered
