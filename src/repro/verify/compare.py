"""Tolerant output canonicalization and comparison for the oracle.

Backends may legitimately differ in *representation* — a tied breakpoint
resolved in a different order, duplicate curves fused under a different
label, a degenerate sliver absorbed into a neighbour — while still
computing the same geometry.  The oracle therefore compares **values**:
piecewise functions are sampled at the midpoints of the refined partition
induced by *both* outputs' breakpoints (within each refined interval both
sides are single bounded-degree polynomials, so agreement at the sample
points is piecewise equivalence up to tolerance), interval lists are
compared endpoint-by-endpoint after merging abutting intervals, scalars and
index outputs directly.

Every comparator returns a list of human-readable mismatch strings (empty
means equivalent), so the oracle can report *what* diverged, not just that
something did.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..kinetics.piecewise import PiecewiseFunction

__all__ = ["canonicalize", "outputs_match", "sim_snapshot", "TOL"]

#: Default relative/absolute comparison tolerance.
TOL = 1e-6

#: Horizon used to sample the unbounded tail of piecewise outputs.
_TAIL = (1.5, 4.0, 16.0, 64.0)


def _close(a: float, b: float, tol: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def sim_snapshot(metrics) -> dict:
    """Simulated-charge snapshot with host-only keys removed.

    Wall-clock and plan-cache counters describe how the host *executed*
    the run, not the simulated charges, so they are excluded from the
    bit-identity comparison.
    """
    snap = metrics.snapshot()
    snap.pop("wall_time", None)
    snap.pop("wall_phases", None)
    snap.pop("plan_cache", None)
    return snap


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
def canonicalize(output):
    """A JSON-serializable canonical form of an algorithm output.

    Used for corpus records and diff rendering; comparison itself runs on
    the live objects (see :func:`outputs_match`) so piecewise functions can
    be resampled rather than compared structurally.
    """
    if isinstance(output, PiecewiseFunction):
        return {
            "kind": "piecewise",
            "pieces": [
                [p.lo, p.hi, repr(p.label)] for p in output.pieces
            ],
        }
    if isinstance(output, np.ndarray):
        return {"kind": "array", "values": [float(v) for v in output]}
    if isinstance(output, (list, tuple)):
        return {"kind": "sequence",
                "values": [canonicalize(v) for v in output]}
    if isinstance(output, (int, np.integer)):
        return {"kind": "int", "value": int(output)}
    if isinstance(output, (float, np.floating)):
        return {"kind": "float", "value": float(output)}
    if isinstance(output, bool):
        return {"kind": "bool", "value": output}
    return {"kind": "repr", "value": repr(output)}


# ----------------------------------------------------------------------
# Piecewise-function equivalence by refined-partition sampling
# ----------------------------------------------------------------------
def _sample_times(F: PiecewiseFunction, G: PiecewiseFunction,
                  tol: float) -> list[float]:
    """Midpoints of the partition refined by both functions' breakpoints.

    Near-coincident breakpoints are merged first so no sample lands inside
    a tolerance-width sliver where the two sides legitimately disagree.
    """
    cuts = sorted(set(F.breakpoints()) | set(G.breakpoints()) | {0.0})
    merged = [cuts[0]]
    for c in cuts[1:]:
        if c - merged[-1] > 1e-7 * max(1.0, abs(c)):
            merged.append(c)
    ts = []
    for a, b in zip(merged, merged[1:]):
        span = b - a
        ts.extend([a + span * r for r in (0.25, 0.5, 0.75)])
    last = merged[-1] if merged else 0.0
    ts.extend(max(1.0, last) * f for f in _TAIL)
    return ts


def _value_at(F: PiecewiseFunction, t: float):
    p = F.piece_at(t)
    return None if p is None else float(p.fn(t))


def _match_piecewise(a: PiecewiseFunction, b: PiecewiseFunction,
                     tol: float) -> list[str]:
    errs = []
    for t in _sample_times(a, b, tol):
        va, vb = _value_at(a, t), _value_at(b, t)
        if va is None and vb is None:
            continue
        if va is None or vb is None:
            errs.append(
                f"t={t:.6g}: defined on one side only "
                f"(a={va}, b={vb})"
            )
        elif not _close(va, vb, tol):
            errs.append(f"t={t:.6g}: values differ: {va!r} vs {vb!r}")
        if len(errs) >= 5:
            errs.append("... (further samples suppressed)")
            break
    return errs


# ----------------------------------------------------------------------
# Interval lists, arrays, scalars, index outputs
# ----------------------------------------------------------------------
def _merge_intervals(iv: Sequence[tuple], tol: float) -> list[tuple]:
    out: list[list[float]] = []
    for lo, hi in iv:
        if out and _close(out[-1][1], lo, tol):
            out[-1][1] = hi
        else:
            out.append([lo, hi])
    return [tuple(x) for x in out]


def _match_intervals(a, b, tol: float) -> list[str]:
    ma, mb = _merge_intervals(a, tol), _merge_intervals(b, tol)
    if len(ma) != len(mb):
        return [f"interval count differs: {len(ma)} vs {len(mb)} "
                f"({ma} vs {mb})"]
    errs = []
    for i, ((alo, ahi), (blo, bhi)) in enumerate(zip(ma, mb)):
        if not (_close(alo, blo, tol) and _close(ahi, bhi, tol)):
            errs.append(
                f"interval {i} differs: [{alo:.6g},{ahi:.6g}] vs "
                f"[{blo:.6g},{bhi:.6g}]"
            )
    return errs


def _match_arrays(a, b, tol: float) -> list[str]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        return [f"array shape differs: {a.shape} vs {b.shape}"]
    bad = [
        f"index {i}: {x!r} vs {y!r}"
        for i, (x, y) in enumerate(zip(a.tolist(), b.tolist()))
        if not _close(x, y, tol)
    ]
    return bad[:5] + (["..."] if len(bad) > 5 else [])


def _is_interval_list(x) -> bool:
    return (
        isinstance(x, list)
        and all(
            isinstance(v, tuple) and len(v) == 2
            and all(isinstance(e, (int, float)) for e in v)
            for v in x
        )
    )


def outputs_match(a, b, tol: float = TOL) -> list[str]:
    """Compare two algorithm outputs; return mismatch descriptions.

    Dispatches on output shape: piecewise functions by refined-partition
    value sampling, ``(lo, hi)`` interval lists with abutting-interval
    merging, numeric arrays elementwise, scalars with relative tolerance,
    index/label outputs exactly.
    """
    if isinstance(a, PiecewiseFunction) and isinstance(b, PiecewiseFunction):
        return _match_piecewise(a, b, tol)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return _match_arrays(a, b, tol)
    if _is_interval_list(a) and _is_interval_list(b):
        return _match_intervals(a, b, tol)
    if isinstance(a, (float, np.floating)) and isinstance(b, (float, np.floating)):
        return [] if _close(float(a), float(b), tol) else [
            f"scalars differ: {a!r} vs {b!r}"
        ]
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"sequence length differs: {len(a)} vs {len(b)} "
                    f"({a!r} vs {b!r})"]
        errs = []
        for i, (x, y) in enumerate(zip(a, b)):
            for e in outputs_match(x, y, tol):
                errs.append(f"[{i}] {e}")
        return errs
    return [] if a == b else [f"outputs differ: {a!r} vs {b!r}"]
