"""Readable diff rendering, shared by the oracle, the scaling checker and
the golden-cost tests.

A golden mismatch should say *which* operation on *which* machine moved,
from what to what — not fail a bare assert.  These helpers render exactly
that, in one aligned block that is stable enough to paste into a commit
message justifying an intentional cost-model change (the workflow
``CONTRIBUTING.md`` requires).
"""

from __future__ import annotations

import math

__all__ = ["scalar_diff", "render_diff"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if math.isinf(v):
            return "inf"
        if v == int(v) and abs(v) < 1e15:
            return f"{v:.1f}"
        return f"{v:.6g}"
    return str(v)


def scalar_diff(context: dict, expected, got) -> str:
    """One-line diff: ``op=sort machine=mesh: expected 89.0, got 92.0 (+3.0)``."""
    where = " ".join(f"{k}={v}" for k, v in context.items())
    line = f"{where}: expected {_fmt(expected)}, got {_fmt(got)}"
    if isinstance(expected, (int, float)) and isinstance(got, (int, float)) \
            and not (math.isinf(float(expected)) or math.isinf(float(got))):
        delta = float(got) - float(expected)
        line += f" ({'+' if delta >= 0 else ''}{_fmt(delta)})"
    return line


def render_diff(title: str, rows: list[dict]) -> str:
    """Multi-row diff block.

    Each row is ``{"context": {...}, "expected": x, "got": y}`` (extra keys
    like ``"band"`` are appended verbatim).  Returns a newline-joined block
    headed by ``title``; empty rows render as an all-clear line.
    """
    if not rows:
        return f"{title}: no differences"
    lines = [title]
    for row in rows:
        line = "  " + scalar_diff(
            row.get("context", {}), row.get("expected"), row.get("got")
        )
        extra = {
            k: v for k, v in row.items()
            if k not in ("context", "expected", "got")
        }
        if extra:
            line += "  [" + ", ".join(
                f"{k}={_fmt(v) if isinstance(v, float) else v}"
                for k, v in extra.items()
            ) + "]"
        lines.append(line)
    return "\n".join(lines)
