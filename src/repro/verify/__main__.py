"""``python -m repro.verify`` — fuzz campaign, corpus replay, golden update.

Modes:

* default             — differential-oracle campaign (50 seeded instances
                        per algorithm) followed by the golden Theta-scaling
                        check; nonzero exit on any divergence or drift.
* ``--oracle``        — campaign only.
* ``--scaling``       — scaling check only.
* ``--replay FILE..`` — re-run serialized corpus instances (no RNG).
* ``--update-golden`` — re-measure and re-pin ``golden_scaling.json``
                        (combine with ``--targets`` for a subset).
"""

from __future__ import annotations

import argparse
import sys

from .oracle import ALGORITHMS, DEFAULT_CORPUS_DIR, campaign, replay
from .scaling import DEFAULT_GOLDEN_PATH, SCALING_TARGETS, check_scaling, update_golden


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential oracle + Theta-scaling conformance harness.",
    )
    p.add_argument("--oracle", action="store_true",
                   help="run only the differential-oracle campaign")
    p.add_argument("--scaling", action="store_true",
                   help="run only the golden scaling check")
    p.add_argument("--replay", nargs="+", metavar="FILE",
                   help="re-run serialized corpus instance(s) and exit")
    p.add_argument("--update-golden", action="store_true",
                   help="re-measure and rewrite the golden scaling file")
    p.add_argument("--instances", type=int, default=50,
                   help="seeded instances per algorithm (default: 50)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="campaign worker processes (0 or negative: one per "
                        "host core; default: 1 = serial). Results are "
                        "identical for every value — only wall-clock moves")
    p.add_argument("--seed0", type=int, default=0,
                   help="first seed of the campaign (default: 0)")
    p.add_argument("--algorithms", nargs="+", metavar="NAME",
                   choices=sorted(ALGORITHMS),
                   help="restrict the campaign to these algorithms")
    p.add_argument("--targets", nargs="+", metavar="NAME",
                   choices=sorted(SCALING_TARGETS),
                   help="restrict the scaling check/update to these targets")
    p.add_argument("--tol", type=float, default=None,
                   help="override the output comparison tolerance")
    p.add_argument("--corpus-dir", default=str(DEFAULT_CORPUS_DIR),
                   help="where divergent instances are serialized")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not serialize divergent instances")
    p.add_argument("--golden", default=str(DEFAULT_GOLDEN_PATH),
                   help="path of the golden scaling JSON")
    return p


def _run_replay(args) -> int:
    rc = 0
    for path in args.replay:
        kwargs = {} if args.tol is None else {"tol": args.tol}
        report = replay(path, **kwargs)
        if report.ok:
            print(f"{path}: OK ({report.algorithm}/{report.kind} "
                  f"seed={report.seed})")
        else:
            rc = 1
            print(f"{path}: DIVERGENT ({report.algorithm}/{report.kind} "
                  f"seed={report.seed})")
            for d in report.divergences:
                where = (f"backend={d.backend} fast_combine={d.fast_combine}"
                         if d.fast_combine is not None else
                         f"backend={d.backend} metrics fast-combine on/off")
                for m in d.mismatches:
                    print(f"  {where}: {m}")
    return rc


def _run_oracle(args) -> int:
    kwargs = {} if args.tol is None else {"tol": args.tol}
    result = campaign(
        algorithms=args.algorithms,
        instances=args.instances,
        seed0=args.seed0,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        progress=lambda line: print(f"  {line}"),
        jobs=args.jobs,
        **kwargs,
    )
    total = len(result.reports)
    failed = len(result.failures)
    print(f"oracle: {total - failed}/{total} instances equivalent across "
          f"serial/mesh/hypercube/PRAM x fast-combine on/off")
    for path in result.corpus_files:
        print(f"  divergence serialized: {path}")
        print(f"  replay with: python -m repro.verify --replay {path}")
    return 0 if result.ok else 1


def _run_scaling(args) -> int:
    if args.update_golden:
        doc = update_golden(args.golden, args.targets,
                            progress=lambda line: print(f"  {line}"))
        print(f"golden scaling re-pinned: {args.golden} "
              f"({len(doc['targets'])} targets)")
        return 0
    ok, _, rendered = check_scaling(args.golden, args.targets,
                                    progress=lambda line: print(f"  {line}"))
    print(rendered)
    return 0 if ok else 1


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.replay:
        return _run_replay(args)
    if args.update_golden or args.scaling:
        return _run_scaling(args)
    if args.oracle:
        return _run_oracle(args)
    rc = _run_oracle(args)
    return rc or _run_scaling(args)


if __name__ == "__main__":
    sys.exit(main())
