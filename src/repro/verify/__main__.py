"""``python -m repro.verify`` — fuzz campaign, corpus replay, golden update.

Modes (positional, or the equivalent legacy flags):

* default               — differential-oracle campaign (50 seeded instances
                          per algorithm) followed by the golden Theta-scaling
                          check; nonzero exit on any divergence or drift.
* ``campaign``          — campaign only (legacy: ``--oracle``).
* ``scaling``           — scaling check only (legacy: ``--scaling``).
* ``incremental``       — byte-parity fuzzing of the incremental update
                          engine against cold serial recomputes.
* ``replay FILE..``     — re-run serialized corpus instances, no RNG
                          (legacy: ``--replay FILE..``).
* ``--update-golden``   — re-measure and re-pin ``golden_scaling.json``
                          (combine with ``--targets`` for a subset).

``campaign --trace PATH`` additionally records a per-instance span forest
(inside each worker) and exports one Chrome ``trace_event`` JSON whose
per-algorithm simulated totals equal the campaign's reported totals
exactly; inspect it with ``python -m repro.trace summarize PATH`` or load
it in Perfetto.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..ops import EXECUTORS, set_executor
from .incremental import replay_update, update_campaign
from .oracle import ALGORITHMS, DEFAULT_CORPUS_DIR, campaign, replay
from .scaling import DEFAULT_GOLDEN_PATH, SCALING_TARGETS, check_scaling, update_golden


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential oracle + Theta-scaling conformance harness.",
    )
    p.add_argument("mode", nargs="?",
                   choices=["campaign", "scaling", "incremental", "replay"],
                   help="what to run (default: campaign then scaling)")
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="corpus files for the replay mode")
    p.add_argument("--oracle", action="store_true",
                   help="run only the differential-oracle campaign")
    p.add_argument("--scaling", dest="scaling_only", action="store_true",
                   help="run only the golden scaling check")
    p.add_argument("--replay", nargs="+", metavar="FILE",
                   help="re-run serialized corpus instance(s) and exit")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record spans during the campaign and write a "
                        "Chrome trace_event JSON (Perfetto-loadable; "
                        "summarize with python -m repro.trace summarize)")
    p.add_argument("--update-golden", action="store_true",
                   help="re-measure and rewrite the golden scaling file")
    p.add_argument("--instances", type=int, default=50,
                   help="seeded instances per algorithm (default: 50)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="campaign worker processes (0 or negative: one per "
                        "host core; default: 1 = serial). Results are "
                        "identical for every value — only wall-clock moves")
    p.add_argument("--seed0", type=int, default=0,
                   help="first seed of the campaign (default: 0)")
    p.add_argument("--algorithms", nargs="+", metavar="NAME",
                   choices=sorted(ALGORITHMS),
                   help="restrict the campaign to these algorithms")
    p.add_argument("--targets", nargs="+", metavar="NAME",
                   choices=sorted(SCALING_TARGETS),
                   help="restrict the scaling check/update to these targets")
    p.add_argument("--tol", type=float, default=None,
                   help="override the output comparison tolerance")
    p.add_argument("--corpus-dir", default=str(DEFAULT_CORPUS_DIR),
                   help="where divergent instances are serialized")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not serialize divergent instances")
    p.add_argument("--golden", default=str(DEFAULT_GOLDEN_PATH),
                   help="path of the golden scaling JSON")
    p.add_argument("--executor", choices=EXECUTORS, default=None,
                   help="data-movement executor for the whole run "
                        "(default: the REPRO_EXECUTOR env var, else "
                        "vectorized). Outputs and simulated time are "
                        "identical for every choice — only wall-clock "
                        "moves")
    return p


def _run_replay(args) -> int:
    import json as _json

    rc = 0
    for path in args.replay:
        if _json.loads(open(path).read()).get("algorithm") == "incremental":
            report = replay_update(path)
            if report.ok:
                print(f"{path}: OK (incremental/{report.kind} "
                      f"seed={report.seed})")
            else:
                rc = 1
                print(f"{path}: DIVERGENT (incremental/{report.kind} "
                      f"seed={report.seed} step={report.failed_step})")
                print(f"  {report.mismatch}")
            continue
        kwargs = {} if args.tol is None else {"tol": args.tol}
        report = replay(path, **kwargs)
        if report.ok:
            print(f"{path}: OK ({report.algorithm}/{report.kind} "
                  f"seed={report.seed})")
        else:
            rc = 1
            print(f"{path}: DIVERGENT ({report.algorithm}/{report.kind} "
                  f"seed={report.seed})")
            for d in report.divergences:
                where = (f"backend={d.backend} fast_combine={d.fast_combine}"
                         if d.fast_combine is not None else
                         f"backend={d.backend} metrics fast-combine on/off")
                for m in d.mismatches:
                    print(f"  {where}: {m}")
    return rc


def _run_oracle(args) -> int:
    kwargs = {} if args.tol is None else {"tol": args.tol}
    result = campaign(
        algorithms=args.algorithms,
        instances=args.instances,
        seed0=args.seed0,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        progress=lambda line: print(f"  {line}"),
        jobs=args.jobs,
        trace=bool(args.trace),
        **kwargs,
    )
    total = len(result.reports)
    failed = len(result.failures)
    print(f"oracle: {total - failed}/{total} instances equivalent across "
          f"serial/mesh/hypercube/PRAM x fast-combine on/off")
    for path in result.corpus_files:
        print(f"  divergence serialized: {path}")
        print(f"  replay with: python -m repro.verify --replay {path}")
    if args.trace:
        _export_campaign_trace(args, result)
    return 0 if result.ok else 1


def _export_campaign_trace(args, result) -> None:
    from ..trace.export import write_chrome_trace
    from ..trace.provenance import provenance_manifest
    from ..trace.registry import registry_snapshot

    totals = result.sim_totals()
    provenance = provenance_manifest(seed=args.seed0, config={
        "mode": "campaign",
        "instances": args.instances,
        "seed0": args.seed0,
        "jobs": args.jobs,
        "algorithms": args.algorithms or sorted(ALGORITHMS),
        "tol": args.tol,
    })
    path = write_chrome_trace(args.trace, result.algorithm_spans or [],
                              provenance=provenance, totals=totals,
                              counters=registry_snapshot())
    print(f"trace written: {path} "
          f"({len(result.algorithm_spans or [])} algorithm spans)")
    for name, t in totals.items():
        print(f"  {name}: simulated time {t:g}")
    print(f"  summarize with: python -m repro.trace summarize {path}")


def _run_incremental(args) -> int:
    result = update_campaign(
        instances=args.instances,
        seed0=args.seed0,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        progress=lambda line: print(f"  {line}"),
        jobs=args.jobs,
    )
    total = len(result.reports)
    failed = len(result.failures)
    checks = sum(r.steps + 1 for r in result.reports)
    print(f"incremental: {total - failed}/{total} update scripts "
          f"byte-identical to cold recomputes ({checks} parity checks)")
    for path in result.corpus_files:
        print(f"  divergence serialized: {path}")
        print(f"  replay with: python -m repro.verify --replay {path}")
    return 0 if result.ok else 1


def _run_scaling(args) -> int:
    if args.update_golden:
        doc = update_golden(args.golden, args.targets,
                            progress=lambda line: print(f"  {line}"))
        print(f"golden scaling re-pinned: {args.golden} "
              f"({len(doc['targets'])} targets)")
        return 0
    ok, _, rendered = check_scaling(args.golden, args.targets,
                                    progress=lambda line: print(f"  {line}"))
    print(rendered)
    return 0 if ok else 1


def _select_executor(args) -> int:
    """Apply --executor / REPRO_EXECUTOR; configuration enters here only.

    RPR002 confines environment reads to CLI entry points: library code
    never consults ``os.environ``, so the executor a run uses is decided
    exactly once, at this edge.  The flag wins over the variable.
    """
    name = args.executor or os.environ.get("REPRO_EXECUTOR")
    if name is None:
        return 0
    try:
        set_executor(name)
    except ValueError:
        print(f"REPRO_EXECUTOR={name!r} is not an executor; choose one of "
              f"{', '.join(EXECUTORS)}", file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    rc = _select_executor(args)
    if rc:
        return rc
    if args.mode == "replay" or args.replay:
        args.replay = list(args.replay or []) + list(args.files)
        if not args.replay:
            print("replay mode needs at least one corpus file",
                  file=sys.stderr)
            return 2
        return _run_replay(args)
    if args.files:
        print(f"unexpected arguments: {' '.join(args.files)}",
              file=sys.stderr)
        return 2
    if args.update_golden or args.scaling_only or args.mode == "scaling":
        return _run_scaling(args)
    if args.mode == "incremental":
        return _run_incremental(args)
    if args.oracle or args.mode == "campaign":
        return _run_oracle(args)
    rc = _run_oracle(args)
    return rc or _run_scaling(args)


if __name__ == "__main__":
    sys.exit(main())
