"""Adversarial k-motion instance generators for the verification layer.

Boxer's dynamic-CG survey catalogs the configurations that break naive
kinetic implementations: tangencies (curves that touch without crossing),
coincident/duplicate trajectories, breakpoint ties (many curves through one
point), and degree-boundary coefficients (leading coefficients that vanish
or nearly vanish).  Every family here is produced two ways from one shared
builder:

* **seeded deterministic builders** — :func:`make_curves` /
  :func:`make_system` — pure functions of ``(kind, seed, n)``, so an oracle
  failure replays from its ``(kind, seed)`` alone;
* **Hypothesis strategies** — :func:`curve_lists` / :func:`planar_systems` —
  for the property tests under ``tests/``.

Coefficients are quantised to multiples of 1/4 (the same trick as the
existing geometry tests) so root finding stays well-conditioned; the
``near_degenerate`` family deliberately relaxes that to probe tolerance
boundaries, but keeps perturbations far below the oracle's comparison
tolerance.

Instances serialize to plain JSON (:func:`curves_to_json` /
:func:`system_to_json`) for the failure corpus under ``tests/corpus/``.
"""

from __future__ import annotations

import math

import numpy as np

from ..kinetics.motion import (
    Motion,
    PointSystem,
    converging_swarm,
    crossing_traffic,
    random_system,
)
from ..kinetics.polynomial import Polynomial

__all__ = [
    "CURVE_KINDS", "SYSTEM_KINDS", "SYSTEM_SIZE_FLOORS",
    "make_curves", "make_system",
    "curves_to_json", "curves_from_json",
    "system_to_json", "system_from_json",
    "curve_lists", "planar_systems",
]

#: Quantisation step for well-conditioned coefficients.
_STEP = 0.25


def _check_size(name: str, value, minimum: int) -> int:
    """Validate an integral size argument; reject bools, floats, and
    anything below ``minimum`` with an error naming the argument.

    Campaign drivers sweep sizes programmatically (now up to 2^20 slots);
    a float that slipped through arithmetic or a negative n must fail
    here, loudly, not inside a builder's ``range()``.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def _quant(rng: np.random.Generator, size, lo=-10.0, hi=10.0) -> np.ndarray:
    """Random coefficients quantised to multiples of ``_STEP``."""
    return np.round(rng.uniform(lo, hi, size=size) / _STEP) * _STEP


# ======================================================================
# Curve families (envelope-level instances)
# ======================================================================
def _curves_random(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Generic position: quantised random degree-<=s polynomials."""
    return [Polynomial(_quant(rng, s + 1)) for _ in range(n)]


def _curves_tangent(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Pairs that *touch* without crossing: g = f + c (t - a)^2, c > 0.

    The difference has a double root at ``a`` — the envelope must neither
    invent a crossing there nor lose the tangency point.
    """
    out = []
    while len(out) < n:
        f = Polynomial(_quant(rng, max(1, s - 1)))
        a = float(np.round(rng.uniform(0.5, 8.0) / _STEP) * _STEP)
        c = float(np.round(rng.uniform(0.25, 2.0) / _STEP) * _STEP) or _STEP
        bump = Polynomial([a * a * c, -2.0 * a * c, c])  # c (t - a)^2
        out.append(f)
        out.append(f + bump)
    return out[:n]


def _curves_duplicate(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Coincident trajectories: exact duplicates interleaved with others."""
    base = _curves_random(rng, max(1, n // 2), s)
    out = list(base)
    while len(out) < n:
        out.append(base[int(rng.integers(0, len(base)))])
    order = rng.permutation(len(out))
    return [out[i] for i in order]


def _curves_tie(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Breakpoint ties: every curve passes through one common point.

    At ``(t0, y0)`` all pairwise crossings coincide, so the envelope has a
    maximal-multiplicity breakpoint there — the classic tie case for
    merge-based envelope construction.
    """
    t0 = float(np.round(rng.uniform(1.0, 6.0) / _STEP) * _STEP)
    y0 = float(np.round(rng.uniform(-4.0, 4.0) / _STEP) * _STEP)
    out = []
    for _ in range(n):
        coeffs = _quant(rng, s + 1)
        f = Polynomial(coeffs)
        # Shift so that f(t0) = y0 exactly (constant-term adjustment).
        out.append(f + Polynomial.constant(y0 - f(t0)))
    return out


def _curves_degree_boundary(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Degree-boundary cases: vanishing leading coefficients and constants.

    A family advertised as degree ``s`` whose members have effective degree
    ``< s`` (trailing zero coefficients) exercises the trimmed-representation
    paths of `Polynomial` and the ``lambda(n, s)`` head-room of the engine.
    """
    out = []
    for i in range(n):
        coeffs = _quant(rng, s + 1)
        drop = int(rng.integers(0, s + 1))  # zero out this many leading terms
        if drop:
            coeffs[len(coeffs) - drop:] = 0.0
        if not np.any(coeffs):
            coeffs[0] = _STEP
        out.append(Polynomial(coeffs))
    return out


def _curves_near_degenerate(rng: np.random.Generator, n: int, s: int) -> list[Polynomial]:
    """Nearly coincident curves and nearly vanishing leading coefficients.

    Perturbations sit at 1e-12 — far below the oracle tolerance, so every
    backend must agree on the *values* even where tie-breaking differs.
    """
    base = _curves_random(rng, max(1, (n + 1) // 2), s)
    out = list(base)
    while len(out) < n:
        f = base[int(rng.integers(0, len(base)))]
        tweak = 1e-12 * _quant(rng, 1, lo=-1.0, hi=1.0)[0]
        out.append(f + Polynomial.constant(tweak))
    return out[:n]


#: name -> builder(rng, n, s) for envelope-level instances.
CURVE_KINDS = {
    "random": _curves_random,
    "tangent": _curves_tangent,
    "duplicate": _curves_duplicate,
    "tie": _curves_tie,
    "degree_boundary": _curves_degree_boundary,
    "near_degenerate": _curves_near_degenerate,
}


def make_curves(kind: str, seed: int, n: int = 8, s: int = 2) -> list[Polynomial]:
    """Deterministic curve instance: a pure function of ``(kind, seed, n, s)``.

    Returns exactly ``n`` curves for every kind, for any ``n >= 1`` up to
    campaign scale (2^20 and beyond: builder work and coefficient
    magnitudes grow at most linearly in ``n``).
    """
    if kind not in CURVE_KINDS:
        raise KeyError(f"unknown curve kind {kind!r}; have {sorted(CURVE_KINDS)}")
    n = _check_size("n", n, 1)
    s = _check_size("s", s, 0)
    rng = np.random.default_rng(seed)
    return CURVE_KINDS[kind](rng, n, s)


# ======================================================================
# Point-system families (Section 4/5 instances)
# ======================================================================
def _distinct_starts(motions: list[Motion]) -> list[Motion]:
    """Nudge initial positions apart so PointSystem validation passes.

    The nudge repeats until the position is actually unoccupied: families
    quantise starts to the ``_STEP`` grid, so at campaign sizes (2^17+)
    a single fixed offset routinely lands on another occupied grid point.
    """
    seen = set()
    out = []
    for i, m in enumerate(motions):
        base = list(m.coords)
        start = tuple(float(c(0.0)) for c in base)
        bump = 0.0
        while start in seen:
            bump += _STEP * (i + 1)
            coords = list(base)
            coords[0] = coords[0] + Polynomial.constant(bump)
            m = Motion(coords)
            start = tuple(float(c(0.0)) for c in m.coords)
        seen.add(start)
        out.append(m)
    return out


def _system_random(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    return random_system(n, d=2, k=k, seed=rng)


def _system_crossing(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    return crossing_traffic(n, seed=rng)


def _system_converging(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    return converging_swarm(n, seed=rng)


def _system_grazing(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    """Tangential encounters: trajectories whose d^2 minima touch zero.

    Point 0 moves east along the x-axis; odd points are aimed to *exactly*
    meet it (a grazing collision: ``d^2`` has a double root at zero), even
    points pass at a small but safe offset.
    """
    motions = [Motion.linear([0.0, 0.0], [1.0, 0.0])]
    for i in range(1, n):
        t_meet = float(i) + 0.5
        offset = 0.0 if i % 2 == 1 else _STEP * i
        y0 = float(np.round(rng.uniform(2.0, 10.0) / _STEP) * _STEP)
        motions.append(Motion.linear(
            [0.0, y0 + offset], [1.0, -y0 / t_meet]
        ))
    return PointSystem(_distinct_starts(motions))


def _system_symmetric(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    """Mirror-symmetric configuration: pairwise-tied distance curves.

    Points come in (x, y) / (x, -y) mirror pairs with mirrored velocities,
    so the squared distances to the on-axis query point 0 coincide exactly —
    duplicate envelope curves and permanent ties.
    """
    motions = [Motion.linear([0.0, 0.0], [_STEP, 0.0])]
    i = 0
    while len(motions) < n:
        i += 1
        x = float(np.round(rng.uniform(1.0, 8.0) / _STEP) * _STEP) + i
        y = float(np.round(rng.uniform(0.5, 6.0) / _STEP) * _STEP)
        vx = float(np.round(rng.uniform(-2.0, 2.0) / _STEP) * _STEP)
        vy = float(np.round(rng.uniform(-2.0, 2.0) / _STEP) * _STEP)
        motions.append(Motion.linear([x, y], [vx, vy]))
        motions.append(Motion.linear([x, -y], [vx, -vy]))
    return PointSystem(_distinct_starts(motions[:n]))


def _system_parallel(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    """Coincident velocity vectors: a rigidly translating configuration.

    Every relative trajectory is constant, so angle curves never move and
    all steady-state comparisons reduce to constant-term sign tests — the
    degenerate end of Lemma 5.1.
    """
    v = _quant(rng, 2, lo=-3.0, hi=3.0)
    motions = []
    for i in range(n):
        start = _quant(rng, 2, lo=-8.0, hi=8.0) + np.array([0.0, 0.5 * i])
        motions.append(Motion.linear(start, v))
    return PointSystem(_distinct_starts(motions))


def _system_quadratic(rng: np.random.Generator, n: int, k: int) -> PointSystem:
    """Degree-boundary motion: a mix of k-motion, linear and stationary
    points in one system (effective degrees 0..k)."""
    motions = []
    for i in range(n):
        eff_k = int(rng.integers(0, max(1, k) + 1))
        rows = [_quant(rng, eff_k + 1, lo=-6.0, hi=6.0) for _ in range(2)]
        motions.append(Motion.from_arrays(rows))
    return PointSystem(_distinct_starts(motions))


#: name -> builder(rng, n, k) for point-system instances (all planar).
SYSTEM_KINDS = {
    "random": _system_random,
    "crossing": _system_crossing,
    "converging": _system_converging,
    "grazing": _system_grazing,
    "symmetric": _system_symmetric,
    "parallel": _system_parallel,
    "mixed_degree": _system_quadratic,
}

#: Smallest meaningful instance per family: the seed configuration each
#: geometry needs (a collider and a target, a mirror pair plus the
#: on-axis query point, ...).  :func:`make_system` pads requests below
#: the floor up to it, so every family returns ``max(n, floor)`` points.
SYSTEM_SIZE_FLOORS = {
    "random": 1,
    "crossing": 2,
    "converging": 2,
    "grazing": 2,
    "symmetric": 3,
    "parallel": 2,
    "mixed_degree": 2,
}


def make_system(kind: str, seed: int, n: int = 8, k: int = 1) -> PointSystem:
    """Deterministic system instance: a pure function of ``(kind, seed, n, k)``.

    Returns exactly ``max(n, SYSTEM_SIZE_FLOORS[kind])`` points, for any
    ``n >= 1`` up to campaign scale (2^20 and beyond: builder work and
    coordinate magnitudes grow at most linearly in ``n``).
    """
    if kind not in SYSTEM_KINDS:
        raise KeyError(f"unknown system kind {kind!r}; have {sorted(SYSTEM_KINDS)}")
    n = _check_size("n", n, 1)
    k = _check_size("k", k, 0)
    n = max(n, SYSTEM_SIZE_FLOORS[kind])
    rng = np.random.default_rng(seed)
    return SYSTEM_KINDS[kind](rng, n, k)


# ======================================================================
# JSON serialization (the failure corpus format)
# ======================================================================
def curves_to_json(fns: list[Polynomial]) -> dict:
    return {"type": "curves", "coeffs": [list(map(float, f._cl)) for f in fns]}


def curves_from_json(data: dict) -> list[Polynomial]:
    if data.get("type") != "curves":
        raise ValueError(f"not a curve instance: {data.get('type')!r}")
    return [Polynomial(row) for row in data["coeffs"]]


def system_to_json(system: PointSystem) -> dict:
    return {
        "type": "system",
        "motions": [
            [list(map(float, c._cl)) for c in m.coords] for m in system
        ],
    }


def system_from_json(data: dict) -> PointSystem:
    if data.get("type") != "system":
        raise ValueError(f"not a system instance: {data.get('type')!r}")
    return PointSystem(
        [Motion.from_arrays(rows) for rows in data["motions"]],
        validate=False,
    )


# ======================================================================
# Hypothesis strategies (property tests)
# ======================================================================
def _require_hypothesis():
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - test extra not installed
        raise RuntimeError(
            "hypothesis is required for the strategy API; "
            "install the [test] extra or use make_curves/make_system"
        ) from exc
    return st


def curve_lists(s: int = 2, min_size: int = 2, max_size: int = 8,
                adversarial: bool = True):
    """Hypothesis strategy: lists of degree-<=s polynomials.

    With ``adversarial=True`` (default) each draw may route through one of
    the degenerate families — duplicates, common-point ties, tangencies,
    vanishing leading coefficients — via a drawn seed, so shrinking still
    works (the seed and size shrink, the family set stays fixed).
    """
    st = _require_hypothesis()
    coeff = st.integers(-40, 40).map(lambda v: v * _STEP)
    generic = st.lists(
        st.lists(coeff, min_size=1, max_size=s + 1).map(Polynomial),
        min_size=min_size, max_size=max_size,
    )
    if not adversarial:
        return generic
    kinds = sorted(CURVE_KINDS)
    seeded = st.tuples(
        st.sampled_from(kinds),
        st.integers(0, 2**31 - 1),
        st.integers(min_size, max_size),
    ).map(lambda kns: make_curves(kns[0], kns[1], n=kns[2], s=s))
    return st.one_of(generic, seeded)


def planar_systems(min_size: int = 3, max_size: int = 8, k: int = 1,
                   kinds: tuple = ("random", "grazing", "symmetric",
                                   "parallel", "mixed_degree")):
    """Hypothesis strategy: planar k-motion systems from the named families."""
    st = _require_hypothesis()
    return st.tuples(
        st.sampled_from(sorted(kinds)),
        st.integers(0, 2**31 - 1),
        st.integers(min_size, max_size),
    ).map(lambda kns: make_system(kns[0], kns[1], n=kns[2], k=k))
