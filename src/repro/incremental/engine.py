"""Incremental envelope maintenance: insert / delete / retarget.

Everything else in the repo recomputes an envelope from scratch; this
module maintains one under updates, the kinetic-data-structure way
(ROADMAP item 3, grounded in Chan's dynamic shallow cuttings — see
PAPERS.md): the current envelope is a set of locally certified pieces,
an update invalidates only the certificates it can affect, and repairs
are driven by a deterministic event queue
(:class:`~repro.incremental.events.CertificateQueue`) ordered by
``(failure_time, canonical key)`` — never by heap insertion order.

Parity contract (the load-bearing invariant, checked by
``repro.verify incremental`` campaigns and the Hypothesis suite):
after *any* sequence of updates the maintained envelope is
**byte-identical** to a cold :func:`repro.core.envelope.envelope_serial`
run over the surviving curves — same piece intervals bit-for-bit, same
winners, same label sequence.  Three mechanisms make that exact rather
than approximate:

* **canonical crossing orientation** — ``envelope_serial`` always
  intersects pairs with the lower list position on the left (the F
  subtree of every divide-and-conquer level precedes the G subtree), so
  the engine orients every crossing query by insertion rank and shares
  the family's memoised pair cache; the breakpoint floats come out of
  the identical root computation;
* **rank tie-breaks** — where the reference samples midpoints and
  resolves ties toward the F side, the engine resolves toward the lower
  insertion rank, which is the same curve;
* **reference fusing** — repaired pieces are fused with the exact
  ``(family.same, label)`` rule of the serial oracle, so maximal pieces
  have the same extents.

Updates localize: an insert only touches pieces the new curve actually
beats somewhere, a delete only re-sweeps the windows the deleted curve
owned (deleting a curve that never reached the envelope is O(1) beyond
the ownership check), and a retarget is an excise + merge at the same
insertion rank.  The full recompute stays the semantic reference and
the benchmark baseline (``benchmarks/bench_incremental.py``).
"""

from __future__ import annotations

import json
import math
from typing import Iterable

from ..core.envelope import envelope_serial
from ..core.family import CurveFamily, PolynomialFamily
from ..kinetics.piecewise import INF, Piece, PiecewiseFunction, T_EPS
from ..kinetics.polynomial import Polynomial
from .events import Certificate, CertificateQueue

__all__ = ["IncrementalEnvelope", "encode_envelope", "envelope_bytes"]

#: Degenerate-interval tolerance — the serial oracle's ``_eps``.
_EPS = 1e-9

#: Relative tolerance for jet (value, derivative, ...) sign decisions at
#: event times, where the leading difference is a freshly solved root
#: residual rather than a true value.  Scaled by a coefficient bound on
#: the evaluated polynomial, it sits far above polished-root residuals
#: (~1e-12) and far below genuine curve separations at sampled times.
_JET_TOL = 1e-7


def _eps(t: float) -> float:
    return _EPS * max(1.0, abs(t) if math.isfinite(t) else 1.0)


def encode_envelope(env: PiecewiseFunction) -> dict:
    """Canonical JSON-able encoding of an envelope (bitwise faithful).

    Mirrors the service's response encoding: one ``[lo, hi, coeffs,
    label]`` row per piece, floats passed through untouched so byte
    comparison of the JSON detects any last-bit drift.
    """
    return {
        "pieces": [
            [p.lo, p.hi, [float(c) for c in p.fn.coeffs], repr(p.label)]
            for p in env.pieces
        ]
    }


def envelope_bytes(env: PiecewiseFunction) -> bytes:
    """The canonical byte string compared by the parity oracle."""
    return json.dumps(encode_envelope(env), sort_keys=True).encode()


class IncrementalEnvelope:
    """Lower/upper envelope of a curve set maintained under updates.

    Parameters
    ----------
    s:
        Degree bound of the polynomial family (ignored when ``family``
        is given).
    op:
        ``"min"`` (lower envelope) or ``"max"`` (upper envelope).
    family:
        An explicit :class:`~repro.core.family.CurveFamily`; defaults to
        a fresh ``PolynomialFamily(s)``.  The family's crossing cache is
        the engine's root store — every certificate failure time is a
        memoised pair-crossing query.

    Curves are identified by integer ids (assigned by :meth:`insert` or
    caller-chosen); each id carries a stable *insertion rank* used for
    canonical crossing orientation and tie-breaking.  A retarget keeps
    the rank — it is the same object with a new motion — so the
    reference order is reproducible from the engine state alone.
    """

    def __init__(self, s: int = 2, op: str = "min",
                 family: CurveFamily | None = None) -> None:
        if op not in ("min", "max"):
            raise ValueError(f"op must be 'min' or 'max', got {op!r}")
        self.family = family if family is not None else PolynomialFamily(s)
        self.op = op
        self.version = 0
        self._curves: dict[int, Polynomial] = {}
        self._rank: dict[int, int] = {}
        self._next_id = 0
        self._next_rank = 0
        self._env: list[Piece] = []  # labels are curve ids
        self.stats = {
            "inserts": 0, "deletes": 0, "retargets": 0,
            "hidden_deletes": 0, "windows": 0,
            "certificates": 0, "events": 0,
        }
        self.last_update: dict = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._curves)

    def __contains__(self, cid: int) -> bool:
        return cid in self._curves

    def ids(self) -> list[int]:
        """Live curve ids in insertion-rank order."""
        return sorted(self._curves, key=self._rank.__getitem__)

    @property
    def envelope(self) -> PiecewiseFunction:
        """The maintained envelope; labels are curve ids."""
        return PiecewiseFunction(list(self._env), validate=False)

    def reference_curves(self) -> list[Polynomial]:
        """The surviving curves in rank order — the exact input a cold
        :func:`envelope_serial` run would receive."""
        return [self._curves[cid] for cid in self.ids()]

    def as_reference(self) -> PiecewiseFunction:
        """The envelope with labels converted to rank-order indices,
        directly comparable (byte-for-byte) to
        ``envelope_serial(self.reference_curves(), ...)``."""
        index = {cid: i for i, cid in enumerate(self.ids())}
        return PiecewiseFunction(
            [Piece(p.lo, p.hi, p.fn, index[p.label]) for p in self._env],
            validate=False,
        )

    def recompute_reference(self) -> PiecewiseFunction:
        """A cold full recompute over the surviving curves (the semantic
        reference the parity contract compares against)."""
        return envelope_serial(
            self.reference_curves(), self.family, op=self.op
        )

    def canonical_bytes(self) -> bytes:
        return envelope_bytes(self.as_reference())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, curve: Polynomial | list | tuple,
               cid: int | None = None) -> int:
        """Add a curve; returns its id.  Cost is proportional to the
        number of envelope pieces the curve challenges, not to the
        family size."""
        curve = self._coerce(curve)
        if cid is None:
            cid = self._next_id
        elif cid in self._curves:
            raise ValueError(f"curve id {cid} already live")
        self._next_id = max(self._next_id, cid + 1)
        self._curves[cid] = curve
        self._rank[cid] = self._next_rank
        self._next_rank += 1
        certs, events = self._merge_curve(cid, curve)
        self.version += 1
        self.stats["inserts"] += 1
        self.stats["certificates"] += certs
        self.stats["events"] += events
        self.last_update = {
            "op": "insert", "id": cid, "certificates": certs,
            "events": events, "pieces": len(self._env),
        }
        return cid

    def delete(self, cid: int) -> None:
        """Remove a curve.  Only the envelope windows it owned are
        re-swept; a curve that never reached the envelope costs O(1)
        beyond the ownership scan."""
        if cid not in self._curves:
            raise KeyError(f"no live curve with id {cid}")
        del self._curves[cid]
        certs, events, windows = self._excise(cid)
        del self._rank[cid]
        self.version += 1
        self.stats["deletes"] += 1
        self.stats["windows"] += windows
        self.stats["certificates"] += certs
        self.stats["events"] += events
        if windows == 0:
            self.stats["hidden_deletes"] += 1
        self.last_update = {
            "op": "delete", "id": cid, "windows": windows,
            "certificates": certs, "events": events,
            "pieces": len(self._env),
        }

    def retarget(self, cid: int, curve: Polynomial | list | tuple) -> None:
        """Replace the motion of a live curve, keeping its rank (it is
        the same object): an excise of the old motion followed by a
        merge of the new one."""
        if cid not in self._curves:
            raise KeyError(f"no live curve with id {cid}")
        curve = self._coerce(curve)
        del self._curves[cid]
        certs_d, events_d, windows = self._excise(cid)
        self._curves[cid] = curve
        certs_i, events_i = self._merge_curve(cid, curve)
        self.version += 1
        self.stats["retargets"] += 1
        self.stats["windows"] += windows
        self.stats["certificates"] += certs_d + certs_i
        self.stats["events"] += events_d + events_i
        self.last_update = {
            "op": "retarget", "id": cid, "windows": windows,
            "certificates": certs_d + certs_i,
            "events": events_d + events_i, "pieces": len(self._env),
        }

    def extend(self, curves: Iterable[Polynomial | list | tuple]) -> list[int]:
        """Insert many curves; returns their ids."""
        return [self.insert(c) for c in curves]

    def reset(self, curves: Iterable[Polynomial | list | tuple]) -> list[int]:
        """Replace the whole population and rebuild via one cold
        recompute (the bootstrap path: initial build is exactly the
        reference, updates are incremental from there)."""
        self._curves.clear()
        self._rank.clear()
        self._next_id = 0
        self._next_rank = 0
        ids = []
        for c in curves:
            cid = self._next_id
            self._curves[cid] = self._coerce(c)
            self._rank[cid] = self._next_rank
            self._next_id += 1
            self._next_rank += 1
            ids.append(cid)
        env = envelope_serial(
            [self._curves[c] for c in ids], self.family, op=self.op,
            labels=ids,
        )
        self._env = list(env.pieces)
        self.version += 1
        self.last_update = {"op": "reset", "n": len(ids),
                            "pieces": len(self._env)}
        return ids

    # ------------------------------------------------------------------
    # Insert machinery
    # ------------------------------------------------------------------
    def _coerce(self, curve: Polynomial | list | tuple) -> Polynomial:
        if not isinstance(curve, Polynomial):
            curve = Polynomial(curve)
        if curve.degree > self.family.s:
            raise ValueError(
                f"curve degree {curve.degree} exceeds family bound "
                f"s={self.family.s}")
        return curve

    def _oriented(self, f: Polynomial, fid: int, g: Polynomial,
                  gid: int) -> tuple[Polynomial, Polynomial]:
        """The pair in canonical (lower rank first) orientation — the
        orientation every envelope_serial crossing query uses."""
        if self._rank[fid] <= self._rank[gid]:
            return f, g
        return g, f

    def _crossings(self, f: Polynomial, fid: int, g: Polynomial,
                   gid: int, lo: float, hi: float) -> list[float]:
        a, b = self._oriented(f, fid, g, gid)
        return self.family.crossings(a, b, lo, hi)

    def _merge_curve(self, cid: int, curve: Polynomial) -> tuple[int, int]:
        """Fold one curve into the envelope.  One certificate per
        challenged piece; certificate failure = the first time the new
        curve takes over inside that piece."""
        env = self._env
        if not env:
            self._env = [Piece(0.0, INF, curve, cid)]
            return 0, 0
        fam = self.family
        pairs = {}
        for p in env:
            if not fam.same(p.fn, curve):
                pairs[self._oriented(p.fn, p.label, curve, cid)] = None
        if pairs:
            fam.prefetch_crossings(pairs)
        queue = CertificateQueue()
        for idx, p in enumerate(env):
            split = self._split_piece(p, curve, cid)
            if split is None:
                continue
            fail_t, sub = split
            queue.push(Certificate(
                fail_t, (p.lo, self._rank[p.label], self._rank[cid]),
                (idx, sub),
            ))
        certs = queue.pushes
        replaced: dict[int, list[Piece]] = {}
        events = 0
        while queue:
            cert = queue.pop()
            idx, sub = cert.payload
            replaced[idx] = sub
            events += 1
        if replaced:
            out: list[Piece] = []
            for idx, p in enumerate(env):
                out.extend(replaced.get(idx, (p,)))
            self._env = self._fuse(out)
        return certs, events

    def _split_piece(self, p: Piece, curve: Polynomial,
                     cid: int) -> tuple[float, list[Piece]] | None:
        """Re-divide one envelope piece against the new curve.

        Returns None when the incumbent survives the whole piece (its
        certificate holds), else ``(first_takeover_time, subpieces)``.
        Span winners replicate the serial oracle exactly: cut at the
        pair's crossings, sample the midpoint, resolve ties toward the
        lower rank (the F side of the reference combine).
        """
        fam = self.family
        wid = p.label
        if fam.same(p.fn, curve):
            if self._rank[cid] < self._rank[wid]:
                return p.lo, [Piece(p.lo, p.hi, curve, cid)]
            return None
        roots = self._crossings(p.fn, wid, curve, cid, p.lo, p.hi)
        bounds = [p.lo, *roots, p.hi]
        sub: list[Piece] = []
        fail_t = None
        for a, b in zip(bounds, bounds[1:]):
            if b - a <= _eps(a):
                continue
            mid = a + 1.0 if math.isinf(b) else 0.5 * (a + b)
            win_fn, win_id = self._span_winner(p.fn, wid, curve, cid, mid)
            if win_id == cid and fail_t is None:
                fail_t = a
            sub.append(Piece(a, b, win_fn, win_id))
        if fail_t is None:
            return None
        return fail_t, sub

    def _span_winner(self, f: Polynomial, fid: int, g: Polynomial,
                     gid: int, mid: float) -> tuple[Polynomial, int]:
        """The reference midpoint rule: compare values at the sample
        point with the lower-rank curve on the left of the comparison
        (ties go to it, as in ``_gap_subpieces``)."""
        fam = self.family
        (a_fn, a_id), (b_fn, b_id) = sorted(
            ((f, fid), (g, gid)), key=lambda t: self._rank[t[1]]
        )
        va, vb = fam.value(a_fn, mid), fam.value(b_fn, mid)
        take_a = (va <= vb) if self.op == "min" else (va >= vb)
        return (a_fn, a_id) if take_a else (b_fn, b_id)

    # ------------------------------------------------------------------
    # Delete machinery
    # ------------------------------------------------------------------
    def _excise(self, cid: int) -> tuple[int, int, int]:
        """Remove a curve's pieces from the envelope, re-sweeping each
        window it owned.  ``self._curves`` must already exclude it
        (``self._rank`` must not: seams still orient against it)."""
        env = self._env
        if not any(p.label == cid for p in env):
            return 0, 0, 0
        out: list[Piece] = []
        certs = events = windows = 0
        i = 0
        while i < len(env):
            if env[i].label != cid:
                out.append(env[i])
                i += 1
                continue
            j = i
            while j < len(env) and env[j].label == cid:
                j += 1
            windows += 1
            sub, c, e = self._sweep_window(env[i].lo, env[j - 1].hi)
            out.extend(sub)
            certs += c
            events += e
            i = j
        self._env = self._fuse(out)
        return certs, events, windows

    def _sweep_window(self, lo: float,
                      hi: float) -> tuple[list[Piece], int, int]:
        """Kinetic sweep of one vacated window over the surviving
        curves: install the winner at the window start, certify it
        against every challenger, process certificate failures in
        deterministic order until the window is exhausted."""
        cands = [(cid, self._curves[cid]) for cid in self.ids()]
        if not cands:
            return [], 0, 0
        queue = CertificateQueue()
        t = lo
        wid, w = self._winner_after(t, cands)
        self._certify(queue, w, wid, t, hi, cands)
        pieces: list[Piece] = []
        events = 0
        while queue:
            cert = queue.pop()
            events += 1
            r = cert.failure_time
            nid, n = self._winner_after(r, cands)
            if nid == wid:
                # Tangency (or a challenger overtaken by a third curve
                # at the same instant): the incumbent survives; re-arm
                # this pair's certificate past r.
                x_id, x = cert.payload
                self._certify_pair(queue, w, wid, x, x_id, r, hi)
                continue
            pieces.append(Piece(t, r, w, wid))
            t, wid, w = r, nid, n
            queue.clear()
            self._certify(queue, w, wid, t, hi, cands)
        pieces.append(Piece(t, hi, w, wid))
        return pieces, queue.pushes, events

    def _certify(self, queue: CertificateQueue, w: Polynomial, wid: int,
                 t: float, hi: float,
                 cands: list[tuple[int, Polynomial]]) -> None:
        """One certificate per challenger: the winner holds until its
        first crossing with that challenger after ``t``."""
        fam = self.family
        pairs = {}
        for cid, c in cands:
            if cid != wid and not fam.same(c, w):
                pairs[self._oriented(w, wid, c, cid)] = None
        if pairs:
            fam.prefetch_crossings(pairs)
        for cid, c in cands:
            if cid != wid and not fam.same(c, w):
                self._certify_pair(queue, w, wid, c, cid, t, hi)

    def _certify_pair(self, queue: CertificateQueue, w: Polynomial,
                      wid: int, c: Polynomial, cid: int, t: float,
                      hi: float) -> None:
        roots = self._crossings(w, wid, c, cid, t, hi)
        if roots:
            queue.push(Certificate(
                roots[0], (self._rank[wid], self._rank[cid]), (cid, c)
            ))

    def _winner_after(self, t: float, cands: list[tuple[int, Polynomial]],
                      ) -> tuple[int, Polynomial]:
        """argmin/argmax of the candidate curves just after ``t`` by jet
        comparison; ties at every jet level go to the lower rank (the
        reference tie-break)."""
        best_id, best = cands[0]
        for cid, c in cands[1:]:
            if self._beats(c, cid, best, best_id, t):
                best_id, best = cid, c
        return best_id, best

    def _beats(self, c: Polynomial, cid: int, best: Polynomial,
               best_id: int, t: float) -> bool:
        fam = self.family
        if fam.same(c, best):
            return False
        # The memoised pair difference is the same polynomial whose
        # roots schedule the certificates — sign analysis and event
        # times come from one cached object.  Canonical orientation
        # shares the family's pair cache; flip the sign back when the
        # challenger is the higher-rank member.
        flip = self._rank[cid] > self._rank[best_id]
        a, b = (best, c) if flip else (c, best)
        sgn = _sign_after(fam._pair_entry(a, b), t)
        if flip:
            sgn = -sgn
        if sgn == 0:
            return False
        want = -1 if self.op == "min" else 1
        return sgn == want

    # ------------------------------------------------------------------
    # Shared
    # ------------------------------------------------------------------
    def _fuse(self, pieces: list[Piece]) -> list[Piece]:
        """Maximal-piece fusing with the serial oracle's rule: adjacent
        pieces merge iff same curve (family.same) and same label."""
        fam = self.family
        out: list[Piece] = []
        for p in pieces:
            if (
                out
                and out[-1].label == p.label
                and abs(out[-1].hi - p.lo) <= T_EPS * max(1.0, abs(p.lo))
                and fam.same(out[-1].fn, p.fn)
            ):
                prev = out.pop()
                p = Piece(prev.lo, p.hi, prev.fn, prev.label)
            out.append(p)
        return out


def _sign_after(d: Polynomial, t: float) -> int:
    """Sign of ``d`` immediately to the right of ``t``: the first jet
    level (value, then derivatives) that clears its tolerance decides;
    all levels quiet means the curves are indistinguishable there."""
    cur = d
    while True:
        v = cur(t)
        if abs(v) > _JET_TOL * _jet_scale(cur, t):
            return -1 if v < 0.0 else 1
        if cur.degree == 0:
            return 0
        cur = cur.derivative()


def _jet_scale(p: Polynomial, t: float) -> float:
    """A coefficient-magnitude bound on ``|p|`` near ``t`` (the scale
    against which an evaluation counts as nonzero)."""
    s = max(1.0, abs(t))
    total = 0.0
    power = 1.0
    for c in p._cl:
        total += abs(c) * power
        power *= s
    return max(1.0, total)
