"""Deterministic certificate event queue for the incremental envelope.

A *certificate* asserts that a locally verified fact about the current
envelope stays true up to its *failure time* — "piece ``p``'s winner beats
the inserted curve until ``r``", "the window winner ``w`` beats challenger
``x`` until their next crossing".  The incremental engine
(:mod:`repro.incremental.engine`) repairs an envelope by processing
certificate failures in order, never by scanning whole structures, which
is what localizes an update to its affected breakpoints.

Determinism contract (enforced statically by RPR008):

* the queue orders strictly by ``(failure_time, canonical key)`` — the
  key is a tuple of curve *positions* (stable insertion ranks) and
  interval coordinates, never ``id()``/``hash()`` of live objects;
* heap entries are ``(failure_time, key, payload)`` tuples and the
  ``(failure_time, key)`` prefix is unique per entry, so comparison
  never reaches the payload and pop order is a pure function of the
  *set* of pushed certificates — pushing the same certificates in any
  permutation pops them identically (pinned by the tie-permutation
  property tests in ``tests/incremental/``).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterable

__all__ = ["Certificate", "CertificateQueue"]


class Certificate:
    """One scheduled failure: ``(failure_time, key)`` plus engine payload.

    ``key`` must be a tuple of plain ordered scalars (ints/floats) that is
    unique among the certificates simultaneously in a queue — the engine
    uses curve positions and span coordinates.  ``payload`` is opaque to
    the queue and never participates in ordering.
    """

    __slots__ = ("failure_time", "key", "payload")

    def __init__(self, failure_time: float, key: tuple,
                 payload: Any) -> None:
        if not isinstance(key, tuple):
            raise TypeError(f"certificate key must be a tuple, got {key!r}")
        self.failure_time = float(failure_time)
        self.key = key
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Certificate(t={self.failure_time:g}, key={self.key})"


class CertificateQueue:
    """Min-queue of certificates ordered by ``(failure_time, key)``.

    Pops are a pure function of the pushed set: entries with distinct
    ``(failure_time, key)`` prefixes order totally, and duplicate
    prefixes are rejected at push time (two certificates that could only
    be ordered by insertion order are a determinism bug, not a tie to
    break silently).
    """

    __slots__ = ("_heap", "_keys", "pushes", "pops")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._keys: set[tuple] = set()
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, cert: Certificate) -> None:
        entry_key = (cert.failure_time, cert.key)
        if entry_key in self._keys:
            raise ValueError(
                f"duplicate certificate order key {entry_key!r}: pop order "
                f"would depend on insertion order")
        self._keys.add(entry_key)
        self.pushes += 1
        heapq.heappush(self._heap, (cert.failure_time, cert.key, cert))

    def push_all(self, certs: Iterable[Certificate]) -> None:
        for cert in certs:
            self.push(cert)

    def pop(self) -> Certificate:
        failure_time, key, cert = heapq.heappop(self._heap)
        self._keys.discard((failure_time, key))
        self.pops += 1
        return cert

    def peek_time(self) -> float:
        """Failure time of the earliest certificate (inf when empty)."""
        return self._heap[0][0] if self._heap else math.inf

    def clear(self) -> None:
        """Drop every scheduled certificate (e.g. after a winner change,
        when the engine rebuilds the challenger set from scratch)."""
        self._heap.clear()
        self._keys.clear()
