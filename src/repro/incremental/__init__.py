"""Incremental envelope maintenance under insert / delete / retarget.

The kinetic update layer of ROADMAP item 3: a maintained envelope whose
updates localize to the affected breakpoints via a deterministic
certificate event queue, with the full recompute kept as the semantic
reference (byte-identical parity, enforced by ``repro.verify
incremental`` and the Hypothesis suite in ``tests/incremental/``).

See docs/incremental.md for the certificate model, the parity
contract, and the measured incremental-vs-recompute crossover.
"""

from .engine import IncrementalEnvelope, encode_envelope, envelope_bytes
from .events import Certificate, CertificateQueue

__all__ = [
    "IncrementalEnvelope",
    "Certificate",
    "CertificateQueue",
    "encode_envelope",
    "envelope_bytes",
]
