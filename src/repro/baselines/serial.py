"""Serial baselines (the model of Atallah 1985).

Every Section 3–5 algorithm in :mod:`repro.core` accepts ``machine=None``
to run its serial path; this module additionally provides *cost-counted*
serial runs on the :class:`~repro.machines.topology.SerialTopology` machine,
so benches can compare serial work against parallel time, and convenience
wrappers with the baseline's name at the call site.
"""

from __future__ import annotations

from typing import Sequence

from ..core.envelope import envelope, envelope_serial
from ..core.family import CurveFamily, PolynomialFamily
from ..core.neighbors import closest_point_sequence
from ..kinetics.motion import PointSystem
from ..kinetics.piecewise import PiecewiseFunction
from ..machines.machine import serial_machine

__all__ = ["serial_envelope", "serial_envelope_cost",
           "serial_closest_sequence", "serial_work_units"]


def serial_envelope(fns: Sequence, family: CurveFamily, *, op: str = "min",
                    labels=None) -> PiecewiseFunction:
    """Atallah-style serial divide-and-conquer envelope (the oracle path)."""
    return envelope_serial(fns, family, op=op, labels=labels)


def serial_envelope_cost(fns: Sequence, family: CurveFamily, *,
                         op: str = "min", labels=None) -> tuple[PiecewiseFunction, float]:
    """Envelope plus its serial work count (one unit per slot per round).

    Running the parallel engine on a single-PE machine charges ``L`` units
    per lockstep round over ``L`` slots, giving the ``Theta(n log n)``-ish
    serial work curve benches compare against parallel time.
    """
    machine = serial_machine()
    env = envelope(machine, fns, family, op=op, labels=labels)
    return env, machine.metrics.time


def serial_closest_sequence(system: PointSystem, query: int = 0) -> PiecewiseFunction:
    """Serial chronological closest-point sequence (Theorem 4.1 oracle)."""
    return closest_point_sequence(None, system, query)


def serial_work_units(n: int, k: int = 1) -> float:
    """Measured serial work to build an envelope of ``n`` random k-curves."""
    import numpy as np

    from ..kinetics.polynomial import Polynomial

    rng = np.random.default_rng(0)
    fns = [Polynomial(rng.uniform(-10, 10, k + 1)) for _ in range(n)]
    _, cost = serial_envelope_cost(fns, PolynomialFamily(k))
    return cost
