"""An event-driven kinetic baseline (the modern "KDS" viewpoint).

The paper computes the whole chronological closest-point sequence *offline*
as a lower envelope (Theorem 4.1).  The later kinetic-data-structures
literature maintains the same answer *online*: keep the current winner and
a certificate ("winner j beats every other i"), advance time to the
earliest certificate failure, and repair.

This module implements that sweep for the nearest-neighbour and
closest-pair sequences.  It serves two purposes:

* an **independent oracle**: its output must equal the envelope labels
  piece for piece (checked by the tests), validating Theorem 4.1's
  machinery through a completely different algorithm; and
* a **work comparison**: the sweep performs ``Theta(n)`` root solves per
  piece (``Theta(n * |R|)`` total), against the envelope's
  ``Theta(n log n)``-ish divide-and-conquer work — quantifying what the
  offline structure buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DegenerateSystemError
from ..kinetics.motion import PointSystem

__all__ = ["KineticResult", "kinetic_closest_sequence",
           "kinetic_closest_pair_sequence"]

_EPS = 1e-9


@dataclass(frozen=True)
class KineticResult:
    """Output of an event-driven sweep."""

    labels: list            #: winner per interval, chronological
    times: list             #: interval boundaries (len = len(labels) - 1)
    events: int             #: certificate repairs performed
    root_solves: int        #: quadratic/quartic solves performed


def _winner(curves: dict, t: float):
    """Label with the minimal curve value at time ``t``."""
    best_label, best_val = None, math.inf
    for label, poly in curves.items():
        v = poly(t)
        if v < best_val:
            best_label, best_val = label, v
    return best_label


def _next_crossing(curves: dict, winner, t: float) -> float:
    """Earliest time > t at which some curve dips below the winner."""
    win_poly = curves[winner]
    nxt = math.inf
    for label, poly in curves.items():
        if label == winner:
            continue
        diff = poly - win_poly
        for r in diff.real_roots(t):
            if r <= t + _EPS:
                continue
            # A genuine takeover: the challenger is smaller just after r.
            probe = r + max(1e-7, 1e-7 * abs(r))
            if diff(probe) < 0:
                nxt = min(nxt, r)
                break
    return nxt


def _sweep(curves: dict) -> KineticResult:
    labels = []
    times = []
    t = 0.0
    root_solves = 0
    events = 0
    guard = 0
    max_events = 4 * sum(p.degree + 1 for p in curves.values()) * len(curves)
    current = _winner(curves, t + 1e-7)
    labels.append(current)
    while True:
        guard += 1
        if guard > max_events:
            raise RuntimeError("kinetic sweep failed to converge")
        root_solves += len(curves) - 1
        nxt = _next_crossing(curves, current, t)
        if math.isinf(nxt):
            break
        t = nxt
        new = _winner(curves, t + max(1e-7, 1e-7 * abs(t)))
        if new != current:
            events += 1
            times.append(t)
            labels.append(new)
            current = new
    return KineticResult(labels, times, events, root_solves)


def kinetic_closest_sequence(system: PointSystem,
                             query: int = 0) -> KineticResult:
    """Event-driven nearest-neighbour sequence (must equal Theorem 4.1's R)."""
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points")
    curves = {
        j: system.distance_squared(query, j)
        for j in range(n) if j != query
    }
    return _sweep(curves)


def kinetic_closest_pair_sequence(system: PointSystem) -> KineticResult:
    """Event-driven closest-pair sequence (the Section 6 remark, online)."""
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points")
    curves = {
        (i, j): system.distance_squared(i, j)
        for i in range(n) for j in range(i + 1, n)
    }
    return _sweep(curves)
