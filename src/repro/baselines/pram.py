"""CREW PRAM baseline and direct-simulation costing (Sections 1 and 6).

The paper's headline comparison: the Chandran–Mount CREW PRAM algorithm
describes the envelope in ``O(log n)`` steps, but *simulating* a PRAM step
on a distributed-memory machine costs one concurrent-read plus one
concurrent-write round — ``Theta(sqrt(n))`` on the mesh and
``Theta(log^2 n)`` on the bitonic hypercube.  Direct simulation therefore
costs ``Theta(sqrt(n) log n)`` / ``Theta(log^3 n)``, worse than the native
``Theta(lambda^{1/2}(n,s))`` / ``Theta(log^2 n)`` algorithms of Section 3.

This module provides both sides of that comparison:

* :func:`pram_envelope` — the envelope engine run on the PRAM cost model
  (unit-cost exchanges), measuring its parallel step count;
* :func:`chandran_mount_steps` — the idealised ``c * log2(n)`` step model
  of the Chandran–Mount algorithm (we model its step count rather than
  re-implementing its pointer machinery; any *larger* count only weakens
  the PRAM side, making the paper's conclusion easier — using the idealised
  count reproduces the claim in its strongest form);
* :func:`crcw_round_cost` — the *measured* cost of one concurrent-read +
  concurrent-write on a given host machine, taken from
  :mod:`repro.ops.concurrent`;
* :func:`simulation_cost` — steps x per-step cost, the paper's accounting.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.envelope import envelope
from ..core.family import CurveFamily
from ..kinetics.piecewise import PiecewiseFunction
from ..machines.machine import Machine, pram_machine
from ..ops import concurrent_read, concurrent_write
from ..ops._common import next_pow2

__all__ = ["pram_envelope", "chandran_mount_steps", "crcw_round_cost",
           "simulation_cost"]


def pram_envelope(fns: Sequence, family: CurveFamily, *, op: str = "min",
                  labels=None) -> tuple[PiecewiseFunction, float]:
    """The Section 3 envelope on the CREW PRAM cost model.

    Returns ``(envelope, parallel_steps)``.  Each data movement round costs
    one PRAM step, so the measured count is ``Theta(log^2 n)`` — an upper
    bound for the Chandran–Mount step count used by
    :func:`simulation_cost`'s conservative variant.
    """
    machine = pram_machine(next_pow2(max(2, len(list(fns)))))
    env = envelope(machine, fns, family, op=op, labels=labels)
    return env, machine.metrics.time


def chandran_mount_steps(n: int, c: float = 4.0) -> float:
    """Idealised Chandran–Mount step count: ``c * log2 n`` PRAM steps."""
    if n < 2:
        return c
    return c * math.log2(n)


def crcw_round_cost(machine: Machine, n: int) -> float:
    """Measured cost of one CR + one CW round of size ``n`` on ``machine``.

    This is the per-step price of direct PRAM simulation on the host:
    ``Theta(sqrt(n))`` for the mesh, ``Theta(log^2 n)`` for the bitonic
    hypercube — exactly the figures quoted in Section 6.
    """
    before = machine.metrics.time
    keys = np.arange(n)
    vals = np.arange(n).astype(object)
    queries = np.arange(n)[::-1]
    concurrent_read(machine, keys, vals, queries)
    concurrent_write(machine, keys, queries, vals, lambda a, b: a)
    return machine.metrics.time - before


def simulation_cost(machine: Machine, n: int, *,
                    pram_steps: float | None = None) -> float:
    """Total cost of simulating the PRAM envelope on ``machine``.

    ``pram_steps`` defaults to the idealised Chandran–Mount count; pass the
    measured count from :func:`pram_envelope` for the conservative variant.
    """
    steps = chandran_mount_steps(n) if pram_steps is None else pram_steps
    return steps * crcw_round_cost(machine, n)
