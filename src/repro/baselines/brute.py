"""Brute-force oracles used by tests, examples, and benches.

Everything here is deliberately naive — dense time sampling and O(n^2)
pair scans — so it is an *independent* check on the clever algorithms.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..kinetics.motion import PointSystem

__all__ = [
    "sampled_envelope",
    "nearest_at",
    "farthest_at",
    "closest_pair_at",
    "farthest_pair_at",
    "bounding_box_at",
    "fits_box_at",
    "hull_vertices_at",
]


def sampled_envelope(fns: Sequence[Callable[[float], float]],
                     ts: np.ndarray, op=min) -> np.ndarray:
    """``op`` of the functions at each sample time (dense-grid envelope)."""
    return np.array([op(f(t) for f in fns) for t in ts])


def nearest_at(system: PointSystem, query: int, t: float) -> tuple[int, float]:
    """(index, squared distance) of the nearest point to the query at t."""
    pos = system.positions(t)
    d2 = np.sum((pos - pos[query]) ** 2, axis=1)
    d2[query] = np.inf
    j = int(np.argmin(d2))
    return j, float(d2[j])


def farthest_at(system: PointSystem, query: int, t: float) -> tuple[int, float]:
    pos = system.positions(t)
    d2 = np.sum((pos - pos[query]) ** 2, axis=1)
    d2[query] = -np.inf
    j = int(np.argmax(d2))
    return j, float(d2[j])


def _pair_matrix(system: PointSystem, t: float) -> np.ndarray:
    pos = system.positions(t)
    diff = pos[:, None, :] - pos[None, :, :]
    return np.sum(diff * diff, axis=-1)


def closest_pair_at(system: PointSystem, t: float) -> tuple[int, int, float]:
    d2 = _pair_matrix(system, t)
    np.fill_diagonal(d2, np.inf)
    i, j = np.unravel_index(np.argmin(d2), d2.shape)
    return int(min(i, j)), int(max(i, j)), float(d2[i, j])


def farthest_pair_at(system: PointSystem, t: float) -> tuple[int, int, float]:
    d2 = _pair_matrix(system, t)
    np.fill_diagonal(d2, -np.inf)
    i, j = np.unravel_index(np.argmax(d2), d2.shape)
    return int(min(i, j)), int(max(i, j)), float(d2[i, j])


def bounding_box_at(system: PointSystem, t: float) -> np.ndarray:
    """Per-axis extent of the system at time ``t``."""
    pos = system.positions(t)
    return pos.max(axis=0) - pos.min(axis=0)


def fits_box_at(system: PointSystem, box: Sequence[float], t: float) -> bool:
    return bool(np.all(bounding_box_at(system, t) <= np.asarray(box) + 1e-9))


def hull_vertices_at(system: PointSystem, t: float) -> list[int]:
    """Extreme-point indices at time ``t`` (float convex hull)."""
    from ..geometry.convex_hull import convex_hull

    return sorted(convex_hull([tuple(p) for p in system.positions(t)]))
