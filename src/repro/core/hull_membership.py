"""Convex-hull membership over time — Section 4.2 (Theorem 4.5).

For a planar system ``S = {P_0, ..., P_{n-1}}`` with k-motion, this module
computes the ordered intervals of time during which a query point is an
extreme point of ``hull(S)``.

Following the paper: ``T_j(t)`` is the angle of the vector from the query
point to ``P_j`` (range ``(-pi, pi]``); ``G_j``/``B_j`` restrict ``T_j`` to
where it is non-negative/negative (partial functions with at most ``k``
transitions each — Figure 5 / Lemma 3.3); and

* ``a(t), b(t)`` are the lower/upper envelopes of the ``G_j``,
* ``c(t), d(t)`` are the lower/upper envelopes of the ``B_j``.

Lemma 4.4: the query point is extreme at ``t`` iff ``a - d >= pi``, or
``b - c <= pi``, or the ``G``'s are all undefined, or the ``B``'s are all
undefined.  Each envelope has at most ``lambda(n, 4k)`` pieces (Lemma 4.3),
and the whole computation runs in ``Theta(lambda^{1/2}(n, 4k))`` mesh time /
``Theta(log^2 n)`` hypercube time.

Angle curves never need to be represented numerically as angles except for
point evaluations: equality of two angles means the two vectors are parallel
and similarly oriented (a degree-``2k`` polynomial condition plus a sign
test), and a difference of ``pi`` means parallel and oppositely oriented —
exactly the reductions in the proof of Theorem 4.5.
"""

from __future__ import annotations

import math

from ..errors import DegenerateSystemError
from ..kinetics.batch import warm_root_candidates
from ..kinetics.motion import PointSystem
from ..kinetics.piecewise import INF, Piece, PiecewiseFunction
from ..kinetics.polynomial import Polynomial
from ..machines.machine import Machine
from ..ops._common import next_pow2
from ..trace.tracer import trace_span
from .containment import indicator_intervals
from .envelope import (
    combine_pairwise,
    combine_pairwise_serial,
    envelope,
    envelope_serial,
)
from .family import CurveFamily, PolynomialFamily

__all__ = ["AngleCurve", "AngleFamily", "hull_membership_intervals",
           "all_hull_membership_intervals", "angle_restrictions",
           "is_extreme_at"]

_EPS = 1e-9


class AngleCurve:
    """``T_j``: the angle ``atan2(dy(t), dx(t))`` of a moving direction.

    ``dx``/``dy`` are the coordinate differences ``p_x(f_j) - p_x(f_q)``
    etc., polynomials of degree at most ``k``.
    """

    __slots__ = ("dx", "dy", "j")

    def __init__(self, dx: Polynomial, dy: Polynomial, j):
        self.dx = dx
        self.dy = dy
        self.j = j

    def __call__(self, t: float) -> float:
        return math.atan2(self.dy(t), self.dx(t))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AngleCurve(j={self.j})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, AngleCurve):
            return NotImplemented
        return self.j == other.j and self.dx == other.dx and self.dy == other.dy

    def __hash__(self) -> int:
        return hash((self.j, self.dx, self.dy))


def _cross(f: AngleCurve, g: AngleCurve) -> Polynomial:
    """Parallel test polynomial: zero iff the two vectors are parallel."""
    return f.dx * g.dy - g.dx * f.dy


def _dot(f: AngleCurve, g: AngleCurve) -> Polynomial:
    return f.dx * g.dx + f.dy * g.dy


class AngleFamily(CurveFamily):
    """Angle curves of a k-motion system: at most ``2k`` pairwise crossings.

    Two angle curves agree exactly when the vectors are parallel *and*
    similarly oriented: roots of the degree-``2k`` cross polynomial filtered
    by the sign of the dot product (Theorem 4.5 proof).  The per-pair
    ``(cross, dot)`` polynomials are memoised via the base-class crossing
    cache; crossings and opposite_times are cheap filters over them.
    """

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("motion degree k must be non-negative")
        self.k = k
        self.s = 2 * max(1, k)

    def value(self, f: AngleCurve, t: float) -> float:
        return f(t)

    def _compute_pair(self, f: AngleCurve, g: AngleCurve):
        return _cross(f, g), _dot(f, g)

    def _warm_prefetched(self, entries: list) -> None:
        warm_root_candidates([cross for cross, _ in entries])

    def _parallel_times(self, f: AngleCurve, g: AngleCurve, lo: float,
                        hi: float, orientation: int) -> list[float]:
        """Roots of the cross polynomial in ``(lo, hi)`` whose dot product
        has the requested sign (+1 similarly, -1 oppositely oriented)."""
        cross, dot = self._pair_entry(f, g)
        if cross.is_zero():
            return []
        eps = _EPS * max(1.0, abs(lo))
        out = []
        for r in cross.real_roots(lo, hi):
            if r <= lo + eps or (math.isfinite(hi) and r >= hi - eps):
                continue
            if dot(r) * orientation > 0:
                out.append(r)
        return out

    def crossings(self, f: AngleCurve, g: AngleCurve, lo: float,
                  hi: float) -> list[float]:
        return self._parallel_times(f, g, lo, hi, +1)

    def opposite_times(self, f: AngleCurve, g: AngleCurve, lo: float,
                       hi: float) -> list[float]:
        """Times in ``(lo, hi)`` when the vectors are parallel and
        *oppositely* oriented — where ``T_f - T_g`` crosses ``+-pi``."""
        return self._parallel_times(f, g, lo, hi, -1)

    def same(self, f: AngleCurve, g: AngleCurve) -> bool:
        if f is g:
            return True
        cross, dot = self._pair_entry(f, g)
        if not cross.is_zero():
            return False
        # Parallel for all time; same curve iff same orientation.
        return dot.sign_at_infinity() > 0


def angle_restrictions(system: PointSystem, query: int = 0):
    """The partial functions ``G_j`` and ``B_j`` of Section 4.2.

    ``G_j`` is ``T_j`` restricted to ``T_j >= 0`` — equivalently ``dy >= 0``
    (when ``dy = 0`` the angle is 0 or pi, both non-negative) — and ``B_j``
    to ``T_j < 0``.  Each has at most ``k`` transitions (roots of ``dy``),
    matching Lemma 3.3's hypotheses.
    """
    if system.dimension != 2:
        raise DegenerateSystemError("hull membership is a planar problem")
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points")
    fq = system[query]
    gs, bs = [], []
    for j, m in enumerate(system):
        if j == query:
            continue
        dx = m[0] - fq[0]
        dy = m[1] - fq[1]
        curve = AngleCurve(dx, dy, j)
        # Split at roots of dy (sign changes of the angle = G/B boundary)
        # and of dx (jump discontinuities of T when the vector passes
        # through the query point or along the x-axis — Lemma 3.3 allows
        # at most k jumps and k transitions per curve).
        cuts = [0.0] + dy.real_roots(0.0) + dx.real_roots(0.0) + [INF]
        cuts = sorted(set(cuts))
        g_pieces, b_pieces = [], []
        for a, b in zip(cuts, cuts[1:]):
            if b - a <= _EPS * max(1.0, abs(a)):
                continue
            mid = a + 1.0 if math.isinf(b) else 0.5 * (a + b)
            if dy(mid) >= 0:
                g_pieces.append(Piece(a, b, curve, j))
            else:
                b_pieces.append(Piece(a, b, curve, j))
        gs.append(PiecewiseFunction(g_pieces, validate=False))
        bs.append(PiecewiseFunction(b_pieces, validate=False))
    return gs, bs


def _pair_indicator(F: PiecewiseFunction, G: PiecewiseFunction,
                    family: AngleFamily, predicate: str,
                    machine: Machine | None) -> PiecewiseFunction:
    """Indicator pieces of ``F - G >= pi`` (predicate="ge") or
    ``F - G <= pi`` ("le") on the common domain, 0 elsewhere left as gaps.

    The difference of two angle curves is continuous on each nondegenerate
    piece intersection and crosses ``pi`` only at parallel-opposite
    instants, so each intersection splits into at most ``2k + 1``
    constant-indicator subpieces (Lemma 2.6).  Data movement is the
    Lemma 3.1 pattern: one merge, fills, Theta(1) local work, one pack;
    charged on ``machine`` when given.
    """
    out = []
    overlaps = []
    for p in F.pieces:
        for q in G.pieces:
            lo, hi = max(p.lo, q.lo), min(p.hi, q.hi)
            if hi - lo > _EPS * max(1.0, abs(lo)):
                overlaps.append((p, q, lo, hi))
    family.prefetch_crossings(
        dict.fromkeys((p.fn, q.fn) for p, q, _, _ in overlaps)
    )
    for p, q, lo, hi in overlaps:
        cuts = [lo, *family.opposite_times(p.fn, q.fn, lo, hi), hi]
        for a, b in zip(cuts, cuts[1:]):
            if b - a <= _EPS * max(1.0, abs(a)):
                continue
            mid = a + 1.0 if math.isinf(b) else 0.5 * (a + b)
            diff = p.fn(mid) - q.fn(mid)
            sat = diff >= math.pi if predicate == "ge" else diff <= math.pi
            out.append(
                Piece(a, b, Polynomial.constant(1.0 if sat else 0.0),
                      (p.label, q.label))
            )
    out.sort(key=lambda r: r.lo)
    if machine is not None:
        m = next_pow2(max(2, 2 * (len(F.pieces) + len(G.pieces))))
        machine.local(m, count=family.s + 1)
        machine.monotone_route(m)
    return PiecewiseFunction(out, validate=False).fused(
        lambda x, y: x.fn == y.fn
    )


def _totalize(ind: PiecewiseFunction, fill_value: float = 0.0) -> PiecewiseFunction:
    """Fill domain gaps of an indicator with constant ``fill_value`` pieces."""
    fill = Polynomial.constant(fill_value)
    out = []
    cursor = 0.0
    for p in ind.pieces:
        if p.lo > cursor + _EPS * max(1.0, abs(cursor)):
            out.append(Piece(cursor, p.lo, fill, None))
        out.append(p)
        cursor = p.hi
    if math.isfinite(cursor):
        out.append(Piece(cursor, INF, fill, None))
    return PiecewiseFunction(out, validate=False).fused(
        lambda x, y: x.fn == y.fn
    )


def _undefined_indicator(env: PiecewiseFunction) -> PiecewiseFunction:
    """1 exactly where ``env`` is undefined (conditions 3/4 of Lemma 4.4)."""
    one = Polynomial.constant(1.0)
    zero = Polynomial.constant(0.0)
    out = []
    cursor = 0.0
    for p in env.pieces:
        if p.lo > cursor + _EPS * max(1.0, abs(cursor)):
            out.append(Piece(cursor, p.lo, one, None))
        out.append(Piece(p.lo, p.hi, zero, None))
        cursor = p.hi
    if math.isfinite(cursor):
        out.append(Piece(cursor, INF, one, None))
    if not env.pieces:
        return PiecewiseFunction([Piece(0.0, INF, one, None)])
    return PiecewiseFunction(out, validate=False).fused(
        lambda x, y: x.fn == y.fn
    )


def hull_membership_intervals(machine: Machine | None, system: PointSystem,
                              query: int = 0) -> list[tuple[float, float]]:
    """Theorem 4.5: ordered intervals when ``P_query`` is a hull vertex.

    ``machine=None`` runs the serial oracle path; otherwise the envelopes
    and combines run on the machine, totalling
    ``Theta(lambda^{1/2}(n, 4k))`` mesh / ``Theta(log^2 n)`` hypercube time.
    """
    with trace_span("hull_membership",
                    None if machine is None else machine.metrics,
                    category="driver", n=len(system), query=query):
        return _membership_body(machine, system, query)


def _membership_body(machine: Machine | None, system: PointSystem,
                     query: int) -> list[tuple[float, float]]:
    fam = AngleFamily(max(1, system.k))
    const_fam = PolynomialFamily(0)
    gs, bs = angle_restrictions(system, query)

    def env(fns, op):
        nonempty = [f for f in fns if len(f)]
        if not nonempty:
            return PiecewiseFunction.empty()
        if machine is None:
            return envelope_serial(nonempty, fam, op=op)
        return envelope(machine, nonempty, fam, op=op)

    # Step 1: the four envelopes a, b, c, d (Theorem 3.4 on partial fns).
    a0 = env(gs, "min")
    b0 = env(gs, "max")
    c0 = env(bs, "min")
    d0 = env(bs, "max")

    # Steps 2–3: indicator functions A, B (pi-threshold on differences)
    # and C, D (joint undefinedness).
    A0 = _totalize(_pair_indicator(a0, d0, fam, "ge", machine))
    B0 = _totalize(_pair_indicator(b0, c0, fam, "le", machine))
    C0 = _undefined_indicator(a0)
    D0 = _undefined_indicator(c0)

    # Step 4: H = max(A, B, C, D) via Theta(1) combine stages.
    def comb(F, G):
        if machine is None:
            return combine_pairwise_serial(F, G, const_fam, "max")
        return combine_pairwise(machine, F, G, const_fam, "max")

    H0 = comb(comb(A0, B0), comb(C0, D0))

    # Step 5: pack the intervals where H = 1.
    return indicator_intervals(machine, H0)


def all_hull_membership_intervals(machine: Machine | None,
                                  system: PointSystem) -> list[list[tuple[float, float]]]:
    """Theorem 4.5 for every point at once: the full kinetic-hull history.

    Runs the ``n`` membership instances; on a machine they occupy disjoint
    strings of ``n * lambda(n, 4k)`` PEs and run *simultaneously*, so the
    level cost is the maximum over queries (the same parallel-composition
    rule as Theorem 3.2).  Returns ``intervals[q]`` for each query ``q``;
    at any time ``t`` the set ``{q : t in intervals[q]}`` is exactly the
    vertex set of ``hull(S(t))``.
    """
    with trace_span("all_hull_membership",
                    None if machine is None else machine.metrics,
                    category="driver", n=len(system)):
        return _all_membership_body(machine, system)


def _all_membership_body(machine: Machine | None,
                         system: PointSystem) -> list[list[tuple[float, float]]]:
    out = []
    branch_metrics = []
    for q in range(len(system)):
        sub = None
        if machine is not None:
            sub = type(machine)(machine.topology,
                                randomized=getattr(machine, "randomized",
                                                   False))
            sub.metrics.reset()
        out.append(hull_membership_intervals(sub, system, query=q))
        if sub is not None:
            branch_metrics.append(sub.metrics)
    if machine is not None and branch_metrics:
        # Simultaneous instances: charge the slowest.  Wall-clock adds from
        # every instance — the host ran them one after another.
        worst = max(branch_metrics, key=lambda b: b.time)
        machine.metrics.absorb(worst)
        for b in branch_metrics:
            if b is not worst:
                machine.metrics.absorb_wall(b)
    return out


def is_extreme_at(system: PointSystem, query: int, t: float) -> bool:
    """Brute-force oracle: is the query point a hull vertex at time ``t``?

    Uses the angular-gap criterion: the query point is extreme iff the
    directions towards all other points leave an open angular gap greater
    than pi (all points strictly inside a half-plane boundary through it).
    """
    pos = system.positions(t)
    q = pos[query]
    angles = sorted(
        math.atan2(p[1] - q[1], p[0] - q[0])
        for i, p in enumerate(pos) if i != query
    )
    if not angles:
        return True
    gaps = [b - a for a, b in zip(angles, angles[1:])]
    gaps.append(2 * math.pi - (angles[-1] - angles[0]))
    return max(gaps) > math.pi + 1e-12
