"""The paper's contribution: dynamic computational geometry algorithms.

Sections 3 (envelope construction), 4 (transient behaviour) and 5
(steady state), machine-independent and implemented over the data movement
operations of :mod:`repro.ops`.
"""

from .collision import collides, collision_times, collision_times_with
from .containment import (
    containment_intervals,
    coordinate_extent_functions,
    enclosing_cube_edge_function,
    indicator_intervals,
    smallest_enclosing_cube_ever,
)
from .envelope import (
    combine_map,
    combine_map_serial,
    combine_pairwise,
    combine_pairwise_serial,
    envelope,
    envelope_serial,
    threshold_indicator,
)
from .family import CurveFamily, PolynomialFamily
from .hull_membership import (
    AngleCurve,
    AngleFamily,
    all_hull_membership_intervals,
    angle_restrictions,
    hull_membership_intervals,
    is_extreme_at,
)
from .neighbors import (
    closest_point_sequence,
    distance_squared_functions,
    farthest_point_sequence,
)

__all__ = [
    "collides", "collision_times", "collision_times_with",
    "containment_intervals", "coordinate_extent_functions",
    "enclosing_cube_edge_function", "indicator_intervals",
    "smallest_enclosing_cube_ever",
    "combine_map", "combine_map_serial", "combine_pairwise",
    "combine_pairwise_serial", "envelope", "envelope_serial",
    "threshold_indicator",
    "CurveFamily", "PolynomialFamily",
    "AngleCurve", "AngleFamily", "all_hull_membership_intervals",
    "angle_restrictions", "hull_membership_intervals", "is_extreme_at",
    "closest_point_sequence", "distance_squared_functions",
    "farthest_point_sequence",
]
