"""Constructing the MIN (and MAX) function — Section 3 of the paper.

Two independent implementations are provided:

* :func:`envelope_serial` / :func:`combine_pairwise_serial` — a plane-sweep
  divide-and-conquer used as the library's correctness oracle (the serial
  model of Atallah 1985);
* :func:`envelope` / :func:`combine_pairwise` — the paper's parallel
  algorithm run on a simulated :class:`~repro.machines.machine.Machine`,
  built from the Section 2.6 data movement operations so that the simulated
  parallel time exhibits the Theta-bounds of Lemma 3.1 and Theorem 3.2
  (``Theta(sqrt(m))`` per combine on the mesh, ``Theta(log m)`` on the
  hypercube; ``Theta(lambda^{1/2})`` / ``Theta(log^2 n)`` overall).

Both support *partial* functions (pieces with gaps) as required by
Lemma 3.3 / Theorem 3.4, both support ``op`` in {"min", "max"}, and the same
machinery computes arithmetic combinations (sum/difference/product pieces,
needed by Theorems 4.5–4.7) — the paper notes the algorithm "can be used to
compute the result of applying any of a variety of operations".

Implementation note on Lemma 3.1, Step 4.  The paper assigns intersection
work to PEs by cases (a piece of ``g`` handles interior overlaps, the PEs of
a piece of ``f`` handle the leftmost/rightmost ones).  We use the equivalent
*gap decomposition*: after merging all Left/Right records by endpoint, the
interval between consecutive records has a constant active piece of ``f``
and of ``g``; the PE holding the left record resolves that interval with at
most ``s`` root computations.  The total work, data movement, and output are
identical, and every interval is handled exactly once.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import OperationContractError
from ..kinetics.piecewise import INF, Piece, PiecewiseFunction
from ..machines.machine import Machine
from ..machines.topology import (
    CCCTopology,
    HypercubeTopology,
    MeshTopology,
    PRAMTopology,
    SerialTopology,
    ShuffleExchangeTopology,
)
from ..ops import (
    bitonic_merge,
    fill_backward,
    fill_forward,
    pack,
    parallel_prefix,
    unpack_lists,
)
from ..ops._common import next_pow2
from ..trace.tracer import trace_span
from .family import CurveFamily

__all__ = [
    "envelope",
    "envelope_serial",
    "combine_pairwise",
    "combine_pairwise_serial",
    "combine_map",
    "combine_map_serial",
    "threshold_indicator",
    "normalize_inputs",
]

#: Tolerance below which an interval is considered degenerate.
_EPS = 1e-9

_SELECT_OPS = ("min", "max")
_MAP_OPS = ("sum", "diff", "product")


def _eps(t: float) -> float:
    return _EPS * max(1.0, abs(t) if math.isfinite(t) else 1.0)


def normalize_inputs(fns: Iterable, labels=None) -> list[PiecewiseFunction]:
    """Lift raw curves to single-piece total functions; pass through
    :class:`PiecewiseFunction` inputs (the partial functions of Lemma 3.3)."""
    out = []
    fns = list(fns)
    if labels is None:
        labels = range(len(fns))
    for f, lab in zip(fns, labels):
        if isinstance(f, PiecewiseFunction):
            out.append(f)
        else:
            out.append(PiecewiseFunction.total(f, label=lab))
    return out


def _check_op(op: str) -> None:
    if op not in _SELECT_OPS and op not in _MAP_OPS:
        raise OperationContractError(
            f"op must be one of {_SELECT_OPS + _MAP_OPS}, got {op!r}"
        )


# ======================================================================
# Serial oracle (plane sweep)
# ======================================================================
def _cut_points(F: PiecewiseFunction, G: PiecewiseFunction,
                family: CurveFamily, with_crossings: bool) -> list[float]:
    """All envelope breakpoint candidates: interval endpoints + crossings."""
    cuts = set()
    for p in list(F.pieces) + list(G.pieces):
        cuts.add(p.lo)
        if math.isfinite(p.hi):
            cuts.add(p.hi)
    if with_crossings:
        # Collect every overlapping pair first, then resolve the crossing
        # queries in one batched dispatch instead of per-pair.
        queries = []
        for p in F.pieces:
            for q in G.pieces:
                lo, hi = max(p.lo, q.lo), min(p.hi, q.hi)
                if lo + _eps(lo) < hi and not family.same(p.fn, q.fn):
                    queries.append((p.fn, q.fn, lo, hi))
        if queries:
            family.prefetch_crossings(
                dict.fromkeys((f, g) for f, g, _, _ in queries)
            )
            for f, g, lo, hi in queries:
                cuts.update(family.crossings(f, g, lo, hi))
    return sorted(cuts)


def _choose(p: Piece | None, q: Piece | None, t: float,
            family: CurveFamily, op: str) -> Piece | None:
    """The winning piece at sample time ``t`` (op over *defined* curves)."""
    if p is None:
        return q
    if q is None:
        return p
    if family.same(p.fn, q.fn):
        return p
    a, b = family.value(p.fn, t), family.value(q.fn, t)
    if op == "min":
        return p if a <= b else q
    return p if a >= b else q


def combine_pairwise_serial(F: PiecewiseFunction, G: PiecewiseFunction,
                            family: CurveFamily, op: str = "min") -> PiecewiseFunction:
    """Serial sweep computing ``op(F, G)`` with gap (partial-domain) support.

    For selection ops the result follows the smaller/larger defined curve;
    for arithmetic ops the result is defined on the common domain only
    (differences of members of a family, Lemma 2.5/2.6).
    """
    _check_op(op)
    select = op in _SELECT_OPS
    if not F.pieces:
        return PiecewiseFunction(list(G.pieces), validate=False) if select \
            else PiecewiseFunction.empty()
    if not G.pieces:
        return PiecewiseFunction(list(F.pieces), validate=False) if select \
            else PiecewiseFunction.empty()
    cuts = _cut_points(F, G, family, with_crossings=select)
    out: list[Piece] = []
    spans = list(zip(cuts, cuts[1:])) + [(cuts[-1], INF)]
    for lo, hi in spans:
        if hi - lo <= _eps(lo):
            continue
        mid = lo + 1.0 if math.isinf(hi) else 0.5 * (lo + hi)
        p = F.piece_at(mid)
        q = G.piece_at(mid)
        if select:
            win = _choose(p, q, mid, family, op)
            if win is None:
                continue
            out.append(Piece(lo, hi, win.fn, win.label))
        else:
            if p is None or q is None:
                continue
            out.append(Piece(lo, hi, family.combine(p.fn, q.fn, op),
                             (p.label, q.label)))
    same = (lambda a, b: family.same(a.fn, b.fn) and a.label == b.label) if select \
        else (lambda a, b: a.fn == b.fn and a.label == b.label)
    return PiecewiseFunction(out, validate=False).fused(same)


def envelope_serial(fns: Sequence, family: CurveFamily, *, op: str = "min",
                    labels=None) -> PiecewiseFunction:
    """Serial divide-and-conquer envelope of ``n`` (possibly partial) curves."""
    level = normalize_inputs(fns, labels)
    if not level:
        return PiecewiseFunction.empty()
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(combine_pairwise_serial(level[i], level[i + 1], family, op))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


# ======================================================================
# Machine implementation (Lemma 3.1 / Theorem 3.2)
# ======================================================================
def _records_of(F: PiecewiseFunction, half: int):
    """Left/Right records of Lemma 3.1 Step 1, padded to ``half`` slots.

    Records are emitted interleaved L0 R0 L1 R1 ..., which is sorted by
    (endpoint, tie) because pieces are ordered; ties sort Right before Left
    (the tie-break rule of Step 2).
    """
    end = np.full(half, INF)
    tie = np.full(half, 2, dtype=np.int64)
    kind = np.full(half, -1, dtype=np.int64)
    piece = np.full(half, None, dtype=object)
    for i, p in enumerate(F.pieces):
        end[2 * i], tie[2 * i], kind[2 * i], piece[2 * i] = p.lo, 1, 0, p
        end[2 * i + 1], tie[2 * i + 1], kind[2 * i + 1], piece[2 * i + 1] = (
            p.hi, 0, 1, p
        )
    return end, tie, kind, piece


#: When True (default) combine_pairwise computes the data transformations
#: host-side over the real records only, while issuing the exact same
#: simulated charge sequence as the array machinery.  Outputs and metrics
#: are identical either way (tests assert this); the flag exists so tests
#: and debugging can force the reference array path.
_FAST_COMBINE = True


def set_fast_combine(enabled: bool) -> bool:
    """Toggle the host-side fast combine path; returns the previous value."""
    global _FAST_COMBINE
    prev = _FAST_COMBINE
    _FAST_COMBINE = bool(enabled)
    return prev


def combine_pairwise(machine: Machine, F: PiecewiseFunction,
                     G: PiecewiseFunction, family: CurveFamily,
                     op: str = "min") -> PiecewiseFunction:
    """Lemma 3.1 on the machine: ``op(F, G)`` in one merge + scans + packs.

    Cost profile: ``Theta(sqrt(m))`` on a mesh of ``Theta(m)`` PEs,
    ``Theta(log m)`` on a hypercube, where ``m`` is the total piece count.
    ``op`` may be a selection ("min"/"max", following the lower/upper
    envelope) or an arithmetic map ("sum"/"diff"/"product", defined on the
    common domain).
    """
    _check_op(op)
    select = op in _SELECT_OPS
    if not F.pieces:
        return PiecewiseFunction(list(G.pieces), validate=False) if select \
            else PiecewiseFunction.empty()
    if not G.pieces:
        return PiecewiseFunction(list(F.pieces), validate=False) if select \
            else PiecewiseFunction.empty()
    half = next_pow2(2 * max(len(F.pieces), len(G.pieces)))
    L = 2 * half
    if _FAST_COMBINE:
        return _combine_pairwise_fast(machine, F, G, family, op, select,
                                      half, L)

    # Step 1: record creation (local) and layout (monotone route).
    endF, tieF, kindF, pieceF = _records_of(F, half)
    endG, tieG, kindG, pieceG = _records_of(G, half)
    end = np.concatenate([endF, endG])
    tie = np.concatenate([tieF, tieG])
    kind = np.concatenate([kindF, kindG])
    piece = np.concatenate([pieceF, pieceG])
    src = np.concatenate([np.zeros(half, np.int64), np.ones(half, np.int64)])
    machine.local(L)
    machine.monotone_route(L)

    # Step 2: merge the two sorted record runs by (endpoint, tie).
    with machine.phase("merge"):
        (end, tie), (kind, piece, src) = bitonic_merge(
            machine, [end, tie], [kind, piece, src]
        )

    # Step 3: every record learns the active piece of f and of g on the gap
    # that follows it (fill = the paper's prefix/broadcast within strings).
    with machine.phase("scan"):
        state_f = np.where((src == 0) & (kind == 0), piece, None)
        state_g = np.where((src == 1) & (kind == 0), piece, None)
        defined_f = (src == 0) & (kind >= 0)
        defined_g = (src == 1) & (kind >= 0)
        active_f = fill_forward(machine, state_f, defined_f)
        active_g = fill_forward(machine, state_g, defined_g)

    # Step 4: per-gap subpiece construction (at most s+1 each, local).
    nxt = np.empty(L, dtype=float)
    nxt[:-1] = end[1:]
    nxt[-1] = INF
    machine.exchange(L, 0)
    if select:
        _prefetch_gap_pairs(end, nxt, active_f, active_g, family, L)
    with machine.phase("cross"):
        subs = np.empty(L, dtype=object)
        for i in range(L):
            subs[i] = _gap_subpieces(
                end[i], nxt[i], active_f[i], active_g[i], family, op
            )
        machine.local(L, count=family.s + 1)
    # Step 5 is implicit: roots come out of the solver sorted, so each PE's
    # subpieces are already ordered left to right.

    # Step 6: flatten, fuse equal-function neighbours, pack.
    with machine.phase("pack"):
        flat, total = unpack_lists(machine, subs)
    if total == 0:
        return PiecewiseFunction.empty()
    with machine.phase("fuse"):
        pieces = _fuse_on_machine(machine, flat, total, family)
    return PiecewiseFunction(pieces, validate=False)


def _gap_subpieces(lo, hi, pf, pg, family: CurveFamily, op: str):
    """Subpieces of op(f, g) on the gap [lo, hi] (Step 4 of Lemma 3.1).

    Returned as (lo, hi, fn, label) tuples, ordered left to right.
    """
    if not math.isfinite(lo) or hi - lo <= _eps(lo):
        return []
    select = op in _SELECT_OPS
    if pf is None and pg is None:
        return []
    if pf is None or pg is None:
        if not select:
            return []  # arithmetic maps live on the common domain only
        win = pf if pg is None else pg
        hi_c = min(hi, win.hi)
        lo_c = max(lo, win.lo)
        if hi_c - lo_c <= _eps(lo_c):
            return []
        return [(lo_c, hi_c, win.fn, win.label)]
    lo = max(lo, pf.lo, pg.lo)
    hi = min(hi, pf.hi, pg.hi)
    if hi - lo <= _eps(lo):
        return []
    if not select:
        return [(lo, hi, family.combine(pf.fn, pg.fn, op),
                 (pf.label, pg.label))]
    if family.same(pf.fn, pg.fn):
        return [(lo, hi, pf.fn, pf.label)]
    roots = family.crossings(pf.fn, pg.fn, lo, hi)
    bounds = [lo, *roots, hi]
    out = []
    for a, b in zip(bounds, bounds[1:]):
        if b - a <= _eps(a):
            continue
        mid = a + 1.0 if math.isinf(b) else 0.5 * (a + b)
        va, vb = family.value(pf.fn, mid), family.value(pg.fn, mid)
        take_f = (va <= vb) if op == "min" else (va >= vb)
        win = pf if take_f else pg
        out.append((a, b, win.fn, win.label))
    return out


def _prefetch_gap_pairs(end, nxt, active_f, active_g,
                        family: CurveFamily, L: int) -> None:
    """Warm the crossing cache for every distinct active pair of Step 4.

    Collecting the pairs up front lets the family resolve all of a
    combine's crossing queries in one batched dispatch instead of one
    eigensolve per gap.
    """
    pairs = {}
    for i in range(L):
        pf = active_f[i]
        pg = active_g[i]
        if (
            pf is not None
            and pg is not None
            and math.isfinite(end[i])
            and nxt[i] - end[i] > _eps(end[i])
            and pf.fn is not pg.fn
        ):
            pairs[(pf.fn, pg.fn)] = None
    if pairs:
        family.prefetch_crossings(pairs)


def _combine_pairwise_fast(machine: Machine, F: PiecewiseFunction,
                           G: PiecewiseFunction, family: CurveFamily,
                           op: str, select: bool, half: int,
                           L: int) -> PiecewiseFunction:
    """Host-side evaluation of Lemma 3.1 with machinery-identical charges.

    The array implementation iterates full power-of-two strings of slots;
    for the small piece counts a combine typically sees, the per-slot NumPy
    machinery dominates wall-clock.  This path walks only the real records
    in plain Python and issues the *exact* charge sequence the array path
    would (every charge is a deterministic function of ``L``, ``s``, and
    the subpiece counts), so simulated time, rounds, and phase attribution
    are bit-identical — as is the output: any (endpoint, tie)-sorted merge
    order yields the same pieces, because tied records always come from
    different sources (F vs G) and the gap between them is degenerate.
    """
    # Step 1: record creation (local) and layout (monotone route).
    machine.local(L)
    machine.monotone_route(L)

    # Step 2: merge records by (endpoint, tie); Right (0) before Left (1).
    recs = []
    for src, fn in ((0, F), (1, G)):
        for p in fn.pieces:
            recs.append((p.lo, 1, p, src))
            recs.append((p.hi, 0, p, src))
    recs.sort(key=_rec_key)
    with machine.phase("merge"):
        machine.long_shift(L, half)
        machine.exchange_sweep(L, tuple(range(half.bit_length() - 1, -1, -1)))

    # Step 3: active-piece states (two fill_forward sweeps in the array
    # path; here a single walk below tracks them directly).
    with machine.phase("scan"):
        machine.doubling_sweep(L)
        machine.doubling_sweep(L)

    # Step 4: per-gap subpiece construction.  The padding slots of the
    # array layout all carry endpoint +inf and produce no subpieces, so
    # only the real records' gaps matter; the gap after the last real
    # record reaches the first padding endpoint, i.e. +inf.
    machine.exchange(L, 0)
    n_rec = len(recs)
    gaps = []
    cur_f = cur_g = None
    for i in range(n_rec):
        end, tie, piece, src = recs[i]
        if src == 0:
            cur_f = piece if tie == 1 else None
        else:
            cur_g = piece if tie == 1 else None
        nxt = recs[i + 1][0] if i + 1 < n_rec else INF
        gaps.append((end, nxt, cur_f, cur_g))
    if select:
        pairs = {}
        for lo, hi, pf, pg in gaps:
            if (
                pf is not None
                and pg is not None
                and math.isfinite(lo)
                and hi - lo > _eps(lo)
                and pf.fn is not pg.fn
            ):
                pairs[(pf.fn, pg.fn)] = None
        if pairs:
            family.prefetch_crossings(pairs)
    with machine.phase("cross"):
        subs = [
            _gap_subpieces(lo, hi, pf, pg, family, op)
            for lo, hi, pf, pg in gaps
        ]
        machine.local(L, count=family.s + 1)

    # Step 6: flatten (unpack_lists charges), fuse + pack.
    flat = [piece for sub in subs for piece in sub]
    total = len(flat)
    max_per = max(map(len, subs), default=0)
    P = next_pow2(total)
    with machine.phase("pack"):
        machine.local(L)
        machine.doubling_sweep(L)
        for _ in range(max_per):
            machine.monotone_route(P)
    if total == 0:
        return PiecewiseFunction.empty()
    with machine.phase("fuse"):
        machine.exchange(P, 0)
        machine.local(P)
        machine.doubling_sweep(P)  # parallel_prefix over start marks
        machine.exchange(P, 0)
        machine.doubling_sweep(P)  # fill_backward of run ends
        machine.doubling_sweep(P)  # pack: prefix of the start mask
        machine.local(P)           # pack: destination computation
        machine.monotone_route(P)  # pack: the route itself
        pieces = _fuse_host(flat, family)
    return PiecewiseFunction(pieces, validate=False)


def _rec_key(rec):
    return (rec[0], rec[1])


def _fuse_host(flat: list, family: CurveFamily) -> list[Piece]:
    """Step 6 grouping, host-side: same output as :func:`_fuse_on_machine`.

    Adjacent subpieces fuse when there is no gap between them and they
    carry the same label and curve — the start-mark rule of the array
    implementation, applied sequentially.
    """
    pieces = []
    cur_lo = cur_hi = cur_fn = cur_label = None
    prev = None
    for lo, hi, fn, label in flat:
        if (
            prev is not None
            and lo - prev[1] <= _eps(lo)
            and prev[3] == label
            and family.same(prev[2], fn)
        ):
            cur_hi = hi
        else:
            if prev is not None:
                pieces.append(Piece(cur_lo, cur_hi, cur_fn, cur_label))
            cur_lo, cur_hi, cur_fn, cur_label = lo, hi, fn, label
        prev = (lo, hi, fn, label)
    if prev is not None:
        pieces.append(Piece(cur_lo, cur_hi, cur_fn, cur_label))
    return pieces


def _fuse_on_machine(machine: Machine, flat: np.ndarray, total: int,
                     family: CurveFamily) -> list[Piece]:
    """Step 6: fuse adjacent same-function subpieces with prefix machinery."""
    P = len(flat)
    valid = np.array([x is not None for x in flat])
    lo = np.array([x[0] if x is not None else INF for x in flat])
    hi = np.array([x[1] if x is not None else INF for x in flat])
    start = np.zeros(P, dtype=bool)
    for i in range(total):
        if i == 0 or flat[i - 1] is None:
            start[i] = True
        else:
            prev, cur = flat[i - 1], flat[i]
            gap = cur[0] - prev[1] > _eps(cur[0])
            start[i] = gap or prev[3] != cur[3] or not family.same(
                prev[2], cur[2]
            )
    machine.exchange(P, 0)  # neighbour comparison
    machine.local(P)
    seg = parallel_prefix(machine, start.astype(np.int64), np.add)
    is_last = np.zeros(P, dtype=bool)
    is_last[:-1] = valid[:-1] & (start[1:] | ~valid[1:])
    is_last[-1] = valid[-1]
    machine.exchange(P, 0)
    run_hi = fill_backward(machine, hi, is_last, segments=seg)
    (plo, phi, pobj), count = pack(machine, start, [lo, run_hi, flat])
    pieces = []
    for i in range(count):
        t = pobj[i]
        pieces.append(Piece(plo[i], phi[i], t[2], t[3]))
    return pieces


def envelope(machine: Machine, fns: Sequence, family: CurveFamily, *,
             op: str = "min", labels=None) -> PiecewiseFunction:
    """Theorem 3.2 / 3.4: the envelope of ``n`` curves on the machine.

    Functions are split evenly, halves recurse (running on disjoint strings
    of the machine *simultaneously*), and halves combine via Lemma 3.1.
    Because sibling merges are simultaneous, a level's parallel time is the
    maximum over siblings; the recursion therefore satisfies
    ``T(n) = T(n/2) + Theta(combine)``, giving ``Theta(lambda^{1/2}(n,s))``
    on the mesh and ``Theta(log^2 n)`` on the hypercube.

    Partial functions (:class:`PiecewiseFunction` inputs with gaps) are
    accepted, implementing Theorem 3.4.  The result's pieces are ordered by
    their intervals, as the paper requires.
    """
    level = normalize_inputs(fns, labels)
    if not level:
        return PiecewiseFunction.empty()
    with trace_span("envelope", machine.metrics, category="driver",
                    n=len(level), op=op):
        # Step 1 of Theorem 3.2: distribute the descriptions (a route).
        machine.monotone_route(next_pow2(len(level)))
        while len(level) > 1:
            nxt = []
            branch_metrics = []
            for i in range(0, len(level) - 1, 2):
                F, G = level[i], level[i + 1]
                sub = _substring_machine(
                    machine, 4 * max(1, len(F.pieces), len(G.pieces))
                )
                nxt.append(combine_pairwise(sub, F, G, family, op))
                branch_metrics.append(sub.metrics)
            if len(level) % 2:
                nxt.append(level[-1])
            _absorb_parallel(machine, branch_metrics)
            level = nxt
    return level[0]


def _substring_machine(machine: Machine, length: int) -> Machine:
    """A fresh machine modelling a consecutive substring of ``machine``.

    Proximity order (mesh) and Gray-code order (hypercube) make aligned
    substrings behave like smaller instances of the same topology — the
    recursive-decomposability property of Figure 2 / Section 2.3 — so a
    sibling merge is modelled by a sub-machine of the parent's kind.
    """
    top = machine.topology
    size = min(machine.n_pe, next_pow2(length))
    if isinstance(top, MeshTopology):
        exp = (size.bit_length()) // 2  # next power of four >= size
        return Machine(MeshTopology(max(4, 4**exp), top.scheme))
    if isinstance(top, (HypercubeTopology, CCCTopology,
                        ShuffleExchangeTopology)):
        return Machine(type(top)(max(2, size)))
    if isinstance(top, PRAMTopology):
        return Machine(PRAMTopology(max(1, size)))
    return Machine(SerialTopology())


def _absorb_parallel(machine: Machine, branches) -> None:
    """Charge the parent with the slowest sibling of a parallel level.

    On the serial machine there is no parallelism across siblings, so the
    costs add instead.  Wall-clock is absorbed from *every* sibling either
    way: the host executed them serially regardless of the simulated
    parallelism.
    """
    if not branches:
        return
    if isinstance(machine.topology, SerialTopology):
        for b in branches:
            machine.metrics.absorb(b)
        return
    worst = max(branches, key=lambda b: b.time)
    machine.metrics.absorb(worst)
    for b in branches:
        if b is not worst:
            machine.metrics.absorb_wall(b)


# ======================================================================
# Convenience wrappers used by Sections 4 and 5
# ======================================================================
def combine_map_serial(F: PiecewiseFunction, G: PiecewiseFunction,
                       family: CurveFamily, kind: str) -> PiecewiseFunction:
    """Pieces of ``F (op) G`` on the common domain (cf. Lemma 2.5).

    Each nondegenerate intersection of a piece of F with a piece of G yields
    one piece whose curve is ``family.combine`` of the two; by Lemma 2.5
    there are at most ``m + n`` of them.
    """
    return combine_pairwise_serial(F, G, family, kind)


def combine_map(machine: Machine, F: PiecewiseFunction, G: PiecewiseFunction,
                family: CurveFamily, kind: str) -> PiecewiseFunction:
    """Machine version of :func:`combine_map_serial` (same movement as
    Lemma 3.1 minus the root solving)."""
    return combine_pairwise(machine, F, G, family, kind)


def threshold_indicator(F: PiecewiseFunction, family: CurveFamily,
                        threshold: float, *, relation: str = "le",
                        machine: Machine | None = None) -> PiecewiseFunction:
    """Pieces of the indicator ``1{F(t) <= c}`` generated by {0, 1}.

    Lemma 2.6 bounds the output at ``s + 1`` pieces per input piece.  Used
    for ``A_0``/``B_0`` in Theorem 4.5 and ``W_i`` in Theorem 4.6.  The work
    is local per piece plus one fuse/pack pass; when ``machine`` is given
    those rounds are charged.
    """
    if relation not in ("le", "ge"):
        raise OperationContractError("relation must be 'le' or 'ge'")
    level = family.constant(threshold)
    out = []
    for p in F.pieces:
        if family.same(p.fn, level):
            roots = []
        else:
            roots = family.crossings(p.fn, level, p.lo, p.hi)
        cuts = [p.lo, *roots, p.hi]
        for a, b in zip(cuts, cuts[1:]):
            if b - a <= _eps(a):
                continue
            mid = a + 1.0 if math.isinf(b) else 0.5 * (a + b)
            v = family.value(p.fn, mid)
            sat = v <= threshold if relation == "le" else v >= threshold
            out.append(
                Piece(a, b, family.constant(1.0 if sat else 0.0), p.label)
            )
    if machine is not None:
        m = next_pow2(max(2, len(out)))
        machine.local(m, count=family.s + 1)
        machine.monotone_route(m)
    return PiecewiseFunction(out, validate=False).fused(
        lambda x, y: x.fn == y.fn
    )
