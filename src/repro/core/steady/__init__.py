"""Steady-state computations — Section 5 of the paper."""

from .diameter import (
    steady_antipodal_pairs,
    steady_diameter_squared,
    steady_farthest_pair,
)
from .hull import steady_hull, steady_is_extreme, steady_is_extreme_angular
from .neighbors import (
    steady_closest_pair,
    steady_farthest_neighbor,
    steady_nearest_neighbor,
)
from .rectangle import steady_enclosing_rectangle, steady_rectangle_snapshot
from .reduction import SteadyValue, steady_compare, steady_points

__all__ = [
    "steady_antipodal_pairs", "steady_diameter_squared", "steady_farthest_pair",
    "steady_hull", "steady_is_extreme", "steady_is_extreme_angular",
    "steady_closest_pair", "steady_farthest_neighbor", "steady_nearest_neighbor",
    "steady_enclosing_rectangle", "steady_rectangle_snapshot",
    "SteadyValue", "steady_compare", "steady_points",
]
