"""The steady-state reduction — Lemma 5.1.

A :class:`SteadyValue` is a real quantity that varies with time as a
bounded-degree polynomial, *ordered by its eventual value as t -> inf*.
Lemma 5.1: such comparisons take Theta(1) serial time — the sign of the
difference polynomial's leading coefficient.

Because :class:`SteadyValue` supports ``+ - *`` and total-order comparisons,
the static computational geometry of :mod:`repro.geometry` (hulls, closest
pairs, calipers, enclosing rectangles) runs on steady-state coordinates
*unchanged* — which is precisely how Section 5 turns static algorithms into
steady-state algorithms.
"""

from __future__ import annotations

from ...kinetics.motion import PointSystem
from ...kinetics.polynomial import Polynomial

__all__ = ["SteadyValue", "steady_compare", "steady_points"]


def steady_compare(p: Polynomial, q: Polynomial) -> int:
    """-1 / 0 / +1 ordering of two polynomials as ``t -> inf`` (Lemma 5.1)."""
    return p.steady_compare(q)


class SteadyValue:
    """A polynomial-in-time quantity, totally ordered by behaviour at +inf."""

    __slots__ = ("poly",)

    def __init__(self, poly):
        if not isinstance(poly, Polynomial):
            poly = Polynomial.constant(float(poly))
        self.poly = poly

    # -- arithmetic (stays within polynomials: degree grows boundedly) ----
    def _lift(self, other) -> "SteadyValue":
        return other if isinstance(other, SteadyValue) else SteadyValue(other)

    def __add__(self, other):
        return SteadyValue(self.poly + self._lift(other).poly)

    __radd__ = __add__

    def __sub__(self, other):
        return SteadyValue(self.poly - self._lift(other).poly)

    def __rsub__(self, other):
        return SteadyValue(self._lift(other).poly - self.poly)

    def __mul__(self, other):
        return SteadyValue(self.poly * self._lift(other).poly)

    __rmul__ = __mul__

    def __neg__(self):
        return SteadyValue(-self.poly)

    def __abs__(self):
        return self if self.sign() >= 0 else -self

    # -- total order at infinity -----------------------------------------
    def sign(self) -> int:
        return self.poly.sign_at_infinity()

    def __lt__(self, other):
        return (self - self._lift(other)).sign() < 0

    def __le__(self, other):
        return (self - self._lift(other)).sign() <= 0

    def __gt__(self, other):
        return (self - self._lift(other)).sign() > 0

    def __ge__(self, other):
        return (self - self._lift(other)).sign() >= 0

    def __eq__(self, other):
        if not isinstance(other, (SteadyValue, int, float, Polynomial)):
            return NotImplemented
        return (self - self._lift(other)).sign() == 0

    def __hash__(self):
        return hash(self.poly)

    def __call__(self, t: float) -> float:
        """Evaluate the underlying polynomial (for rendering results)."""
        return self.poly(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SteadyValue({self.poly!r})"


def steady_points(system: PointSystem) -> list[tuple[SteadyValue, ...]]:
    """The system's coordinates as steady-state scalars.

    Feeding these to any comparison-based static geometry algorithm yields
    its steady-state answer (Propositions 5.2–5.4, Corollaries 5.7/5.9).
    """
    return [tuple(SteadyValue(c) for c in m.coords) for m in system.motions]
