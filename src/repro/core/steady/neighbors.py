"""Steady-state nearest/farthest neighbour and closest pair —
Propositions 5.2 and 5.3.

A steady-state nearest neighbour to ``P_0`` is found *without* building the
whole chronological sequence ``R`` of Theorem 4.1: broadcast ``f_0``, build
the degree-``2k`` squared distances, and take a single semigroup minimum
under the Lemma 5.1 comparator — ``Theta(sqrt(n))`` on an n-PE mesh and
``Theta(log n)`` on a hypercube, versus ``Theta(lambda^{1/2}(n-1,2k))`` PEs
and time for the transient solution (the paper's motivating comparison at
the start of Section 5).
"""

from __future__ import annotations

import numpy as np

from ...errors import DegenerateSystemError
from ...kinetics.motion import PointSystem
from ...machines.machine import Machine
from ...ops import broadcast as op_broadcast
from ...ops import semigroup
from ...ops._common import next_pow2
from ...geometry.closest_pair import closest_pair, closest_pair_parallel
from .reduction import SteadyValue, steady_points

__all__ = ["steady_nearest_neighbor", "steady_farthest_neighbor",
           "steady_closest_pair"]


def _steady_extreme_neighbor(machine: Machine | None, system: PointSystem,
                             query: int, want_min: bool) -> int:
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points")
    if not (0 <= query < n):
        raise DegenerateSystemError(f"query index {query} out of range")
    d2 = [
        (SteadyValue(system.distance_squared(query, j)), j)
        for j in range(n) if j != query
    ]
    if machine is not None:
        length = next_pow2(n)
        marked = np.zeros(length, dtype=bool)
        marked[query] = True
        with machine.phase("broadcast"):
            op_broadcast(machine, np.zeros(length), marked)
        machine.local(length)  # build d^2_{0j} locally
        vals = np.empty(length, dtype=object)
        for i in range(length):
            vals[i] = d2[min(i, len(d2) - 1)]
        op = np.frompyfunc(
            (lambda a, b: a if a[0] <= b[0] else b) if want_min
            else (lambda a, b: a if a[0] >= b[0] else b), 2, 1)
        with machine.phase("semigroup"):
            out = semigroup(machine, vals, op)
        return out[0][1]
    key = min if want_min else max
    return key(d2, key=lambda p: p[0])[1]


def steady_nearest_neighbor(machine: Machine | None, system: PointSystem,
                            query: int = 0) -> int:
    """Proposition 5.2: index of a steady-state nearest neighbour."""
    return _steady_extreme_neighbor(machine, system, query, want_min=True)


def steady_farthest_neighbor(machine: Machine | None, system: PointSystem,
                             query: int = 0) -> int:
    """Proposition 5.2: index of a steady-state farthest neighbour."""
    return _steady_extreme_neighbor(machine, system, query, want_min=False)


def steady_closest_pair(machine: Machine | None,
                        system: PointSystem) -> tuple[int, int]:
    """Proposition 5.3: a steady-state closest pair of the planar system.

    Lemma 5.1 turns every comparison of (squares of) distances into a
    Theta(1) leading-coefficient test, so the static closest-pair algorithm
    runs unchanged on the steady coordinates: ``Theta(sqrt(n))`` mesh,
    ``Theta(log^2 n)`` hypercube (expected ``Theta(log n)`` with randomized
    sorting).
    """
    pts = steady_points(system)
    if machine is None:
        return closest_pair(pts)
    return closest_pair_parallel(machine, pts)
