"""Steady-state diameter and farthest pair — Prop. 5.6 and Corollary 5.7.

A farthest pair must be a pair of extreme points (Shamos), and among hull
vertices it must be antipodal (Lemma 5.5).  Pipeline: steady hull ->
antipodal pairs -> semigroup max of steady squared distances, every
comparison decided by Lemma 5.1.
"""

from __future__ import annotations

import numpy as np

from ...errors import DegenerateSystemError
from ...kinetics.motion import PointSystem
from ...kinetics.polynomial import Polynomial
from ...machines.machine import Machine
from ...ops import semigroup
from ...ops._common import next_pow2
from ...geometry.antipodal import antipodal_pairs, antipodal_pairs_parallel
from .hull import steady_hull
from .reduction import SteadyValue, steady_points

__all__ = ["steady_farthest_pair", "steady_diameter_squared",
           "steady_antipodal_pairs"]


def steady_antipodal_pairs(machine: Machine | None,
                           system: PointSystem) -> list[tuple[int, int]]:
    """Lemma 5.5 on the steady hull; pairs are system point indices."""
    hull = steady_hull(machine, system)
    if len(hull) < 2:
        raise DegenerateSystemError("antipodal pairs need >= 2 hull vertices")
    pts = steady_points(system)
    poly = [pts[i] for i in hull]
    if machine is None:
        local = antipodal_pairs(poly)
    else:
        local = antipodal_pairs_parallel(machine, poly)
    return [(hull[i], hull[j]) for i, j in local]


def steady_farthest_pair(machine: Machine | None,
                         system: PointSystem) -> tuple[int, int]:
    """Corollary 5.7: a steady-state farthest pair of the planar system."""
    pairs = steady_antipodal_pairs(machine, system)
    cands = [
        (SteadyValue(system.distance_squared(i, j)), (i, j)) for i, j in pairs
    ]
    if machine is not None:
        length = next_pow2(max(2, len(cands)))
        vals = np.empty(length, dtype=object)
        for i in range(length):
            vals[i] = cands[min(i, len(cands) - 1)]
        op = np.frompyfunc(lambda a, b: a if a[0] >= b[0] else b, 2, 1)
        with machine.phase("steady-max"):
            out = semigroup(machine, vals, op)
        return out[0][1]
    return max(cands, key=lambda c: c[0])[1]


def steady_diameter_squared(machine: Machine | None,
                            system: PointSystem) -> Polynomial:
    """Prop. 5.6: the (squared) diameter function of the steady hull.

    Returned as the degree-<=2k polynomial ``d^2_{ij}(t)`` of the farthest
    pair — the function whose square root is the diameter for all
    sufficiently large ``t``.
    """
    i, j = steady_farthest_pair(machine, system)
    return system.distance_squared(i, j)
