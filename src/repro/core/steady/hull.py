"""Steady-state convex hull — Proposition 5.4 (and the remark after it).

The static hull algorithms are built on relative-position predicates
(orientation tests), each of which Lemma 5.1 decides in Theta(1) time on
steady coordinates; the problem therefore reduces to the static one:
``Theta(sqrt(n))`` mesh, ``Theta(log^2 n)`` hypercube (expected
``Theta(log n)``).

The paper remarks that the *membership* question alone — is a given query
point an extreme point of the steady hull? — can also be answered by
adapting the angle machinery of Theorem 4.5.  :func:`steady_is_extreme_angular`
implements that route: the query is extreme iff the directions towards all
other points leave an open angular gap greater than pi, and comparing two
steady *directions* needs only cross/dot-product signs at infinity — pure
Lemma 5.1 comparisons, no hull construction.
"""

from __future__ import annotations

import numpy as np

from ...kinetics.motion import PointSystem
from ...machines.machine import Machine
from ...ops import bitonic_sort, semigroup
from ...ops._common import next_pow2
from ...geometry.convex_hull import convex_hull, convex_hull_parallel
from ...trace.tracer import trace_span
from .reduction import SteadyValue, steady_points

__all__ = ["steady_hull", "steady_is_extreme", "steady_is_extreme_angular"]


def steady_hull(machine: Machine | None, system: PointSystem) -> list[int]:
    """Indices of the extreme points of ``hull(S)`` as ``t -> inf``,
    in counter-clockwise order of the steady configuration."""
    with trace_span("steady_hull",
                    None if machine is None else machine.metrics,
                    category="driver", n=len(system)):
        pts = steady_points(system)
        if machine is None:
            return convex_hull(pts)
        return convex_hull_parallel(machine, pts)


def steady_is_extreme(machine: Machine | None, system: PointSystem,
                      query: int = 0) -> bool:
    """Is the query point an extreme point of the steady-state hull?

    The paper notes this query is answered by the hull construction itself
    (remark after Proposition 5.4).
    """
    return query in steady_hull(machine, system)


class _SteadyDirection:
    """A direction vector with polynomial components, ordered by its
    eventual polar angle as ``t -> inf``.

    The half-plane index (is the eventual direction in the open lower
    half-plane, or on the negative x-axis?) plus a cross-product sign gives
    a total angular order — the standard "sort by angle without atan2"
    construction, with every sign decided by Lemma 5.1.
    """

    __slots__ = ("dx", "dy", "j")

    def __init__(self, dx: SteadyValue, dy: SteadyValue, j: int):
        self.dx = dx
        self.dy = dy
        self.j = j

    def _half(self) -> int:
        """0 for angle in [0, pi), 1 for [pi, 2 pi) — at infinity."""
        sy = self.dy.sign()
        if sy > 0:
            return 0
        if sy < 0:
            return 1
        return 0 if self.dx.sign() > 0 else 1

    def __lt__(self, other: "_SteadyDirection") -> bool:
        ha, hb = self._half(), other._half()
        if ha != hb:
            return ha < hb
        crossv = self.dx * other.dy - other.dx * self.dy
        return crossv.sign() > 0  # self strictly CCW-before other

    def __gt__(self, other: "_SteadyDirection") -> bool:
        return other.__lt__(self)

    def __eq__(self, other) -> bool:
        if not isinstance(other, _SteadyDirection):
            return NotImplemented
        return not self.__lt__(other) and not other.__lt__(self)

    def __hash__(self):  # pragma: no cover - not used as dict key
        return hash(self.j)


def steady_is_extreme_angular(machine: Machine | None, system: PointSystem,
                              query: int = 0) -> bool:
    """Extreme-point membership at steady state via the Theorem 4.5 route.

    Sort the steady directions from the query to all other points by their
    eventual polar angle (Lemma 5.1 sign tests only), then test whether
    some circular gap between consecutive directions exceeds pi — i.e. the
    successor direction lies strictly within the open half-plane CCW of the
    reversed predecessor.  One sort + one semigroup: ``Theta(sqrt n)`` mesh
    / ``Theta(log^2 n)`` hypercube, matching the paper's remark that this
    is an (expected-) optimal alternative to building the whole hull.
    """
    if system.dimension != 2:
        raise ValueError("the angular criterion is planar")
    n = len(system)
    fq = system[query]
    dirs = []
    for j, m in enumerate(system):
        if j == query:
            continue
        dirs.append(_SteadyDirection(
            SteadyValue(m[0] - fq[0]), SteadyValue(m[1] - fq[1]), j
        ))
    if not dirs:
        return True
    if machine is not None:
        length = next_pow2(max(2, len(dirs)))
        keys = np.empty(length, dtype=object)
        for i in range(length):
            keys[i] = dirs[min(i, len(dirs) - 1)]
        with machine.phase("angular-sort"):
            bitonic_sort(machine, keys)
        with machine.phase("gap-check"):
            semigroup(machine, np.zeros(length), np.maximum)
        machine.local(length)
    ordered = sorted(dirs)
    if len(ordered) == 1:
        return True
    # In CCW-sorted order the gap from a to its successor b exceeds pi
    # exactly when cross(a, b) < 0 (the turn to reach b goes the long way
    # around); a gap of exactly pi (cross = 0, dot < 0) puts the query on
    # a hull edge, which is not an *extreme* point.
    saw_distinct = False
    for a, b in zip(ordered, ordered[1:] + ordered[:1]):
        cr = (a.dx * b.dy - b.dx * a.dy).sign()
        dt = (a.dx * b.dx + a.dy * b.dy).sign()
        if cr != 0 or dt < 0:
            saw_distinct = True
        if cr < 0:
            return True
    # All directions identical: the remaining circular gap is 2 pi.
    return not saw_distinct
