"""Steady-state minimal-area enclosing rectangle — Thm. 5.8 / Cor. 5.9.

Pipeline: steady hull (Prop. 5.4), then the rotating-calipers rectangle of
Theorem 5.8 with every comparison decided at t -> inf via Lemma 5.1.  The
squared-area quantities stay polynomial (degree <= 8k, as the paper notes),
because areas are compared as cross-multiplied fractions.
"""

from __future__ import annotations

import numpy as np

from ...errors import DegenerateSystemError
from ...kinetics.motion import PointSystem
from ...machines.machine import Machine
from ...geometry.rectangle import (
    RectangleSupport,
    enclosing_rectangle,
    enclosing_rectangle_parallel,
    rectangle_corners,
)
from .hull import steady_hull
from .reduction import steady_points

__all__ = ["steady_enclosing_rectangle", "steady_rectangle_snapshot"]


def steady_enclosing_rectangle(machine: Machine | None, system: PointSystem):
    """Corollary 5.9: the steady minimal-area enclosing rectangle.

    Returns ``(hull_indices, support)`` where ``support`` names the edge and
    the three support vertices (as positions within the hull list) defining
    the rectangle as ``t -> inf``.
    """
    hull = steady_hull(machine, system)
    if len(hull) < 3:
        raise DegenerateSystemError(
            "the steady hull is degenerate (fewer than 3 extreme points)"
        )
    pts = steady_points(system)
    poly = [pts[i] for i in hull]
    if machine is None:
        sup = enclosing_rectangle(poly)
    else:
        sup = enclosing_rectangle_parallel(machine, poly)
    return hull, sup


def steady_rectangle_snapshot(system: PointSystem, hull: list[int],
                              sup: RectangleSupport, t: float) -> np.ndarray:
    """Concrete rectangle corners at a (large) time ``t`` for rendering."""
    pos = system.positions(t)
    poly = [tuple(pos[i]) for i in hull]
    return rectangle_corners(poly, sup)
