"""Chronological closest/farthest *pair* sequences — the Section 6 remark.

The paper closes by noting that "trivial modifications to the algorithm of
Theorem 4.1 give a sequence of closest or farthest pairs for a system of n
points with k-motion ... using a mesh of size lambda_M(n(n-1)/2, 2k)": build
the envelope over *all* ``n(n-1)/2`` squared-distance polynomials instead of
the ``n-1`` involving one query point.  Labels identify the pair achieving
the extreme on each interval.

(The paper leaves achieving the same with only ``O(lambda(n, 2k))`` PEs as
an open problem; this module implements the quadratic-processor solution it
does describe.)
"""

from __future__ import annotations

from ..errors import DegenerateSystemError
from ..kinetics.motion import PointSystem
from ..kinetics.piecewise import PiecewiseFunction
from ..machines.machine import Machine
from .envelope import envelope, envelope_serial
from .family import PolynomialFamily

__all__ = ["closest_pair_sequence", "farthest_pair_sequence"]


def _pair_sequence(machine: Machine | None, system: PointSystem,
                   op: str) -> PiecewiseFunction:
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points")
    fns, labels = [], []
    for i in range(n):
        for j in range(i + 1, n):
            fns.append(system.distance_squared(i, j))
            labels.append((i, j))
    family = PolynomialFamily(2 * max(1, system.k))
    if machine is None:
        return envelope_serial(fns, family, op=op, labels=labels)
    return envelope(machine, fns, family, op=op, labels=labels)


def closest_pair_sequence(machine: Machine | None,
                          system: PointSystem) -> PiecewiseFunction:
    """Envelope whose labels are the closest pair on each time interval.

    ``Theta(lambda^{1/2}(n(n-1)/2, 2k))`` mesh time on
    ``lambda_M(n(n-1)/2, 2k)`` PEs; ``Theta(log^2 n)`` hypercube time.
    """
    return _pair_sequence(machine, system, "min")


def farthest_pair_sequence(machine: Machine | None,
                           system: PointSystem) -> PiecewiseFunction:
    """Upper-envelope analogue: the farthest (diameter) pair over time."""
    return _pair_sequence(machine, system, "max")
