"""Curve families: the O(1)-primitives the envelope algorithms require.

Section 6 of the paper lists the properties a family of functions must have
for the algorithms to apply: O(1) storage, O(1) evaluation, and at most
``s`` pairwise intersections computable in O(1) serial time.  A
:class:`CurveFamily` packages exactly those primitives, so the envelope
engine of :mod:`repro.core.envelope` works for polynomial trajectories
(Sections 3–5) *and* for the angle functions of the convex-hull membership
algorithm (Section 4.2) without modification.
"""

from __future__ import annotations

import math

import numpy as np
from typing import Sequence

from ..kinetics.polynomial import Polynomial

__all__ = ["CurveFamily", "PolynomialFamily"]


class CurveFamily:
    """Abstract family of real-valued curves with bounded pairwise crossings.

    Attributes
    ----------
    s:
        An upper bound on the number of times two distinct members may
        intersect — the ``s`` of ``lambda(n, s)``.
    """

    s: int = 0

    def value(self, f, t: float) -> float:
        """Evaluate curve ``f`` at time ``t``."""
        raise NotImplementedError

    def crossings(self, f, g, lo: float, hi: float) -> list[float]:
        """Times strictly inside ``(lo, hi)`` where ``f`` and ``g`` agree.

        Must return at most ``s`` times, sorted ascending; identical curves
        return no crossings (callers test :meth:`same` first).
        """
        raise NotImplementedError

    def same(self, f, g) -> bool:
        """True when ``f`` and ``g`` are the identical curve."""
        return f is g or f == g

    def combine(self, f, g, kind: str):
        """The curve ``f (op) g`` for arithmetic ``kind`` in {sum, diff, ...}.

        Optional; needed only by :func:`repro.core.envelope.combine_map`.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot combine curves")

    def constant(self, c: float):
        """The constant curve at level ``c`` (for threshold indicators)."""
        raise NotImplementedError(f"{type(self).__name__} has no constants")


class PolynomialFamily(CurveFamily):
    """Curves are :class:`~repro.kinetics.polynomial.Polynomial` of degree <= s.

    Two distinct degree-``s`` polynomials intersect at most ``s`` times, and
    the intersections are the real roots of their difference — computable in
    O(1) time for bounded ``s`` (Step 4 of Lemma 3.1).
    """

    def __init__(self, s: int):
        if s < 0:
            raise ValueError("degree bound s must be non-negative")
        self.s = s

    def value(self, f: Polynomial, t: float) -> float:
        return f(t)

    def crossings(self, f: Polynomial, g: Polynomial, lo: float, hi: float) -> list[float]:
        diff = f - g
        if diff.is_zero():
            return []
        eps = 1e-9 * max(1.0, abs(lo))
        roots = diff.real_roots(lo, hi)
        return [r for r in roots
                if lo + eps < r and (not math.isfinite(hi) or r < hi - eps)]

    def same(self, f: Polynomial, g: Polynomial) -> bool:
        if f is g:
            return True
        a, b = f.coeffs, g.coeffs
        if len(a) != len(b):
            return False
        # Direct coefficient comparison: equivalent to (f - g).is_zero()
        # for trimmed representations, without allocating the difference.
        return bool(np.allclose(a, b, rtol=1e-9, atol=1e-11))

    def combine(self, f: Polynomial, g: Polynomial, kind: str) -> Polynomial:
        if kind == "sum":
            return f + g
        if kind == "diff":
            return f - g
        if kind == "product":
            return f * g
        raise ValueError(f"unknown combination kind {kind!r}")

    def constant(self, c: float) -> Polynomial:
        return Polynomial.constant(c)

    @staticmethod
    def for_curves(curves: Sequence[Polynomial]) -> "PolynomialFamily":
        """A family sized to the maximum degree present."""
        return PolynomialFamily(max((c.degree for c in curves), default=0))
