"""Curve families: the O(1)-primitives the envelope algorithms require.

Section 6 of the paper lists the properties a family of functions must have
for the algorithms to apply: O(1) storage, O(1) evaluation, and at most
``s`` pairwise intersections computable in O(1) serial time.  A
:class:`CurveFamily` packages exactly those primitives, so the envelope
engine of :mod:`repro.core.envelope` works for polynomial trajectories
(Sections 3–5) *and* for the angle functions of the convex-hull membership
algorithm (Section 4.2) without modification.

Crossing cache
--------------
Crossing computation is the envelope hot path: the recursive halving levels
of Theorem 3.2 and the four envelopes of Theorem 4.5 repeatedly intersect
the *same* pair of curves over different intervals.  The base class
therefore memoises per-pair crossing data (hash-keyed on the curve pair —
curves are hash-stable) and answers each interval query with a cheap range
filter over the cached full-line data.  ``cache_hits`` / ``cache_misses``
count pair lookups; :meth:`prefetch_crossings` lets callers warm many pairs
at once so the expensive eigensolves run batched
(:mod:`repro.kinetics.batch`).  Caching and batching change host-side
wall-clock only — every returned crossing list is bit-identical to the
uncached per-pair computation, which is what keeps the simulated-time
accounting invariant.
"""

from __future__ import annotations

import math

import numpy as np
from typing import Iterable, Sequence

from ..kinetics.batch import warm_root_candidates
from ..kinetics.polynomial import Polynomial
from ..trace.registry import get_counter

__all__ = ["CurveFamily", "PolynomialFamily", "global_cache_stats",
           "reset_global_cache_stats"]

#: Process-wide crossing-cache counters, summed over every family instance
#: (families are created per envelope/membership call, so per-instance
#: counters alone cannot describe a whole benchmark run).  The cells live
#: in the shared :data:`repro.trace.registry.REGISTRY`, so the crossing
#: cache appears in the same ``--verbose`` table and trace exports as the
#: movement-plan and charge-memo counters.
_HITS = get_counter("crossing_cache.hits")
_MISSES = get_counter("crossing_cache.misses")


def global_cache_stats() -> dict:
    """Process-wide crossing-cache hit/miss counters and hit rate."""
    hits, misses = _HITS.value, _MISSES.value
    total = hits + misses
    return {"hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 0.0}


def reset_global_cache_stats() -> None:
    _HITS.reset()
    _MISSES.reset()


class CurveFamily:
    """Abstract family of real-valued curves with bounded pairwise crossings.

    Attributes
    ----------
    s:
        An upper bound on the number of times two distinct members may
        intersect — the ``s`` of ``lambda(n, s)``.
    cache_enabled:
        When True (default), per-pair crossing data is memoised; disable to
        force the original pair-at-a-time computation (results identical).
    cache_hits / cache_misses:
        Counters of pair-cache lookups, for benchmark reporting.
    """

    s: int = 0

    # Lazily materialised per instance, so subclasses need no __init__
    # chaining to participate in the cache protocol.
    cache_enabled: bool = True
    cache_hits: int = 0
    cache_misses: int = 0
    _pair_cache: dict | None = None

    def value(self, f, t: float) -> float:
        """Evaluate curve ``f`` at time ``t``."""
        raise NotImplementedError

    def crossings(self, f, g, lo: float, hi: float) -> list[float]:
        """Times strictly inside ``(lo, hi)`` where ``f`` and ``g`` agree.

        Must return at most ``s`` times, sorted ascending; identical curves
        return no crossings (callers test :meth:`same` first).
        """
        raise NotImplementedError

    def same(self, f, g) -> bool:
        """True when ``f`` and ``g`` are the identical curve."""
        return f is g or f == g

    def combine(self, f, g, kind: str):
        """The curve ``f (op) g`` for arithmetic ``kind`` in {sum, diff, ...}.

        Optional; needed only by :func:`repro.core.envelope.combine_map`.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot combine curves")

    def constant(self, c: float):
        """The constant curve at level ``c`` (for threshold indicators)."""
        raise NotImplementedError(f"{type(self).__name__} has no constants")

    # ------------------------------------------------------------------
    # Crossing cache protocol
    # ------------------------------------------------------------------
    def _cache(self) -> dict:
        cache = self._pair_cache
        if cache is None:
            cache = {}
            self._pair_cache = cache
        return cache

    def _pair_entry(self, f, g):
        """The memoised per-pair crossing data, computing it on a miss.

        Subclasses define :meth:`_compute_pair` (the full-line data for one
        pair); with the cache disabled it is recomputed on every call.
        """
        if not self.cache_enabled:
            self.cache_misses += 1
            _MISSES.value += 1
            return self._compute_pair(f, g)
        key = (f, g)
        cache = self._cache()
        entry = cache.get(key)
        if entry is None:
            self.cache_misses += 1
            _MISSES.value += 1
            entry = cache[key] = self._compute_pair(f, g)
        else:
            self.cache_hits += 1
            _HITS.value += 1
        return entry

    def _compute_pair(self, f, g):
        """Full-line crossing data for one curve pair (subclass hook)."""
        raise NotImplementedError

    def prefetch_crossings(self, pairs: Iterable[tuple]) -> None:
        """Warm the pair cache for many ``(f, g)`` pairs in one batch.

        New pair data is computed via :meth:`_compute_pair` and then handed
        to :meth:`_warm_prefetched`, where families whose data reduces to
        polynomial root isolation stack the eigensolves
        (:func:`repro.kinetics.batch.warm_root_candidates`).  A no-op when
        the cache is disabled.
        """
        if not self.cache_enabled:
            return
        cache = self._cache()
        fresh = []
        for f, g in pairs:
            key = (f, g)
            if key not in cache:
                self.cache_misses += 1
                _MISSES.value += 1
                entry = cache[key] = self._compute_pair(f, g)
                fresh.append(entry)
        if fresh:
            self._warm_prefetched(fresh)

    def _warm_prefetched(self, entries: list) -> None:
        """Batch-stage hook: given freshly cached pair entries, run any
        batched precomputation (default: nothing)."""

    def cache_stats(self) -> dict:
        """Hit/miss counters and current cache size, for reporting."""
        total = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hits / total if total else 0.0,
            "size": len(self._pair_cache) if self._pair_cache else 0,
        }

    def cache_clear(self) -> None:
        """Drop all memoised pair data and reset the counters."""
        self._pair_cache = None
        self.cache_hits = 0
        self.cache_misses = 0


class PolynomialFamily(CurveFamily):
    """Curves are :class:`~repro.kinetics.polynomial.Polynomial` of degree <= s.

    Two distinct degree-``s`` polynomials intersect at most ``s`` times, and
    the intersections are the real roots of their difference — computable in
    O(1) time for bounded ``s`` (Step 4 of Lemma 3.1).
    """

    def __init__(self, s: int):
        if s < 0:
            raise ValueError("degree bound s must be non-negative")
        self.s = s

    def value(self, f: Polynomial, t: float) -> float:
        return f(t)

    def _compute_pair(self, f: Polynomial, g: Polynomial) -> Polynomial:
        return f - g

    def _warm_prefetched(self, entries: list) -> None:
        warm_root_candidates(entries)

    def crossings(self, f: Polynomial, g: Polynomial, lo: float, hi: float) -> list[float]:
        diff = self._pair_entry(f, g)
        if diff.is_zero():
            return []
        eps = 1e-9 * max(1.0, abs(lo))
        roots = diff.real_roots(lo, hi)
        return [r for r in roots
                if lo + eps < r and (not math.isfinite(hi) or r < hi - eps)]

    def same(self, f: Polynomial, g: Polynomial) -> bool:
        if f is g:
            return True
        a, b = f._cl, g._cl
        if len(a) != len(b):
            return False
        # Direct coefficient comparison: equivalent to (f - g).is_zero()
        # for trimmed representations, without allocating the difference.
        # Spelled out (|a - b| <= atol + rtol * |b|) rather than through
        # np.allclose, whose wrapper stack dominates at this call rate.
        return all(
            abs(x - y) <= 1e-11 + 1e-9 * abs(y) for x, y in zip(a, b)
        )

    def combine(self, f: Polynomial, g: Polynomial, kind: str) -> Polynomial:
        if kind == "sum":
            return f + g
        if kind == "diff":
            return f - g
        if kind == "product":
            return f * g
        raise ValueError(f"unknown combination kind {kind!r}")

    def constant(self, c: float) -> Polynomial:
        return Polynomial.constant(c)

    @staticmethod
    def for_curves(curves: Sequence[Polynomial]) -> "PolynomialFamily":
        """A family sized to the maximum degree present."""
        return PolynomialFamily(max((c.degree for c in curves), default=0))
