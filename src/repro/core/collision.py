"""Collision detection — Theorem 4.2.

Points ``P_i`` and ``P_j`` collide at time ``t`` when ``f_i(t) = f_j(t)``,
i.e. when the squared distance ``d^2_{ij}(t)`` vanishes.  A chronological
list of the times at which a query point collides with any other point is
produced by solving ``d^2_{0j}(t) = 0`` per processor (at most 2k roots
each) and sorting the union: ``Theta(sqrt(n))`` on an n-PE mesh,
``Theta(log^2 n)`` deterministic on a hypercube.
"""

from __future__ import annotations

import numpy as np

from ..kinetics.motion import PointSystem
from ..kinetics.polynomial import Polynomial
from ..machines.machine import Machine
from ..ops import bitonic_sort, pack
from ..ops._common import next_pow2
from .neighbors import distance_squared_functions

__all__ = ["collision_times", "collision_times_with", "collides"]

#: Squared-distance threshold under which two points are considered to meet.
_CONTACT_EPS = 1e-9


def _meeting_times(d2: Polynomial) -> list[float]:
    """Times ``t >= 0`` at which a squared distance reaches zero.

    ``d^2`` is a sum of squares, so collisions are minima touching zero:
    we find critical points of ``d^2`` and keep those where it vanishes,
    plus an explicit check at ``t = 0`` (excluded by the paper's distinct-
    start assumption, but kept for robustness).
    """
    out = []
    if abs(d2(0.0)) <= _CONTACT_EPS:
        out.append(0.0)
    for r in d2.derivative().real_roots(0.0):
        if abs(d2(r)) <= _CONTACT_EPS * max(1.0, abs(r)) ** 2:
            out.append(r)
    # Degenerate case: identical trajectories collide for all time.
    return sorted(set(out))


def collides(system: PointSystem, i: int, j: int) -> bool:
    """Do points ``i`` and ``j`` ever meet on ``[0, inf)``?"""
    return bool(_meeting_times(system.distance_squared(i, j)))


def collision_times_with(system: PointSystem, query: int = 0) -> list[tuple[float, int]]:
    """Serial oracle: sorted ``(time, other_point)`` collision events."""
    events = []
    for j in range(len(system)):
        if j == query:
            continue
        for t in _meeting_times(system.distance_squared(query, j)):
            events.append((t, j))
    return sorted(events)


def collision_times(machine: Machine | None, system: PointSystem,
                    query: int = 0) -> np.ndarray:
    """Theorem 4.2: chronological list of times ``P_query`` collides.

    On a machine, each PE solves its ``d^2_{0j}(t) = 0`` locally (Theta(1)
    for bounded k), the ragged results are packed, and a global sort orders
    them — the sort dominates at ``Theta(sqrt(n))`` mesh / ``Theta(log^2 n)``
    hypercube time.  ``machine=None`` runs the serial oracle.
    """
    if machine is None:
        return np.array([t for t, _ in collision_times_with(system, query)])
    fns, labels = distance_squared_functions(machine, system, query)
    k = max(1, system.k)
    per_pe = [_meeting_times(d2) for d2 in fns]
    length = next_pow2(len(fns))
    machine.local(length, count=2 * k)  # root solving, Theta(1) per PE
    max_roots = max((len(r) for r in per_pe), default=0)
    times = []
    # Lay the ragged root lists out via pack rounds (one per root slot).
    for slot in range(max_roots):
        mask = np.array([len(r) > slot for r in per_pe] +
                        [False] * (length - len(per_pe)))
        vals = np.array([r[slot] if len(r) > slot else 0.0 for r in per_pe] +
                        [0.0] * (length - len(per_pe)))
        (packed,), cnt = pack(machine, mask, [vals])
        times.extend(packed[:cnt].tolist())
    if not times:
        return np.array([])
    sort_len = next_pow2(len(times))
    arr = np.full(sort_len, np.inf)
    arr[: len(times)] = times
    (out,), _ = bitonic_sort(machine, arr)
    return out[: len(times)]
