"""Containment problems — Theorems 4.6, 4.7 and Corollary 4.8.

* :func:`containment_intervals` — the ordered list ``J`` of time intervals
  during which the system fits in an iso-oriented hyper-rectangle of given
  fixed dimensions (Theorem 4.6).
* :func:`enclosing_cube_edge_function` — the edgelength function ``D(t)`` of
  the smallest iso-oriented hypercube containing the system, with
  ``Theta(lambda(n, k))`` pieces (Theorem 4.7).
* :func:`smallest_enclosing_cube_ever` — ``D_min`` and a time attaining it
  (Corollary 4.8).

All three follow the paper's pipeline: per-coordinate min/max envelopes
``m_i`` / ``M_i`` (Theorem 3.2), differences ``D_i = M_i - m_i``
(Lemma 3.1 machinery), thresholding (Lemma 2.6) and constant-function
min/max combining.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import DegenerateSystemError, OperationContractError
from ..kinetics.motion import PointSystem
from ..kinetics.piecewise import PiecewiseFunction
from ..machines.machine import Machine
from ..ops import semigroup
from ..ops._common import next_pow2
from .envelope import (
    combine_pairwise,
    combine_pairwise_serial,
    envelope,
    envelope_serial,
    threshold_indicator,
)
from .family import PolynomialFamily

__all__ = [
    "coordinate_extent_functions",
    "containment_intervals",
    "enclosing_cube_edge_function",
    "smallest_enclosing_cube_ever",
]


def _family(system: PointSystem) -> PolynomialFamily:
    return PolynomialFamily(max(1, system.k))


def _envelope(machine, fns, family, op, labels):
    if machine is None:
        return envelope_serial(fns, family, op=op, labels=labels)
    return envelope(machine, fns, family, op=op, labels=labels)


def _combine(machine, F, G, family, op):
    if machine is None:
        return combine_pairwise_serial(F, G, family, op)
    return combine_pairwise(machine, F, G, family, op)


def coordinate_extent_functions(machine: Machine | None,
                                system: PointSystem):
    """Step 1–2 of Theorem 4.6: the spread ``D_i(t) = M_i(t) - m_i(t)``.

    Returns the list of per-axis spread functions, each a piecewise
    polynomial with at most ``2 * lambda(n, k)`` pieces (Lemma 2.5).
    """
    fam = _family(system)
    spreads = []
    for axis in range(system.dimension):
        coords = [m[axis] for m in system.motions]
        labels = list(range(len(system)))
        m_i = _envelope(machine, coords, fam, "min", labels)
        M_i = _envelope(machine, coords, fam, "max", labels)
        spreads.append(_combine(machine, M_i, m_i, fam, "diff"))
    return spreads


def containment_intervals(machine: Machine | None, system: PointSystem,
                          box: Sequence[float]) -> list[tuple[float, float]]:
    """Theorem 4.6: ordered intervals when the system fits in the given box.

    ``box`` holds the side lengths ``X_1, ..., X_d``.  Runs in
    ``Theta(lambda^{1/2}(n, k))`` mesh time on ``lambda_M(n, k)`` PEs and
    ``Theta(log^2 n)`` hypercube time.
    """
    box = list(box)
    if len(box) != system.dimension:
        raise DegenerateSystemError(
            f"box has {len(box)} sides for a {system.dimension}-D system"
        )
    if any(x < 0 for x in box):
        raise OperationContractError("box dimensions must be non-negative")
    fam = _family(system)
    const_fam = PolynomialFamily(0)
    spreads = coordinate_extent_functions(machine, system)
    # Step 3: W_i(t) = 1{D_i(t) <= X_i} (at most 2(k+1) lambda pieces each).
    ws = [
        threshold_indicator(D, fam, x, relation="le", machine=machine)
        for D, x in zip(spreads, box)
    ]
    # Step 4: C(t) = min_i W_i(t) via Theta(log d) = Theta(1) combine stages.
    C = ws[0]
    for w in ws[1:]:
        C = _combine(machine, C, w, const_fam, "min")
    # Step 5: pack the intervals where C = 1.
    return indicator_intervals(machine, C)


def indicator_intervals(machine: Machine | None,
                        indicator: PiecewiseFunction) -> list[tuple[float, float]]:
    """The ordered intervals on which a {0,1}-piecewise function equals 1.

    The machine variant charges the parallel-prefix packing round the paper
    uses; the interval list itself is the algorithm's output.
    """
    out = []
    for p in indicator.pieces:
        if p.fn(p.midpoint()) >= 0.5:
            if out and abs(out[-1][1] - p.lo) <= 1e-9 * max(1.0, abs(p.lo)):
                out[-1] = (out[-1][0], p.hi)
            else:
                out.append((p.lo, p.hi))
    if machine is not None:
        machine.monotone_route(next_pow2(max(2, len(indicator.pieces))))
    return out


def enclosing_cube_edge_function(machine: Machine | None,
                                 system: PointSystem) -> PiecewiseFunction:
    """Theorem 4.7: ``D(t)`` = edgelength of the smallest enclosing cube.

    ``D(t) = max_i D_i(t)`` with ``Theta(lambda(n, k))`` pieces; combining
    the ``d`` spreads takes ``Theta(log d) = Theta(1)`` stages of Lemma 3.1.
    """
    fam = _family(system)
    spreads = coordinate_extent_functions(machine, system)
    D = spreads[0]
    for s in spreads[1:]:
        D = _combine(machine, D, s, fam, "max")
    return D


def smallest_enclosing_cube_ever(machine: Machine | None,
                                 system: PointSystem) -> tuple[float, float]:
    """Corollary 4.8: ``(D_min, t_min)`` minimising ``D(t)`` over all time.

    Each PE minimises its Theta(1) pieces locally (critical points of a
    bounded-degree polynomial), then one semigroup min reduces globally.
    """
    D = enclosing_cube_edge_function(machine, system)
    best = (math.inf, math.inf)
    per_piece = []
    for p in D.pieces:
        fn = p.fn
        cands = [p.lo]
        hi = p.hi
        if math.isfinite(hi):
            cands.append(hi)
        cands.extend(fn.derivative().real_roots(p.lo, hi))
        local = min((float(fn(t)), float(t)) for t in cands)
        per_piece.append(local)
        best = min(best, local)
    if machine is not None:
        length = next_pow2(max(2, len(D.pieces)))
        machine.local(length, count=max(1, system.k))
        vals = np.full(length, math.inf, dtype=object)
        vals[: len(per_piece)] = [v for v, _ in per_piece]
        semigroup(machine, vals, np.minimum)
    return best
