"""Chronological closest/farthest point sequences — Theorem 4.1.

For a dynamic system ``S = {P_0, ..., P_{n-1}}`` with k-motion, the sequence
``R`` of points closest to a query point, in chronological order, is read off
the lower envelope of the squared-distance polynomials ``d^2_{0j}(t)`` (each
of degree at most 2k).  The farthest sequence ``R'`` uses the upper envelope.

Cost: broadcast of ``f_0`` + local construction of ``d^2`` + one envelope —
``Theta(lambda^{1/2}(n-1, 2k))`` on a mesh of ``lambda_M(n-1, 2k)`` PEs and
``Theta(log^2 n)`` on a hypercube (Theorem 4.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateSystemError
from ..kinetics.motion import PointSystem
from ..kinetics.piecewise import PiecewiseFunction
from ..machines.machine import Machine
from ..ops import broadcast as op_broadcast
from ..ops._common import next_pow2
from .envelope import envelope, envelope_serial
from .family import PolynomialFamily

__all__ = ["closest_point_sequence", "farthest_point_sequence",
           "distance_squared_functions"]


def distance_squared_functions(machine: Machine | None, system: PointSystem,
                               query: int = 0):
    """Broadcast ``f_query`` and build all ``d^2_{query,j}`` (degree <= 2k).

    Returns ``(functions, labels)`` where labels are the point indices
    ``j != query``.  When a machine is given, the broadcast and the local
    construction rounds are charged.
    """
    n = len(system)
    if n < 2:
        raise DegenerateSystemError("need at least two points for neighbours")
    if not (0 <= query < n):
        raise DegenerateSystemError(f"query index {query} out of range")
    if machine is not None:
        length = next_pow2(n)
        marked = np.zeros(length, dtype=bool)
        marked[query] = True
        op_broadcast(machine, np.zeros(length), marked)
        machine.local(length)
    fq = system[query]
    fns, labels = [], []
    for j, m in enumerate(system):
        if j == query:
            continue
        fns.append(fq.distance_squared(m))
        labels.append(j)
    return fns, labels


def closest_point_sequence(machine: Machine | None, system: PointSystem,
                           query: int = 0) -> PiecewiseFunction:
    """The envelope whose labels are ``R``: closest points in time order.

    The returned piecewise function is ``min_j d^2_{query,j}(t)`` with piece
    labels identifying the closest point on each interval; ``.labels()`` is
    the paper's sequence ``R``.  ``machine=None`` runs the serial oracle.
    """
    fns, labels = distance_squared_functions(machine, system, query)
    family = PolynomialFamily(2 * max(1, system.k))
    if machine is None:
        return envelope_serial(fns, family, op="min", labels=labels)
    return envelope(machine, fns, family, op="min", labels=labels)


def farthest_point_sequence(machine: Machine | None, system: PointSystem,
                            query: int = 0) -> PiecewiseFunction:
    """The upper-envelope analogue: the sequence ``R'`` of farthest points."""
    fns, labels = distance_squared_functions(machine, system, query)
    family = PolynomialFamily(2 * max(1, system.k))
    if machine is None:
        return envelope_serial(fns, family, op="max", labels=labels)
    return envelope(machine, fns, family, op="max", labels=labels)
