"""Plain-text rendering of piecewise functions and interval timelines.

Terminal-friendly visual output for the examples and for interactive
exploration: a sampled line chart of a piecewise function (gaps shown as
blank columns), a label timeline showing which input owns each interval
(the sequences R / R' of Theorem 4.1), and an interval bar for the
containment/membership answers of Sections 4.2–4.3.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .piecewise import PiecewiseFunction

__all__ = ["render_function", "render_timeline", "render_intervals"]


def _window(pw: PiecewiseFunction, t_max: float | None) -> tuple[float, float]:
    if not pw.pieces:
        return 0.0, 1.0
    lo = pw.pieces[0].lo
    hi = pw.pieces[-1].hi
    if math.isinf(hi):
        finite = [p.hi for p in pw.pieces if math.isfinite(p.hi)]
        hi = (max(finite) if finite else lo) + max(1.0, abs(lo))
        hi += 0.25 * (hi - lo)
    if t_max is not None:
        hi = t_max
    if hi <= lo:
        hi = lo + 1.0
    return lo, hi


def render_function(pw: PiecewiseFunction, *, width: int = 72,
                    height: int = 12, t_max: float | None = None) -> str:
    """A sampled ASCII line chart of ``pw``; undefined regions stay blank."""
    lo, hi = _window(pw, t_max)
    ts = np.linspace(lo, hi, width)
    vals = []
    for t in ts:
        piece = pw.piece_at(float(t))
        vals.append(float(piece.fn(float(t))) if piece is not None else None)
    defined = [v for v in vals if v is not None]
    if not defined:
        return "(nowhere defined on the window)"
    v_lo, v_hi = min(defined), max(defined)
    span = v_hi - v_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, v in enumerate(vals):
        if v is None:
            continue
        y = int(round((v_hi - v) / span * (height - 1)))
        grid[y][x] = "*"
    lines = [f"{v_hi:>12.4g} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 12 + " |" + "".join(row))
    lines.append(f"{v_lo:>12.4g} |" + "".join(grid[-1]))
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(f"{'':13}{lo:<12.4g}{'':{max(0, width - 24)}}{hi:>12.4g}")
    return "\n".join(lines)


def render_timeline(pw: PiecewiseFunction, *, width: int = 72,
                    t_max: float | None = None) -> str:
    """A one-line ownership chart: which label holds each time column.

    Labels are assigned single glyphs in order of first appearance; a
    legend line maps glyphs back to labels.  Gaps render as ``.``.
    """
    lo, hi = _window(pw, t_max)
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    assignment: dict = {}
    cells = []
    for x in range(width):
        t = lo + (hi - lo) * (x + 0.5) / width
        piece = pw.piece_at(t)
        if piece is None:
            cells.append(".")
            continue
        if piece.label not in assignment:
            assignment[piece.label] = glyphs[len(assignment) % len(glyphs)]
        cells.append(assignment[piece.label])
    legend = "  ".join(f"{g}={lab}" for lab, g in assignment.items())
    return ("|" + "".join(cells) + "|\n"
            f" t in [{lo:.3g}, {hi:.3g}]   legend: {legend}")


def render_intervals(intervals: Sequence[tuple[float, float]], *,
                     width: int = 72, t_min: float | None = None,
                     t_max: float | None = None, mark: str = "#") -> str:
    """A bar chart of time intervals (Theorem 4.5/4.6 answers).

    ``t_min`` fixes the window origin so multiple bars align (defaults to
    the first interval's start).
    """
    if not intervals:
        return "(no intervals)"
    lo = intervals[0][0] if t_min is None else t_min
    finite = [b for _, b in intervals if math.isfinite(b)]
    hi = t_max if t_max is not None else (
        (max(finite) if finite else lo + 1.0) + max(1.0, abs(lo)) * 0.25
    )
    if hi <= lo:
        hi = lo + 1.0
    cells = []
    for x in range(width):
        t = lo + (hi - lo) * (x + 0.5) / width
        inside = any(a - 1e-12 <= t <= b for a, b in intervals)
        cells.append(mark if inside else ".")
    return "|" + "".join(cells) + f"|\n t in [{lo:.3g}, {hi:.3g}]"
