"""Interval arithmetic and certified envelope verification.

``check_envelope_of`` (in :mod:`repro.kinetics.piecewise`) verifies an
envelope by *sampling* — fast, but a sampling check can in principle miss a
thin violation between samples.  This module provides the certified
alternative: outward-rounded interval evaluation of polynomials (Horner
scheme over :class:`Interval`), and a subdividing verifier that proves
``winner(t) <= other(t) + tol`` over *entire* piece intervals.

Used by the test suite to certify envelopes produced by both the serial
oracle and the machine implementation, closing the loop between the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .piecewise import PiecewiseFunction
from .polynomial import Polynomial

__all__ = ["Interval", "poly_range", "certify_envelope"]

#: Multiplicative outward rounding applied after every interval operation
#: (double rounding is ~1e-16 relative; this is a comfortable cover).
_PAD = 1e-12


@dataclass(frozen=True)
class Interval:
    """A closed real interval with outward-rounded arithmetic."""

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def point(x: float) -> "Interval":
        return Interval(x, x)

    def _pad(self) -> "Interval":
        w = max(abs(self.lo), abs(self.hi), 1.0) * _PAD
        return Interval(self.lo - w, self.hi + w)

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)._pad()

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)._pad()

    def __mul__(self, other: "Interval") -> "Interval":
        cands = (self.lo * other.lo, self.lo * other.hi,
                 self.hi * other.lo, self.hi * other.hi)
        return Interval(min(cands), max(cands))._pad()

    def add_scalar(self, c: float) -> "Interval":
        return Interval(self.lo + c, self.hi + c)._pad()

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __contains__(self, x: float) -> bool:
        return self.lo <= x <= self.hi


def poly_range(p: Polynomial, t: Interval) -> Interval:
    """An interval guaranteed to contain ``{p(x) : x in t}`` (Horner IA)."""
    acc = Interval.point(float(p.coeffs[-1]))
    for c in p.coeffs[-2::-1]:
        acc = (acc * t).add_scalar(float(c))
    return acc


def _dominates(winner: Polynomial, other: Polynomial, lo: float, hi: float,
               tol: float, max_depth: int) -> bool:
    """Certified ``winner <= other + tol`` on [lo, hi] by IA + subdivision."""
    stack = [(lo, hi, 0)]
    while stack:
        a, b, depth = stack.pop()
        t = Interval(a, b)
        diff = poly_range(winner - other, t)
        if diff.hi <= tol:
            continue  # certified on this subinterval
        if diff.lo > tol:
            return False  # certified violation
        if depth >= max_depth:
            # Undecided at the finest scale: accept only if the midpoint
            # behaves (the remaining uncertainty is below tolerance scale).
            mid = 0.5 * (a + b)
            if winner(mid) > other(mid) + tol:
                return False
            continue
        mid = 0.5 * (a + b)
        stack.append((a, mid, depth + 1))
        stack.append((mid, b, depth + 1))
    return True


def certify_envelope(env: PiecewiseFunction, fns, *, op: str = "min",
                     tol: float = 1e-6, horizon: float | None = None,
                     max_depth: int = 40) -> bool:
    """Certify that ``env`` is the ``op``-envelope of polynomial ``fns``.

    For every piece and every input polynomial, proves via interval
    arithmetic that the piece's function stays within ``tol`` of the best
    over the whole piece interval (infinite pieces are checked to
    ``horizon``, defaulting to past every input's Cauchy bound, beyond
    which leading-coefficient comparison settles the order exactly).
    """
    if op not in ("min", "max"):
        raise ValueError("op must be 'min' or 'max'")
    fns = list(fns)
    if horizon is None:
        horizon = 1.0
        for f in fns:
            for g in fns:
                horizon = max(horizon, (f - g).horizon())
        horizon *= 2.0
    for piece in env.pieces:
        win = piece.fn
        if not isinstance(win, Polynomial):
            raise TypeError("certification requires polynomial pieces")
        hi = min(piece.hi, horizon) if math.isfinite(piece.hi) else horizon
        if hi <= piece.lo:
            continue
        for other in fns:
            a, b = (win, other) if op == "min" else (other, win)
            if not _dominates(a, b, piece.lo, hi, tol, max_depth):
                return False
            if not math.isfinite(piece.hi):
                # Beyond the horizon the order is the steady-state order.
                if op == "min" and win.steady_compare(other) > 0:
                    return False
                if op == "max" and win.steady_compare(other) < 0:
                    return False
    return True
