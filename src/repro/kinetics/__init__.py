"""Kinetic substrate: polynomials, pieces, DS sequences, motions (Section 2)."""

from .polynomial import Polynomial, ZERO, ONE, T
from .piecewise import Piece, PiecewiseFunction, INF
from .render import render_function, render_intervals, render_timeline
from .interval import Interval, certify_envelope, poly_range
from .davenport_schinzel import (
    extremal_sequence,
    inverse_ackermann,
    is_ds_sequence,
    lambda_bound,
    lambda_exact,
    lambda_hypercube_size,
    lambda_mesh_size,
    max_alternation,
    next_power_of_four,
    next_power_of_two,
)
from .motion import (
    Motion,
    PointSystem,
    converging_swarm,
    crossing_traffic,
    divergent_system,
    expanding_swarm,
    projectile_system,
    random_system,
    static_system,
)

__all__ = [
    "Polynomial", "ZERO", "ONE", "T",
    "Piece", "PiecewiseFunction", "INF",
    "render_function", "render_intervals", "render_timeline",
    "Interval", "certify_envelope", "poly_range",
    "extremal_sequence", "inverse_ackermann", "is_ds_sequence", "lambda_bound", "lambda_exact",
    "lambda_hypercube_size", "lambda_mesh_size", "max_alternation",
    "next_power_of_four", "next_power_of_two",
    "Motion", "PointSystem", "converging_swarm", "crossing_traffic",
    "divergent_system", "expanding_swarm", "projectile_system",
    "random_system", "static_system",
]
