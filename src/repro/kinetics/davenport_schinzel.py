"""Davenport–Schinzel sequences and the function ``lambda(n, s)`` (Section 2.5).

The number of pieces of the lower envelope of ``n`` curves, no two of which
cross more than ``s`` times, is at most ``lambda(n, s)`` — the maximum length
of an ``(n, s)`` Davenport–Schinzel sequence under the paper's convention
(Definition 2.1: no immediate repetition, and no alternating subsequence
``a b a b ...`` of length ``s + 2``).

This module provides:

* :func:`is_ds_sequence` — validator for Definition 2.1,
* :func:`lambda_exact` — closed forms for ``s <= 2`` (Theorem 2.3) and
  exact brute-force search for small parameters,
* :func:`inverse_ackermann` — the function ``alpha(n)`` of Hart–Sharir,
* :func:`lambda_bound` — a safe upper bound used to size machines
  (``lambda_M`` / ``lambda_H`` of Section 3), and
* :func:`lambda_mesh_size` / :func:`lambda_hypercube_size` — the paper's
  power-of-4 and power-of-2 roundings.
"""

from __future__ import annotations


from typing import Sequence

__all__ = [
    "is_ds_sequence",
    "max_alternation",
    "lambda_exact",
    "lambda_bound",
    "inverse_ackermann",
    "lambda_mesh_size",
    "lambda_hypercube_size",
    "next_power_of_two",
    "next_power_of_four",
]


def max_alternation(seq: Sequence[int], a: int, b: int) -> int:
    """Length of the longest alternation of ``a`` and ``b`` inside ``seq``.

    Equivalently: the number of maximal blocks in the subsequence of ``seq``
    restricted to the symbols ``{a, b}``.
    """
    count = 0
    last = None
    for x in seq:
        if x == a or x == b:
            if x != last:
                count += 1
                last = x
    return count


def is_ds_sequence(seq: Sequence[int], s: int) -> bool:
    """Check Definition 2.1: is ``seq`` an ``(n, s)`` DS sequence?

    ``seq`` uses arbitrary hashable symbols.  The check is (a) no two equal
    adjacent symbols, and (b) for every pair of distinct symbols the longest
    alternation has length at most ``s + 1`` (a length-``s + 2`` alternation
    is the forbidden sequence ``E_ij``).
    """
    if s < 1:
        raise ValueError("s must be a positive integer")
    for x, y in zip(seq, seq[1:]):
        if x == y:
            return False
    symbols = sorted(set(seq))
    for i, a in enumerate(symbols):
        for b in symbols[i + 1 :]:
            if max_alternation(seq, a, b) > s + 1:
                return False
    return True


# ----------------------------------------------------------------------
# Exact values
# ----------------------------------------------------------------------
def lambda_exact(n: int, s: int, *, brute_force_limit: int = 64) -> int:
    """Exact value of ``lambda(n, s)``.

    Closed forms (Theorem 2.3): ``lambda(n, 1) = n`` and
    ``lambda(n, 2) = 2n - 1``; also ``lambda(1, s) = 1`` and
    ``lambda(2, s) = s + 1``.  Other parameters fall back to exhaustive
    search, which is exponential — a guard refuses searches whose result
    could exceed ``brute_force_limit``.
    """
    if n < 1 or s < 1:
        raise ValueError("n and s must be positive integers")
    if n == 1:
        return 1
    if s == 1:
        return n
    if s == 2:
        return 2 * n - 1
    if n == 2:
        return s + 1
    return _lambda_brute(n, s, brute_force_limit)


def _lambda_brute(n: int, s: int, limit: int) -> int:
    """Exhaustive longest-DS-sequence search (depth-first, with pruning).

    Symmetry reduction: symbols are required to make their first appearance
    in increasing order, which divides the search space by ``n!``.
    """
    best = 0
    max_alt = s + 1
    # blocks[a][b]: number of alternation blocks for the pair (a, b), a < b.
    blocks = [[0] * n for _ in range(n)]
    lastsym = [[-1] * n for _ in range(n)]  # which of the pair occurred last
    seq: list[int] = []

    def extend(last: int, used: int) -> None:
        nonlocal best
        if len(seq) > best:
            best = len(seq)
            if best > limit:
                raise RuntimeError(
                    f"lambda({n},{s}) exceeds brute_force_limit={limit}"
                )
        # Candidates: any previously used symbol, plus the next fresh one.
        cand = list(range(used)) + ([used] if used < n else [])
        for x in cand:
            if x == last:
                continue
            touched: list[tuple[int, int, int]] = []
            ok = True
            for y in range(used):
                if y == x:
                    continue
                a, b = (x, y) if x < y else (y, x)
                if lastsym[a][b] != x:
                    # A never-touched pair already contains a block of y's
                    # (y is in `used`), so x's first block is the second.
                    inc = 2 if lastsym[a][b] == -1 else 1
                    if blocks[a][b] + inc > max_alt:
                        ok = False
                        break
                    touched.append((a, b, inc))
            if not ok:
                # Roll back nothing: we broke before mutating.
                continue
            saved = [(a, b, blocks[a][b], lastsym[a][b]) for a, b, _ in touched]
            for a, b, inc in touched:
                blocks[a][b] += inc
                lastsym[a][b] = x
            seq.append(x)
            extend(x, max(used, x + 1))
            seq.pop()
            for a, b, bl, ls in saved:
                blocks[a][b] = bl
                lastsym[a][b] = ls

    extend(-1, 0)
    return best


def extremal_sequence(n: int, s: int) -> list[int]:
    """A maximum-length ``(n, s)`` DS sequence for ``s <= 2`` (Theorem 2.3).

    * ``s = 1``: ``1 2 ... n`` (length ``n``) — no symbol may reappear,
      since ``a b a`` is already a forbidden length-3 alternation.
    * ``s = 2``: ``1 2 1 3 1 ... 1 n`` (length ``2n - 1``) — every pair
      ``(1, j)`` alternates exactly 3 times and other pairs twice, both
      within the allowed ``s + 1``.

    Used by tests and by the Figure 4 benchmark as the combinatorial
    counterpart of the geometric worst cases.
    """
    if n < 1:
        raise ValueError("n must be a positive integer")
    if s == 1:
        return list(range(1, n + 1))
    if s == 2:
        if n == 1:
            return [1]
        out = []
        for j in range(2, n + 1):
            out.extend([1, j])
        out.append(1)
        return out
    raise ValueError("extremal constructions implemented for s in {1, 2}")


# ----------------------------------------------------------------------
# Inverse Ackermann
# ----------------------------------------------------------------------
def _ackermann_capped(i: int, j: int, cap: int) -> int:
    """Two-argument Ackermann function, saturating at ``cap + 1``.

    ``A(1, j) = 2^j``; ``A(i, 1) = A(i-1, 2)``; ``A(i, j) = A(i-1, A(i, j-1))``.
    The true values explode far beyond anything representable (``A(2, j)`` is
    a tower of ``j`` twos), so every intermediate result is clamped to
    ``cap + 1`` — callers only ever ask "is A(i, j) >= n?", for which the
    clamped value is exact.  Uses the monotonicity ``A(i, j) >= j + 1``.
    """
    if j > cap:
        return cap + 1
    if i == 1:
        if j >= cap.bit_length() + 1:
            return cap + 1
        return min(2**j, cap + 1)
    if j == 1:
        return _ackermann_capped(i - 1, 2, cap)
    inner = _ackermann_capped(i, j - 1, cap)
    if inner > cap:
        return cap + 1
    return _ackermann_capped(i - 1, inner, cap)


def inverse_ackermann(n: int) -> int:
    """``alpha(n) = min{ i >= 1 : A(i, i) >= n }``.

    A monotone nondecreasing function that grows to infinity extremely
    slowly; ``alpha(n) <= 4`` for every ``n`` representable on real hardware
    (the paper notes ``alpha(n) <= 4`` for ``n`` up to a tower of 65536 twos).
    """
    if n < 1:
        raise ValueError("n must be a positive integer")
    i = 1
    while _ackermann_capped(i, i, n) < n:
        i += 1
    return i


# ----------------------------------------------------------------------
# Upper bounds and machine sizing
# ----------------------------------------------------------------------
def lambda_bound(n: int, s: int) -> int:
    """A safe upper bound on ``lambda(n, s)`` for machine sizing.

    For ``s <= 2`` the bound is exact (Theorem 2.3).  For ``s >= 3`` we use
    the generous linear-with-small-factor form the paper appeals to
    ("for reasonable values of n, lambda(n, s) is essentially Theta(n)"):
    ``n * (s + 1) * (alpha(n) + 1)``, which dominates the known
    ``O(n * alpha(n)^{O(alpha(n)^{s})})`` bounds for every ``n`` that fits in
    memory.  Algorithms that allocate processor strings from this bound also
    tolerate overflow by growing, so the bound only affects efficiency.
    """
    if n < 1 or s < 1:
        raise ValueError("n and s must be positive integers")
    if n == 1:
        return 1
    if s == 1:
        return n
    if s == 2:
        return 2 * n - 1
    return n * (s + 1) * (inverse_ackermann(n) + 1)


def next_power_of_two(m: int) -> int:
    """Smallest power of two ``>= m``."""
    if m < 1:
        raise ValueError("m must be positive")
    return 1 << (m - 1).bit_length()


def next_power_of_four(m: int) -> int:
    """Smallest power of four ``>= m``."""
    p = next_power_of_two(m)
    if p.bit_length() % 2 == 0:  # odd exponent (e.g. 8 = 2^3): bump to 2^4
        p <<= 1
    return p


def lambda_mesh_size(n: int, s: int) -> int:
    """``lambda_M(n, s)``: lambda bound rounded up to a power of 4 (Sec. 3)."""
    return next_power_of_four(lambda_bound(n, s))


def lambda_hypercube_size(n: int, s: int) -> int:
    """``lambda_H(n, s)``: lambda bound rounded up to a power of 2 (Sec. 3)."""
    return next_power_of_two(lambda_bound(n, s))
