"""Motion functions and dynamic point systems (Section 2.4).

A :class:`Motion` is a point-object trajectory in Euclidean ``d``-space whose
coordinates are polynomials of time of degree at most ``k`` ("k-motion").  A
:class:`PointSystem` bundles ``n`` motions and validates the paper's input
assumption that no two points share an initial position.

The module also ships the workload generators used by the examples, tests,
and benchmarks: random k-motion, crossing traffic (guaranteed collisions for
Theorem 4.2), converging/expanding swarms (containment, Theorems 4.6–4.8)
and divergent systems with distinct steady-state behaviour (Section 5).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import DegenerateSystemError
from .polynomial import Polynomial

__all__ = ["Motion", "PointSystem", "random_system", "crossing_traffic",
           "converging_swarm", "expanding_swarm", "divergent_system",
           "static_system", "projectile_system"]


class Motion:
    """A trajectory ``f: [0, inf) -> R^d`` with polynomial coordinates."""

    __slots__ = ("coords",)

    def __init__(self, coords: Iterable[Polynomial]):
        cs = tuple(coords)
        if not cs:
            raise ValueError("a motion needs at least one coordinate")
        if not all(isinstance(c, Polynomial) for c in cs):
            raise TypeError("all coordinates must be Polynomial instances")
        self.coords: tuple[Polynomial, ...] = cs

    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(coeff_rows: Sequence[Sequence[float]]) -> "Motion":
        """Build from per-coordinate ascending coefficient rows."""
        return Motion(Polynomial(row) for row in coeff_rows)

    @staticmethod
    def stationary(point: Sequence[float]) -> "Motion":
        """A motionless point (degree-0 trajectory)."""
        return Motion(Polynomial.constant(x) for x in point)

    @staticmethod
    def linear(start: Sequence[float], velocity: Sequence[float]) -> "Motion":
        """Constant-velocity motion ``start + velocity * t`` (1-motion)."""
        if len(start) != len(velocity):
            raise ValueError("start and velocity dimensions differ")
        return Motion(
            Polynomial([float(s), float(v)]) for s, v in zip(start, velocity)
        )

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.coords)

    @property
    def degree(self) -> int:
        """Maximum coordinate degree (the ``k`` of this motion)."""
        return max(c.degree for c in self.coords)

    def position(self, t: float) -> np.ndarray:
        """Position at time ``t`` as a length-``d`` array."""
        return np.array([c(t) for c in self.coords])

    def __call__(self, t: float) -> np.ndarray:
        return self.position(t)

    def __getitem__(self, axis: int) -> Polynomial:
        return self.coords[axis]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Motion):
            return NotImplemented
        return self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Motion({', '.join(map(repr, self.coords))})"

    # ------------------------------------------------------------------
    def displacement(self, other: "Motion") -> tuple[Polynomial, ...]:
        """Coordinatewise difference ``other - self`` as polynomials."""
        if other.dimension != self.dimension:
            raise ValueError("motions live in different dimensions")
        return tuple(b - a for a, b in zip(self.coords, other.coords))

    def distance_squared(self, other: "Motion") -> Polynomial:
        """The polynomial ``d^2(t)`` between two motions.

        For k-motion this has degree at most ``2k`` — the quantity the
        closest/farthest-point algorithms of Theorem 4.1 build envelopes of.
        (Distances are compared via their squares throughout the paper, which
        keeps everything polynomial.)
        """
        acc = Polynomial.constant(0.0)
        for diff in self.displacement(other):
            acc = acc + diff * diff
        return acc


class PointSystem:
    """A dynamic system ``S = {P_0, ..., P_{n-1}}`` of moving point-objects.

    Validates the Section 2.4 assumptions: all motions share one dimension,
    and no two points have the same initial position (``f_i(0) != f_j(0)``).
    """

    __slots__ = ("motions",)

    def __init__(self, motions: Iterable[Motion], *, validate: bool = True):
        ms = list(motions)
        if not ms:
            raise DegenerateSystemError("a point system needs at least one point")
        d = ms[0].dimension
        if any(m.dimension != d for m in ms):
            raise DegenerateSystemError("all motions must share one dimension")
        if validate:
            starts = np.array([m.position(0.0) for m in ms])
            order = np.lexsort(starts.T[::-1])
            for a, b in zip(order, order[1:]):
                # Absolute tolerance only: allclose's default rtol would
                # scale with coordinate magnitude and misread points 1e-4
                # apart as coincident in campaign-scale systems.
                if np.allclose(starts[a], starts[b], rtol=0.0, atol=1e-12):
                    raise DegenerateSystemError(
                        f"points {a} and {b} share the initial position {starts[a]}"
                    )
        self.motions: list[Motion] = ms

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.motions)

    def __iter__(self):
        return iter(self.motions)

    def __getitem__(self, i: int) -> Motion:
        return self.motions[i]

    @property
    def dimension(self) -> int:
        return self.motions[0].dimension

    @property
    def k(self) -> int:
        """The motion degree bound ``k`` of the system."""
        return max(m.degree for m in self.motions)

    def positions(self, t: float) -> np.ndarray:
        """All positions at time ``t`` as an ``(n, d)`` array."""
        return np.array([m.position(t) for m in self.motions])

    def distance_squared(self, i: int, j: int) -> Polynomial:
        """``d^2_{ij}(t)`` between points ``i`` and ``j``."""
        return self.motions[i].distance_squared(self.motions[j])

    def horizon(self) -> float:
        """A time beyond which every pairwise-distance comparison is settled.

        Computed from Cauchy root bounds of all coordinate polynomials; used
        by tests to sample "steady state" numerically.  O(n) work (bounds
        combine additively), not O(n^2).
        """
        h = 1.0
        for m in self.motions:
            for c in m.coords:
                h = max(h, c.horizon())
        return 2.0 * h


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_system(n: int, d: int = 2, k: int = 1, *, seed=0,
                  scale: float = 10.0) -> PointSystem:
    """``n`` points with uniformly random degree-``k`` coordinate polynomials.

    Initial positions are drawn from a grid-jittered distribution to satisfy
    the distinct-initial-positions assumption with probability 1.
    """
    rng = _rng(seed)
    motions = []
    for i in range(n):
        rows = []
        for _ in range(d):
            coeffs = rng.uniform(-scale, scale, size=k + 1)
            rows.append(coeffs)
        motions.append(Motion.from_arrays(rows))
    return PointSystem(motions)


def crossing_traffic(n: int, *, seed=0, lanes: float = 100.0) -> PointSystem:
    """Linear motions arranged so that point 0 provably collides.

    Air-traffic-control flavour: point 0 flies east along the x-axis; every
    odd-indexed point is aimed to cross point 0's position at a distinct
    time, and even-indexed points fly parallel (never colliding).  Used to
    exercise Theorem 4.2 with a known answer.
    """
    if n < 2:
        raise ValueError("need at least two aircraft")
    rng = _rng(seed)
    motions = [Motion.linear([0.0, 0.0], [1.0, 0.0])]
    for i in range(1, n):
        t_cross = float(i)
        if i % 2 == 1:
            # Start off-axis, meet point 0 at (t_cross, 0) at time t_cross.
            y0 = lanes * (1 + rng.uniform(0, 1))
            motions.append(
                Motion.linear([0.0, y0], [1.0, -y0 / t_cross])
            )
        else:
            motions.append(
                Motion.linear([0.0, -lanes * i], [1.0, 0.0])
            )
    return PointSystem(motions)


def converging_swarm(n: int, d: int = 2, *, seed=0, spread: float = 50.0) -> PointSystem:
    """Points that start spread out and head towards the origin region.

    The bounding box shrinks then (for generic velocities) grows again —
    exercising the smallest-ever enclosing hypercube of Corollary 4.8 with a
    strictly interior minimum.
    """
    rng = _rng(seed)
    motions = []
    for i in range(n):
        start = rng.uniform(-spread, spread, size=d)
        target_time = rng.uniform(5.0, 15.0)
        velocity = -start / target_time + rng.normal(0, 0.05, size=d)
        motions.append(Motion.linear(start, velocity))
    return PointSystem(motions)


def expanding_swarm(n: int, d: int = 2, *, seed=0) -> PointSystem:
    """Points radiating outwards from distinct positions near the origin."""
    rng = _rng(seed)
    motions = []
    for i in range(n):
        theta = 2 * math.pi * i / n
        if d == 2:
            direction = np.array([math.cos(theta), math.sin(theta)])
        else:
            direction = rng.normal(size=d)
            direction /= np.linalg.norm(direction)
        start = direction * (1.0 + 0.01 * i)
        speed = rng.uniform(0.5, 2.0)
        motions.append(Motion.linear(start, direction * speed))
    return PointSystem(motions)


def divergent_system(n: int, d: int = 2, k: int = 1, *, seed=0) -> PointSystem:
    """k-motion with pairwise-distinct leading velocity/acceleration vectors.

    As ``t -> inf`` the points separate linearly (or faster), so every
    steady-state property of Section 5 — nearest neighbor, closest pair,
    hull, diameter, enclosing rectangle — is uniquely determined and stable,
    which makes the system a clean oracle workload.
    """
    rng = _rng(seed)
    motions = []
    for i in range(n):
        rows = []
        lead = rng.uniform(-1, 1, size=d)
        lead /= max(1e-9, np.linalg.norm(lead))
        lead *= 1.0 + i  # pairwise distinct speeds: unique steady geometry
        for axis in range(d):
            coeffs = list(rng.uniform(-5, 5, size=k))
            coeffs.append(lead[axis])
            rows.append(coeffs)
        motions.append(Motion.from_arrays(rows))
    return PointSystem(motions)


def static_system(points: Sequence[Sequence[float]]) -> PointSystem:
    """A 0-motion system from literal coordinates (Table 4 workloads)."""
    return PointSystem([Motion.stationary(p) for p in points])


def projectile_system(n: int, *, seed=0, gravity: float = 9.81,
                      speed: float = 40.0) -> PointSystem:
    """Ballistic projectiles: quadratic (k = 2) motion in the vertical plane.

    Each projectile launches from a distinct point on the ground with a
    random elevation angle; x is linear in time, y is ``y0 + v t - g/2 t^2``.
    A natural 2-motion workload for the containment and closest-pair
    problems (and deliberately *not* divergent: heights return to earth).
    """
    rng = _rng(seed)
    motions = []
    for i in range(n):
        x0 = 5.0 * i
        angle = rng.uniform(math.pi / 6, math.pi / 3)
        v = speed * rng.uniform(0.7, 1.3)
        vx = v * math.cos(angle) * rng.choice([-1.0, 1.0])
        vy = v * math.sin(angle)
        motions.append(Motion.from_arrays([
            [x0, vx],
            [0.0, vy, -gravity / 2.0],
        ]))
    return PointSystem(motions)
