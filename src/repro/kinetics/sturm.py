"""Certified real-root isolation via Sturm sequences.

The companion-matrix root finder in :mod:`repro.kinetics.polynomial` is
fast, but its accuracy near multiple roots is heuristic.  Piece boundaries
in the envelope algorithms are roots of difference polynomials, so a
*certified* backend is valuable both as a cross-validation oracle in the
test suite and as a fallback for ill-conditioned inputs.

A Sturm chain ``p_0 = p, p_1 = p', p_{i+1} = -rem(p_{i-1}, p_i)`` counts
the distinct real roots in any half-open interval ``(a, b]`` as the drop in
sign variations ``V(a) - V(b)``; bisection on that count isolates each root
to an interval containing exactly one, which bisection-on-sign then refines.
Multiplicities are removed first by dividing out ``gcd(p, p')``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import RootFindingError
from .polynomial import Polynomial

__all__ = ["sturm_chain", "count_roots", "real_roots_sturm"]

#: Relative tolerance for the polynomial remainder cascade.
_REM_EPS = 1e-10


def _poly_divmod(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quotient and remainder of dense ascending-coefficient arrays."""
    a = a.astype(float).copy()
    b = np.trim_zeros(b.astype(float), "b")
    if b.size == 0:
        raise ZeroDivisionError("polynomial division by zero")
    if a.size < b.size:
        return np.zeros(1), a
    q = np.zeros(a.size - b.size + 1)
    scale = b[-1]
    for i in range(q.size - 1, -1, -1):
        coef = a[i + b.size - 1] / scale
        q[i] = coef
        a[i : i + b.size] -= coef * b
    rem = a[: b.size - 1] if b.size > 1 else np.zeros(1)
    return q, rem


def _trimmed(c: np.ndarray, scale: float) -> np.ndarray:
    """Drop numerically-zero leading coefficients relative to ``scale``."""
    tol = _REM_EPS * max(scale, 1.0)
    nz = np.flatnonzero(np.abs(c) > tol)
    if nz.size == 0:
        return np.zeros(1)
    return c[: nz[-1] + 1]


def _squarefree(p: Polynomial) -> Polynomial:
    """Divide out repeated factors: ``p / gcd(p, p')``."""
    if p.degree <= 1:
        return p
    a = p.coeffs.copy()
    b = p.derivative().coeffs.copy()
    scale = float(np.max(np.abs(a)))
    # Euclidean gcd with numeric trimming.
    while True:
        b_t = _trimmed(b, scale)
        if b_t.size == 1 and abs(b_t[0]) <= _REM_EPS * max(scale, 1.0):
            gcd = _trimmed(a, scale)
            break
        _, r = _poly_divmod(a, b_t)
        a, b = b_t, r
        if _trimmed(b, scale).size == 1 and abs(_trimmed(b, scale)[0]) <= \
                _REM_EPS * max(scale, 1.0):
            gcd = a
            break
    gcd = _trimmed(gcd, scale)
    if gcd.size <= 1:
        return p
    q, _ = _poly_divmod(p.coeffs, gcd)
    return Polynomial(q)


def sturm_chain(p: Polynomial) -> list[Polynomial]:
    """The Sturm chain of a (preferably square-free) polynomial."""
    if p.is_zero():
        raise RootFindingError("Sturm chain of the zero polynomial")
    chain = [p, p.derivative()]
    scale = float(np.max(np.abs(p.coeffs)))
    while chain[-1].degree > 0:
        _, rem = _poly_divmod(chain[-2].coeffs, chain[-1].coeffs)
        rem = _trimmed(rem, scale)
        nxt = Polynomial(-rem)
        if nxt.is_zero():
            break
        chain.append(nxt)
    return chain


def _variations(chain: list[Polynomial], x: float) -> int:
    """Sign variations of the chain at ``x`` (or at +inf/-inf)."""
    signs = []
    for q in chain:
        if math.isinf(x):
            s = q.sign_at_infinity() if x > 0 else (
                q.sign_at_infinity() * (1 if q.degree % 2 == 0 else -1)
            )
        else:
            v = q(x)
            s = 0 if abs(v) <= 1e-13 * max(1.0, abs(v)) else (1 if v > 0 else -1)
        if s != 0:
            signs.append(s)
    return sum(1 for a, b in zip(signs, signs[1:]) if a != b)


def count_roots(p: Polynomial, lo: float, hi: float) -> int:
    """Number of *distinct* real roots in the half-open interval ``(lo, hi]``."""
    sf = _squarefree(p)
    if sf.degree == 0:
        return 0
    chain = sturm_chain(sf)
    return _variations(chain, lo) - _variations(chain, hi)


def real_roots_sturm(p: Polynomial, lo: float = 0.0, hi: float = math.inf,
                     *, tol: float = 1e-10) -> list[float]:
    """Certified distinct real roots of ``p`` in ``[lo, hi]``, ascending.

    Bisection on the Sturm root count isolates intervals with exactly one
    root each; sign bisection refines them to ``tol``.  Cost grows with the
    number of bisection levels (~50 per root), so prefer the companion-
    matrix backend for throughput and this one for certainty.
    """
    if p.is_zero() or p.degree == 0:
        return []
    sf = _squarefree(p)
    chain = sturm_chain(sf)
    # Finite search window covering every root (Cauchy bound).
    window_hi = min(hi, sf.horizon() + 1.0)
    if window_hi <= lo:
        window_hi = lo + 1.0
    out: list[float] = []
    # Include lo itself: Sturm counts (a, b], so nudge left a hair.
    eps0 = tol * max(1.0, abs(lo))
    stack = [(lo - eps0, window_hi)]
    while stack:
        a, b = stack.pop()
        k = _variations(chain, a) - _variations(chain, b)
        if k <= 0:
            continue
        if k == 1:
            out.append(_bisect_root(sf, a, b, tol))
            continue
        mid = 0.5 * (a + b)
        if b - a <= tol * max(1.0, abs(a)):
            out.append(mid)  # cluster tighter than tol: report once
            continue
        stack.append((a, mid))
        stack.append((mid, b))
    out = sorted(r for r in out if lo - eps0 <= r <= hi + eps0)
    return out


def _bisect_root(p: Polynomial, a: float, b: float, tol: float) -> float:
    """Refine the unique root in (a, b] by sign bisection."""
    fa = p(a)
    fb = p(b)
    if fa == 0.0:
        return a
    if fb == 0.0:
        return b
    if fa * fb > 0:
        # Single root without a sign change cannot happen for a square-free
        # polynomial unless the root sits exactly on an endpoint cluster;
        # fall back to the midpoint of a ternary sweep.
        ts = np.linspace(a, b, 65)
        vals = p(ts)
        i = int(np.argmin(np.abs(vals)))
        return float(ts[i])
    for _ in range(200):
        mid = 0.5 * (a + b)
        fm = p(mid)
        if fm == 0.0 or b - a <= tol * max(1.0, abs(mid)):
            return mid
        if fa * fm < 0:
            b, fb = mid, fm
        else:
            a, fa = mid, fm
    return 0.5 * (a + b)
